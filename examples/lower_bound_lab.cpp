// Lower-bound laboratory: the list machine toolkit of Sections 5-7,
// driven interactively. Runs a comparison machine, prints its skeleton
// statistics, verifies the merge lemma, and constructs a fooling input
// via the composition lemma — the proof of Theorem 6 in miniature.
//
//   build/examples/lower_bound_lab [m]

#include <cstdlib>
#include <iostream>

#include "core/rstlab.h"

int main(int argc, char** argv) {
  using namespace rstlab::listmachine;
  const std::size_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;

  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);

  // A predicate-satisfying input: v'_j = v_{m-j}, v'_0 = v_0.
  std::vector<std::uint64_t> v(2 * m);
  for (std::size_t j = 0; j < m; ++j) v[j] = j + 1;
  for (std::size_t j = 1; j < m; ++j) v[m + j] = v[m - j];
  v[m] = v[0];

  auto run = exec.RunDeterministic(v, 1000000);
  if (!run.ok()) {
    std::cerr << "run failed: " << run.status() << "\n";
    return 1;
  }
  std::cout << "ReverseCompareMachine on m = " << m << " pairs:\n"
            << "  steps         : " << run.value().steps.size() << "\n"
            << "  scan bound r  : " << run.value().ScanBound() << "\n"
            << "  accepted      : "
            << (run.value().accepted ? "yes" : "no") << "\n";

  const auto pairs = ComparedPairs(run.value());
  std::cout << "  compared pairs: " << pairs.size() << " {";
  for (const auto& [a, b] : pairs) std::cout << " (" << a << "," << b << ")";
  std::cout << " }\n";
  std::cout << "  blind spot    : positions 0 and " << m << " are "
            << (ArePositionsCompared(run.value(), 0, m)
                    ? "compared (?!)"
                    : "NEVER compared")
            << "\n\n";

  // Merge lemma (Lemma 38) against the bit-reversal permutation.
  const auto phi = rstlab::permutation::BitReversalPermutation(m);
  MergeLemmaCheck merge = CheckMergeLemma(run.value(), phi);
  std::cout << "Merge lemma vs bit-reversal phi:\n"
            << "  pairs (i, m+phi(i)) compared: " << merge.compared_count
            << " <= bound t^{2r} * sortedness(phi) = " << merge.bound
            << "  [" << (merge.within_bounds ? "ok" : "VIOLATED") << "]\n\n";

  // Growth bounds (Lemma 30).
  GrowthCheck growth = CheckGrowth(run.value(), 2 * m);
  std::cout << "Growth (Lemma 30): total list length "
            << growth.measured_total_list_length << " <= "
            << growth.bound_total_list_length << ", max cell size "
            << growth.measured_max_cell_size << " <= "
            << growth.bound_max_cell_size << "  ["
            << (growth.within_bounds ? "ok" : "VIOLATED") << "]\n\n";

  // Composition lemma (Lemma 34): cross over the blind-spot pair.
  std::vector<std::uint64_t> w = v;
  w[0] = 99;
  w[m] = 99;
  const std::vector<ChoiceId> choices(run.value().steps.size() + 4, 0);
  CompositionOutcome outcome =
      TestComposition(exec, v, w, 0, m, choices, 1000000);
  std::cout << "Composition lemma (Lemma 34):\n"
            << "  preconditions (equal skeletons, uncompared positions): "
            << (outcome.preconditions_met ? "met" : "NOT met") << "\n"
            << "  crossed-over input accepted as predicted: "
            << (outcome.prediction_holds ? "yes" : "NO") << "\n";
  if (outcome.prediction_holds) {
    std::cout << "  the fooling input (v_0 = " << outcome.input_u[0]
              << " but v'_0 = " << outcome.input_u[m]
              << ") is a NO instance the machine accepts — the\n"
              << "  contradiction that proves Lemma 21, and with it"
                 " Theorem 6.\n";
  }
  return 0;
}
