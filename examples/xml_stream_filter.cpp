// XML query evaluation (Theorems 12/13): encode a SET-EQUALITY instance
// as the paper's XML document, run the paper's XQuery and XPath queries,
// and exercise the T-tilde reduction.
//
//   build/examples/xml_stream_filter [m]

#include <cstdlib>
#include <iostream>

#include "core/rstlab.h"

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  rstlab::Rng rng(11);

  for (const bool equal : {true, false}) {
    rstlab::problems::Instance instance =
        equal ? rstlab::problems::EqualSets(m, 8, rng)
              : rstlab::problems::PerturbedMultisets(m, 8, 1, rng);
    rstlab::query::XmlDocument doc =
        rstlab::query::EncodeSetInstanceAsXml(instance);

    std::cout << "--- " << (equal ? "X == Y" : "X != Y")
              << " instance ---\n";
    if (m <= 4) {
      std::cout << "document: " << rstlab::query::SerializeXml(*doc)
                << "\n";
    }

    // Theorem 12: the XQuery query.
    std::cout << "XQuery result : "
              << rstlab::query::EvaluatePaperXQueryToString(*doc) << "\n";

    // Theorem 13: the Figure 1 XPath query selects X - Y items.
    const auto selected =
        rstlab::query::EvalPath(*doc, rstlab::query::PaperXPathQuery());
    std::cout << "XPath selects : " << selected.size() << " item(s)";
    for (const auto* node : selected) {
      std::cout << " [" << node->StringValue() << "]";
    }
    std::cout << "\n";

    // The T-tilde protocol on a compliant filter oracle.
    rstlab::query::FilterOracle oracle =
        rstlab::query::ModelFilterOracle(0.5);
    int accepts = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
      accepts +=
          rstlab::query::TTildeAcceptsSetEquality(instance, oracle, rng);
    }
    std::cout << "T-tilde accept rate over " << trials
              << " runs: " << static_cast<double>(accepts) / trials
              << (equal ? "  (paper: >= 0.25 on equal sets)"
                        : "  (paper: 0 on unequal sets)")
              << "\n\n";
  }
  return 0;
}
