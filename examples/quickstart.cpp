// Quickstart: decide MULTISET-EQUALITY three ways and compare the
// resource bills — the story of the paper in one program.
//
//   build/examples/quickstart [m] [n]
//
// 1. The randomized fingerprint tester (Theorem 8(a)): two sequential
//    scans, O(log N) internal bits, one-sided error.
// 2. The deterministic sort-and-compare decider (Corollary 7):
//    Theta(log N) scans.
// 3. The reference oracle for ground truth.
//
// Theorem 6 says the gap is fundamental: below Theta(log N) scans, even
// randomization (with the no-false-positives error model) cannot decide
// the problem once internal memory is limited to O(N^{1/4} / log N).

#include <cstdlib>
#include <iostream>

#include "core/rstlab.h"

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;
  rstlab::Rng rng(2026);

  std::cout << "MULTISET-EQUALITY on m = " << m << " pairs of " << n
            << "-bit values\n\n";

  for (const bool equal : {true, false}) {
    rstlab::problems::Instance instance =
        equal ? rstlab::problems::EqualMultisets(m, n, rng)
              : rstlab::problems::PerturbedMultisets(m, n, 1, rng);
    const bool truth = rstlab::problems::RefMultisetEquality(instance);
    std::cout << "--- instance: " << (equal ? "equal" : "perturbed")
              << " (oracle says " << (truth ? "YES" : "NO") << "), N = "
              << instance.N() << " ---\n";

    // 1. Fingerprinting (Theorem 8(a)).
    {
      rstlab::stmodel::StContext ctx(1);
      ctx.LoadInput(instance.Encode());
      auto outcome =
          rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
      if (!outcome.ok()) {
        std::cerr << "fingerprint failed: " << outcome.status() << "\n";
        return 1;
      }
      std::cout << "  fingerprint   : "
                << (outcome.value().accepted ? "accept" : "reject")
                << "   [" << ctx.Report().ToString()
                << "]  (p1=" << outcome.value().params.p1
                << ", p2=" << outcome.value().params.p2
                << ", x=" << outcome.value().params.x << ")\n";
    }

    // 2. Deterministic sorting decider (Corollary 7).
    {
      rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
      ctx.LoadInput(instance.Encode());
      auto decided = rstlab::sorting::DecideOnTapes(
          rstlab::problems::Problem::kMultisetEquality, ctx);
      if (!decided.ok()) {
        std::cerr << "decider failed: " << decided.status() << "\n";
        return 1;
      }
      std::cout << "  deterministic : "
                << (decided.value() ? "accept" : "reject") << "   ["
                << ctx.Report().ToString() << "]\n";
    }
    std::cout << "\n";
  }

  std::cout
      << "Note the scan columns: r = 2 for the randomized tester vs\n"
      << "r = Theta(log N) for the deterministic decider — and by\n"
      << "Theorem 6 no machine with o(log N) scans and sublinear memory\n"
      << "can close that gap without accepting false positives.\n";
  return 0;
}
