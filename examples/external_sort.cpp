// Reversal-bounded external merge sort (the Corollary 7 / Corollary 10
// workhorse): sort a tape of records and watch the scan bill grow
// logarithmically.
//
//   build/examples/external_sort [fields] [bits]

#include <cstdlib>
#include <iostream>

#include "core/rstlab.h"

int main(int argc, char** argv) {
  const std::size_t fields =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::size_t bits =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;
  rstlab::Rng rng(13);

  std::string input;
  for (std::size_t i = 0; i < fields; ++i) {
    input += rstlab::BitString::Random(bits, rng).ToString();
    input += '#';
  }

  rstlab::stmodel::StContext ctx(3);
  ctx.LoadInput(input);
  rstlab::sorting::SortStats stats;
  rstlab::Status status =
      rstlab::sorting::SortFieldsOnTapes(ctx, 0, 1, 2, &stats);
  if (!status.ok()) {
    std::cerr << "sort failed: " << status << "\n";
    return 1;
  }

  rstlab::tape::Tape& t = ctx.tape(0);
  t.Seek(0);
  std::cout << "sorted " << stats.num_fields << " records of " << bits
            << " bits in " << stats.passes << " merge passes\n"
            << "resources: " << ctx.Report().ToString() << "\n";
  if (fields <= 32) {
    std::cout << "output:";
    while (!rstlab::stmodel::AtEnd(t)) {
      std::cout << " " << rstlab::stmodel::ReadField(t);
    }
    std::cout << "\n";
  }

  std::cout << "\nscan bill per input size (Theta(log N), Corollary 7):\n";
  for (std::size_t f : {64u, 256u, 1024u, 4096u}) {
    std::string in;
    for (std::size_t i = 0; i < f; ++i) {
      in += rstlab::BitString::Random(bits, rng).ToString();
      in += '#';
    }
    rstlab::stmodel::StContext c(3);
    c.LoadInput(in);
    if (!rstlab::sorting::SortFieldsOnTapes(c, 0, 1, 2).ok()) return 1;
    std::cout << "  N = " << in.size() << "  ->  "
              << c.Report().ToString() << "\n";
  }
  return 0;
}
