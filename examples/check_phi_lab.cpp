// CHECK-phi laboratory: the hard-instance family of Lemma 22, end to
// end — interval structure, the coincidence of all four problems, the
// SHORT reduction, and every decider in the library agreeing on it.
//
//   build/examples/check_phi_lab [m] [n]
//
// (The paper fixes n = m^3; pass a third argument of 0 to use that —
// note m = 8 already means 512-bit values.)

#include <cstdlib>
#include <iostream>

#include "core/rstlab.h"

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4 * m;
  if (n == 0) n = m * m * m;  // the paper's regime
  rstlab::Rng rng(99);

  const auto phi = rstlab::permutation::BitReversalPermutation(m);
  rstlab::problems::CheckPhi problem(m, n, phi);
  std::cout << "CHECK-phi with m = " << m << ", n = " << n
            << ", phi = bit-reversal (sortedness "
            << rstlab::permutation::Sortedness(phi) << " <= 2*sqrt(m)-1)"
            << "\n\n";

  for (const bool yes : {true, false}) {
    const rstlab::problems::Instance inst =
        yes ? problem.RandomYesInstance(rng)
            : problem.RandomNoInstance(rng);
    std::cout << "--- " << (yes ? "YES" : "NO") << " instance (N = "
              << inst.N() << ") ---\n";
    if (n <= 16 && m <= 8) {
      std::cout << "  encoded: " << inst.Encode() << "\n";
    }
    std::cout << "  interval structure: v_i in I_phi(i):";
    for (std::size_t i = 0; i < std::min<std::size_t>(m, 8); ++i) {
      std::cout << " I" << problem.IntervalOf(inst.first[i]);
    }
    std::cout << "\n";

    // Theorem 6's pivot: on valid instances, CHECK-phi, SET-EQUALITY,
    // MULTISET-EQUALITY and CHECK-SORT all coincide.
    std::cout << "  CHECK-phi: " << (problem.Decide(inst) ? "yes" : "no")
              << "; coincides with SET-EQ/MULTISET-EQ/CHECK-SORT: "
              << (problem.CoincidesOnInstance(inst) ? "yes" : "NO")
              << "\n";

    // Every decider in the library.
    {
      rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
      ctx.LoadInput(inst.Encode());
      auto decided = rstlab::sorting::DecideOnTapes(
          rstlab::problems::Problem::kMultisetEquality, ctx);
      std::cout << "  deterministic decider: "
                << (decided.ok() && decided.value() ? "accept" : "reject")
                << "  [" << ctx.Report().ToString() << "]\n";
    }
    {
      rstlab::stmodel::StContext ctx(1);
      ctx.LoadInput(inst.Encode());
      auto outcome =
          rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
      std::cout << "  fingerprint tester   : "
                << (outcome.ok() && outcome.value().accepted ? "accept"
                                                             : "reject")
                << "  [" << ctx.Report().ToString() << "]\n";
    }

    // The Appendix E reduction to SHORT instances.
    rstlab::problems::ShortReduction reduction(problem);
    const rstlab::problems::Instance reduced = reduction.Reduce(inst);
    std::cout << "  SHORT reduction f(v): m' = " << reduced.m()
              << " records of " << reduction.record_bits()
              << " bits, N' = " << reduced.N() << "; answer preserved: "
              << (rstlab::problems::RefMultisetEquality(reduced) ==
                          problem.Decide(inst)
                      ? "yes"
                      : "NO")
              << "\n\n";
  }

  std::cout << "Theorem 6 says that on this instance family, any "
               "machine with o(log N) scans\nand O(N^(1/4)/log N) "
               "internal bits errs — even with one-sided randomness.\n";
  return 0;
}
