// Streaming relational algebra (Theorem 11): evaluate queries on a
// tuple stream with sorts and scans only, and watch the symmetric
// difference query decide SET-EQUALITY.
//
//   build/examples/streaming_relalg [tuples]

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/rstlab.h"

namespace {

using rstlab::query::Rel;
using rstlab::query::Relation;

void ShowQuery(const char* label, const rstlab::query::RelAlgExprPtr& q,
               const std::map<std::string, Relation>& db) {
  rstlab::stmodel::StContext ctx(rstlab::query::kRelAlgTapes);
  ctx.LoadInput(rstlab::query::EncodeDatabaseStream(db));
  auto streamed = rstlab::query::EvaluateOnTapes(q, ctx);
  auto reference = rstlab::query::EvaluateInMemory(q, db);
  if (!streamed.ok() || !reference.ok()) {
    std::cerr << label << ": evaluation failed\n";
    return;
  }
  std::cout << "  " << label << ": " << streamed.value().tuples.size()
            << " tuples   [" << ctx.Report().ToString() << "]  "
            << (streamed.value() == reference.value()
                    ? "(matches in-memory evaluator)"
                    : "(MISMATCH!)")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t tuples =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  rstlab::Rng rng(7);

  // Two unary relations of random 24-bit values, sharing roughly half
  // their tuples.
  std::map<std::string, Relation> db;
  db["R1"].name = "R1";
  db["R2"].name = "R2";
  db["R1"].arity = db["R2"].arity = 1;
  for (std::size_t i = 0; i < tuples; ++i) {
    const std::string v = rstlab::BitString::Random(24, rng).ToString();
    db["R1"].Insert({v});
    if (i % 2 == 0) {
      db["R2"].Insert({v});
    } else {
      db["R2"].Insert({rstlab::BitString::Random(24, rng).ToString()});
    }
  }
  std::cout << "R1: " << db["R1"].tuples.size() << " tuples, R2: "
            << db["R2"].tuples.size() << " tuples; stream length "
            << rstlab::query::EncodeDatabaseStream(db).size()
            << " characters\n\n";

  using rstlab::query::Difference;
  using rstlab::query::Intersection;
  using rstlab::query::Project;
  using rstlab::query::Union;

  ShowQuery("R1 - R2            ", Difference(Rel("R1"), Rel("R2")), db);
  ShowQuery("R2 - R1            ", Difference(Rel("R2"), Rel("R1")), db);
  ShowQuery("R1 ∩ R2            ", Intersection(Rel("R1"), Rel("R2")), db);
  ShowQuery("R1 ∪ R2            ", Union(Rel("R1"), Rel("R2")), db);
  ShowQuery("(R1-R2) ∪ (R2-R1)  ",
            rstlab::query::SymmetricDifferenceQuery(), db);

  std::cout << "\nNow make R2 a copy of R1 — the symmetric difference "
               "empties out,\nwhich is how Theorem 11(b) reduces "
               "SET-EQUALITY to query evaluation:\n\n";
  db["R2"] = db["R1"];
  db["R2"].name = "R2";
  ShowQuery("(R1-R2) ∪ (R2-R1)  ",
            rstlab::query::SymmetricDifferenceQuery(), db);
  return 0;
}
