// Loopback probe for a running `rstlab serve` daemon: GET /healthz,
// then POST one fingerprint experiment, and verify both answers. Exit 0
// iff the daemon is healthy — the serve smoke test and the CI smoke job
// drive this instead of depending on curl + jq.
//
//   serve_probe <port> [requests]
//
// With a request count the probe issues that many sequential
// experiments over one keep-alive connection (a miniature load check).

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/client.h"

namespace {

int Fail(const std::string& what, const rstlab::Status& status) {
  std::cerr << "serve_probe: " << what << ": " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: serve_probe <port> [requests]\n";
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(
      std::strtoul(argv[1], nullptr, 10));
  const std::uint64_t requests =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  rstlab::serve::HttpClient client;
  const rstlab::Status connected = client.Connect(port);
  if (!connected.ok()) return Fail("connect", connected);

  auto health = client.Request("GET", "/healthz");
  if (!health.ok()) return Fail("healthz", health.status());
  if (health.value().status != 200 ||
      health.value().body.find("\"status\":\"ok\"") == std::string::npos) {
    std::cerr << "serve_probe: unexpected healthz answer ("
              << health.value().status << "): " << health.value().body;
    return 1;
  }

  std::string checksum;
  for (std::uint64_t i = 0; i < requests; ++i) {
    const std::string body =
        "{\"request_id\":\"probe-" + std::to_string(i) +
        "\",\"problem\":\"fingerprint\",\"generator\":"
        "{\"kind\":\"equal\",\"m\":32,\"n\":16,\"seed\":7},"
        "\"trials\":8,\"seed\":11}";
    auto response = client.Request("POST", "/v1/experiment", body);
    if (!response.ok()) return Fail("experiment", response.status());
    if (response.value().status != 200) {
      std::cerr << "serve_probe: experiment answered "
                << response.value().status << ": "
                << response.value().body;
      return 1;
    }
    const std::string& frame = response.value().body;
    const std::size_t at = frame.find("\"checksum\":");
    if (at == std::string::npos) {
      std::cerr << "serve_probe: result frame has no checksum: " << frame;
      return 1;
    }
    // Identical experiment parameters must produce identical checksums
    // — the determinism contract, observable even from a probe.
    const std::string value = frame.substr(at, frame.find(',', at) - at);
    if (checksum.empty()) {
      checksum = value;
    } else if (checksum != value) {
      std::cerr << "serve_probe: checksum drift: " << checksum
                << " vs " << value << "\n";
      return 1;
    }
  }
  std::cout << "serve_probe: ok (" << requests << " request(s), "
            << checksum << ")\n";
  return 0;
}
