// rstlab command-line tool: generate instances, run every decider, sort
// tapes and evaluate XPath queries from the shell.
//
//   rstlab generate <equal|perturbed|sorted|misordered|disjoint|
//                    checkphi-yes|checkphi-no> <m> <n> [seed]
//   rstlab decide <set-equality|multiset-equality|check-sort|disjoint>
//                 [file|-]
//   rstlab fingerprint [file|-] [seed]
//   rstlab sort [file|-]
//   rstlab xpath "<query>" [xml-file|-]
//
// Instances use the paper's v1#...#vm#v'1#...#v'm# encoding; '-' (the
// default) reads from stdin. Every decision prints the verdict plus the
// run's resource bill in the paper's (r, s, t) cost units.
//
// Every command also honors --tape-backend={mem,file} and
// --cache-blocks=K (and the RSTLAB_TAPE_BACKEND / RSTLAB_CACHE_BLOCKS
// environment variables): with the file backend, tapes live in
// checksummed block files on disk and only K blocks per tape stay in
// RAM, so deciders run on inputs larger than memory.
// --readahead-blocks=K tunes the file backend's sequential prefetch.
//
// The sorting commands additionally honor --sort-threads=T,
// --merge-fanout=K and --run-length=L (RSTLAB_SORT_THREADS /
// RSTLAB_MERGE_FANOUT / RSTLAB_RUN_LENGTH): fanout >= 2 routes every
// decider sort through the parallel k-way external merge sort, whose
// measured (r, s) bill is identical at every thread count.

#include <poll.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/growth.h"
#include "check/registry.h"
#include "check/sort_certificate.h"
#include "conform/harness.h"
#include "conform/oracle.h"
#include "core/rstlab.h"
#include "extmem/storage.h"
#include "machine/turing_machine.h"
#include "query/engine/shared_scan.h"
#include "query/workload.h"
#include "serve/server.h"
#include "serve/shutdown.h"
#include "sorting/parallel_sort.h"
#include "sorting/sort_config.h"
#include "util/simd.h"

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
      << "  rstlab generate <kind> <m> <n> [seed]   kinds: equal,"
         " perturbed, sorted,\n"
      << "                                          misordered, disjoint,"
         " checkphi-yes, checkphi-no,\n"
      << "                                          relpair, xmlpair"
         " (query workloads:\n"
      << "                                          m per side, n"
         " perturbations)\n"
      << "  rstlab decide <problem> [file|-]        problems:"
         " set-equality, multiset-equality,\n"
      << "                                          check-sort, disjoint\n"
      << "  rstlab fingerprint [file|-] [seed]\n"
      << "  rstlab sort [file|-]\n"
      << "  rstlab xpath \"<query>\" [xml-file|-]\n"
      << "  rstlab query <plans> [file|-] [--xml] [--threads=T]"
         " [--admit]\n"
      << "               [--unique-keys] [--explain]\n"
      << "                                          streaming query"
         " engine: plans\n"
      << "                                          (comma-separated:"
         " scan, union, diff,\n"
      << "                                          intersect, symdiff)"
         " share ONE input\n"
      << "                                          pass; --xml reads a"
         " Section 4\n"
      << "                                          document; --admit"
         " gates every plan\n"
      << "                                          on its Theorem 11"
         " envelope (RST018)\n"
      << "  rstlab check [machine|all] [--runs=K] [--symbolic]"
         " [--check-n-sweep]\n"
      << "                                          static analysis of"
         " every shipped\n"
      << "                                          paper/zoo machine;"
         " exit 1 on errors.\n"
      << "                                          --symbolic prints"
         " inferred growth\n"
      << "                                          classes (and the"
         " k-way sort\n"
      << "                                          certificate);"
         " --check-n-sweep\n"
      << "                                          re-verifies bounds"
         " at N=2^8..2^24\n"
      << "  rstlab conform [suite|all] [--seed=S] [--cases=K]\n"
      << "                 [--replay=suite:seed:index] [--corpus=DIR]"
         " [--selftest]\n"
      << "                                          differential"
         " conformance oracles;\n"
      << "                                          failures are shrunk"
         " and replayable\n"
      << "  rstlab serve [--port=P] [--threads=T] [--max-inflight=K]\n"
      << "               [--max-connections=C] [--cache-entries=E]\n"
      << "               [--max-generator-cells=G]\n"
      << "                                          experiment daemon on"
         " 127.0.0.1;\n"
      << "                                          SIGINT/SIGTERM drain"
         " and exit 0\n"
      << "common flags (any command):\n"
      << "  --tape-backend=<mem|file>               mem (default) keeps"
         " tapes in RAM;\n"
      << "                                          file runs them"
         " out-of-core\n"
      << "  --cache-blocks=<K>                      per-tape cache"
         " budget (file backend)\n"
      << "  --readahead-blocks=<K>                  blocks prefetched"
         " ahead on scans\n"
      << "  --sort-threads=<T>                      worker threads for"
         " the k-way sort\n"
      << "  --merge-fanout=<K>                      runs merged per"
         " group (>=2 enables\n"
      << "                                          the parallel k-way"
         " sort path)\n"
      << "  --run-length=<L>                        fields per formation"
         " run\n"
      << "  --simd=<off|4|8|auto>                   lane width for the"
         " batched\n"
      << "                                          fingerprint engine"
         " (RSTLAB_SIMD)\n";
  return 2;
}

// Rejects any remaining `--flag` the subcommand does not define. The
// global parsers (backend/sort/simd) already stripped theirs, so by the
// time a subcommand sees a `--` argument it is either in that
// subcommand's own vocabulary or a typo — and a typo silently consumed
// as a positional argument (a file name, a selector) is worse than an
// error.
bool RejectUnknownFlags(const char* command,
                        const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << " for rstlab " << command
                << "\n";
      return true;
    }
  }
  return false;
}

std::string ReadInput(const std::string& source) {
  if (source == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    std::string text = buffer.str();
    // Strip a trailing newline from interactive input.
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    return text;
  }
  std::ifstream file(source);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

int Generate(const std::vector<std::string>& args) {
  if (RejectUnknownFlags("generate", args)) return Usage();
  if (args.size() < 3) return Usage();
  const std::string& kind = args[0];
  const std::size_t m = std::strtoull(args[1].c_str(), nullptr, 10);
  const std::size_t n = std::strtoull(args[2].c_str(), nullptr, 10);
  const std::uint64_t seed =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 1;
  if (kind == "relpair" || kind == "xmlpair") {
    // Query-engine workloads: relation pairs / Section 4 XML documents
    // that agree on all but n elements, with exact ground truth baked
    // into the generator (see src/query/workload.h). m sizes each side.
    if (kind == "relpair") {
      rstlab::query::RelationPairSpec spec;
      spec.seed = seed;
      spec.num_tuples = m;
      spec.perturbations = n;
      std::cout << rstlab::query::MakeRelationPair(spec).stream << "\n";
    } else {
      rstlab::query::XmlWorkloadSpec spec;
      spec.seed = seed;
      spec.set1_values = m;
      spec.set2_values = m;
      spec.perturbations = n;
      std::cout << rstlab::query::MakeXmlWorkload(spec).document << "\n";
    }
    return 0;
  }
  rstlab::Rng rng(seed);
  rstlab::problems::Instance instance;
  if (kind == "equal") {
    instance = rstlab::problems::EqualMultisets(m, n, rng);
  } else if (kind == "perturbed") {
    instance = rstlab::problems::PerturbedMultisets(m, n, 1, rng);
  } else if (kind == "sorted") {
    instance = rstlab::problems::SortedPair(m, n, rng);
  } else if (kind == "misordered") {
    instance = rstlab::problems::MisorderedPair(m, n, rng);
  } else if (kind == "disjoint") {
    instance = rstlab::problems::DisjointSets(m, n, rng);
  } else if (kind == "checkphi-yes" || kind == "checkphi-no") {
    rstlab::problems::CheckPhi problem(
        m, n, rstlab::permutation::BitReversalPermutation(m));
    instance = kind == "checkphi-yes" ? problem.RandomYesInstance(rng)
                                      : problem.RandomNoInstance(rng);
  } else {
    return Usage();
  }
  std::cout << instance.Encode() << "\n";
  return 0;
}

int Decide(const std::vector<std::string>& args) {
  if (RejectUnknownFlags("decide", args)) return Usage();
  if (args.empty()) return Usage();
  const std::string& problem_name = args[0];
  const std::string source = args.size() > 1 ? args[1] : "-";
  const std::string encoded = ReadInput(source);

  rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
  ctx.LoadInput(encoded);
  rstlab::Result<bool> verdict = false;
  if (problem_name == "set-equality") {
    verdict = rstlab::sorting::DecideOnTapes(
        rstlab::problems::Problem::kSetEquality, ctx);
  } else if (problem_name == "multiset-equality") {
    verdict = rstlab::sorting::DecideOnTapes(
        rstlab::problems::Problem::kMultisetEquality, ctx);
  } else if (problem_name == "check-sort") {
    verdict = rstlab::sorting::DecideOnTapes(
        rstlab::problems::Problem::kCheckSort, ctx);
  } else if (problem_name == "disjoint") {
    verdict = rstlab::sorting::DecideDisjointOnTapes(ctx);
  } else {
    return Usage();
  }
  if (!verdict.ok()) {
    std::cerr << "error: " << verdict.status() << "\n";
    return 1;
  }
  std::cout << (verdict.value() ? "yes" : "no") << "  ["
            << ctx.Report().ToString() << "]\n";
  return 0;
}

int Fingerprint(const std::vector<std::string>& args) {
  if (RejectUnknownFlags("fingerprint", args)) return Usage();
  const std::string source = args.empty() ? "-" : args[0];
  const std::uint64_t seed =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 1;
  rstlab::Rng rng(seed);
  rstlab::stmodel::StContext ctx(1);
  ctx.LoadInput(ReadInput(source));
  auto outcome = rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
  if (!outcome.ok()) {
    std::cerr << "error: " << outcome.status() << "\n";
    return 1;
  }
  std::cout << (outcome.value().accepted ? "accept" : "reject")
            << "  [" << ctx.Report().ToString()
            << "]  (p1=" << outcome.value().params.p1
            << ", p2=" << outcome.value().params.p2
            << ", x=" << outcome.value().params.x << ")\n";
  return 0;
}

int Sort(const std::vector<std::string>& args) {
  if (RejectUnknownFlags("sort", args)) return Usage();
  const std::string source = args.empty() ? "-" : args[0];
  rstlab::stmodel::StContext ctx(3);
  ctx.LoadInput(ReadInput(source));
  rstlab::sorting::SortStats stats;
  rstlab::Status status = rstlab::sorting::SortForDecider(ctx, 0, 1, 2, &stats);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  rstlab::tape::Tape& t = ctx.tape(0);
  t.Seek(0);
  for (std::size_t i = 0; i < stats.num_fields; ++i) {
    std::cout << rstlab::stmodel::ReadField(t) << "#";
  }
  std::cout << "\n" << stats.passes << " passes  ["
            << ctx.Report().ToString() << "]\n";
  return 0;
}

int XPath(const std::vector<std::string>& args) {
  if (RejectUnknownFlags("xpath", args)) return Usage();
  if (args.empty()) return Usage();
  auto query = rstlab::query::ParseXPath(args[0]);
  if (!query.ok()) {
    std::cerr << "query error: " << query.status() << "\n";
    return 1;
  }
  const std::string source = args.size() > 1 ? args[1] : "-";
  auto doc = rstlab::query::ParseXml(ReadInput(source));
  if (!doc.ok()) {
    std::cerr << "document error: " << doc.status() << "\n";
    return 1;
  }
  const auto selected =
      rstlab::query::EvalPath(*doc.value(), query.value());
  std::cout << selected.size() << " node(s) selected\n";
  for (const auto* node : selected) {
    std::cout << "<" << node->name << ">: " << node->StringValue()
              << "\n";
  }
  return 0;
}

// The streaming query engine from the shell: every named plan runs
// over ONE shared pass of the input stream (or XML document), each
// with its own certified pipeline and (r, s) bill.
int Query(const std::vector<std::string>& args) {
  rstlab::query::engine::SharedScanOptions options;
  bool explain = false;
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    if (arg == "--xml") {
      options.xml = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.config.threads =
          std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg == "--admit") {
      options.admit = true;
    } else if (arg == "--unique-keys") {
      options.unique_join_keys = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << " for rstlab query\n";
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) return Usage();

  // Comma-separated plan names over the two input relations — the
  // stream's R1/R2 lanes, or the document's set1/set2 lanes with --xml.
  const std::string a = options.xml ? "set1" : "R1";
  const std::string b = options.xml ? "set2" : "R2";
  std::vector<rstlab::query::engine::QueryRequest> requests;
  std::string names = positional[0];
  while (!names.empty()) {
    const std::size_t comma = names.find(',');
    const std::string name = names.substr(0, comma);
    names = comma == std::string::npos ? "" : names.substr(comma + 1);
    rstlab::query::RelAlgExprPtr plan;
    if (name == "scan") {
      plan = rstlab::query::Rel(a);
    } else if (name == "union") {
      plan = rstlab::query::Union(rstlab::query::Rel(a),
                                  rstlab::query::Rel(b));
    } else if (name == "diff") {
      plan = rstlab::query::Difference(rstlab::query::Rel(a),
                                       rstlab::query::Rel(b));
    } else if (name == "intersect") {
      plan = rstlab::query::Intersection(rstlab::query::Rel(a),
                                         rstlab::query::Rel(b));
    } else if (name == "symdiff") {
      plan = rstlab::query::SymmetricDifferenceQuery(a, b);
    } else {
      std::cerr << "unknown plan \"" << name
                << "\" (scan, union, diff, intersect, symdiff)\n";
      return Usage();
    }
    requests.push_back({plan, name});
  }

  const std::string source = positional.size() > 1 ? positional[1] : "-";
  rstlab::stmodel::StContext ctx(1);
  ctx.LoadInput(ReadInput(source));
  auto outcomes =
      rstlab::query::engine::ExecuteSharedScan(ctx, requests, options);
  if (!outcomes.ok()) {
    std::cerr << "error: " << outcomes.status() << "\n";
    return 1;
  }
  bool failed = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& outcome = outcomes.value()[i];
    if (!outcome.status.ok()) {
      std::cout << requests[i].label << ": error: " << outcome.status
                << "\n";
      failed = true;
      continue;
    }
    std::cout << requests[i].label << ": "
              << outcome.result.tuples.size() << " tuple(s)  ["
              << outcome.cost.ToString() << "]\n";
    if (explain) {
      std::cout << "  plan " << outcome.plan << "\n"
                << "  certificate " << outcome.certificate.ToString()
                << "\n";
    }
  }
  std::cout << "shared input pass  [" << ctx.Report().ToString() << "]\n";
  return failed ? 1 : 0;
}

// Re-verifies one machine's symbolic certificate across the N sweep
// 2^8 .. 2^24 (doubling): BoundExpr::Eval must be monotone in N, and
// when the machine declares a class the inferred bound must stay
// inside the declared envelope at every swept N — the single-point
// RST010/RST011 check repeated at seventeen sizes. Returns the number
// of failures printed.
std::size_t SweepSymbolicBounds(const rstlab::check::CheckedMachine& entry,
                                const rstlab::check::Analysis& analysis) {
  std::size_t failures = 0;
  const rstlab::check::BoundExpr& r = analysis.resources.scan_bound;
  const rstlab::check::BoundExpr& s =
      analysis.resources.total_internal_cells;
  std::uint64_t prev_r = 0;
  std::uint64_t prev_s = 0;
  for (std::size_t n = std::size_t{1} << 8; n <= (std::size_t{1} << 24);
       n <<= 1) {
    const std::uint64_t rn = r.Eval(n);
    const std::uint64_t sn = s.Eval(n);
    if (rn < prev_r || sn < prev_s) {
      std::cout << "  sweep N=" << n << ": Eval is not monotone (r "
                << prev_r << " -> " << rn << ", s " << prev_s << " -> "
                << sn << ")\n";
      ++failures;
    }
    prev_r = rn;
    prev_s = sn;
    if (!entry.options.declared.has_value()) continue;
    const rstlab::core::ResourceClass& declared = *entry.options.declared;
    if (!r.unbounded() && rn > declared.r_of_n(n)) {
      std::cout << "  sweep N=" << n << ": inferred scan bound "
                << r.ToString() << " = " << rn
                << " exceeds declared r(N) = " << declared.r_of_n(n)
                << " of " << declared.name << "\n";
      ++failures;
    }
    if (!s.unbounded() && sn > declared.s_of_n(n)) {
      std::cout << "  sweep N=" << n << ": inferred internal-space bound "
                << s.ToString() << " = " << sn
                << " exceeds declared s(N) = " << declared.s_of_n(n)
                << " of " << declared.name << "\n";
      ++failures;
    }
  }
  return failures;
}

// Runs the static analyzer over the shipped machine registry, then —
// as the runtime half of the contract — replays each machine's sample
// inputs under random choices and asserts the measured RunCosts never
// exceed the statically certified bounds (RST015 otherwise).
// --symbolic additionally prints each machine's inferred growth
// classes plus the symbolic k-way sort certificate; --check-n-sweep
// re-verifies every symbolic bound across N = 2^8 .. 2^24.
int Check(const std::vector<std::string>& args) {
  std::string selector = "all";
  std::size_t runs = 16;
  bool symbolic = false;
  bool n_sweep = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--symbolic") {
      symbolic = true;
    } else if (arg == "--check-n-sweep") {
      n_sweep = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << " for rstlab check\n";
      return Usage();
    } else {
      selector = arg;
    }
  }

  bool matched = false;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  rstlab::Rng rng(7);
  for (const rstlab::check::CheckedMachine& entry :
       rstlab::check::AllCheckedMachines()) {
    if (selector != "all" && selector != entry.name) continue;
    matched = true;
    const rstlab::check::Analysis analysis =
        rstlab::check::Analyze(entry.spec, entry.options);
    errors += analysis.diagnostics.num_errors();
    warnings += analysis.diagnostics.num_warnings();
    std::cout << entry.name << ": "
              << (analysis.clean() ? "ok" : "FAIL") << "  [static r<="
              << analysis.resources.scan_bound.ToString() << " s<="
              << analysis.resources.total_internal_cells.ToString()
              << " t=" << entry.spec.num_external_tapes << "]";
    if (entry.options.declared.has_value()) {
      std::cout << "  declared " << entry.options.declared->name;
    }
    std::cout << "\n";
    if (symbolic) {
      std::cout << "  growth: r "
                << rstlab::check::GrowthClassName(
                       rstlab::check::GrowthOf(
                           analysis.resources.scan_bound))
                << ", s "
                << rstlab::check::GrowthClassName(
                       rstlab::check::GrowthOf(
                           analysis.resources.total_internal_cells))
                << "\n";
    }
    if (n_sweep) errors += SweepSymbolicBounds(entry, analysis);
    const std::string report = analysis.diagnostics.ToString();
    if (!report.empty()) std::cout << report;

    // Runtime certificate hook over the sample inputs.
    auto tm = rstlab::machine::TuringMachine::Create(entry.spec);
    if (!tm.ok()) {
      std::cout << "  executor rejects spec: " << tm.status() << "\n";
      ++errors;
      continue;
    }
    for (const std::string& input : entry.sample_inputs) {
      for (std::size_t i = 0; i < runs; ++i) {
        const rstlab::machine::RunResult run =
            tm.value().RunRandomized(input, rng, 10000);
        const rstlab::Status certified =
            rstlab::check::CheckCostsAgainstCertificate(
                run.costs, analysis.resources, input.size());
        if (!certified.ok()) {
          std::cout << "  run on \"" << input << "\": " << certified
                    << "\n";
          ++errors;
        }
      }
    }
  }
  for (const rstlab::check::CheckedListMachine& entry :
       rstlab::check::AllCheckedListMachines()) {
    if (selector != "all" && selector != entry.name) continue;
    matched = true;
    const rstlab::check::Diagnostics diag =
        rstlab::check::CheckListMachine(*entry.program, entry.options);
    errors += diag.num_errors();
    warnings += diag.num_warnings();
    std::cout << entry.name << ": " << (diag.clean() ? "ok" : "FAIL");
    if (entry.options.declared.has_value()) {
      std::cout << "  declared " << entry.options.declared->name;
    }
    std::cout << "\n";
    const std::string report = diag.ToString();
    if (!report.empty()) std::cout << report;
  }
  // The symbolic k-way sort certificate: Corollary 7's membership in
  // ST(O(log N), O(1), 2) at the default merge geometry, checked as
  // growth classes — O(log N) scans and O(log N) internal bits, i.e. a
  // constant number of machine words. Any stronger growth is an error.
  if (symbolic && (selector == "all" || selector == "kway-sort")) {
    matched = true;
    const rstlab::sorting::SortConfig config;
    const rstlab::check::SymbolicSortCertificate cert =
        rstlab::check::CertifyKWaySortSymbolic(/*max_field_len=*/64,
                                               /*fanout=*/16,
                                               config.run_length);
    const rstlab::check::GrowthClass r_growth =
        rstlab::check::GrowthOf(cert.scan_bound);
    const rstlab::check::GrowthClass s_growth =
        rstlab::check::GrowthOf(cert.internal_bits);
    const bool inside =
        r_growth <= rstlab::check::GrowthClass::kLogarithmic &&
        s_growth <= rstlab::check::GrowthClass::kLogarithmic;
    std::cout << "kway-sort: " << (inside ? "ok" : "FAIL")
              << "  [symbolic " << cert.ToString() << "]  growth: r "
              << rstlab::check::GrowthClassName(r_growth) << ", s(bits) "
              << rstlab::check::GrowthClassName(s_growth)
              << "  declared ST(O(log N), O(1), 2)\n";
    if (!inside) ++errors;
    if (n_sweep) {
      std::uint64_t prev_r = 0;
      std::uint64_t prev_s = 0;
      for (std::size_t n = std::size_t{1} << 8;
           n <= (std::size_t{1} << 24); n <<= 1) {
        const std::uint64_t rn = cert.scan_bound.Eval(n);
        const std::uint64_t sn = cert.internal_bits.Eval(n);
        if (rn < prev_r || sn < prev_s) {
          std::cout << "  sweep N=" << n
                    << ": Eval is not monotone (r " << prev_r << " -> "
                    << rn << ", s " << prev_s << " -> " << sn << ")\n";
          ++errors;
        }
        prev_r = rn;
        prev_s = sn;
      }
    }
  }
  if (!matched) {
    std::cerr << "unknown machine \"" << selector << "\"\n";
    return 2;
  }
  std::cout << errors << " error(s), " << warnings << " warning(s)\n";
  return errors == 0 ? 0 : 1;
}

// Runs the differential conformance harness: every named suite for K
// cases under one seed, after replaying the checked-in corpus (when a
// --corpus directory is given) and/or one explicit --replay triple.
// Output is deterministic — two invocations at equal flags are
// byte-identical — so CI can diff it. Exit 1 on any failure.
int Conform(const std::vector<std::string>& args) {
  std::string selector = "all";
  std::uint64_t seed = 1;
  std::uint64_t cases = 100;
  std::string replay;
  std::string corpus;
  bool selftest = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--cases=", 0) == 0) {
      cases = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay = arg.substr(9);
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus = arg.substr(9);
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown conform flag " << arg << "\n";
      return 2;
    } else {
      selector = arg;
    }
  }

  using rstlab::conform::CaseId;
  using rstlab::conform::CaseOutcome;

  std::size_t failures = 0;

  // One explicit replay: run just that case, report, and stop.
  if (!replay.empty()) {
    rstlab::Result<CaseId> id = CaseId::Parse(replay);
    if (!id.ok()) {
      std::cerr << "error: " << id.status() << "\n";
      return 2;
    }
    rstlab::Result<CaseOutcome> outcome =
        rstlab::conform::ReplayCase(id.value());
    if (!outcome.ok()) {
      std::cerr << "error: " << outcome.status() << "\n";
      return 2;
    }
    std::cout << id.value().ToString() << ": "
              << (outcome.value().passed ? "ok" : "FAIL") << "\n";
    if (!outcome.value().passed) {
      std::cout << "  " << outcome.value().failure << "\n"
                << "  counterexample: " << outcome.value().counterexample
                << "\n";
      return 1;
    }
    return 0;
  }

  // Corpus replay first: every counterexample the harness ever found
  // stays a permanent regression test.
  if (!corpus.empty()) {
    rstlab::Result<std::vector<CaseId>> ids =
        rstlab::conform::LoadCorpusDir(corpus);
    if (!ids.ok()) {
      std::cerr << "error: " << ids.status() << "\n";
      return 2;
    }
    for (const CaseId& id : ids.value()) {
      if (selector != "all" && selector != id.suite) continue;
      rstlab::Result<CaseOutcome> outcome =
          rstlab::conform::ReplayCase(id);
      if (!outcome.ok()) {
        std::cerr << "error: " << outcome.status() << "\n";
        return 2;
      }
      std::cout << "corpus " << id.ToString() << ": "
                << (outcome.value().passed ? "ok" : "FAIL") << "\n";
      if (!outcome.value().passed) {
        std::cout << "  " << outcome.value().failure << "\n"
                  << "  counterexample: "
                  << outcome.value().counterexample << "\n";
        ++failures;
      }
    }
  }

  // Self-test: inject a known fault into every oracle and demand each
  // suite reports at least one shrunk, replayable failure. A suite
  // that stays green while its subject is broken is the real failure.
  if (selftest) {
    rstlab::conform::SetFaultInjection(true);
    std::size_t blind_suites = 0;
    bool matched = false;
    for (const rstlab::conform::Suite* suite :
         rstlab::conform::AllSuites()) {
      if (selector != "all" && selector != suite->name()) continue;
      matched = true;
      const rstlab::conform::SuiteReport report =
          rstlab::conform::RunSuite(*suite, seed, cases);
      std::cout << suite->name() << ": injected fault "
                << (report.passed() ? "NOT DETECTED" : "detected") << " ("
                << report.failures.size() << "/" << cases
                << " cases failed)\n";
      if (report.passed()) ++blind_suites;
    }
    rstlab::conform::SetFaultInjection(false);
    if (!matched) {
      std::cerr << "unknown conformance suite \"" << selector << "\"\n";
      return 2;
    }
    std::cout << blind_suites << " blind suite(s)\n";
    return blind_suites == 0 ? 0 : 1;
  }

  bool matched = false;
  for (const rstlab::conform::Suite* suite :
       rstlab::conform::AllSuites()) {
    if (selector != "all" && selector != suite->name()) continue;
    matched = true;
    const rstlab::conform::SuiteReport report =
        rstlab::conform::RunSuite(*suite, seed, cases);
    std::cout << report.ToString();
    failures += report.failures.size();
  }
  if (!matched) {
    std::cerr << "unknown conformance suite \"" << selector
              << "\"; available:\n";
    for (const rstlab::conform::Suite* suite :
         rstlab::conform::AllSuites()) {
      std::cerr << "  " << suite->name() << "  -  "
                << suite->description() << "\n";
    }
    return 2;
  }
  std::cout << failures << " failing case(s)\n";
  return failures == 0 ? 0 : 1;
}

// Runs the experiment daemon until SIGINT/SIGTERM, then drains every
// in-flight trial and exits 0 (the graceful-shutdown contract shared
// with the bench binaries).
int Serve(const std::vector<std::string>& args) {
  rstlab::serve::ServerOptions options;
  for (const std::string& arg : args) {
    if (arg.rfind("--port=", 0) == 0) {
      options.port = static_cast<std::uint16_t>(
          std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      options.max_inflight = std::strtoull(arg.c_str() + 15, nullptr, 10);
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      options.max_connections =
          std::strtoull(arg.c_str() + 18, nullptr, 10);
    } else if (arg.rfind("--cache-entries=", 0) == 0) {
      options.cache_entries = std::strtoull(arg.c_str() + 16, nullptr, 10);
    } else if (arg.rfind("--max-generator-cells=", 0) == 0) {
      options.max_generator_cells =
          std::strtoull(arg.c_str() + 22, nullptr, 10);
    } else {
      std::cerr << "unknown flag " << arg << " for rstlab serve\n";
      return Usage();
    }
  }

  rstlab::serve::ShutdownGuard shutdown;
  rstlab::serve::HttpServer server(options);
  const rstlab::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started << "\n";
    return 1;
  }
  std::cout << "rstlab serve listening on 127.0.0.1:" << server.port()
            << " (threads=" << options.threads
            << ", max-inflight=" << options.max_inflight << ")"
            << std::endl;

  pollfd waiter{shutdown.wait_fd(), POLLIN, 0};
  while (!shutdown.requested()) {
    ::poll(&waiter, 1, -1);
  }
  std::cout << "shutting down: draining in-flight experiments"
            << std::endl;
  server.Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rstlab::extmem::SetProcessStorageOptions(
      rstlab::extmem::ParseBackendFlags(&argc, argv));
  rstlab::sorting::SetProcessSortConfig(
      rstlab::sorting::ParseSortFlags(&argc, argv));
  rstlab::simd::ParseSimdFlag(&argc, argv);
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string command = args[0];
  args.erase(args.begin());
  if (command == "generate") return Generate(args);
  if (command == "decide") return Decide(args);
  if (command == "fingerprint") return Fingerprint(args);
  if (command == "sort") return Sort(args);
  if (command == "xpath") return XPath(args);
  if (command == "query") return Query(args);
  if (command == "check") return Check(args);
  if (command == "conform") return Conform(args);
  if (command == "serve") return Serve(args);
  std::cerr << "unknown subcommand \"" << command << "\"\n";
  return Usage();
}
