// Experiment E14 (Corollary 7 / Appendix E): the reduction f(v) from
// CHECK-phi to the SHORT problem variants.
//
// Paper rows reproduced:
//  * f(v) preserves the answer for all three SHORT problems;
//  * |f(v)| = Theta(|v|) (measured blow-up just above 5x);
//  * f runs in ST(O(1), O(log N), 2): constant scans, logarithmic
//    internal bits, measured on the metered tape context.

#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "permutation/phi.h"
#include "problems/check_phi.h"
#include "problems/reference.h"
#include "problems/short_reduction.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using namespace rstlab::problems;

void RunReductionTable() {
  Table table("E14: Appendix E reduction f(v) to SHORT instances",
              {"m", "n", "N", "N'", "blowup", "record_bits", "scans",
               "int.bits", "answers_preserved"});
  Rng rng(1414);
  for (std::size_t m : {4u, 8u, 16u, 32u}) {
    const std::size_t n = 4 * m;
    CheckPhi problem(m, n,
                     rstlab::permutation::BitReversalPermutation(m));
    ShortReduction reduction(problem);

    bool preserved = true;
    std::uint64_t scans = 0;
    std::size_t internal_bits = 0;
    std::size_t n_in = 0;
    std::size_t n_out = 0;
    for (bool yes : {true, false}) {
      const Instance inst = yes ? problem.RandomYesInstance(rng)
                                : problem.RandomNoInstance(rng);
      const Instance reduced = reduction.Reduce(inst);
      n_in = inst.N();
      n_out = reduced.N();
      for (Problem p : {Problem::kSetEquality,
                        Problem::kMultisetEquality,
                        Problem::kCheckSort}) {
        preserved = preserved && RefDecide(p, reduced) == yes;
      }
      rstlab::stmodel::StContext ctx(2);
      ctx.LoadInput(inst.Encode());
      if (!reduction.ReduceOnTapes(ctx).ok()) preserved = false;
      scans = ctx.Report().scan_bound;
      internal_bits = ctx.Report().internal_space;
    }
    table.AddRow(
        {std::to_string(m), std::to_string(n), std::to_string(n_in),
         std::to_string(n_out),
         FormatDouble(static_cast<double>(n_out) / n_in, 2),
         std::to_string(reduction.record_bits()), std::to_string(scans),
         std::to_string(internal_bits), preserved ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "  paper: |f(v)| = Theta(|v|), computable in"
               " ST(O(1), O(log N), 2); records of <= 5 log m"
               " <= 2 log m' bits\n\n";
}

void RunShortDeciderTable() {
  // Corollary 7 for the SHORT variants: with records of O(log m') bits,
  // the sort-based decider's record buffers shrink to O(log N), giving
  // the paper's ST(O(log N), O(log N), 3) profile end to end.
  Table table("E14b: deciding the reduced SHORT instances",
              {"m'", "N'", "record_bits", "scans", "int.bits",
               "log2(N')", "correct"});
  Rng rng(1415);
  for (std::size_t m : {8u, 16u, 32u, 64u}) {
    const std::size_t n = 4 * m;
    CheckPhi problem(m, n,
                     rstlab::permutation::BitReversalPermutation(m));
    ShortReduction reduction(problem);
    const Instance reduced =
        reduction.Reduce(problem.RandomYesInstance(rng));
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(reduced.Encode());
    auto decided = rstlab::sorting::DecideOnTapes(
        Problem::kMultisetEquality, ctx);
    const auto report = ctx.Report();
    table.AddRow(
        {std::to_string(reduced.m()), std::to_string(reduced.N()),
         std::to_string(reduction.record_bits()),
         std::to_string(report.scan_bound),
         std::to_string(report.internal_space),
         FormatDouble(std::log2(static_cast<double>(reduced.N())), 1),
         decided.ok() && decided.value() ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "  paper: SHORT versions are in"
               " ST(O(log N), O(log N), 3) via standard merge sort —"
               " int.bits tracks a small multiple of log2(N')\n\n";
}

void BM_ShortReductionHost(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  CheckPhi problem(m, 4 * m,
                   rstlab::permutation::BitReversalPermutation(m));
  ShortReduction reduction(problem);
  const Instance inst = problem.RandomYesInstance(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduction.Reduce(inst));
  }
}
BENCHMARK(BM_ShortReductionHost)->Arg(8)->Arg(32)->Arg(128);

void BM_ShortReductionTapes(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  CheckPhi problem(m, 4 * m,
                   rstlab::permutation::BitReversalPermutation(m));
  ShortReduction reduction(problem);
  const std::string encoded = problem.RandomYesInstance(rng).Encode();
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(2);
    ctx.LoadInput(encoded);
    benchmark::DoNotOptimize(reduction.ReduceOnTapes(ctx));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      encoded.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_ShortReductionTapes)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_short_reduction");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  RunReductionTable();
  RunShortDeciderTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
