// Experiment E5 (Remark 20): the bit-reversal permutation phi_m has
// sortedness <= 2*sqrt(m) - 1, while random permutations sit at
// ~2*sqrt(m) (and never below sqrt(m), by Erdos-Szekeres).
//
// The low sortedness of phi_m is the combinatorial engine of the
// Theorem 6 lower bound: a machine mixing information along t^{2r}
// monotone subsequences (Lemma 38) can reach only t^{2r} * 2*sqrt(m)
// of the m pairs it would need to compare.

#include <iostream>

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/experiment.h"
#include "obs/flags.h"
#include "permutation/phi.h"
#include "permutation/sortedness.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;

void RunSortednessTable() {
  Table table("E5: Remark 20 — sortedness of phi_m vs random",
              {"m", "sortedness(phi)", "bound 2*sqrt(m)-1",
               "random_perm", "sqrt(m)"});
  Rng rng(4242);
  for (std::size_t m : {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u,
                        65536u}) {
    const auto phi = rstlab::permutation::BitReversalPermutation(m);
    const std::size_t s_phi = rstlab::permutation::Sortedness(phi);
    const auto random_perm =
        rstlab::permutation::RandomPermutation(m, rng);
    const std::size_t s_rand =
        rstlab::permutation::Sortedness(random_perm);
    const double root = std::sqrt(static_cast<double>(m));
    table.AddRow({std::to_string(m), std::to_string(s_phi),
                  FormatDouble(2 * root - 1, 1), std::to_string(s_rand),
                  FormatDouble(root, 1)});
  }
  table.Print(std::cout);
  std::cout << "  paper: sortedness(phi_m) <= 2*sqrt(m)-1 (Remark 20);"
               " every permutation >= sqrt(m) (Erdos-Szekeres)\n\n";
}

void BM_Sortedness(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const auto phi = rstlab::permutation::BitReversalPermutation(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rstlab::permutation::Sortedness(phi));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      m * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_Sortedness)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BitReversalConstruction(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rstlab::permutation::BitReversalPermutation(m));
  }
}
BENCHMARK(BM_BitReversalConstruction)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_sortedness");
  RunSortednessTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
