// Experiment E8 (Lemma 34 + the Lemma 21 proof skeleton): constructing
// fooling inputs for an under-resourced comparison machine.
//
// The machine compares the pairs its two scans can align but can never
// bring positions 0 and m together. Following the proof of Lemma 21:
// collect accepted inputs, group them by run skeleton, pick two that
// differ only at the uncompared positions, cross them over (Lemma 34)
// — the result is an accepted input that violates the predicate the
// machine was supposed to decide.

#include <chrono>
#include <iostream>
#include <map>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "listmachine/analysis.h"
#include "listmachine/machines.h"
#include "listmachine/skeleton.h"
#include "obs/flags.h"
#include "parallel/bench_recorder.h"
#include "parallel/seed_sequence.h"
#include "parallel/trial_runner.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::Table;
using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;
using rstlab::parallel::SeedSequence;
using rstlab::parallel::TrialRunner;
using namespace rstlab::listmachine;

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void RunFoolingTable(TrialRunner& runner, BenchRecorder& recorder) {
  Table table("E8: Lemma 34 fooling-pair construction",
              {"m", "accepted_inputs", "skeleton_classes",
               "fooling_pairs_tried", "fooled", "all_predicted"});
  for (std::size_t m : {2u, 4u, 8u, 16u}) {
    ReverseCompareMachine machine(m, m);
    ListMachineExecutor exec(&machine);
    const std::vector<ChoiceId> choices(8 * m + 16, 0);
    const auto start = std::chrono::steady_clock::now();

    // Sample predicate-satisfying ("yes") inputs; all are accepted.
    // Inputs come in families sharing a "spine" (the positions the
    // machine CAN compare) and varying only the blind-spot value
    // v_0 = v'_0 — exactly the step-7 conditioning of the Lemma 21
    // proof ("fix v_2..v_m, vary v_1"). One trial = one family; the
    // merge appends per-chunk results in chunk order, so the accepted
    // list (and everything derived from it) is schedule-independent.
    struct FamilyTally {
      std::vector<std::pair<std::string, std::vector<std::uint64_t>>>
          found;  // (skeleton, accepted input)
      void Merge(const FamilyTally& o) {
        found.insert(found.end(), o.found.begin(), o.found.end());
      }
    };
    const std::uint64_t families = 10;
    const SeedSequence seeds(0xF001 + m);
    const FamilyTally family_tally = runner.RunSeeded<FamilyTally>(
        families, seeds,
        [&](std::uint64_t, Rng& rng, FamilyTally& local) {
          std::vector<std::uint64_t> base(2 * m);
          for (std::size_t j = 1; j < m; ++j) {
            base[j] = rng.UniformBelow(8);
          }
          for (std::size_t j = 1; j < m; ++j) base[m + j] = base[m - j];
          for (std::uint64_t blind = 0; blind < 6; ++blind) {
            std::vector<std::uint64_t> v = base;
            v[0] = blind;
            v[m] = blind;
            auto run = exec.RunWithChoices(v, choices, 1000000);
            if (!run.accepted) continue;
            local.found.emplace_back(BuildSkeleton(run).Serialize(),
                                     std::move(v));
          }
        });
    std::vector<std::vector<std::uint64_t>> accepted;
    std::map<std::string, std::vector<std::size_t>> by_skeleton;
    for (const auto& [skeleton, input] : family_tally.found) {
      by_skeleton[skeleton].push_back(accepted.size());
      accepted.push_back(input);
    }

    // Candidate pairs within a skeleton class that differ exactly at
    // the uncompared positions {0, m}; the crossover executions are
    // independent, so they form the second trial axis.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (const auto& [skel, indices] : by_skeleton) {
      for (std::size_t a = 0; a < indices.size(); ++a) {
        for (std::size_t b = a + 1; b < indices.size(); ++b) {
          const auto& v = accepted[indices[a]];
          const auto& w = accepted[indices[b]];
          bool differ_only_at_blind_spot = v[0] != w[0];
          for (std::size_t p = 0; p < 2 * m; ++p) {
            if (p == 0 || p == m) continue;
            if (v[p] != w[p]) differ_only_at_blind_spot = false;
          }
          if (differ_only_at_blind_spot) {
            pairs.emplace_back(indices[a], indices[b]);
          }
        }
      }
    }
    struct CrossoverTally {
      std::uint64_t tried = 0;
      std::uint64_t fooled = 0;
      std::uint64_t predicted = 0;
      void Merge(const CrossoverTally& o) {
        tried += o.tried;
        fooled += o.fooled;
        predicted += o.predicted;
      }
    };
    const CrossoverTally cross = runner.Run<CrossoverTally>(
        pairs.size(), [&](std::uint64_t t, CrossoverTally& local) {
          const auto& v = accepted[pairs[t].first];
          const auto& w = accepted[pairs[t].second];
          ++local.tried;
          CompositionOutcome outcome =
              TestComposition(exec, v, w, 0, m, choices, 1000000);
          if (outcome.preconditions_met && outcome.prediction_holds) {
            ++local.predicted;
            if (!ReverseCompareMachine::ReferencePredicate(
                    outcome.input_u, m)) {
              ++local.fooled;
            }
          }
        });
    recorder.Record(
        "E8.m=" + std::to_string(m), families + pairs.size(),
        SecondsSince(start),
        Checksum64({static_cast<std::uint64_t>(accepted.size()),
                    static_cast<std::uint64_t>(by_skeleton.size()),
                    cross.tried, cross.fooled, cross.predicted}));
    table.AddRow({std::to_string(m), std::to_string(accepted.size()),
                  std::to_string(by_skeleton.size()),
                  std::to_string(cross.tried),
                  std::to_string(cross.fooled),
                  cross.tried == cross.predicted ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "  paper: any machine whose skeleton never compares"
               " (i0, m+phi(i0)) accepts a crossed-over NO instance"
               " (steps 5-9 of the Lemma 21 proof)\n\n";
}

void RunRegimeTable() {
  Table table("E8b: the Lemma 21 parameter regime (where the lower bound"
              " bites)",
              {"t", "r", "m >= 24(t+1)^{4r}+1", "k = 2m+3",
               "log2(n) required"});
  for (std::size_t t : {2u, 3u}) {
    for (std::uint64_t r : {1u, 2u, 3u, 4u, 5u}) {
      const Lemma21Regime regime = ComputeLemma21Regime(t, r);
      if (regime.m_overflowed) {
        table.AddRow({std::to_string(t), std::to_string(r), "> 2^64",
                      "-", "-"});
        continue;
      }
      table.AddRow({std::to_string(t), std::to_string(r),
                    std::to_string(regime.m), std::to_string(regime.k),
                    rstlab::core::FormatDouble(regime.log2_n_required, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "  the explosion in m and n with r explains why the"
               " lower-bound regime (r = o(log N), n = m^3) is validated"
               " through its lemmas rather than exhaustive machine"
               " enumeration\n\n";
}

void BM_Composition(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  std::vector<std::uint64_t> v(2 * m, 3);
  std::vector<std::uint64_t> w = v;
  w[0] = 4;
  w[m] = 4;
  const std::vector<ChoiceId> choices(8 * m + 16, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TestComposition(exec, v, w, 0, m, choices, 1000000));
  }
}
BENCHMARK(BM_Composition)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_fooling");
  const std::size_t threads =
      rstlab::parallel::ParseThreadsFlag(&argc, argv);
  TrialRunner runner(threads);
  runner.set_trace(obs.sink());
  BenchRecorder recorder("bench_fooling", threads);
  recorder.set_metrics(obs.metrics());
  std::cout << "trial engine: threads=" << threads << "\n\n";
  RunFoolingTable(runner, recorder);
  RunRegimeTable();
  if (auto written = recorder.Write(); written.ok()) {
    std::cout << "trial timings -> " << written.value() << "\n\n";
  } else {
    std::cerr << "warning: " << written.status() << "\n";
  }
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
