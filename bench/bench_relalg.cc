// Experiments E10/E11 (Theorem 11): streaming relational algebra.
//
// Paper rows reproduced:
//  * (a) every relational algebra query evaluates with a
//    query-dependent constant number of sorts and scans — measured
//    scans fit c_Q * log2(N) with R^2 ~ 1;
//  * (b) the symmetric-difference query (R1 - R2) U (R2 - R1) has an
//    empty result exactly on SET-EQUALITY "yes" instances, transferring
//    the Theorem 6 lower bound to query evaluation.

#include <iostream>
#include <map>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "query/relalg.h"
#include "stmodel/st_context.h"
#include "util/bitstring.h"
#include "util/random.h"

namespace {

using rstlab::BitString;
using rstlab::Rng;
using rstlab::core::FitLog2;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using namespace rstlab::query;

std::map<std::string, Relation> MakeDatabase(Rng& rng, std::size_t size) {
  std::map<std::string, Relation> db;
  for (const char* name : {"R1", "R2"}) {
    Relation r;
    r.name = name;
    r.arity = 1;
    for (std::size_t i = 0; i < size; ++i) {
      r.Insert({BitString::Random(24, rng).ToString()});
    }
    db[name] = r;
  }
  return db;
}

void RunScalingTable() {
  struct NamedQuery {
    const char* name;
    RelAlgExprPtr query;
  };
  const std::vector<NamedQuery> queries = {
      {"R1 - R2", Difference(Rel("R1"), Rel("R2"))},
      {"symdiff", SymmetricDifferenceQuery()},
      {"project+union", Project(Union(Rel("R1"), Rel("R2")), {0})},
  };
  for (const auto& nq : queries) {
    Table table(std::string("E10: streaming evaluation of ") + nq.name,
                {"tuples", "N", "scans", "int.bits", "agrees"});
    Rng rng(4711);
    std::vector<double> ns;
    std::vector<double> scans;
    for (std::size_t size : {32u, 64u, 128u, 256u, 512u, 1024u}) {
      std::map<std::string, Relation> db = MakeDatabase(rng, size);
      rstlab::stmodel::StContext ctx(kRelAlgTapes);
      ctx.LoadInput(EncodeDatabaseStream(db));
      auto streamed = EvaluateOnTapes(nq.query, ctx);
      auto reference = EvaluateInMemory(nq.query, db);
      const bool agrees = streamed.ok() && reference.ok() &&
                          streamed.value() == reference.value();
      const auto report = ctx.Report();
      table.AddRow({std::to_string(size),
                    std::to_string(ctx.input_size()),
                    std::to_string(report.scan_bound),
                    std::to_string(report.internal_space),
                    agrees ? "yes" : "NO"});
      ns.push_back(static_cast<double>(ctx.input_size()));
      scans.push_back(static_cast<double>(report.scan_bound));
    }
    table.Print(std::cout);
    const auto fit = FitLog2(ns, scans);
    std::cout << "  fit: scans = " << FormatDouble(fit.slope)
              << " * log2(N) + " << FormatDouble(fit.intercept)
              << "  (R^2 = " << FormatDouble(fit.r_squared)
              << "; paper Theorem 11(a): ST(O(log N), O(1), O(1)))\n\n";
  }
}

void RunQueryComplexityTable() {
  // Theorem 11(a)'s c_Q made visible: deepen the query (chained unions
  // and differences) and fit scans ~ slope * log2(N) per depth. The
  // slope grows with the operator count and is independent of N — the
  // "constant number of sorts and scans per query" structure.
  Table table("E10b: the query-dependent constant c_Q",
              {"query depth (ops)", "slope (scans per log2 N)", "R^2"});
  for (int depth : {1, 2, 4, 8}) {
    Rng rng(4711);
    std::vector<double> ns;
    std::vector<double> scans;
    // Build a depth-op chain: ((R1 - R2) u (R2 - R1)) u ... alternating.
    RelAlgExprPtr query = Difference(Rel("R1"), Rel("R2"));
    for (int d = 1; d < depth; ++d) {
      query = d % 2 == 1 ? Union(query, Difference(Rel("R2"), Rel("R1")))
                         : Difference(query, Rel("R2"));
    }
    for (std::size_t size : {64u, 256u, 1024u}) {
      std::map<std::string, Relation> db = MakeDatabase(rng, size);
      rstlab::stmodel::StContext ctx(kRelAlgTapes);
      ctx.LoadInput(EncodeDatabaseStream(db));
      if (!EvaluateOnTapes(query, ctx).ok()) continue;
      ns.push_back(static_cast<double>(ctx.input_size()));
      scans.push_back(static_cast<double>(ctx.Report().scan_bound));
    }
    if (ns.size() < 2) continue;
    const auto fit = FitLog2(ns, scans);
    table.AddRow({std::to_string(depth), FormatDouble(fit.slope, 1),
                  FormatDouble(fit.r_squared)});
  }
  table.Print(std::cout);
  std::cout << "  slope grows with the number of sort-requiring"
               " operators and not with N: c_Q is a property of the"
               " query alone (Theorem 11(a))\n\n";
}

void RunReductionTable() {
  Table table(
      "E11: Theorem 11(b) — symdiff query decides SET-EQUALITY",
      {"m", "instances", "correct_decisions"});
  Rng rng(2026);
  for (std::size_t m : {8u, 32u, 128u}) {
    int correct = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      rstlab::problems::Instance inst =
          t % 2 == 0 ? rstlab::problems::EqualSets(m, 16, rng)
                     : rstlab::problems::PerturbedMultisets(m, 16, 1, rng);
      std::map<std::string, Relation> db;
      db["R1"].name = "R1";
      db["R2"].name = "R2";
      for (const auto& v : inst.first) db["R1"].Insert({v.ToString()});
      for (const auto& v : inst.second) db["R2"].Insert({v.ToString()});
      rstlab::stmodel::StContext ctx(kRelAlgTapes);
      ctx.LoadInput(EncodeDatabaseStream(db));
      auto out = EvaluateOnTapes(SymmetricDifferenceQuery(), ctx);
      if (!out.ok()) continue;
      correct += out.value().tuples.empty() ==
                 rstlab::problems::RefSetEquality(inst);
    }
    table.AddRow({std::to_string(m), std::to_string(trials),
                  std::to_string(correct) + "/" + std::to_string(trials)});
  }
  table.Print(std::cout);
  std::cout << "  paper: Q' result empty iff R1 = R2, so evaluating Q'"
               " inherits the Omega(log N) random-access lower bound\n\n";
}

void BM_SymmetricDifference(benchmark::State& state) {
  Rng rng(8);
  std::map<std::string, Relation> db =
      MakeDatabase(rng, static_cast<std::size_t>(state.range(0)));
  const std::string stream = EncodeDatabaseStream(db);
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(kRelAlgTapes);
    ctx.LoadInput(stream);
    auto out = EvaluateOnTapes(SymmetricDifferenceQuery(), ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      stream.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_SymmetricDifference)->Arg(64)->Arg(256)->Arg(1024);

void BM_Product(benchmark::State& state) {
  Rng rng(9);
  std::map<std::string, Relation> db =
      MakeDatabase(rng, static_cast<std::size_t>(state.range(0)));
  const std::string stream = EncodeDatabaseStream(db);
  const RelAlgExprPtr query = Product(Rel("R1"), Rel("R2"));
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(kRelAlgTapes);
    ctx.LoadInput(stream);
    auto out = EvaluateOnTapes(query, ctx);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Product)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_relalg");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  RunScalingTable();
  RunQueryComplexityTable();
  RunReductionTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
