// Experiment E7 (Lemmas 37/38, the merge lemma): an (r, t)-bounded list
// machine can compare at most t^{2r} * sortedness(phi) of the m pairs
// (i, m + phi(i)).
//
// The table pits machines with growing scan budgets against the
// bit-reversal permutation (sortedness ~ 2*sqrt(m)) and the identity
// permutation (sortedness m): measured compared-pair counts never exceed
// the bound, and for phi = bit-reversal they fall far short of m —
// the quantitative heart of the Theorem 6 lower bound.

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "listmachine/analysis.h"
#include "listmachine/machines.h"
#include "obs/flags.h"
#include "permutation/phi.h"

namespace {

using rstlab::core::Table;
using namespace rstlab::listmachine;

std::vector<std::uint64_t> Iota(std::size_t count) {
  std::vector<std::uint64_t> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = i;
  return v;
}

void RunMergeLemmaTable() {
  Table table("E7: Lemma 38 merge-lemma bound",
              {"machine", "m", "phi", "r", "compared", "bound",
               "sortedness", "ok"});

  for (std::size_t m : {4u, 8u, 16u, 32u}) {
    for (const bool identity : {false, true}) {
      const auto phi =
          identity ? rstlab::permutation::Identity(m)
                   : rstlab::permutation::BitReversalPermutation(m);
      // The comparison machine (2 scans).
      {
        ReverseCompareMachine machine(m, m);
        ListMachineExecutor exec(&machine);
        std::vector<std::uint64_t> input(2 * m, 1);
        auto run = exec.RunDeterministic(input, 1000000);
        if (!run.ok()) continue;
        MergeLemmaCheck check = CheckMergeLemma(run.value(), phi);
        table.AddRow({"ReverseCompare", std::to_string(m),
                      identity ? "identity" : "bit-reversal",
                      std::to_string(run.value().ScanBound()),
                      std::to_string(check.compared_count),
                      std::to_string(check.bound),
                      std::to_string(check.sortedness),
                      check.within_bounds ? "yes" : "NO"});
      }
      // The constructive machine: decides identity alignment with 3
      // scans, realizing the full sortedness-m comparison budget.
      {
        IdentityCompareMachine machine(m);
        ListMachineExecutor exec(&machine);
        std::vector<std::uint64_t> input(2 * m, 1);
        auto run = exec.RunDeterministic(input, 1000000);
        if (!run.ok()) continue;
        MergeLemmaCheck check = CheckMergeLemma(run.value(), phi);
        table.AddRow({"IdentityCompare", std::to_string(m),
                      identity ? "identity" : "bit-reversal",
                      std::to_string(run.value().ScanBound()),
                      std::to_string(check.compared_count),
                      std::to_string(check.bound),
                      std::to_string(check.sortedness),
                      check.within_bounds ? "yes" : "NO"});
      }
      // A multi-sweep machine (more scans, more mixing).
      {
        ZigZagMachine machine(2, 4, 2 * m);
        ListMachineExecutor exec(&machine);
        auto run = exec.RunDeterministic(Iota(2 * m), 1000000);
        if (!run.ok()) continue;
        MergeLemmaCheck check = CheckMergeLemma(run.value(), phi);
        table.AddRow({"ZigZag(4 sweeps)", std::to_string(m),
                      identity ? "identity" : "bit-reversal",
                      std::to_string(run.value().ScanBound()),
                      std::to_string(check.compared_count),
                      std::to_string(check.bound),
                      std::to_string(check.sortedness),
                      check.within_bounds ? "yes" : "NO"});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "  paper: compared pairs <= t^{2r} * sortedness(phi)"
               " (Lemma 38); for phi = bit-reversal this is o(m) when"
               " r = o(log m)\n\n";
}

void BM_ComparedPairs(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  std::vector<std::uint64_t> input(2 * m, 1);
  auto run = exec.RunDeterministic(input, 1000000);
  const auto phi = rstlab::permutation::BitReversalPermutation(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckMergeLemma(run.value(), phi));
  }
}
BENCHMARK(BM_ComparedPairs)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_merge_lemma");
  RunMergeLemmaTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
