// Experiment E9 (Lemma 16, the Simulation Lemma): Turing machine runs
// transfer to list machine runs with identical acceptance behaviour,
// identical reversal counts, and a modest abstract-state census.
//
// Paper rows reproduced:
//  * acceptance probability preservation: for every choice sequence the
//    induced NLM run accepts iff the TM run accepts (Lemma 18 counting
//    then gives equal probabilities);
//  * (r, t)-boundedness transfer: NLM reversals == TM reversals;
//  * the state census stays small (bound (2) of Lemma 16).

#include <chrono>
#include <iostream>

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/experiment.h"
#include "listmachine/simulation.h"
#include "machine/machine_builder.h"
#include "machine/turing_machine.h"
#include "obs/flags.h"
#include "parallel/bench_recorder.h"
#include "parallel/trial_runner.h"

namespace {

using rstlab::core::FormatDouble;
using rstlab::core::Table;
using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;
using rstlab::parallel::TrialRunner;

rstlab::machine::TuringMachine Make(rstlab::machine::MachineSpec spec) {
  auto tm = rstlab::machine::TuringMachine::Create(std::move(spec));
  return std::move(tm).value();
}

void RunProbabilityTable(TrialRunner& runner, BenchRecorder& recorder) {
  Table table("E9a: acceptance probability preservation (Lemma 16)",
              {"machine", "input", "Pr[TM]", "Pr[NLM]", "equal"});
  struct Case {
    const char* name;
    rstlab::machine::MachineSpec spec;
    std::vector<std::string> fields;
  };
  std::vector<Case> cases;
  cases.push_back({"GuessFirstBit", rstlab::machine::zoo::GuessFirstBit(),
                   {"1"}});
  cases.push_back({"FairCoin", rstlab::machine::zoo::FairCoin(), {"0"}});
  cases.push_back({"BiasedCoin(3/4)",
                   rstlab::machine::zoo::BiasedCoin(3, 2), {"1"}});
  for (auto& c : cases) {
    rstlab::machine::TuringMachine tm = Make(std::move(c.spec));
    std::string word;
    for (const auto& f : c.fields) {
      word += f;
      word += '#';
    }
    const double tm_prob = tm.AcceptanceProbability(word, 100);
    // Enumerate choice sequences (Lemma 18): b' = lcm(1..b).
    const std::size_t b = tm.MaxBranching();
    std::size_t bp = 1;
    for (std::size_t i = 2; i <= b; ++i) bp = std::lcm(bp, i);
    const std::size_t len = 4;
    std::size_t total = 1;
    for (std::size_t i = 0; i < len; ++i) total *= bp;
    // Every choice sequence is an independent deterministic simulation:
    // the code axis maps straight onto the trial engine.
    struct AcceptTally {
      std::uint64_t accepting = 0;
      void Merge(const AcceptTally& o) { accepting += o.accepting; }
    };
    const auto start = std::chrono::steady_clock::now();
    const AcceptTally tally = runner.Run<AcceptTally>(
        total, [&](std::uint64_t code, AcceptTally& local) {
          std::vector<std::uint64_t> choices(len);
          std::size_t c2 = static_cast<std::size_t>(code);
          for (std::size_t i = 0; i < len; ++i) {
            choices[i] = c2 % bp;
            c2 /= bp;
          }
          auto sim = rstlab::listmachine::SimulateTmAsNlm(tm, c.fields,
                                                          choices, 100);
          if (sim.ok() && sim.value().run.accepted) ++local.accepting;
        });
    recorder.Record(std::string("E9a.") + c.name, total,
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count(),
                    Checksum64({tally.accepting,
                                static_cast<std::uint64_t>(total)}));
    const double nlm_prob = static_cast<double>(tally.accepting) /
                            static_cast<double>(total);
    table.AddRow({c.name, word, FormatDouble(tm_prob),
                  FormatDouble(nlm_prob),
                  std::abs(tm_prob - nlm_prob) < 1e-12 ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void RunResourceTable() {
  Table table("E9b: reversal and state-census transfer (Lemma 16)",
              {"machine", "fields", "TM_rev", "NLM_rev", "NLM_steps",
               "abstract_states"});
  rstlab::machine::TuringMachine tm =
      Make(rstlab::machine::zoo::TwoFieldEquality());
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    std::string v(n, '0');
    for (std::size_t i = 1; i < n; i += 2) v[i] = '1';
    auto tm_run = tm.RunWithChoices(
        v + "#" + v + "#", std::vector<std::uint64_t>(100000, 0), 100000);
    auto sim = rstlab::listmachine::SimulateTmAsNlm(tm, {v, v}, {},
                                                    100000);
    if (!sim.ok()) continue;
    std::uint64_t tm_rev = 0;
    for (auto r : tm_run.costs.external_reversals) tm_rev += r;
    std::uint64_t nlm_rev = 0;
    for (auto r : sim.value().run.reversals) nlm_rev += r;
    table.AddRow({"TwoFieldEquality", "2 x " + std::to_string(n),
                  std::to_string(tm_rev), std::to_string(nlm_rev),
                  std::to_string(sim.value().run.steps.size()),
                  std::to_string(sim.value().distinct_states)});
  }
  table.Print(std::cout);
  std::cout << "  paper: the NLM is (r(m(n+1)), t)-bounded with the"
               " TM's own r, and |A| <= 2^{d t^2 r s + 3t log(m(n+1))}\n\n";
}

void BM_Simulation(benchmark::State& state) {
  rstlab::machine::TuringMachine tm =
      Make(rstlab::machine::zoo::TwoFieldEquality());
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::string v(n, '1');
  for (auto _ : state) {
    auto sim =
        rstlab::listmachine::SimulateTmAsNlm(tm, {v, v}, {}, 1000000);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_Simulation)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_simulation");
  const std::size_t threads =
      rstlab::parallel::ParseThreadsFlag(&argc, argv);
  TrialRunner runner(threads);
  runner.set_trace(obs.sink());
  BenchRecorder recorder("bench_simulation", threads);
  recorder.set_metrics(obs.metrics());
  std::cout << "trial engine: threads=" << threads << "\n\n";
  RunProbabilityTable(runner, recorder);
  RunResourceTable();
  if (auto written = recorder.Write(); written.ok()) {
    std::cout << "trial timings -> " << written.value() << "\n\n";
  } else {
    std::cerr << "warning: " << written.status() << "\n";
  }
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
