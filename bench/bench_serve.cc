// E20 — the serving layer under load: an in-process `rstlab serve`
// daemon driven by a multi-threaded loopback load generator.
//
// The workload is a fixed pool of ~20 distinct experiment payloads
// (fingerprint, multiset-equality, disjoint, claim1, xpath-count) that
// every worker cycles through, so after the first pass every artifact —
// generated instances, prime pools, parsed XML — is a content-hash
// cache hit; the steady-state ArtifactCache hit rate is part of the
// recorded row and the E20 acceptance bar (>= 0.9).
//
// Recorded per run: request throughput (as trials_per_sec), latency
// p50/p95/p99 in milliseconds and the cache hit rate (as metrics
// gauges), plus a canonical tally checksum folded from one
// single-threaded pass over the payload pool — deterministic run to
// run, so serving results can be diffed across commits like every
// other bench tally.
//
// RSTLAB_SERVE_BENCH_REQUESTS scales the request count (default 1200).
// SIGINT/SIGTERM mid-run follows the graceful-shutdown contract: stop
// issuing, drain the daemon, flush the recorder atomically, exit 0.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "parallel/bench_recorder.h"
#include "serve/client.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/shutdown.h"

namespace {

using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The fixed payload pool. Distinct enough to exercise every cache
/// kind, small enough that a full pass is cheap, and repeated enough
/// that the steady-state hit rate approaches 1.
std::vector<std::string> BuildPayloadPool() {
  std::vector<std::string> pool;
  auto generator = [](const char* kind, std::uint64_t m, std::uint64_t n,
                      std::uint64_t seed) {
    return rstlab::serve::JsonWriter()
        .Field("kind", kind)
        .Field("m", m)
        .Field("n", n)
        .Field("seed", seed)
        .Build();
  };
  for (std::uint64_t v = 0; v < 8; ++v) {
    pool.push_back(rstlab::serve::JsonWriter()
                       .Field("request_id", "e20-fp-" + std::to_string(v))
                       .Field("tenant", v % 2 == 0 ? "alice" : "bob")
                       .Field("problem", "fingerprint")
                       .FieldRaw("generator",
                                 generator("equal", 16 + 8 * v, 12, v))
                       .Field("trials", std::uint64_t{16})
                       .Field("seed", 100 + v)
                       .Build());
  }
  for (std::uint64_t v = 0; v < 4; ++v) {
    pool.push_back(
        rstlab::serve::JsonWriter()
            .Field("request_id", "e20-eq-" + std::to_string(v))
            .Field("tenant", "carol")
            .Field("problem", "multiset-equality")
            .FieldRaw("generator",
                      generator(v % 2 == 0 ? "equal" : "perturbed",
                                12 + 4 * v, 10, v))
            .Build());
  }
  for (std::uint64_t v = 0; v < 2; ++v) {
    pool.push_back(rstlab::serve::JsonWriter()
                       .Field("request_id", "e20-dj-" + std::to_string(v))
                       .Field("tenant", "alice")
                       .Field("problem", "disjoint")
                       .FieldRaw("generator",
                                 generator("disjoint", 8 + 8 * v, 10, v))
                       .Build());
  }
  for (std::uint64_t v = 0; v < 2; ++v) {
    pool.push_back(rstlab::serve::JsonWriter()
                       .Field("request_id", "e20-c1-" + std::to_string(v))
                       .Field("tenant", "bob")
                       .Field("problem", "claim1")
                       .FieldRaw("generator",
                                 generator("perturbed", 6 + 2 * v, 8, v))
                       .Field("trials", std::uint64_t{12})
                       .Field("seed", 200 + v)
                       .Build());
  }
  for (std::uint64_t v = 0; v < 4; ++v) {
    pool.push_back(
        rstlab::serve::JsonWriter()
            .Field("request_id", "e20-xp-" + std::to_string(v))
            .Field("tenant", "carol")
            .Field("problem", "xpath-count")
            .Field("query",
                   v % 2 == 0 ? "child::book" : "descendant::title")
            .Field("xml",
                   v < 2 ? "<lib><book><title>a</title></book></lib>"
                         : "<lib><book><title>a</title></book>"
                           "<book><title>b</title></book></lib>")
            .Build());
  }
  return pool;
}

/// Extracts the "checksum": value from a result frame (0 if absent).
std::uint64_t FrameChecksum(const std::string& frame) {
  const std::size_t at = frame.find("\"checksum\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(frame.c_str() + at + 11, nullptr, 10);
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

int RunLoad() {
  rstlab::serve::ShutdownGuard shutdown;

  const char* scale = std::getenv("RSTLAB_SERVE_BENCH_REQUESTS");
  const std::uint64_t total_requests =
      scale != nullptr ? std::strtoull(scale, nullptr, 10) : 1200;
  const std::size_t workers = 8;

  rstlab::serve::ServerOptions options;
  options.threads = 4;
  options.max_inflight = 512;
  options.max_connections = 64;
  rstlab::serve::HttpServer server(options);
  const rstlab::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "bench_serve: " << started << "\n";
    return 1;
  }

  const std::vector<std::string> pool = BuildPayloadPool();
  std::cout << "serve load: " << total_requests << " requests over "
            << pool.size() << " distinct payloads, " << workers
            << " client workers -> 127.0.0.1:" << server.port() << "\n";

  std::atomic<std::uint64_t> next_request{0};
  std::vector<WorkerResult> results(workers);
  const auto load_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        rstlab::serve::HttpClient client;
        if (!client.Connect(server.port()).ok()) return;
        WorkerResult& mine = results[w];
        for (;;) {
          const std::uint64_t ordinal = next_request.fetch_add(1);
          if (ordinal >= total_requests || shutdown.requested()) break;
          const std::string& payload = pool[ordinal % pool.size()];
          const auto begin = std::chrono::steady_clock::now();
          auto response =
              client.Request("POST", "/v1/experiment", payload);
          mine.latencies_ms.push_back(SecondsSince(begin) * 1e3);
          if (response.ok() && response.value().status == 200) {
            mine.completed += 1;
          } else {
            mine.failed += 1;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall = SecondsSince(load_start);
  const bool interrupted = shutdown.requested();

  std::vector<double> latencies;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    completed += r.completed;
    failed += r.failed;
  }
  std::sort(latencies.begin(), latencies.end());

  // Canonical checksum: one single-threaded pass over the pool, folded
  // in pool order — a pure function of the payloads, unlike the
  // thread-interleaved load above.
  std::uint64_t checksum = 0;
  {
    rstlab::serve::HttpClient client;
    if (client.Connect(server.port()).ok()) {
      for (const std::string& payload : pool) {
        auto response = client.Request("POST", "/v1/experiment", payload);
        if (response.ok()) {
          checksum = Checksum64(
              {checksum, FrameChecksum(response.value().body)});
        }
      }
    }
  }

  const rstlab::serve::ArtifactCache::Stats cache = server.cache_stats();
  const double p50 = Quantile(latencies, 0.50);
  const double p95 = Quantile(latencies, 0.95);
  const double p99 = Quantile(latencies, 0.99);
  const double throughput =
      wall > 0.0 ? static_cast<double>(completed) / wall : 0.0;

  server.metrics().SetGauge("serve.latency_p50_ms", p50);
  server.metrics().SetGauge("serve.latency_p95_ms", p95);
  server.metrics().SetGauge("serve.latency_p99_ms", p99);
  server.metrics().SetGauge("serve.throughput_rps", throughput);
  server.metrics().SetGauge("serve.cache.hit_rate", cache.hit_rate());
  server.metrics().SetGauge("serve.failed_requests",
                            static_cast<double>(failed));

  std::cout << "  completed " << completed << " (failed " << failed
            << ") in " << wall << " s  ->  " << throughput << " req/s\n"
            << "  latency ms: p50=" << p50 << " p95=" << p95
            << " p99=" << p99 << "\n"
            << "  artifact cache: " << cache.hits << " hits / "
            << cache.misses << " misses (hit rate " << cache.hit_rate()
            << "), " << cache.entries << " entries\n"
            << "  canonical checksum: " << checksum << "\n";

  BenchRecorder recorder("bench_serve", options.threads);
  recorder.set_metrics(&server.metrics());
  recorder.Record("E20.load.requests=" + std::to_string(total_requests),
                  completed, wall, checksum);
  if (auto written = recorder.Write(); written.ok()) {
    std::cout << "serve timings -> " << written.value() << "\n";
  } else {
    std::cerr << "warning: " << written.status() << "\n";
  }

  // Graceful-shutdown contract: drain in-flight trials, then exit 0 —
  // whether the run finished or a signal cut it short.
  server.Shutdown();
  if (interrupted) {
    std::cout << "interrupted: drained and flushed, exiting 0\n";
    std::exit(0);
  }
  return 0;
}

void BM_HttpParse(benchmark::State& state) {
  const std::string raw =
      "POST /v1/experiment HTTP/1.1\r\nHost: x\r\n"
      "Content-Length: 26\r\n\r\n{\"request_id\":\"bm\",\"x\":1}x";
  const rstlab::serve::HttpLimits limits;
  for (auto _ : state) {
    auto parsed = rstlab::serve::ParseHttpRequest(raw, limits);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_HttpParse);

void BM_ParseExperimentRequest(benchmark::State& state) {
  const std::string body =
      "{\"request_id\":\"bm\",\"problem\":\"fingerprint\",\"generator\":"
      "{\"kind\":\"equal\",\"m\":64,\"n\":12,\"seed\":3},\"trials\":16}";
  for (auto _ : state) {
    auto parsed = rstlab::serve::ParseExperimentRequest(body);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseExperimentRequest);

}  // namespace

int main(int argc, char** argv) {
  const int load_result = RunLoad();
  if (load_result != 0) return load_result;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
