// Experiment E4 (Theorem 8(b)): nondeterministic guess-and-verify
// machines with a constant number of scans and O(log N) internal memory.
//
// Paper rows reproduced:
//  * completeness: on every "yes" instance some certificate is accepted
//    by the paper's copies-on-tape verifier;
//  * soundness (exhaustive for tiny m): on "no" instances NO certificate
//    is accepted;
//  * resource profile: a constant number of scans and O(log N) internal
//    bits, at external-space cost l * |u| (which is why the paper's
//    construction is a theoretical device, exercised here at toy scale).

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "nst/certificate.h"
#include "nst/paper_verifier.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "permutation/sortedness.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::Table;
using rstlab::problems::Problem;

void RunVerifierTable() {
  Table table("E4: Theorem 8(b) paper verifier (3-tape layout)",
              {"problem", "m", "n", "copies", "|u|", "scans", "int.bits",
               "ext.cells", "verdict"});
  Rng rng(31337);
  for (Problem problem :
       {Problem::kMultisetEquality, Problem::kCheckSort,
        Problem::kSetEquality}) {
    for (std::size_t m : {2u, 4u, 6u}) {
      const std::size_t n = 6;
      rstlab::problems::Instance inst =
          problem == Problem::kCheckSort
              ? rstlab::problems::SortedPair(m, n, rng)
              : rstlab::problems::EqualMultisets(m, n, rng);
      auto cert = rstlab::nst::FindHonestCertificate(problem, inst);
      if (!cert.has_value()) continue;
      rstlab::stmodel::StContext ctx(3);
      ctx.LoadInput(inst.Encode());
      auto run =
          rstlab::nst::RunPaperVerifier(problem, inst, *cert, ctx);
      if (!run.ok()) continue;
      const auto report = ctx.Report();
      table.AddRow({rstlab::problems::ProblemName(problem),
                    std::to_string(m), std::to_string(n),
                    std::to_string(run.value().copies_written),
                    std::to_string(run.value().copy_length),
                    std::to_string(report.scan_bound),
                    std::to_string(report.internal_space),
                    std::to_string(report.external_space),
                    run.value().accepted ? "accept" : "REJECT"});
    }
  }
  table.Print(std::cout);
  std::cout << "  paper: NST(3, O(log N), 2); measured: constant scans on"
               " a 3-tape layout, O(log N) internal bits\n\n";
}

void RunSoundnessTable() {
  Table table(
      "E4b: exhaustive certificate soundness (all pi for tiny m)",
      {"problem", "m", "instances", "agree_with_oracle"});
  Rng rng(999);
  for (Problem problem :
       {Problem::kMultisetEquality, Problem::kCheckSort,
        Problem::kSetEquality}) {
    const std::size_t m = 4;
    int agree = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      rstlab::problems::Instance inst;
      switch (t % 4) {
        case 0:
          inst = rstlab::problems::EqualMultisets(m, 5, rng);
          break;
        case 1:
          inst = rstlab::problems::PerturbedMultisets(m, 5, 1, rng);
          break;
        case 2:
          inst = rstlab::problems::SortedPair(m, 5, rng);
          break;
        default:
          inst = rstlab::problems::MisorderedPair(m, 5, rng);
          break;
      }
      const bool exists =
          rstlab::nst::ExistsAcceptingCertificate(problem, inst);
      agree += exists == rstlab::problems::RefDecide(problem, inst);
    }
    table.AddRow({rstlab::problems::ProblemName(problem),
                  std::to_string(m), std::to_string(trials),
                  std::to_string(agree) + "/" + std::to_string(trials)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_PaperVerifier(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 6, rng);
  auto cert = rstlab::nst::FindHonestCertificate(
      Problem::kMultisetEquality, inst);
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(3);
    ctx.LoadInput(inst.Encode());
    auto run = rstlab::nst::RunPaperVerifier(Problem::kMultisetEquality,
                                             inst, *cert, ctx);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_PaperVerifier)->Arg(2)->Arg(4)->Arg(8);

void BM_ExhaustiveCertificates(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  rstlab::problems::Instance inst =
      rstlab::problems::PerturbedMultisets(m, 5, 1, rng);
  for (auto _ : state) {
    bool exists = rstlab::nst::ExistsAcceptingCertificate(
        Problem::kMultisetEquality, inst);
    benchmark::DoNotOptimize(exists);
  }
}
BENCHMARK(BM_ExhaustiveCertificates)->Arg(4)->Arg(6)->Arg(7);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_nst");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  RunVerifierTable();
  RunSoundnessTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
