// Experiment E17 (Section 9, concluding remarks): the DISJOINT-SETS
// problem — the open problem the paper closes with.
//
// What is measurable:
//  * the deterministic sort-based decider handles it at Theta(log N)
//    scans like the other problems (upper-bound side);
//  * the paper's fingerprinting recipe does NOT transfer: residue
//    membership tests have errors in the wrong direction and aggregate
//    polynomial identities cannot express "no individual collision" —
//    the table quantifies the failure modes of the natural attempts.

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "fingerprint/prime.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "problems/disjoint_sets.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FitLog2;
using rstlab::core::FormatDouble;
using rstlab::core::Table;

void RunDeciderTable() {
  Table table("E17a: DISJOINT-SETS deterministic decider",
              {"m", "N", "scans", "int.bits", "correct"});
  Rng rng(1717);
  std::vector<double> ns;
  std::vector<double> scans;
  for (std::size_t m : {16u, 64u, 256u, 1024u}) {
    const std::size_t n = 16;
    rstlab::problems::Instance inst =
        rstlab::problems::DisjointSets(m, n, rng);
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    auto decided = rstlab::sorting::DecideDisjointOnTapes(ctx);
    const bool correct = decided.ok() && decided.value();
    table.AddRow({std::to_string(m), std::to_string(inst.N()),
                  std::to_string(ctx.Report().scan_bound),
                  std::to_string(ctx.Report().internal_space),
                  correct ? "yes" : "NO"});
    ns.push_back(static_cast<double>(inst.N()));
    scans.push_back(static_cast<double>(ctx.Report().scan_bound));
  }
  table.Print(std::cout);
  const auto fit = FitLog2(ns, scans);
  std::cout << "  fit: scans = " << FormatDouble(fit.slope)
            << " * log2(N) + " << FormatDouble(fit.intercept)
            << " (R^2 = " << FormatDouble(fit.r_squared)
            << ") — the ST upper bound; neither a matching lower bound"
               " nor a 2-scan randomized algorithm is known (open)\n\n";
}

void RunResidueGuessTable() {
  Table table(
      "E17b: why Theorem 8(a)-style residues fail for disjointness",
      {"prime", "err(disjoint->intersecting)", "err(intersecting->disjoint)"});
  Rng rng(1718);
  const std::size_t m = 16;
  const std::size_t n = 20;
  for (std::uint64_t prime : {31ULL, 1009ULL, 1048583ULL}) {
    int err_yes = 0;
    int err_no = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      rstlab::problems::Instance yes =
          rstlab::problems::DisjointSets(m, n, rng);
      if (!rstlab::problems::GuessDisjointnessByResidues(yes, prime)
               .guessed_disjoint) {
        ++err_yes;
      }
      rstlab::problems::Instance no =
          rstlab::problems::OverlappingSets(m, n, 1, rng);
      if (rstlab::problems::GuessDisjointnessByResidues(no, prime)
              .guessed_disjoint) {
        ++err_no;
      }
    }
    table.AddRow({std::to_string(prime),
                  FormatDouble(err_yes / static_cast<double>(trials)),
                  FormatDouble(err_no / static_cast<double>(trials))});
  }
  table.Print(std::cout);
  std::cout
      << "  shared values always share residues, so err(intersecting->"
         "disjoint) = 0 — but that is the WRONG one-sidedness for an\n"
      << "  RST algorithm answering \"disjoint\" (which must never accept"
         " falsely); err(disjoint->intersecting) shrinks with the prime\n"
      << "  but only reaches 0 at Omega(set size) residue bits — no"
         " sublinear-memory one-sided tester falls out of the recipe.\n\n";
}

void BM_DisjointDecider(benchmark::State& state) {
  Rng rng(2);
  rstlab::problems::Instance inst = rstlab::problems::DisjointSets(
      static_cast<std::size_t>(state.range(0)), 16, rng);
  const std::string encoded = inst.Encode();
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(encoded);
    benchmark::DoNotOptimize(rstlab::sorting::DecideDisjointOnTapes(ctx));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      encoded.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_DisjointDecider)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_disjoint");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  RunDeciderTable();
  RunResidueGuessTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
