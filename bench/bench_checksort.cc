// Experiment E3 (Corollary 7, upper-bound side): CHECK-SORT,
// SET-EQUALITY and MULTISET-EQUALITY are decidable deterministically
// with Theta(log N) sequential scans on a constant number of tapes.
//
// The table reports measured scans vs input size and the least-squares
// fit scans ~= a*log2(N) + b; the paper predicts a positive constant
// slope (tightness of the Theorem 6 lower bound at r = Theta(log N)).
//
// The E3d/E3e tables measure the parallel k-way external sort: thread
// scaling at a fixed reversal budget (the measured (r, s) and the
// output checksum must be identical at every thread count), and the
// single-thread loser-tree k-way merge against the binary-cascade seed
// sort. E3d's field count scales via RSTLAB_SORT_BENCH_FIELDS — the
// GB-scale runs in EXPERIMENTS.md set it to tens of millions.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "obs/ring_sink.h"
#include "obs/timeline.h"
#include "parallel/bench_recorder.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "sorting/deciders.h"
#include "sorting/merge_sort.h"
#include "sorting/parallel_sort.h"
#include "sorting/sort_config.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FitLog2;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::size_t EnvFields(std::size_t fallback) {
  const char* value = std::getenv("RSTLAB_SORT_BENCH_FIELDS");
  if (value == nullptr || *value == '\0') return fallback;
  const std::size_t parsed = std::strtoull(value, nullptr, 10);
  return parsed > 0 ? parsed : fallback;
}

/// `m` random '#'-terminated 0/1 fields of length `n` in one string.
std::string RandomFields(std::size_t m, std::size_t n, Rng& rng) {
  std::string out;
  out.reserve(m * (n + 1));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t b = 0; b < n; ++b) {
      out.push_back(rng.Bernoulli(0.5) ? '1' : '0');
    }
    out.push_back('#');
  }
  return out;
}

/// Order-sensitive FNV-1a over the sorted tape content, so bit-identity
/// across thread counts is visible in the JSON rows.
std::uint64_t ContentChecksum(rstlab::stmodel::StContext& ctx,
                              std::size_t index) {
  rstlab::tape::Tape& t = ctx.tape(index);
  std::uint64_t h = 1469598103934665603ull;
  const std::size_t cells = t.cells_used();
  t.Seek(0);
  std::size_t read = 0;
  while (read < cells) {
    const std::string chunk =
        t.ReadForward(std::min<std::size_t>(1 << 20, cells - read));
    read += chunk.size();
    for (const char c : chunk) {
      if (c == '_') break;
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
  }
  return h;
}

/// E3d: thread scaling of the parallel k-way sort at a fixed reversal
/// budget. The serial seed sort (binary cascade) is the baseline; the
/// k=16 rows must agree with each other in scans, int.bits and output
/// checksum at every thread count — only the wall time may move.
void RunParallelSortTable(BenchRecorder& recorder) {
  const std::size_t m = EnvFields(1u << 17);
  const std::size_t n = 16;
  Table table("E3d: parallel k-way sort, m=" + std::to_string(m) +
                  " n=" + std::to_string(n) + " (k=16)",
              {"config", "threads", "sec", "speedup", "scans", "int.bits",
               "checksum"});
  Rng rng(0xE3D);
  const std::string input = RandomFields(m, n, rng);

  double seed_wall = 0.0;
  {
    rstlab::stmodel::StContext ctx(3);
    ctx.LoadInput(input);
    const auto start = std::chrono::steady_clock::now();
    if (rstlab::Status s = rstlab::sorting::SortFieldsOnTapes(ctx, 0, 1, 2);
        !s.ok()) {
      std::cerr << "E3d seed sort: " << s << "\n";
      return;
    }
    seed_wall = Seconds(start);
    const auto report = ctx.Report();
    const std::uint64_t checksum = ContentChecksum(ctx, 0);
    table.AddRow({"seed binary cascade", "1", FormatDouble(seed_wall),
                  "1.0", std::to_string(report.scan_bound),
                  std::to_string(report.internal_space),
                  std::to_string(checksum % 100000)});
    recorder.Record("E3d_seed_sort_m" + std::to_string(m), /*trials=*/m,
                    seed_wall,
                    Checksum64({checksum, report.scan_bound,
                                report.internal_space}));
  }

  std::uint64_t base_scans = 0;
  std::uint64_t base_checksum = 0;
  std::size_t base_bits = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    rstlab::sorting::SortConfig config;
    config.fanout = 16;
    config.threads = threads;
    config.run_length = 4096;
    rstlab::stmodel::StContext ctx(1);
    ctx.LoadInput(input);
    const auto start = std::chrono::steady_clock::now();
    if (rstlab::Status s =
            rstlab::sorting::ParallelSortFieldsOnTape(ctx, 0, config);
        !s.ok()) {
      std::cerr << "E3d parallel sort: " << s << "\n";
      return;
    }
    const double wall = Seconds(start);
    const auto report = ctx.Report();
    const std::uint64_t checksum = ContentChecksum(ctx, 0);
    if (threads == 1) {
      base_scans = report.scan_bound;
      base_bits = report.internal_space;
      base_checksum = checksum;
    } else if (report.scan_bound != base_scans ||
               report.internal_space != base_bits ||
               checksum != base_checksum) {
      std::cout << "  WARNING: thread count changed the measured run at "
                << threads << " threads\n";
    }
    table.AddRow({"k-way loser tree", std::to_string(threads),
                  FormatDouble(wall), FormatDouble(seed_wall / wall),
                  std::to_string(report.scan_bound),
                  std::to_string(report.internal_space),
                  std::to_string(checksum % 100000)});
    recorder.Record(
        "E3d_parallel_sort_t" + std::to_string(threads) + "_m" +
            std::to_string(m),
        /*trials=*/m, wall,
        Checksum64({checksum, report.scan_bound, report.internal_space}));
  }
  table.Print(std::cout);
  std::cout << "  (scans, int.bits and checksum are thread-count "
               "invariant: the (r, s) certificate is fixed while wall "
               "time scales)\n\n";
}

/// E3e: the loser-tree k-way merge against the binary cascade at one
/// thread — the single-thread algorithmic win, isolated from thread
/// scaling. Fanout sweep at fixed m.
void RunLoserTreeTable(BenchRecorder& recorder) {
  const std::size_t m = 1u << 15;
  const std::size_t n = 16;
  Table table("E3e: 1-thread merge engine, m=" + std::to_string(m),
              {"engine", "fanout", "sec", "scans", "passes"});
  Rng rng(0xE3E);
  const std::string input = RandomFields(m, n, rng);
  {
    rstlab::stmodel::StContext ctx(3);
    ctx.LoadInput(input);
    rstlab::sorting::SortStats stats;
    const auto start = std::chrono::steady_clock::now();
    if (rstlab::Status s =
            rstlab::sorting::SortFieldsOnTapes(ctx, 0, 1, 2, &stats);
        !s.ok()) {
      std::cerr << "E3e seed sort: " << s << "\n";
      return;
    }
    const double wall = Seconds(start);
    table.AddRow({"binary cascade", "2", FormatDouble(wall),
                  std::to_string(ctx.Report().scan_bound),
                  std::to_string(stats.passes)});
    recorder.Record("E3e_binary_cascade_m" + std::to_string(m),
                    /*trials=*/m, wall,
                    Checksum64({ctx.Report().scan_bound, stats.passes}));
  }
  for (const std::size_t fanout : {2u, 4u, 8u, 16u}) {
    rstlab::sorting::SortConfig config;
    config.fanout = fanout;
    config.threads = 1;
    config.run_length = 1024;
    rstlab::stmodel::StContext ctx(1);
    ctx.LoadInput(input);
    rstlab::sorting::ParallelSortStats stats;
    const auto start = std::chrono::steady_clock::now();
    if (rstlab::Status s = rstlab::sorting::ParallelSortFieldsOnTape(
            ctx, 0, config, &stats);
        !s.ok()) {
      std::cerr << "E3e parallel sort: " << s << "\n";
      return;
    }
    const double wall = Seconds(start);
    table.AddRow({"loser tree", std::to_string(fanout), FormatDouble(wall),
                  std::to_string(ctx.Report().scan_bound),
                  std::to_string(stats.merge_passes)});
    recorder.Record(
        "E3e_loser_tree_k" + std::to_string(fanout) + "_m" +
            std::to_string(m),
        /*trials=*/m, wall,
        Checksum64({ctx.Report().scan_bound, stats.merge_passes}));
  }
  table.Print(std::cout);
  std::cout << "  (higher fanout buys fewer passes and fewer scans; the "
               "loser tree keeps each pass at log2(k) compares per "
               "field)\n\n";
}

void RunScalingTable(rstlab::problems::Problem problem,
                     const char* title) {
  Table table(title, {"m", "N", "scans", "int.bits", "correct"});
  Rng rng(0xC0FFEE);
  std::vector<double> ns;
  std::vector<double> scans;
  for (std::size_t m : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const std::size_t n = 16;
    rstlab::problems::Instance inst =
        problem == rstlab::problems::Problem::kCheckSort
            ? rstlab::problems::SortedPair(m, n, rng)
            : rstlab::problems::EqualMultisets(m, n, rng);
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    auto decided = rstlab::sorting::DecideOnTapes(problem, ctx);
    const bool correct =
        decided.ok() &&
        decided.value() == rstlab::problems::RefDecide(problem, inst);
    const auto report = ctx.Report();
    table.AddRow({std::to_string(m), std::to_string(inst.N()),
                  std::to_string(report.scan_bound),
                  std::to_string(report.internal_space),
                  correct ? "yes" : "NO"});
    ns.push_back(static_cast<double>(inst.N()));
    scans.push_back(static_cast<double>(report.scan_bound));
  }
  table.Print(std::cout);
  const auto fit = FitLog2(ns, scans);
  std::cout << "  fit: scans = " << FormatDouble(fit.slope) << " * log2(N) + "
            << FormatDouble(fit.intercept)
            << "  (R^2 = " << FormatDouble(fit.r_squared)
            << "; paper: Theta(log N) scans, Corollary 7)\n\n";
}

// With --trace (or --metrics) active, runs one small CHECK-SORT decide
// with tape-level tracing: the merge-sort passes show up as alternating
// scan segments across the five decider tapes.
void RunTracedExemplar(rstlab::obs::ObsSession& obs) {
  if (obs.sink() == nullptr) return;
  Rng rng(42);
  rstlab::problems::Instance inst =
      rstlab::problems::SortedPair(8, 8, rng);
  rstlab::obs::RingSink ring;
  rstlab::obs::TeeSink tee(obs.sink(), &ring);
  rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
  ctx.AttachTrace(&tee);
  ctx.LoadInput(inst.Encode());
  auto decided = rstlab::sorting::DecideOnTapes(
      rstlab::problems::Problem::kCheckSort, ctx);
  ctx.FlushTrace();
  std::cout << "traced exemplar (CHECK-SORT decide, m=8 n=8, "
            << (decided.ok() && decided.value() ? "yes" : "no")
            << "):\n"
            << rstlab::obs::RenderScanTimeline(ring.Snapshot()) << "\n";
}

void BM_Decider(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 16, rng);
  const std::string encoded = inst.Encode();
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(encoded);
    auto decided = rstlab::sorting::DecideOnTapes(
        rstlab::problems::Problem::kMultisetEquality, ctx);
    benchmark::DoNotOptimize(decided);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      encoded.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_Decider)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_checksort");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  rstlab::sorting::SetProcessSortConfig(
      rstlab::sorting::ParseSortFlags(&argc, argv));
  BenchRecorder recorder("bench_checksort", /*threads=*/8);
  recorder.set_metrics(obs.metrics());
  RunScalingTable(rstlab::problems::Problem::kCheckSort,
                  "E3a: CHECK-SORT in ST(O(log N), O(n + log N), 5)");
  RunScalingTable(
      rstlab::problems::Problem::kMultisetEquality,
      "E3b: MULTISET-EQUALITY in ST(O(log N), O(n + log N), 5)");
  RunScalingTable(rstlab::problems::Problem::kSetEquality,
                  "E3c: SET-EQUALITY in ST(O(log N), O(n + log N), 5)");
  RunParallelSortTable(recorder);
  RunLoserTreeTable(recorder);
  RunTracedExemplar(obs);
  obs.Finish(std::cout);
  if (auto written = recorder.Write(); !written.ok()) {
    std::cerr << "bench_checksort: " << written.status() << "\n";
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
