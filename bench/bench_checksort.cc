// Experiment E3 (Corollary 7, upper-bound side): CHECK-SORT,
// SET-EQUALITY and MULTISET-EQUALITY are decidable deterministically
// with Theta(log N) sequential scans on a constant number of tapes.
//
// The table reports measured scans vs input size and the least-squares
// fit scans ~= a*log2(N) + b; the paper predicts a positive constant
// slope (tightness of the Theorem 6 lower bound at r = Theta(log N)).

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "obs/ring_sink.h"
#include "obs/timeline.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FitLog2;
using rstlab::core::FormatDouble;
using rstlab::core::Table;

void RunScalingTable(rstlab::problems::Problem problem,
                     const char* title) {
  Table table(title, {"m", "N", "scans", "int.bits", "correct"});
  Rng rng(0xC0FFEE);
  std::vector<double> ns;
  std::vector<double> scans;
  for (std::size_t m : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const std::size_t n = 16;
    rstlab::problems::Instance inst =
        problem == rstlab::problems::Problem::kCheckSort
            ? rstlab::problems::SortedPair(m, n, rng)
            : rstlab::problems::EqualMultisets(m, n, rng);
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    auto decided = rstlab::sorting::DecideOnTapes(problem, ctx);
    const bool correct =
        decided.ok() &&
        decided.value() == rstlab::problems::RefDecide(problem, inst);
    const auto report = ctx.Report();
    table.AddRow({std::to_string(m), std::to_string(inst.N()),
                  std::to_string(report.scan_bound),
                  std::to_string(report.internal_space),
                  correct ? "yes" : "NO"});
    ns.push_back(static_cast<double>(inst.N()));
    scans.push_back(static_cast<double>(report.scan_bound));
  }
  table.Print(std::cout);
  const auto fit = FitLog2(ns, scans);
  std::cout << "  fit: scans = " << FormatDouble(fit.slope) << " * log2(N) + "
            << FormatDouble(fit.intercept)
            << "  (R^2 = " << FormatDouble(fit.r_squared)
            << "; paper: Theta(log N) scans, Corollary 7)\n\n";
}

// With --trace (or --metrics) active, runs one small CHECK-SORT decide
// with tape-level tracing: the merge-sort passes show up as alternating
// scan segments across the five decider tapes.
void RunTracedExemplar(rstlab::obs::ObsSession& obs) {
  if (obs.sink() == nullptr) return;
  Rng rng(42);
  rstlab::problems::Instance inst =
      rstlab::problems::SortedPair(8, 8, rng);
  rstlab::obs::RingSink ring;
  rstlab::obs::TeeSink tee(obs.sink(), &ring);
  rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
  ctx.AttachTrace(&tee);
  ctx.LoadInput(inst.Encode());
  auto decided = rstlab::sorting::DecideOnTapes(
      rstlab::problems::Problem::kCheckSort, ctx);
  ctx.FlushTrace();
  std::cout << "traced exemplar (CHECK-SORT decide, m=8 n=8, "
            << (decided.ok() && decided.value() ? "yes" : "no")
            << "):\n"
            << rstlab::obs::RenderScanTimeline(ring.Snapshot()) << "\n";
}

void BM_Decider(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 16, rng);
  const std::string encoded = inst.Encode();
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(encoded);
    auto decided = rstlab::sorting::DecideOnTapes(
        rstlab::problems::Problem::kMultisetEquality, ctx);
    benchmark::DoNotOptimize(decided);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      encoded.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_Decider)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_checksort");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  RunScalingTable(rstlab::problems::Problem::kCheckSort,
                  "E3a: CHECK-SORT in ST(O(log N), O(n + log N), 5)");
  RunScalingTable(
      rstlab::problems::Problem::kMultisetEquality,
      "E3b: MULTISET-EQUALITY in ST(O(log N), O(n + log N), 5)");
  RunScalingTable(rstlab::problems::Problem::kSetEquality,
                  "E3c: SET-EQUALITY in ST(O(log N), O(n + log N), 5)");
  RunTracedExemplar(obs);
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
