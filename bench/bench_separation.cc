// Experiment E15 (Theorem 6 + Theorem 8 + Corollaries 9/10): the
// separation picture at a glance.
//
// One table per input size compares, for MULTISET-EQUALITY:
//  * the deterministic sort-based decider  — Theta(log N) scans (ST side,
//    tight by Theorem 6);
//  * the randomized fingerprint tester     — 2 scans, one-sided error
//    (co-RST side, Theorem 8(a));
//  * the nondeterministic verifier         — constant scans given a
//    guess (NST side, Theorem 8(b)).
//
// Theorem 6 says no RST machine with o(log N) scans and
// O(N^{1/4}/log N) internal bits exists for these problems; together
// with the rows below that separates ST, RST, co-RST and NST at these
// resource bounds (Corollary 9) and lifts to sorting (Corollary 10).

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/complexity.h"
#include "core/experiment.h"
#include "fingerprint/fingerprint.h"
#include "nst/certificate.h"
#include "nst/paper_verifier.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "problems/generators.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;

void RunSeparationTable() {
  Table table("E15: separation summary for MULTISET-EQUALITY",
              {"machine", "m", "N", "scans", "int.bits", "error profile",
               "class (paper)"});
  Rng rng(1515);
  for (std::size_t m : {16u, 256u}) {
    const std::size_t n = 16;
    rstlab::problems::Instance inst =
        rstlab::problems::EqualMultisets(m, n, rng);
    const std::string encoded = inst.Encode();

    {
      rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
      ctx.LoadInput(encoded);
      auto decided = rstlab::sorting::DecideOnTapes(
          rstlab::problems::Problem::kMultisetEquality, ctx);
      const auto report = ctx.Report();
      table.AddRow({"deterministic sort+scan", std::to_string(m),
                    std::to_string(inst.N()),
                    std::to_string(report.scan_bound),
                    std::to_string(report.internal_space), "none",
                    "ST(O(log N), ., O(1)) - tight per Thm 6"});
    }
    {
      rstlab::stmodel::StContext ctx(1);
      ctx.LoadInput(encoded);
      auto outcome =
          rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
      const auto report = ctx.Report();
      table.AddRow({"randomized fingerprint", std::to_string(m),
                    std::to_string(inst.N()),
                    std::to_string(report.scan_bound),
                    std::to_string(report.internal_space),
                    "false pos <= 1/2",
                    "co-RST(2, O(log N), 1) - Thm 8(a)"});
      (void)outcome;
    }
    if (m <= 16) {
      auto cert = rstlab::nst::FindHonestCertificate(
          rstlab::problems::Problem::kMultisetEquality, inst);
      rstlab::stmodel::StContext ctx(3);
      ctx.LoadInput(encoded);
      auto run = rstlab::nst::RunPaperVerifier(
          rstlab::problems::Problem::kMultisetEquality, inst, *cert, ctx);
      const auto report = ctx.Report();
      table.AddRow({"nondeterministic verify", std::to_string(m),
                    std::to_string(inst.N()),
                    std::to_string(report.scan_bound),
                    std::to_string(report.internal_space),
                    "none (given guess)",
                    "NST(3, O(log N), 2) - Thm 8(b)"});
      (void)run;
    }
  }
  table.Print(std::cout);
  std::cout
      << "  Theorem 6 (lower bound): no RST(o(log N), O(N^{1/4}/log N),"
         " O(1)) machine decides any of the three problems; hence\n"
      << "  Corollary 9: ST < RST < NST and RST != co-RST at these"
         " bounds, and Corollary 10: sorting is not in"
         " LasVegas-RST(o(log N), O(N^{1/4}/log N), O(1)).\n\n";
}

void RunLowerBoundRegimeTable() {
  // The Theorem 6 *regime* made concrete: the internal-memory budget
  // O(N^{1/4}/log N) against which the lower bound holds, tabulated so
  // the scale of the statement is visible.
  Table table("E15b: the Theorem 6 memory regime s(N) = N^{1/4}/log N",
              {"N", "s(N) bits", "deterministic scans (measured)"});
  Rng rng(99);
  auto s_of_n = rstlab::core::FourthRootOverLogSpace(1.0);
  for (std::size_t m : {64u, 256u, 1024u, 4096u}) {
    rstlab::problems::Instance inst =
        rstlab::problems::EqualMultisets(m, 16, rng);
    rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    auto decided = rstlab::sorting::DecideOnTapes(
        rstlab::problems::Problem::kMultisetEquality, ctx);
    (void)decided;
    table.AddRow({std::to_string(inst.N()),
                  std::to_string(s_of_n(inst.N())),
                  std::to_string(ctx.Report().scan_bound)});
  }
  table.Print(std::cout);
  std::cout << "  the measured Theta(log N) scans of the deterministic"
               " decider are optimal: with o(log N) scans even"
               " randomization (one-sided) cannot help below this memory"
               " budget\n\n";
}

void BM_DeterministicVsRandomized(benchmark::State& state) {
  const bool randomized = state.range(1) == 1;
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 16, rng);
  const std::string encoded = inst.Encode();
  for (auto _ : state) {
    if (randomized) {
      rstlab::stmodel::StContext ctx(1);
      ctx.LoadInput(encoded);
      benchmark::DoNotOptimize(
          rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng));
    } else {
      rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes);
      ctx.LoadInput(encoded);
      benchmark::DoNotOptimize(rstlab::sorting::DecideOnTapes(
          rstlab::problems::Problem::kMultisetEquality, ctx));
    }
  }
}
BENCHMARK(BM_DeterministicVsRandomized)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_separation");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  RunSeparationTable();
  RunLowerBoundRegimeTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
