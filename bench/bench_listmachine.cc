// Experiments E6 and E16 (Lemmas 30/31/32): growth dynamics of list
// machines and the input-length independence of skeleton counts.
//
// Paper rows reproduced:
//  * Lemma 30: total list length <= (t+1)^r * m, cell size
//    <= 11 * max(t,2)^r;
//  * Lemma 31: run length <= k + k (t+1)^{r+1} m;
//  * Lemma 32: the number of distinct skeletons over many inputs stays
//    far below the (astronomical) bound and — the load-bearing fact —
//    does not grow with the value length n.

#include <iostream>
#include <set>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "listmachine/analysis.h"
#include "listmachine/machines.h"
#include "listmachine/skeleton.h"
#include "obs/flags.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using namespace rstlab::listmachine;

std::vector<std::uint64_t> Iota(std::size_t count, std::uint64_t start) {
  std::vector<std::uint64_t> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = start + i;
  return v;
}

void RunGrowthTable() {
  Table table("E6: Lemma 30/31 growth bounds on ZigZag machines",
              {"t", "sweeps", "m", "r", "lists", "bound", "cellsz",
               "bound", "runlen", "bound", "ok"});
  for (const auto& [t, sweeps, m] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {2, 1, 8},
           {2, 2, 8},
           {2, 4, 8},
           {3, 2, 8},
           {3, 4, 8},
           {4, 3, 16},
           {2, 6, 32}}) {
    ZigZagMachine machine(t, sweeps, m);
    ListMachineExecutor exec(&machine);
    auto run = exec.RunDeterministic(Iota(m, 0), 10000000);
    if (!run.ok()) continue;
    GrowthCheck growth = CheckGrowth(run.value(), m);
    const std::size_t k = sweeps * m + 2;
    RunShapeCheck shape = CheckRunShape(run.value(), m, k);
    table.AddRow(
        {std::to_string(t), std::to_string(sweeps), std::to_string(m),
         std::to_string(run.value().ScanBound()),
         std::to_string(growth.measured_total_list_length),
         std::to_string(growth.bound_total_list_length),
         std::to_string(growth.measured_max_cell_size),
         std::to_string(growth.bound_max_cell_size),
         std::to_string(shape.run_length),
         std::to_string(shape.bound_run_length),
         growth.within_bounds && shape.within_bounds ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void RunSkeletonCountTable() {
  Table table(
      "E16: Lemma 32 — skeleton count is independent of value length n",
      {"machine", "value_bits", "inputs", "distinct_skeletons",
       "log2(bound)"});
  Rng rng(5150);
  const std::size_t m = 4;
  for (std::size_t value_bits : {4u, 16u, 48u}) {
    ReverseCompareMachine machine(m, m);
    ListMachineExecutor exec(&machine);
    std::set<std::string> skeletons;
    const int inputs = 200;
    for (int i = 0; i < inputs; ++i) {
      std::vector<std::uint64_t> input(2 * m);
      for (auto& v : input) {
        v = rng.UniformBelow(std::uint64_t{1} << value_bits);
      }
      auto run = exec.RunDeterministic(input, 100000);
      if (!run.ok()) continue;
      skeletons.insert(BuildSkeleton(run.value()).Serialize());
    }
    // k for the reverse-compare machine: ~2m states + finals.
    const double log_bound = Lemma32LogBound(2 * m, 2 * m + 3, 2, 3);
    table.AddRow({"ReverseCompare(m=4)", std::to_string(value_bits),
                  std::to_string(inputs),
                  std::to_string(skeletons.size()),
                  FormatDouble(log_bound, 0)});
  }
  table.Print(std::cout);
  std::cout << "  paper: #skeletons <= (m+k+3)^{12m(t+1)^{2r+2}+24(t+1)^r},"
               " independent of n (step 8 of the Lemma 21 proof)\n\n";
}

void BM_ZigZagRun(benchmark::State& state) {
  const std::size_t sweeps = static_cast<std::size_t>(state.range(0));
  ZigZagMachine machine(2, sweeps, 16);
  ListMachineExecutor exec(&machine);
  const auto input = Iota(16, 0);
  for (auto _ : state) {
    auto run = exec.RunDeterministic(input, 10000000);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_ZigZagRun)->Arg(1)->Arg(3)->Arg(5);

void BM_SkeletonBuild(benchmark::State& state) {
  ReverseCompareMachine machine(8, 8);
  ListMachineExecutor exec(&machine);
  auto run = exec.RunDeterministic(Iota(16, 0), 100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSkeleton(run.value()).Serialize());
  }
}
BENCHMARK(BM_SkeletonBuild);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_listmachine");
  RunGrowthTable();
  RunSkeletonCountTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
