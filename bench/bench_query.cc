// Experiment E21 (Theorem 11, engine form): the streaming query engine
// end to end.
//
//  * E21a: the symmetric-difference plan over an N sweep of adversarial
//    relation pairs — measured (r, s) must stay inside the plan's
//    symbolic certificate evaluated at that N, and the scan bound must
//    fit c_Q * log2(N) (Theorem 11's upper-bound shape);
//  * E21b: symbolic dominance — the certificate itself is checked
//    against the Theorem 11 envelope coeff * ceil(log2 N) statically at
//    every N = 2^8 .. 2^24 (the RST018 admission gate's sweep);
//  * E21c: out-of-core — a Section 4 XML document of >= 2^24 tape cells
//    evaluated on the file backend with a per-tape cache thousands of
//    times smaller than the input, through the parallel k-way sort
//    lanes, with the RST015 post-check live. `--small` (the CI mode)
//    shrinks the document to ~2^19 cells; the committed BENCH row is
//    the full-size run.

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "check/query_certificate.h"
#include "core/experiment.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "parallel/bench_recorder.h"
#include "query/engine/shared_scan.h"
#include "query/relalg.h"
#include "query/workload.h"
#include "stmodel/st_context.h"

namespace {

using rstlab::core::FormatDouble;
using rstlab::core::Table;
using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;
using namespace rstlab::query;

double Seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

engine::QueryOutcome RunSymdiff(rstlab::stmodel::StContext& ctx,
                                const engine::SharedScanOptions& options,
                                bool xml) {
  const RelAlgExprPtr plan = xml
                                 ? SymmetricDifferenceQuery("set1", "set2")
                                 : SymmetricDifferenceQuery();
  auto outcomes = engine::ExecuteSharedScan(
      ctx, {engine::QueryRequest{plan, "symdiff"}}, options);
  if (!outcomes.ok()) {
    engine::QueryOutcome failed;
    failed.status = outcomes.status();
    return failed;
  }
  return std::move(outcomes.value()[0]);
}

/// E21a: N sweep of the symmetric-difference plan, measured bill vs the
/// certificate evaluated at that N.
void RunSweepTable(BenchRecorder& recorder) {
  Table table("E21a: symdiff plan, measured (r, s) vs certificate at N",
              {"tuples", "N", "ms", "r", "cert r(N)", "s", "cert s(N)",
               "|R1^R2|"});
  for (std::size_t tuples : {64u, 256u, 1024u, 4096u}) {
    RelationPairSpec spec;
    spec.seed = 0xE21 + tuples;
    spec.num_tuples = tuples;
    spec.value_len = 16;
    spec.perturbations = tuples / 8;
    const RelationPairWorkload workload = MakeRelationPair(spec);

    rstlab::stmodel::StContext ctx(1);
    ctx.LoadInput(workload.stream);
    const std::size_t n = ctx.input_size();
    engine::SharedScanOptions options;
    options.admit = true;  // full admission gate + RST015 post-check
    const auto start = std::chrono::steady_clock::now();
    const engine::QueryOutcome outcome = RunSymdiff(ctx, options, false);
    const double wall = Seconds(start);
    if (!outcome.status.ok()) {
      std::cout << "  ERROR at tuples=" << tuples << ": "
                << outcome.status << "\n";
      continue;
    }
    if (outcome.result.tuples.size() != workload.symmetric_difference) {
      std::cout << "  WARNING: symdiff size "
                << outcome.result.tuples.size() << " != ground truth "
                << workload.symmetric_difference << "\n";
    }
    table.AddRow(
        {std::to_string(tuples), std::to_string(n),
         FormatDouble(wall * 1e3), std::to_string(outcome.cost.scan_bound),
         std::to_string(outcome.certificate.scan_bound.Eval(n)),
         std::to_string(outcome.cost.internal_bits),
         std::to_string(outcome.certificate.internal_bits.Eval(n)),
         std::to_string(outcome.result.tuples.size())});
    recorder.Record(
        "E21a_symdiff_mem_" + std::to_string(n), /*trials=*/1, wall,
        Checksum64({outcome.cost.scan_bound, outcome.cost.internal_bits,
                    outcome.cost.tuples_out,
                    outcome.result.tuples.size()}));
  }
  table.Print(std::cout);
  std::cout << "  (rows execute under --admit: the RST018 gate and the "
               "RST015 post-check both passed)\n\n";
}

/// E21b: the certificate's symbolic dominance over the whole Theorem 11
/// envelope sweep — no execution, pure BoundExpr arithmetic.
void RunEnvelopeTable(BenchRecorder& recorder) {
  // A representative symdiff certificate: the shape AnalyzePlan derives
  // for ((R1 - R2) + (R2 - R1)) over degree-1 lanes with 16-bit values.
  rstlab::check::QueryPlanShape shape;
  shape.leaf_scans = 4;
  shape.merge_ops = 2;
  shape.sort_degrees = {1, 1, 1, 1, 1};
  shape.operators = 11;
  shape.max_field_len = 19;
  const rstlab::check::QueryCertificate cert =
      rstlab::check::CertifyQueryPlan(shape);

  Table table("E21b: certificate vs Theorem 11 envelope, N = 2^8..2^24",
              {"N", "cert r(N)", "envelope r(N)", "cert s(N)",
               "envelope s(N)"});
  std::vector<std::uint64_t> evals;
  std::uint64_t previous = 0;
  bool monotone = true;
  for (std::size_t log_n = 8; log_n <= 24; log_n += 4) {
    const std::size_t n = std::size_t{1} << log_n;
    const std::uint64_t r = cert.scan_bound.Eval(n);
    const std::uint64_t s = cert.internal_bits.Eval(n);
    monotone = monotone && r >= previous;
    previous = r;
    evals.push_back(r);
    evals.push_back(s);
    table.AddRow({"2^" + std::to_string(log_n), std::to_string(r),
                  std::to_string((std::uint64_t{1} << 12) * log_n),
                  std::to_string(s),
                  std::to_string((std::uint64_t{1} << 22) * log_n)});
  }
  table.Print(std::cout);
  const rstlab::Status dominated = rstlab::check::CheckTheorem11Envelope(
      cert, /*scan_coeff=*/1 << 12, /*bits_coeff=*/1 << 22,
      /*n_lo=*/1 << 8, /*n_hi=*/std::size_t{1} << 24);
  std::cout << "  dominance 2^8..2^24: "
            << (dominated.ok() && monotone ? "HOLDS" : "VIOLATED");
  if (!dominated.ok()) std::cout << " (" << dominated << ")";
  std::cout << "  [" << cert.ToString() << "]\n\n";
  recorder.Record("E21b_envelope_sweep", /*trials=*/evals.size() / 2,
                  0.0,
                  Checksum64({evals[0], evals[1], evals[evals.size() - 2],
                              evals[evals.size() - 1],
                              dominated.ok() && monotone ? 1u : 0u}));
}

/// E21c: the >= 2^24-cell XML document out-of-core.
void RunOutOfCoreTable(BenchRecorder& recorder, bool small) {
  // 2 x 131072 items of ~80 cells each: ~21M tape cells (> 2^24). The
  // per-tape cache is 64 x 4096 = 256 KiB — about 1/80th of the input —
  // so lanes and spill files stream through extmem.
  XmlWorkloadSpec spec;
  spec.seed = 0xE21C;
  spec.set1_values = small ? 4096 : 131072;
  spec.set2_values = spec.set1_values;
  spec.value_len = 40;
  spec.nesting_depth = 1;
  spec.perturbations = 16;
  const XmlWorkload workload = MakeXmlWorkload(spec);

  rstlab::extmem::StorageOptions storage;
  storage.backend = rstlab::extmem::BackendKind::kFile;
  storage.block_size = 4096;
  storage.cache_blocks = 64;
  storage.readahead_blocks = 4;

  engine::SharedScanOptions options;
  options.xml = true;
  options.admit = true;
  options.config.threads = 4;
  options.config.sort.threads = 4;
  options.config.sort.fanout = 8;
  options.config.sort.run_length = 1024;

  rstlab::stmodel::StContext ctx(1, storage);
  ctx.LoadInput(workload.document);
  const std::size_t n = ctx.input_size();
  const auto start = std::chrono::steady_clock::now();
  const engine::QueryOutcome outcome = RunSymdiff(ctx, options, true);
  const double wall = Seconds(start);

  Table table("E21c: XML symdiff out-of-core (file backend, cache 256 KiB)",
              {"N", "secs", "r", "cert r(N)", "s", "cert s(N)",
               "|set1^set2|"});
  if (!outcome.status.ok()) {
    std::cout << "  ERROR: " << outcome.status << "\n";
    return;
  }
  table.AddRow({std::to_string(n), FormatDouble(wall),
                std::to_string(outcome.cost.scan_bound),
                std::to_string(outcome.certificate.scan_bound.Eval(n)),
                std::to_string(outcome.cost.internal_bits),
                std::to_string(outcome.certificate.internal_bits.Eval(n)),
                std::to_string(outcome.result.tuples.size())});
  table.Print(std::cout);
  if (outcome.result.tuples.size() != workload.symmetric_difference) {
    std::cout << "  WARNING: symdiff size != ground truth "
              << workload.symmetric_difference << "\n";
  }
  std::cout << "  (admitted through the RST018 gate; measured bill "
               "passed the RST015 post-check at N = "
            << n << ")\n\n";
  recorder.Record(
      std::string("E21c_xml_outofcore_file_") + (small ? "small_" : "") +
          std::to_string(n),
      /*trials=*/1, wall,
      Checksum64({outcome.cost.scan_bound, outcome.cost.internal_bits,
                  outcome.cost.tuples_out,
                  outcome.result.tuples.size()}));
}

void BM_SymdiffSharedScan(benchmark::State& state) {
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  RelationPairSpec spec;
  spec.seed = 1;
  spec.num_tuples = tuples;
  spec.value_len = 16;
  spec.perturbations = tuples / 8;
  const RelationPairWorkload workload = MakeRelationPair(spec);
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(1);
    ctx.LoadInput(workload.stream);
    engine::SharedScanOptions options;
    const engine::QueryOutcome outcome = RunSymdiff(ctx, options, false);
    benchmark::DoNotOptimize(outcome.cost.scan_bound);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tuples) *
                          state.iterations());
}
BENCHMARK(BM_SymdiffSharedScan)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_query");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  BenchRecorder recorder("bench_query", /*threads=*/4);
  recorder.set_metrics(obs.metrics());
  RunSweepTable(recorder);
  RunEnvelopeTable(recorder);
  RunOutOfCoreTable(recorder, small);
  obs.Finish(std::cout);
  if (auto written = recorder.Write(); !written.ok()) {
    std::cerr << "bench_query: " << written.status() << "\n";
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
