// Experiment E1/E2 (Theorem 8(a) + Claim 1): the randomized multiset
// equality tester.
//
// Paper rows reproduced:
//  * MULTISET-EQUALITY is in co-RST(2, O(log N), 1): the tape run uses
//    exactly 2 sequential scans, O(log N) internal bits, 1 tape, never a
//    false negative, and false positives with probability <= 1/2
//    (measured rates are far smaller).
//  * Claim 1: the probability that some pair v_i != v'_j collides mod a
//    random prime <= k is O(1/m).

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "fingerprint/fingerprint.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "util/bitstring.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;

void RunErrorTable() {
  Table table("E1: Theorem 8(a) fingerprint tester, one-sided error",
              {"m", "n", "N", "scans", "int.bits", "falseneg",
               "falsepos", "paper"});
  Rng rng(20260705);
  for (std::size_t m : {16u, 64u, 256u, 1024u}) {
    const std::size_t n = 32;
    std::size_t false_neg = 0;
    std::size_t false_pos = 0;
    std::uint64_t scans = 0;
    std::size_t internal_bits = 0;
    std::size_t input_size = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      const bool equal = t % 2 == 0;
      rstlab::problems::Instance inst =
          equal ? rstlab::problems::EqualMultisets(m, n, rng)
                : rstlab::problems::PerturbedMultisets(m, n, 1, rng);
      rstlab::stmodel::StContext ctx(1);
      ctx.LoadInput(inst.Encode());
      auto outcome =
          rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
      if (!outcome.ok()) continue;
      if (equal && !outcome.value().accepted) ++false_neg;
      if (!equal && outcome.value().accepted) ++false_pos;
      scans = ctx.Report().scan_bound;
      internal_bits = ctx.Report().internal_space;
      input_size = ctx.input_size();
    }
    table.AddRow({std::to_string(m), std::to_string(n),
                  std::to_string(input_size), std::to_string(scans),
                  std::to_string(internal_bits),
                  FormatDouble(false_neg / 100.0),
                  FormatDouble(false_pos / 100.0),
                  "fn=0, fp<=0.5, r=2, s=O(logN)"});
  }
  table.Print(std::cout);
}

void RunClaim1Table() {
  Table table("E2: Claim 1 collision probability of the prime residue map",
              {"m", "n", "collision_rate", "bound O(1/m)"});
  Rng rng(77);
  for (std::size_t m : {4u, 8u, 16u, 32u}) {
    const std::size_t n = 24;
    rstlab::problems::Instance inst =
        rstlab::problems::PerturbedMultisets(m, n, m / 2, rng);
    const double rate =
        rstlab::fingerprint::EstimateClaim1CollisionRate(inst, 200, rng);
    table.AddRow({std::to_string(m), std::to_string(n),
                  FormatDouble(rate),
                  FormatDouble(1.0 / static_cast<double>(m))});
  }
  table.Print(std::cout);
}

void RunExactProbabilityTable() {
  Table table(
      "E1b: EXACT acceptance probabilities (full choice enumeration)",
      {"m", "n", "instances", "worst false-pos", "paper bound"});
  // Exhaust every unequal instance at tiny (m, n) and compute the true
  // worst-case acceptance probability over all (p1, x) choices.
  for (const auto& [m, n] :
       std::vector<std::pair<std::size_t, std::size_t>>{{2, 2}, {2, 3}}) {
    double worst = 0.0;
    std::size_t count = 0;
    const std::uint64_t values = std::uint64_t{1} << n;
    for (std::uint64_t a = 0; a < values; ++a) {
      for (std::uint64_t b = a; b < values; ++b) {
        for (std::uint64_t c = 0; c < values; ++c) {
          for (std::uint64_t d = c; d < values; ++d) {
            rstlab::problems::Instance inst;
            inst.first = {rstlab::BitString::FromUint64(a, n),
                          rstlab::BitString::FromUint64(b, n)};
            inst.second = {rstlab::BitString::FromUint64(c, n),
                           rstlab::BitString::FromUint64(d, n)};
            if (rstlab::problems::RefMultisetEquality(inst)) continue;
            auto p = rstlab::fingerprint::ExactAcceptProbability(inst);
            if (!p.ok()) continue;
            worst = std::max(worst, p.value());
            ++count;
          }
        }
      }
    }
    (void)m;
    table.AddRow({"2", std::to_string(n), std::to_string(count),
                  FormatDouble(worst, 4), "1/3 + O(1/m) <= 0.5"});
  }
  table.Print(std::cout);
  std::cout << "  the exact worst case sits far below the bound: the"
               " analysis charges p1/(p2-1) <= 1/3 for the polynomial"
               " zero event, while actual zero counts are tiny\n\n";
}

void BM_FingerprintTape(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 32, rng);
  const std::string encoded = inst.Encode();
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(1);
    ctx.LoadInput(encoded);
    auto outcome =
        rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      encoded.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_FingerprintTape)->Arg(64)->Arg(256)->Arg(1024);

void BM_FingerprintHost(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 32, rng);
  for (auto _ : state) {
    auto outcome = rstlab::fingerprint::TestMultisetEquality(inst, rng);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_FingerprintHost)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  RunErrorTable();
  RunClaim1Table();
  RunExactProbabilityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
