// Experiment E1/E2 (Theorem 8(a) + Claim 1): the randomized multiset
// equality tester.
//
// Paper rows reproduced:
//  * MULTISET-EQUALITY is in co-RST(2, O(log N), 1): the tape run uses
//    exactly 2 sequential scans, O(log N) internal bits, 1 tape, never a
//    false negative, and false positives with probability <= 1/2
//    (measured rates are far smaller).
//  * Claim 1: the probability that some pair v_i != v'_j collides mod a
//    random prime <= k is O(1/m).
//
// All Monte-Carlo loops run on the parallel trial engine: trial t's
// randomness is derived from (experiment seed, t) alone, so every tally
// below is bit-identical for any --threads value; per-loop wall clock
// and throughput land in BENCH_trials.json.

#include <chrono>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "fingerprint/batch.h"
#include "fingerprint/fingerprint.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "obs/ring_sink.h"
#include "obs/timeline.h"
#include "parallel/bench_recorder.h"
#include "parallel/seed_sequence.h"
#include "parallel/trial_runner.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "util/bitstring.h"
#include "stmodel/st_context.h"
#include "util/random.h"
#include "util/simd.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;
using rstlab::parallel::SeedSequence;
using rstlab::parallel::TrialRunner;

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void RunErrorTable(TrialRunner& runner, BenchRecorder& recorder) {
  Table table("E1: Theorem 8(a) fingerprint tester, one-sided error",
              {"m", "n", "N", "scans", "int.bits", "falseneg",
               "falsepos", "falsepos(x8)", "paper"});
  struct E1Tally {
    std::uint64_t equal_trials = 0;
    std::uint64_t unequal_trials = 0;
    std::uint64_t false_neg = 0;
    std::uint64_t false_pos = 0;
    std::uint64_t amplified_false_neg = 0;
    std::uint64_t amplified_false_pos = 0;
    std::uint64_t scans = 0;          // max over trials
    std::uint64_t internal_bits = 0;  // max over trials
    std::uint64_t input_size = 0;     // max over trials
    void Merge(const E1Tally& o) {
      equal_trials += o.equal_trials;
      unequal_trials += o.unequal_trials;
      false_neg += o.false_neg;
      false_pos += o.false_pos;
      amplified_false_neg += o.amplified_false_neg;
      amplified_false_pos += o.amplified_false_pos;
      scans = std::max(scans, o.scans);
      internal_bits = std::max(internal_bits, o.internal_bits);
      input_size = std::max(input_size, o.input_size);
    }
  };
  for (std::size_t m : {16u, 64u, 256u, 1024u}) {
    const std::size_t n = 32;
    const std::uint64_t trials = 200;
    const SeedSequence seeds(20260705 + m);
    const auto start = std::chrono::steady_clock::now();
    const E1Tally tally = runner.RunSeeded<E1Tally>(
        trials, seeds, [&](std::uint64_t t, Rng& rng, E1Tally& local) {
          const bool equal = t % 2 == 0;
          rstlab::problems::Instance inst =
              equal ? rstlab::problems::EqualMultisets(m, n, rng)
                    : rstlab::problems::PerturbedMultisets(m, n, 1, rng);
          rstlab::stmodel::StContext ctx(1);
          ctx.LoadInput(inst.Encode());
          auto outcome =
              rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
          if (!outcome.ok()) return;
          // 8-lane amplified batch on the same instance: one pass over
          // the values evaluates 8 independent parameter choices.
          auto amplified = rstlab::fingerprint::TestMultisetEqualityAmplified(
              inst, 8, rng);
          if (equal) {
            ++local.equal_trials;
            if (!outcome.value().accepted) ++local.false_neg;
            if (amplified.ok() && !amplified.value().accepted) {
              ++local.amplified_false_neg;
            }
          } else {
            ++local.unequal_trials;
            if (outcome.value().accepted) ++local.false_pos;
            if (amplified.ok() && amplified.value().accepted) {
              ++local.amplified_false_pos;
            }
          }
          local.scans = std::max(local.scans, ctx.Report().scan_bound);
          local.internal_bits = std::max<std::uint64_t>(
              local.internal_bits, ctx.Report().internal_space);
          local.input_size = std::max<std::uint64_t>(local.input_size,
                                                     ctx.input_size());
        });
    const double wall = SecondsSince(start);
    recorder.Record(
        "E1.m=" + std::to_string(m), trials, wall,
        Checksum64({tally.false_neg, tally.false_pos, tally.scans,
                    tally.internal_bits, tally.equal_trials,
                    tally.unequal_trials, tally.amplified_false_neg,
                    tally.amplified_false_pos}));
    // Rates over the trials that actually ran on each side, not a
    // hard-coded constant.
    const double fn_rate =
        tally.equal_trials == 0
            ? 0.0
            : static_cast<double>(tally.false_neg) /
                  static_cast<double>(tally.equal_trials);
    const double fp_rate =
        tally.unequal_trials == 0
            ? 0.0
            : static_cast<double>(tally.false_pos) /
                  static_cast<double>(tally.unequal_trials);
    const double amp_fp_rate =
        tally.unequal_trials == 0
            ? 0.0
            : static_cast<double>(tally.amplified_false_pos) /
                  static_cast<double>(tally.unequal_trials);
    table.AddRow({std::to_string(m), std::to_string(n),
                  std::to_string(tally.input_size),
                  std::to_string(tally.scans),
                  std::to_string(tally.internal_bits),
                  FormatDouble(fn_rate), FormatDouble(fp_rate),
                  FormatDouble(amp_fp_rate),
                  "fn=0, fp<=0.5, r=2, s=O(logN)"});
  }
  table.Print(std::cout);
}

void RunClaim1Table(TrialRunner& runner, BenchRecorder& recorder) {
  Table table("E2: Claim 1 collision probability of the prime residue map",
              {"m", "n", "collision_rate", "bound O(1/m)"});
  Rng rng(77);
  for (std::size_t m : {4u, 8u, 16u, 32u}) {
    const std::size_t n = 24;
    const std::uint64_t trials = 200;
    rstlab::problems::Instance inst =
        rstlab::problems::PerturbedMultisets(m, n, m / 2, rng);
    const auto start = std::chrono::steady_clock::now();
    // The batched estimator draws 8 primes per group and evaluates all
    // residues in one pass over the values; the tally is bit-identical
    // at any --threads and --simd setting.
    const rstlab::fingerprint::Claim1Estimate estimate =
        rstlab::fingerprint::EstimateClaim1CollisionRateBatched(
            inst, trials, /*seed=*/77 * m, runner, /*lanes=*/8);
    const double wall = SecondsSince(start);
    recorder.Record("E2.m=" + std::to_string(m), trials, wall,
                    Checksum64({estimate.trials, estimate.collisions}));
    table.AddRow({std::to_string(m), std::to_string(n),
                  FormatDouble(estimate.rate()),
                  FormatDouble(1.0 / static_cast<double>(m))});
  }
  table.Print(std::cout);
}

void RunExactProbabilityTable(TrialRunner& runner,
                              BenchRecorder& recorder) {
  Table table(
      "E1b: EXACT acceptance probabilities (full choice enumeration)",
      {"m", "n", "instances", "worst false-pos", "paper bound"});
  // Exhaust every unequal instance at tiny (m, n) and compute the true
  // worst-case acceptance probability over all (p1, x) choices. Each
  // ExactAcceptProbability call fans its p1 prime axis over the runner.
  for (const auto& [m, n] :
       std::vector<std::pair<std::size_t, std::size_t>>{{2, 2}, {2, 3}}) {
    double worst = 0.0;
    std::size_t count = 0;
    const std::uint64_t values = std::uint64_t{1} << n;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t a = 0; a < values; ++a) {
      for (std::uint64_t b = a; b < values; ++b) {
        for (std::uint64_t c = 0; c < values; ++c) {
          for (std::uint64_t d = c; d < values; ++d) {
            rstlab::problems::Instance inst;
            inst.first = {rstlab::BitString::FromUint64(a, n),
                          rstlab::BitString::FromUint64(b, n)};
            inst.second = {rstlab::BitString::FromUint64(c, n),
                           rstlab::BitString::FromUint64(d, n)};
            if (rstlab::problems::RefMultisetEquality(inst)) continue;
            auto p =
                rstlab::fingerprint::ExactAcceptProbability(inst, runner);
            if (!p.ok()) continue;
            worst = std::max(worst, p.value());
            ++count;
          }
        }
      }
    }
    const double wall = SecondsSince(start);
    recorder.Record("E1b.n=" + std::to_string(n), count, wall,
                    Checksum64({static_cast<std::uint64_t>(count),
                                static_cast<std::uint64_t>(worst * 1e9)}));
    (void)m;
    table.AddRow({"2", std::to_string(n), std::to_string(count),
                  FormatDouble(worst, 4), "1/3 + O(1/m) <= 0.5"});
  }
  table.Print(std::cout);
  std::cout << "  the exact worst case sits far below the bound: the"
               " analysis charges p1/(p2-1) <= 1/3 for the polynomial"
               " zero event, while actual zero counts are tiny\n\n";
}

// E1c: roofline-style microbench of the batched fingerprint engine on
// the A1 workload (m=32, n=24, 8 parameter lanes), single thread. The
// scalar path is the lane-major reference schedule (one Barrett
// PowMod per lane per value — exactly AcceptsWithParams in a loop);
// lanes4/lanes8 run the value-major one-pass Shoup kernels. All three
// must produce bit-identical sums; the table reports lane-value
// throughput and the speedup over scalar.
void RunRooflineTable(BenchRecorder& recorder) {
  Table table("E1c: batched engine roofline (A1 workload, 1 thread,"
              " 8 lanes)",
              {"path", "vectorized", "lane-values/s", "speedup",
               "sums checksum"});
  const std::size_t m = 32;
  const std::size_t n = 24;
  const std::size_t lanes = 8;
  Rng rng(0xE1C);
  const rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, n, rng);
  auto batch =
      rstlab::fingerprint::SampleFingerprintParamBatch(m, n, lanes, rng);
  if (!batch.ok()) {
    std::cerr << "warning: E1c skipped: " << batch.status() << "\n";
    return;
  }
  const rstlab::simd::SimdLevel levels[] = {
      rstlab::simd::SimdLevel::kScalar, rstlab::simd::SimdLevel::kLanes4,
      rstlab::simd::SimdLevel::kLanes8};
  const std::uint64_t reps = 3000;
  const std::uint64_t lane_values = 2 * m * lanes;  // per Evaluate
  double scalar_rate = 0.0;
  std::uint64_t reference_checksum = 0;
  for (const rstlab::simd::SimdLevel level : levels) {
    const rstlab::fingerprint::BatchFingerprintEngine engine(batch.value(),
                                                             level);
    // Warm-up pass also supplies the checksummed tally.
    rstlab::fingerprint::BatchTally tally = engine.Evaluate(inst);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(engine.Evaluate(inst));
    }
    const double wall = SecondsSince(start);
    std::uint64_t checksum = 0;
    for (std::size_t lane = 0; lane < tally.sum_first.size(); ++lane) {
      checksum = Checksum64(
          {checksum, tally.sum_first[lane], tally.sum_second[lane]});
    }
    if (level == rstlab::simd::SimdLevel::kScalar) {
      reference_checksum = checksum;
    }
    const double rate =
        static_cast<double>(reps * lane_values) / wall;
    if (level == rstlab::simd::SimdLevel::kScalar) scalar_rate = rate;
    recorder.Record(
        std::string("E1c.") + rstlab::simd::SimdLevelName(level), reps,
        wall, checksum);
    table.AddRow({rstlab::simd::SimdLevelName(level),
                  engine.vectorized() ? "yes" : "no",
                  FormatDouble(rate, 0),
                  FormatDouble(rate / scalar_rate, 2) + "x",
                  (checksum == reference_checksum ? "== scalar"
                                                  : "MISMATCH")});
  }
  table.Print(std::cout);
  std::cout << "  same sums on every path; the one-pass Shoup kernels"
               " amortize the value scan across all 8 prime lanes\n\n";
}

// With --trace (or --metrics) active, runs one representative
// fingerprint test with tape-level tracing attached: the events land in
// the trace file and the scan timeline — the head-position envelope of
// the two Theorem 8(a) scans — is printed for eyeballing.
void RunTracedExemplar(rstlab::obs::ObsSession& obs) {
  if (obs.sink() == nullptr) return;
  Rng rng(42);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(8, 16, rng);
  rstlab::obs::RingSink ring;
  rstlab::obs::TeeSink tee(obs.sink(), &ring);
  rstlab::stmodel::StContext ctx(1);
  ctx.AttachTrace(&tee);
  ctx.LoadInput(inst.Encode());
  auto outcome = rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
  ctx.FlushTrace();
  std::cout << "traced exemplar (Theorem 8(a) run, m=8 n=16, "
            << (outcome.ok() && outcome.value().accepted ? "accepted"
                                                         : "rejected")
            << "):\n"
            << rstlab::obs::RenderScanTimeline(ring.Snapshot()) << "\n";
}

void BM_FingerprintTape(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 32, rng);
  const std::string encoded = inst.Encode();
  for (auto _ : state) {
    rstlab::stmodel::StContext ctx(1);
    ctx.LoadInput(encoded);
    auto outcome =
        rstlab::fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      encoded.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_FingerprintTape)->Arg(64)->Arg(256)->Arg(1024);

void BM_FingerprintHost(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  rstlab::problems::Instance inst =
      rstlab::problems::EqualMultisets(m, 32, rng);
  for (auto _ : state) {
    auto outcome = rstlab::fingerprint::TestMultisetEquality(inst, rng);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_FingerprintHost)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_fingerprint");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  const std::size_t threads =
      rstlab::parallel::ParseThreadsFlag(&argc, argv);
  const rstlab::simd::SimdLevel simd_level =
      rstlab::simd::ParseSimdFlag(&argc, argv);
  TrialRunner runner(threads);
  runner.set_trace(obs.sink());
  BenchRecorder recorder("bench_fingerprint", threads);
  recorder.set_metrics(obs.metrics());
  std::cout << "trial engine: threads=" << threads
            << " simd=" << rstlab::simd::SimdLevelName(simd_level)
            << "\n\n";
  RunErrorTable(runner, recorder);
  RunClaim1Table(runner, recorder);
  RunRooflineTable(recorder);
  RunExactProbabilityTable(runner, recorder);
  RunTracedExemplar(obs);
  if (auto written = recorder.Write(); written.ok()) {
    std::cout << "trial timings -> " << written.value() << "\n\n";
  } else {
    std::cerr << "warning: " << written.status() << "\n";
  }
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
