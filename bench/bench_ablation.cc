// Ablation experiments for the Theorem 8(a) design choices.
//
// A1 — modulus-size ablation: the paper picks the prime bound
//      k = m^3 * n * log(m^3 * n). Shrinking k raises the residue
//      collision rate and with it the false-positive rate; the table
//      sweeps k' in {mn, m^2 n, paper}.
// A2 — fixed-prime adversary: if p1 is FIXED instead of random, the
//      instance {v, w} vs {v + p1, w - p1} (equal residues, equal
//      fingerprints) is accepted with probability 1 despite being a
//      "no" instance — randomness over p1 is load-bearing, not an
//      implementation detail.
// A3 — x-randomization ablation: with x fixed to 1 the fingerprint
//      degenerates to comparing multiset sizes; any same-size unequal
//      multisets are accepted. Randomizing x over {1..p2-1} is what
//      turns residue multisets into a polynomial identity test.

#include <chrono>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "fingerprint/batch.h"
#include "fingerprint/fingerprint.h"
#include "fingerprint/prime.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "parallel/bench_recorder.h"
#include "parallel/seed_sequence.h"
#include "parallel/trial_runner.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "sorting/merge_sort.h"
#include "stmodel/st_context.h"
#include "util/bitstring.h"
#include "util/random.h"
#include "util/simd.h"

namespace {

using rstlab::BitString;
using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using rstlab::fingerprint::BatchFingerprintEngine;
using rstlab::fingerprint::BatchTally;
using rstlab::fingerprint::FingerprintParamBatch;
using rstlab::fingerprint::FingerprintParams;
using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;
using rstlab::parallel::SeedSequence;
using rstlab::parallel::TrialRunner;

/// Integer tally of trials attempted / trials fooled, merged by sum.
struct FoolTally {
  std::uint64_t attempted = 0;
  std::uint64_t fooled = 0;
  void Merge(const FoolTally& o) {
    attempted += o.attempted;
    fooled += o.fooled;
  }
  double rate() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(fooled) /
                                static_cast<double>(attempted);
  }
};

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Builds params with an explicitly chosen k (instead of the paper's).
rstlab::Result<FingerprintParams> ParamsWithK(std::uint64_t k, Rng& rng) {
  FingerprintParams params;
  params.k = std::max<std::uint64_t>(2, k);
  auto p1 = rstlab::fingerprint::RandomPrimeAtMost(params.k, rng);
  if (!p1.ok()) return p1.status();
  params.p1 = p1.value();
  auto p2 = rstlab::fingerprint::PrimeInBertrandInterval(params.k);
  if (!p2.ok()) return p2.status();
  params.p2 = p2.value();
  params.x = rng.UniformInRange(1, params.p2 - 1);
  return params;
}

void RunModulusAblation(TrialRunner& runner, BenchRecorder& recorder) {
  Table table("A1: fingerprint false-positive rate vs prime bound k",
              {"m", "n", "k choice", "k", "false_pos_rate", "paper bound"});
  const std::size_t m = 32;
  const std::size_t n = 24;
  struct Choice {
    const char* label;
    std::uint64_t k;
  };
  const std::uint64_t mn = static_cast<std::uint64_t>(m) * n;
  const std::uint64_t paper_k =
      static_cast<std::uint64_t>(m) * m * m * n * 25;  // ~ m^3 n log
  std::size_t choice_index = 0;
  for (const Choice& choice :
       {Choice{"m*n (tiny)", mn}, Choice{"m^2*n", mn * m},
        Choice{"m^3*n*log (paper)", paper_k}}) {
    const std::uint64_t trials = 400;
    const SeedSequence seeds(0xAB1000 + choice_index++);
    const auto start = std::chrono::steady_clock::now();
    // Each trial evaluates an 8-lane batch of independent parameter
    // draws at the chosen k in one pass over the instance values.
    const std::uint64_t lanes = 8;
    const FoolTally tally = runner.RunSeeded<FoolTally>(
        trials, seeds, [&](std::uint64_t, Rng& rng, FoolTally& local) {
          rstlab::problems::Instance inst =
              rstlab::problems::PerturbedMultisets(m, n, 1, rng);
          FingerprintParamBatch batch;
          for (std::uint64_t lane = 0; lane < lanes; ++lane) {
            auto params = ParamsWithK(choice.k, rng);
            if (!params.ok()) continue;
            batch.PushLane(params.value());
          }
          const BatchFingerprintEngine engine(batch);
          const BatchTally outcome = engine.Evaluate(inst);
          local.attempted += batch.lanes();
          local.fooled += outcome.accepted_count();
        });
    recorder.Record("A1.k=" + std::to_string(choice.k), trials,
                    SecondsSince(start),
                    Checksum64({tally.attempted, tally.fooled}));
    table.AddRow({std::to_string(m), std::to_string(n), choice.label,
                  std::to_string(choice.k), FormatDouble(tally.rate()),
                  "<= 0.5 at the paper's k"});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void RunFixedPrimeAdversary(TrialRunner& runner,
                            BenchRecorder& recorder) {
  Table table("A2: adversarial instance against a FIXED prime p1",
              {"p1 policy", "trials", "false_pos_rate", "note"});
  const std::size_t n = 40;
  const std::uint64_t fixed_p1 = 1009;  // any fixed prime
  const std::uint64_t trials = 300;

  // Adversarial construction: second list shifts one value up by p1 and
  // another down by p1 — all residues mod p1 unchanged, so the
  // fingerprint of the two lists is IDENTICAL for every x, yet the
  // multisets differ.
  auto adversarial = [&](Rng& r) {
    rstlab::problems::Instance inst;
    const std::uint64_t a =
        r.UniformInRange(fixed_p1 + 1, (1ULL << 30));
    const std::uint64_t b =
        r.UniformInRange(fixed_p1 + 1, (1ULL << 30));
    inst.first = {BitString::FromUint64(a, n),
                  BitString::FromUint64(b, n)};
    inst.second = {BitString::FromUint64(a + fixed_p1, n),
                   BitString::FromUint64(b - fixed_p1, n)};
    return inst;
  };

  // The Bertrand prime for the fixed policy is a constant of the
  // experiment; compute it once outside the trial loop.
  const std::uint64_t fixed_p2 =
      rstlab::fingerprint::PrimeInBertrandInterval(fixed_p1).value();
  struct A2Tally {
    std::uint64_t fooled_fixed = 0;
    std::uint64_t fooled_random = 0;
    void Merge(const A2Tally& o) {
      fooled_fixed += o.fooled_fixed;
      fooled_random += o.fooled_random;
    }
  };
  const SeedSequence seeds(0xAB2);
  const auto start = std::chrono::steady_clock::now();
  const A2Tally tally = runner.RunSeeded<A2Tally>(
      trials, seeds, [&](std::uint64_t, Rng& rng, A2Tally& local) {
        rstlab::problems::Instance inst = adversarial(rng);
        // Both policies ride one 2-lane batch: lane 0 fixes p1, lane 1
        // samples the paper's random p1 — a single pass over the values
        // evaluates the adversary against both.
        FingerprintParams fixed;
        fixed.k = fixed_p1;
        fixed.p1 = fixed_p1;
        fixed.p2 = fixed_p2;
        fixed.x = rng.UniformInRange(1, fixed.p2 - 1);
        FingerprintParamBatch batch;
        batch.PushLane(fixed);
        auto random_params =
            rstlab::fingerprint::SampleFingerprintParams(inst.m(), n, rng);
        if (random_params.ok()) batch.PushLane(random_params.value());
        const BatchTally outcome =
            BatchFingerprintEngine(batch).Evaluate(inst);
        local.fooled_fixed += outcome.lane_accepted[0];
        if (batch.lanes() > 1) {
          local.fooled_random += outcome.lane_accepted[1];
        }
      });
  recorder.Record("A2", trials, SecondsSince(start),
                  Checksum64({tally.fooled_fixed, tally.fooled_random}));
  table.AddRow(
      {"fixed p1 = 1009", std::to_string(trials),
       FormatDouble(tally.fooled_fixed / static_cast<double>(trials)),
       "adversary wins every time"});
  table.AddRow(
      {"random p1 <= k (paper)", std::to_string(trials),
       FormatDouble(tally.fooled_random / static_cast<double>(trials)),
       "adversary defeated"});
  table.Print(std::cout);
  std::cout << "  randomizing the prime is what defeats residue-aligned"
               " adversaries (step 2 of Theorem 8(a))\n\n";
}

void RunFixedXAblation(TrialRunner& runner, BenchRecorder& recorder) {
  Table table("A3: x randomization ablation",
              {"x policy", "false_pos_rate", "note"});
  const std::size_t m = 16;
  const std::size_t n = 24;
  const std::uint64_t trials = 300;
  struct A3Tally {
    std::uint64_t fooled_fixed_x = 0;
    std::uint64_t fooled_random_x = 0;
    void Merge(const A3Tally& o) {
      fooled_fixed_x += o.fooled_fixed_x;
      fooled_random_x += o.fooled_random_x;
    }
  };
  const SeedSequence seeds(0xAB3);
  const auto start = std::chrono::steady_clock::now();
  const A3Tally tally = runner.RunSeeded<A3Tally>(
      trials, seeds, [&](std::uint64_t, Rng& rng, A3Tally& local) {
        // Unequal multisets of the same size.
        rstlab::problems::Instance inst =
            rstlab::problems::PerturbedMultisets(m, n, 1, rng);
        auto params =
            rstlab::fingerprint::SampleFingerprintParams(m, n, rng);
        if (!params.ok()) return;
        FingerprintParams with_fixed_x = params.value();
        with_fixed_x.x = 1;  // degenerate: counts elements only
        // Both x policies share one 2-lane batch evaluation.
        FingerprintParamBatch batch;
        batch.PushLane(with_fixed_x);
        batch.PushLane(params.value());
        const BatchTally outcome =
            BatchFingerprintEngine(batch).Evaluate(inst);
        local.fooled_fixed_x += outcome.lane_accepted[0];
        local.fooled_random_x += outcome.lane_accepted[1];
      });
  recorder.Record(
      "A3", trials, SecondsSince(start),
      Checksum64({tally.fooled_fixed_x, tally.fooled_random_x}));
  table.AddRow(
      {"x = 1 (fixed)",
       FormatDouble(tally.fooled_fixed_x / static_cast<double>(trials)),
       "sum x^e == m always: accepts every same-size instance"});
  table.AddRow(
      {"x uniform in {1..p2-1} (paper)",
       FormatDouble(tally.fooled_random_x / static_cast<double>(trials)),
       "polynomial identity test"});
  table.Print(std::cout);
  std::cout << "\n";
}

void RunKWayAblation() {
  Table table("A4: k-way merge sort — tapes vs scans (Definition 1"
              " accounting)",
              {"k (aux tapes)", "passes", "scan bound r", "int.bits"});
  Rng rng(0xAB4);
  std::vector<std::string> fields;
  for (std::size_t i = 0; i < 1024; ++i) {
    fields.push_back(BitString::Random(16, rng).ToString());
  }
  std::string input;
  for (const auto& f : fields) {
    input += f;
    input += '#';
  }
  for (std::size_t k : {2u, 3u, 4u, 6u, 8u, 12u}) {
    rstlab::stmodel::StContext ctx(1 + k);
    ctx.LoadInput(input);
    std::vector<std::size_t> aux;
    for (std::size_t i = 1; i <= k; ++i) aux.push_back(i);
    rstlab::sorting::SortStats stats;
    if (!rstlab::sorting::SortFieldsOnTapesKWay(ctx, 0, aux, &stats)
             .ok()) {
      continue;
    }
    table.AddRow({std::to_string(k), std::to_string(stats.passes),
                  std::to_string(ctx.Report().scan_bound),
                  std::to_string(ctx.Report().internal_space)});
  }
  table.Print(std::cout);
  std::cout << "  passes shrink as ceil(log_k m), but r sums reversals"
               " over ALL tapes, so each pass costs ~2k rewinds — the"
               " measured optimum sits at moderate k, a trade-off the"
               " model's own cost definition makes visible.\n\n";
}

void BM_ParamsSampling(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rstlab::fingerprint::SampleFingerprintParams(
        static_cast<std::size_t>(state.range(0)), 32, rng));
  }
}
BENCHMARK(BM_ParamsSampling)->Arg(64)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_ablation");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  const std::size_t threads =
      rstlab::parallel::ParseThreadsFlag(&argc, argv);
  const rstlab::simd::SimdLevel simd_level =
      rstlab::simd::ParseSimdFlag(&argc, argv);
  TrialRunner runner(threads);
  runner.set_trace(obs.sink());
  BenchRecorder recorder("bench_ablation", threads);
  recorder.set_metrics(obs.metrics());
  std::cout << "trial engine: threads=" << threads
            << " simd=" << rstlab::simd::SimdLevelName(simd_level)
            << "\n\n";
  RunModulusAblation(runner, recorder);
  RunFixedPrimeAdversary(runner, recorder);
  RunFixedXAblation(runner, recorder);
  RunKWayAblation();
  if (auto written = recorder.Write(); written.ok()) {
    std::cout << "trial timings -> " << written.value() << "\n\n";
  } else {
    std::cerr << "warning: " << written.status() << "\n";
  }
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
