// Experiment E18: the out-of-core tape backend. Two questions:
//
//   (a) What does the first forward scan cost per cell? The append path
//       used to resize the cell vector on every head move; growth is now
//       block-deferred in the storage layer, so mem and file backends
//       both pay O(1) amortized per move.
//   (b) What does running a decider out-of-core cost, and does the
//       cache behave? The E18b table runs the CHECK-SORT decider with
//       per-tape RAM capped at cache_blocks * block_size cells and
//       reports wall time, the paper's (r, s) — which must match the
//       in-memory run bit for bit — plus block I/O counters and the
//       readahead hit rate (≈ 1.0 on scan-shaped access).

#include <chrono>
#include <iostream>
#include <string>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "extmem/storage.h"
#include "obs/flags.h"
#include "parallel/bench_recorder.h"
#include "problems/generators.h"
#include "problems/instance.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "tape/tape.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using rstlab::parallel::BenchRecorder;
using rstlab::parallel::Checksum64;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

rstlab::extmem::StorageOptions FileBackend(std::size_t block_size,
                                           std::size_t cache_blocks) {
  rstlab::extmem::StorageOptions options;
  options.backend = rstlab::extmem::BackendKind::kFile;
  options.block_size = block_size;
  options.cache_blocks = cache_blocks;
  return options;
}

rstlab::tape::Tape MakeTape(const rstlab::extmem::StorageOptions& options) {
  auto storage = rstlab::extmem::CreateStorage(options);
  if (!storage.ok()) {
    std::cerr << "extmem bench: " << storage.status() << "\n";
    return rstlab::tape::Tape();
  }
  return rstlab::tape::Tape(std::move(storage).value());
}

/// E18a: cost of the first forward scan (append) per cell, mem vs file.
/// This is the path the old per-move `resize(head+1)` made quadratic in
/// the worst case; both backends should now be flat in N.
void RunAppendTable(BenchRecorder& recorder) {
  Table table("E18a: first-scan append cost (ns/cell)",
              {"N", "mem", "file(4KiB x 64)"});
  for (std::size_t n : {1u << 16, 1u << 18, 1u << 20}) {
    double per_backend[2] = {0.0, 0.0};
    for (int which = 0; which < 2; ++which) {
      rstlab::tape::Tape tape =
          which == 0 ? rstlab::tape::Tape()
                     : MakeTape(FileBackend(4096, 64));
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        tape.Write('1');
        tape.MoveRight();
      }
      per_backend[which] =
          Seconds(start) * 1e9 / static_cast<double>(n);
      recorder.Record(std::string("E18a_append_") +
                          tape.storage().backend_name() + "_" +
                          std::to_string(n),
                      /*trials=*/n, Seconds(start),
                      Checksum64({tape.cells_used(), tape.reversals()}));
    }
    table.AddRow({std::to_string(n), FormatDouble(per_backend[0]),
                  FormatDouble(per_backend[1])});
  }
  table.Print(std::cout);
  std::cout << "  (block-deferred growth: per-move cost is one "
               "comparison on both backends)\n\n";
}

/// E18b: the CHECK-SORT decider out-of-core. The file rows cap per-tape
/// RAM at cache_blocks * block_size cells — far below the tape length —
/// and must reproduce the mem row's verdict and (r, s) exactly.
void RunOutOfCoreTable(BenchRecorder& recorder) {
  Table table("E18b: CHECK-SORT out-of-core (per-tape cache 4 x 64 cells)",
              {"m", "N", "backend", "ms", "scans", "int.bits", "reads",
               "writes", "hit%", "ra%"});
  Rng rng(0xE18);
  for (std::size_t m : {64u, 256u, 1024u}) {
    const rstlab::problems::Instance inst =
        rstlab::problems::SortedPair(m, 16, rng);
    const std::string encoded = inst.Encode();
    std::uint64_t mem_scans = 0;
    std::size_t mem_bits = 0;
    for (int which = 0; which < 2; ++which) {
      rstlab::extmem::StorageOptions options;
      if (which == 1) options = FileBackend(64, 4);
      rstlab::stmodel::StContext ctx(rstlab::sorting::kDeciderTapes,
                                     options);
      ctx.LoadInput(encoded);
      const auto start = std::chrono::steady_clock::now();
      auto decided = rstlab::sorting::DecideOnTapes(
          rstlab::problems::Problem::kCheckSort, ctx);
      const double wall = Seconds(start);
      const auto report = ctx.Report();
      const auto io = ctx.IoStatsTotal();
      const char* backend =
          rstlab::extmem::BackendName(ctx.backend());
      if (which == 0) {
        mem_scans = report.scan_bound;
        mem_bits = report.internal_space;
      } else if (mem_scans != report.scan_bound ||
                 mem_bits != report.internal_space) {
        std::cout << "  WARNING: file backend diverged from mem "
                     "metering at m="
                  << m << "\n";
      }
      table.AddRow({std::to_string(m), std::to_string(inst.N()), backend,
                    FormatDouble(wall * 1e3),
                    std::to_string(report.scan_bound),
                    std::to_string(report.internal_space),
                    std::to_string(io.block_reads),
                    std::to_string(io.block_writes),
                    FormatDouble(100.0 * io.HitRate()),
                    FormatDouble(100.0 * io.ReadaheadHitRate())});
      recorder.Record(
          std::string("E18b_checksort_") + backend + "_" +
              std::to_string(m),
          /*trials=*/1, wall,
          Checksum64({decided.ok() && decided.value() ? 1u : 0u,
                      report.scan_bound, report.internal_space,
                      io.block_reads, io.block_writes}));
    }
  }
  table.Print(std::cout);
  std::cout << "  (mem and file rows must agree in scans and int.bits: "
               "the paper's metering is backend-independent)\n\n";
}

void BM_FirstScanAppendMem(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rstlab::tape::Tape tape;
    for (std::size_t i = 0; i < n; ++i) {
      tape.Write('1');
      tape.MoveRight();
    }
    benchmark::DoNotOptimize(tape.cells_used());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_FirstScanAppendMem)->Arg(1 << 14)->Arg(1 << 17);

void BM_FirstScanAppendFile(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rstlab::tape::Tape tape = MakeTape(FileBackend(4096, 64));
    for (std::size_t i = 0; i < n; ++i) {
      tape.Write('1');
      tape.MoveRight();
    }
    benchmark::DoNotOptimize(tape.cells_used());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_FirstScanAppendFile)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_extmem");
  rstlab::extmem::StorageOptions storage =
      rstlab::extmem::ParseBackendFlags(&argc, argv);
  storage.metrics = obs.metrics();
  rstlab::extmem::SetProcessStorageOptions(storage);
  BenchRecorder recorder("bench_extmem", /*threads=*/1);
  recorder.set_metrics(obs.metrics());
  RunAppendTable(recorder);
  RunOutOfCoreTable(recorder);
  obs.Finish(std::cout);
  if (auto written = recorder.Write(); !written.ok()) {
    std::cerr << "bench_extmem: " << written.status() << "\n";
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
