// Experiments E12/E13 (Theorems 12/13): the paper's XQuery and XPath
// queries on the XML encoding of SET-EQUALITY instances.
//
// Paper rows reproduced:
//  * the XQuery query returns <result><true/></result> exactly on equal
//    sets (Theorem 12's reduction);
//  * the Figure 1 XPath query selects a node exactly when X - Y is
//    nonempty, and the two-run machine T-tilde built on a compliant
//    filter decides SET-EQUALITY with one-sided error. Measured
//    acceptance probabilities expose a small inaccuracy in the paper:
//    boosting needs three T-tilde rounds, not two, to clear 1/2.

#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "obs/flags.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "query/xml.h"
#include "query/xml_reduction.h"
#include "query/xpath.h"
#include "query/xquery.h"
#include "util/random.h"

namespace {

using rstlab::Rng;
using rstlab::core::FormatDouble;
using rstlab::core::Table;
using namespace rstlab::query;

void RunSemanticsTable() {
  Table table("E12: XQuery / XPath semantics on encoded instances",
              {"m", "n", "doc_bytes", "xquery_correct", "xpath_correct"});
  Rng rng(1212);
  for (std::size_t m : {4u, 16u, 64u, 256u}) {
    const std::size_t n = 16;
    int xquery_ok = 0;
    int xpath_ok = 0;
    std::size_t doc_bytes = 0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      rstlab::problems::Instance inst =
          t % 2 == 0 ? rstlab::problems::EqualSets(m, n, rng)
                     : rstlab::problems::PerturbedMultisets(m, n, 1, rng);
      XmlDocument doc = EncodeSetInstanceAsXml(inst);
      doc_bytes = SerializeXml(*doc).size();
      const bool equal = rstlab::problems::RefSetEquality(inst);
      const bool query_true = EvaluatePaperXQueryToString(*doc) ==
                              "<result><true></true></result>";
      xquery_ok += query_true == equal;

      // The XPath filter detects X - Y nonempty.
      std::set<std::string> y;
      for (const auto& v : inst.second) y.insert(v.ToString());
      bool x_minus_y = false;
      for (const auto& v : inst.first) {
        if (y.count(v.ToString()) == 0) x_minus_y = true;
      }
      xpath_ok += FilterMatches(*doc, PaperXPathQuery()) == x_minus_y;
    }
    table.AddRow({std::to_string(m), std::to_string(n),
                  std::to_string(doc_bytes),
                  std::to_string(xquery_ok) + "/" + std::to_string(trials),
                  std::to_string(xpath_ok) + "/" +
                      std::to_string(trials)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void RunTTildeTable() {
  Table table("E13: T-tilde protocol acceptance probabilities",
              {"case", "rounds", "measured", "paper/exact"});
  Rng rng(1313);
  FilterOracle oracle = ModelFilterOracle(0.5);
  rstlab::problems::Instance yes = rstlab::problems::EqualSets(8, 12, rng);
  rstlab::problems::Instance no =
      rstlab::problems::PerturbedMultisets(8, 12, 1, rng);
  const int trials = 20000;

  for (std::size_t rounds : {1u, 2u, 3u, 4u}) {
    int yes_accepts = 0;
    for (int t = 0; t < trials; ++t) {
      yes_accepts += BoostedTTildeAccepts(yes, oracle, rng, rounds);
    }
    const double exact = 1.0 - std::pow(0.75, static_cast<double>(rounds));
    table.AddRow({"X == Y", std::to_string(rounds),
                  FormatDouble(yes_accepts / static_cast<double>(trials)),
                  FormatDouble(exact)});
  }
  int no_accepts = 0;
  for (int t = 0; t < trials; ++t) {
    no_accepts += BoostedTTildeAccepts(no, oracle, rng, 3);
  }
  table.AddRow({"X != Y", "3",
                FormatDouble(no_accepts / static_cast<double>(trials)),
                "0 (rejects surely)"});
  table.Print(std::cout);
  std::cout << "  paper: accept >= 1/4 per round; \"two independent runs\""
               " reach only 1-(3/4)^2 = 0.4375 < 1/2 — three rounds are"
               " needed (measured above)\n\n";
}

void BM_XPathFilter(benchmark::State& state) {
  Rng rng(3);
  rstlab::problems::Instance inst = rstlab::problems::EqualSets(
      static_cast<std::size_t>(state.range(0)), 16, rng);
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  const XPathPath query = PaperXPathQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterMatches(*doc, query));
  }
}
BENCHMARK(BM_XPathFilter)->Arg(16)->Arg(64)->Arg(256);

void BM_XQueryEval(benchmark::State& state) {
  Rng rng(4);
  rstlab::problems::Instance inst = rstlab::problems::EqualSets(
      static_cast<std::size_t>(state.range(0)), 16, rng);
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluatePaperXQueryToString(*doc));
  }
}
BENCHMARK(BM_XQueryEval)->Arg(16)->Arg(64)->Arg(256);

void BM_XmlParse(benchmark::State& state) {
  Rng rng(5);
  rstlab::problems::Instance inst = rstlab::problems::EqualSets(
      static_cast<std::size_t>(state.range(0)), 16, rng);
  const std::string text = SerializeXml(*EncodeSetInstanceAsXml(inst));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseXml(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      text.size() * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_XmlParse)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  rstlab::obs::ObsSession obs(rstlab::obs::ParseObsFlags(&argc, argv),
                              "bench_xml_queries");
  RunSemanticsTable();
  RunTTildeTable();
  obs.Finish(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
