#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "parallel/bench_recorder.h"
#include "parallel/seed_sequence.h"
#include "parallel/thread_pool.h"
#include "parallel/trial_runner.h"

namespace rstlab::parallel {
namespace {

// ---------------------------------------------------------------------
// SeedSequence
// ---------------------------------------------------------------------

TEST(SeedSequenceTest, SeedsAreDeterministicAndDistinct) {
  SeedSequence a(42);
  SeedSequence b(42);
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(a.SeedForTrial(t), b.SeedForTrial(t));
    seen.insert(a.SeedForTrial(t));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in a short range
  SeedSequence other(43);
  EXPECT_NE(a.SeedForTrial(0), other.SeedForTrial(0));
}

TEST(SeedSequenceTest, RngForTrialReproducesStream) {
  SeedSequence seeds(7);
  Rng first = seeds.RngForTrial(5);
  Rng second = seeds.RngForTrial(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(first.Next64(), second.Next64());
}

/// The per-trial tally an experiment would accumulate: integer counters
/// plus a float sum (deliberately non-associative) and a running max.
struct ProbeTally {
  std::uint64_t count = 0;
  std::uint64_t max_draw = 0;
  double sum = 0.0;
  void Merge(const ProbeTally& o) {
    count += o.count;
    max_draw = std::max(max_draw, o.max_draw);
    sum += o.sum;
  }
};

ProbeTally RunProbe(std::size_t threads, std::uint64_t trials) {
  TrialRunner runner(threads);
  SeedSequence seeds(0xDECAF);
  return runner.RunSeeded<ProbeTally>(
      trials, seeds, [](std::uint64_t, Rng& rng, ProbeTally& tally) {
        const std::uint64_t draw = rng.UniformBelow(1 << 20);
        ++tally.count;
        tally.max_draw = std::max(tally.max_draw, draw);
        tally.sum += rng.UniformDouble();
      });
}

TEST(TrialRunnerTest, TalliesBitIdenticalAcrossThreadCounts) {
  const ProbeTally reference = RunProbe(1, 777);
  EXPECT_EQ(reference.count, 777u);
  for (std::size_t threads : {2u, 3u, 4u, 8u}) {
    const ProbeTally tally = RunProbe(threads, 777);
    EXPECT_EQ(tally.count, reference.count) << threads;
    EXPECT_EQ(tally.max_draw, reference.max_draw) << threads;
    // Bit-identical, not approximately equal: the chunk layout and
    // merge order are thread-count-independent by contract.
    EXPECT_EQ(tally.sum, reference.sum) << threads;
  }
}

TEST(TrialRunnerTest, CoversEveryTrialExactlyOnce) {
  TrialRunner runner(4);
  const std::uint64_t trials = 1000;
  struct IndexTally {
    std::vector<std::uint64_t> seen;
    void Merge(const IndexTally& o) {
      seen.insert(seen.end(), o.seen.begin(), o.seen.end());
    }
  };
  const IndexTally tally = runner.Run<IndexTally>(
      trials, [](std::uint64_t t, IndexTally& local) {
        local.seen.push_back(t);
      });
  // Chunk-ordered merge => the concatenation is exactly 0..trials-1.
  ASSERT_EQ(tally.seen.size(), trials);
  for (std::uint64_t t = 0; t < trials; ++t) EXPECT_EQ(tally.seen[t], t);
}

TEST(TrialRunnerTest, ZeroTrialsYieldsDefaultTally) {
  TrialRunner runner(3);
  const ProbeTally tally = runner.Run<ProbeTally>(
      0, [](std::uint64_t, ProbeTally&) { FAIL() << "body must not run"; });
  EXPECT_EQ(tally.count, 0u);
}

TEST(TrialRunnerTest, BodyExceptionPropagatesAndRunnerSurvives) {
  TrialRunner runner(2);
  EXPECT_THROW(runner.Run<ProbeTally>(100,
                                      [](std::uint64_t t, ProbeTally&) {
                                        if (t == 37) {
                                          throw std::runtime_error("boom");
                                        }
                                      }),
               std::runtime_error);
  // The pool is still usable after a failed map.
  const ProbeTally tally = runner.Run<ProbeTally>(
      10, [](std::uint64_t, ProbeTally& local) { ++local.count; });
  EXPECT_EQ(tally.count, 10u);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::logic_error);
  // The error is cleared once reported; the pool keeps working.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

// ---------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------

TEST(ResolveThreadCountTest, PrecedenceCliThenEnv) {
  ::setenv("RSTLAB_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(3), 3u);  // CLI wins
  EXPECT_EQ(ResolveThreadCount(0), 5u);  // env next
  ::setenv("RSTLAB_THREADS", "nonsense", 1);
  EXPECT_GE(ResolveThreadCount(0), 1u);  // falls through to hardware
  ::unsetenv("RSTLAB_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

TEST(ResolveThreadCountTest, ParseThreadsFlagStripsArgv) {
  ::unsetenv("RSTLAB_THREADS");
  const char* raw[] = {"bench", "--threads=7", "--benchmark_filter=x"};
  char* argv[] = {const_cast<char*>(raw[0]), const_cast<char*>(raw[1]),
                  const_cast<char*>(raw[2])};
  int argc = 3;
  EXPECT_EQ(ParseThreadsFlag(&argc, argv), 7u);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");
}

// ---------------------------------------------------------------------
// BenchRecorder
// ---------------------------------------------------------------------

TEST(BenchRecorderTest, FormatsEntryAsJsonLine) {
  TrialBenchEntry entry;
  entry.bench = "bench_x";
  entry.experiment = "E1.m=16";
  entry.threads = 4;
  entry.trials = 200;
  entry.wall_seconds = 0.5;
  entry.trials_per_sec = 400.0;
  entry.tally_checksum = 99;
  EXPECT_EQ(FormatTrialBenchEntry(entry),
            "{\"bench\":\"bench_x\",\"experiment\":\"E1.m=16\","
            "\"threads\":4,\"trials\":200,\"wall_seconds\":0.5,"
            "\"trials_per_sec\":400,\"tally_checksum\":99}");
}

TEST(BenchRecorderTest, ChecksumIsOrderSensitive) {
  EXPECT_NE(Checksum64({1, 2}), Checksum64({2, 1}));
  EXPECT_EQ(Checksum64({1, 2}), Checksum64({1, 2}));
  EXPECT_NE(Checksum64({}), Checksum64({0}));
}

}  // namespace
}  // namespace rstlab::parallel
