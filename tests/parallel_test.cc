#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <stdexcept>
#include <vector>

#include "parallel/bench_recorder.h"
#include "parallel/seed_sequence.h"
#include "parallel/thread_pool.h"
#include "parallel/trial_runner.h"

namespace rstlab::parallel {
namespace {

// ---------------------------------------------------------------------
// SeedSequence
// ---------------------------------------------------------------------

TEST(SeedSequenceTest, SeedsAreDeterministicAndDistinct) {
  SeedSequence a(42);
  SeedSequence b(42);
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(a.SeedForTrial(t), b.SeedForTrial(t));
    seen.insert(a.SeedForTrial(t));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in a short range
  SeedSequence other(43);
  EXPECT_NE(a.SeedForTrial(0), other.SeedForTrial(0));
}

TEST(SeedSequenceTest, RngForTrialReproducesStream) {
  SeedSequence seeds(7);
  Rng first = seeds.RngForTrial(5);
  Rng second = seeds.RngForTrial(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(first.Next64(), second.Next64());
}

/// The per-trial tally an experiment would accumulate: integer counters
/// plus a float sum (deliberately non-associative) and a running max.
struct ProbeTally {
  std::uint64_t count = 0;
  std::uint64_t max_draw = 0;
  double sum = 0.0;
  void Merge(const ProbeTally& o) {
    count += o.count;
    max_draw = std::max(max_draw, o.max_draw);
    sum += o.sum;
  }
};

ProbeTally RunProbe(std::size_t threads, std::uint64_t trials) {
  TrialRunner runner(threads);
  SeedSequence seeds(0xDECAF);
  return runner.RunSeeded<ProbeTally>(
      trials, seeds, [](std::uint64_t, Rng& rng, ProbeTally& tally) {
        const std::uint64_t draw = rng.UniformBelow(1 << 20);
        ++tally.count;
        tally.max_draw = std::max(tally.max_draw, draw);
        tally.sum += rng.UniformDouble();
      });
}

TEST(TrialRunnerTest, TalliesBitIdenticalAcrossThreadCounts) {
  const ProbeTally reference = RunProbe(1, 777);
  EXPECT_EQ(reference.count, 777u);
  for (std::size_t threads : {2u, 3u, 4u, 8u}) {
    const ProbeTally tally = RunProbe(threads, 777);
    EXPECT_EQ(tally.count, reference.count) << threads;
    EXPECT_EQ(tally.max_draw, reference.max_draw) << threads;
    // Bit-identical, not approximately equal: the chunk layout and
    // merge order are thread-count-independent by contract.
    EXPECT_EQ(tally.sum, reference.sum) << threads;
  }
}

TEST(TrialRunnerTest, CoversEveryTrialExactlyOnce) {
  TrialRunner runner(4);
  const std::uint64_t trials = 1000;
  struct IndexTally {
    std::vector<std::uint64_t> seen;
    void Merge(const IndexTally& o) {
      seen.insert(seen.end(), o.seen.begin(), o.seen.end());
    }
  };
  const IndexTally tally = runner.Run<IndexTally>(
      trials, [](std::uint64_t t, IndexTally& local) {
        local.seen.push_back(t);
      });
  // Chunk-ordered merge => the concatenation is exactly 0..trials-1.
  ASSERT_EQ(tally.seen.size(), trials);
  for (std::uint64_t t = 0; t < trials; ++t) EXPECT_EQ(tally.seen[t], t);
}

TEST(TrialRunnerTest, ZeroTrialsYieldsDefaultTally) {
  TrialRunner runner(3);
  const ProbeTally tally = runner.Run<ProbeTally>(
      0, [](std::uint64_t, ProbeTally&) { FAIL() << "body must not run"; });
  EXPECT_EQ(tally.count, 0u);
}

TEST(TrialRunnerTest, BodyExceptionPropagatesAndRunnerSurvives) {
  TrialRunner runner(2);
  EXPECT_THROW(runner.Run<ProbeTally>(100,
                                      [](std::uint64_t t, ProbeTally&) {
                                        if (t == 37) {
                                          throw std::runtime_error("boom");
                                        }
                                      }),
               std::runtime_error);
  // The pool is still usable after a failed map.
  const ProbeTally tally = runner.Run<ProbeTally>(
      10, [](std::uint64_t, ProbeTally& local) { ++local.count; });
  EXPECT_EQ(tally.count, 10u);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::logic_error);
  // The error is cleared once reported; the pool keeps working.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

// ---------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------

TEST(ResolveThreadCountTest, PrecedenceCliThenEnv) {
  ::setenv("RSTLAB_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(3), 3u);  // CLI wins
  EXPECT_EQ(ResolveThreadCount(0), 5u);  // env next
  ::setenv("RSTLAB_THREADS", "nonsense", 1);
  EXPECT_GE(ResolveThreadCount(0), 1u);  // falls through to hardware
  ::unsetenv("RSTLAB_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

TEST(ResolveThreadCountTest, ParseThreadsFlagStripsArgv) {
  ::unsetenv("RSTLAB_THREADS");
  const char* raw[] = {"bench", "--threads=7", "--benchmark_filter=x"};
  char* argv[] = {const_cast<char*>(raw[0]), const_cast<char*>(raw[1]),
                  const_cast<char*>(raw[2])};
  int argc = 3;
  EXPECT_EQ(ParseThreadsFlag(&argc, argv), 7u);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");
}

// ---------------------------------------------------------------------
// BenchRecorder
// ---------------------------------------------------------------------

TEST(BenchRecorderTest, FormatsEntryAsJsonLine) {
  TrialBenchEntry entry;
  entry.bench = "bench_x";
  entry.experiment = "E1.m=16";
  entry.threads = 4;
  entry.trials = 200;
  entry.wall_seconds = 0.5;
  entry.trials_per_sec = 400.0;
  entry.tally_checksum = 99;
  EXPECT_EQ(FormatTrialBenchEntry(entry),
            "{\"bench\":\"bench_x\",\"experiment\":\"E1.m=16\","
            "\"threads\":4,\"trials\":200,\"wall_seconds\":0.5,"
            "\"trials_per_sec\":400,\"tally_checksum\":99}");
}

TEST(BenchRecorderTest, ChecksumIsOrderSensitive) {
  EXPECT_NE(Checksum64({1, 2}), Checksum64({2, 1}));
  EXPECT_EQ(Checksum64({1, 2}), Checksum64({1, 2}));
  EXPECT_NE(Checksum64({}), Checksum64({0}));
}

/// Points RSTLAB_BENCH_JSON at a temp file for the test's lifetime.
class BenchRecorderFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "bench_recorder_test.json";
    std::remove(path_.c_str());
    ::setenv("RSTLAB_BENCH_JSON", path_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("RSTLAB_BENCH_JSON");
    std::remove(path_.c_str());
  }
  std::vector<std::string> ReadLines() const {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }
  std::string path_;
};

TEST_F(BenchRecorderFileTest, MergePreservesOtherBinariesRowsByteForByte) {
  BenchRecorder first("bench_alpha", 2);
  first.Record("A1", 100, 0.25, 111);
  first.Record("A2", 200, 0.5, 222);
  ASSERT_TRUE(first.Write().ok());

  // Capture bench_alpha's rows exactly as written.
  std::vector<std::string> alpha_rows;
  for (const std::string& line : ReadLines()) {
    if (line.find("\"bench\":\"bench_alpha\"") != std::string::npos) {
      std::string row = line;
      if (!row.empty() && row.back() == ',') row.pop_back();
      alpha_rows.push_back(row);
    }
  }
  ASSERT_EQ(alpha_rows.size(), 2u);

  // A second binary merging in (twice, to exercise self-replacement)
  // must keep bench_alpha's rows byte-for-byte.
  BenchRecorder second("bench_beta", 4);
  second.Record("B1", 50, 0.1, 333);
  ASSERT_TRUE(second.Write().ok());
  ASSERT_TRUE(second.Write().ok());

  std::vector<std::string> alpha_after;
  std::size_t beta_count = 0;
  for (const std::string& line : ReadLines()) {
    std::string row = line;
    if (!row.empty() && row.back() == ',') row.pop_back();
    if (row.find("\"bench\":\"bench_alpha\"") != std::string::npos) {
      alpha_after.push_back(row);
    }
    if (row.find("\"bench\":\"bench_beta\"") != std::string::npos) {
      ++beta_count;
    }
  }
  EXPECT_EQ(alpha_after, alpha_rows);
  EXPECT_EQ(beta_count, 1u);  // replaced, not duplicated

  // The snapshot stays a well-formed array: bracket lines plus rows.
  const std::vector<std::string> lines = ReadLines();
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");
}

TEST_F(BenchRecorderFileTest, WriteIsAtomicNoTempFileSurvives) {
  BenchRecorder recorder("bench_gamma", 1);
  recorder.Record("G1", 10, 0.01, 444);
  auto written = recorder.Write();
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value(), path_);
  // The temp staging file must be gone after a successful rename.
  const std::string tmp_prefix = path_ + ".tmp.";
  const std::string tmp_path =
      tmp_prefix + std::to_string(static_cast<long>(::getpid()));
  std::ifstream tmp(tmp_path);
  EXPECT_FALSE(tmp.good());
  // And the target parses as one row per line between brackets.
  const std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1],
            FormatTrialBenchEntry(recorder.entries()[0]));
}

TEST_F(BenchRecorderFileTest, WriteFailsCleanlyOnUnwritableDirectory) {
  ::setenv("RSTLAB_BENCH_JSON", "/nonexistent-dir/bench.json", 1);
  BenchRecorder recorder("bench_delta", 1);
  recorder.Record("D1", 1, 0.001, 555);
  EXPECT_FALSE(recorder.Write().ok());
}

}  // namespace
}  // namespace rstlab::parallel
