#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stmodel/internal_arena.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"

namespace rstlab::stmodel {
namespace {

// ---------------------------------------------------------------------
// InternalArena
// ---------------------------------------------------------------------

TEST(InternalArenaTest, TracksHighWater) {
  InternalArena arena;
  {
    auto a = arena.Allocate(10);
    EXPECT_EQ(arena.current_bits(), 10u);
    {
      auto b = arena.Allocate(20);
      EXPECT_EQ(arena.current_bits(), 30u);
      EXPECT_EQ(arena.high_water_bits(), 30u);
    }
    EXPECT_EQ(arena.current_bits(), 10u);
  }
  EXPECT_EQ(arena.current_bits(), 0u);
  EXPECT_EQ(arena.high_water_bits(), 30u);
}

TEST(InternalArenaTest, ResizeAdjustsBoth) {
  InternalArena arena;
  auto a = arena.Allocate(8);
  a.Resize(40);
  EXPECT_EQ(arena.current_bits(), 40u);
  a.Resize(4);
  EXPECT_EQ(arena.current_bits(), 4u);
  EXPECT_EQ(arena.high_water_bits(), 40u);
}

TEST(InternalArenaTest, MoveTransfersOwnership) {
  InternalArena arena;
  auto a = arena.Allocate(16);
  InternalArena::Allocation b = std::move(a);
  EXPECT_EQ(b.bits(), 16u);
  EXPECT_EQ(arena.current_bits(), 16u);
  b.Release();
  EXPECT_EQ(arena.current_bits(), 0u);
}

TEST(InternalArenaTest, ResetClears) {
  InternalArena arena;
  auto a = arena.Allocate(5);
  a.Release();
  arena.Reset();
  EXPECT_EQ(arena.high_water_bits(), 0u);
}

TEST(BitsForTest, Values) {
  EXPECT_EQ(BitsFor(0), 1u);
  EXPECT_EQ(BitsFor(1), 1u);
  EXPECT_EQ(BitsFor(2), 2u);
  EXPECT_EQ(BitsFor(3), 2u);
  EXPECT_EQ(BitsFor(255), 8u);
  EXPECT_EQ(BitsFor(256), 9u);
}

TEST(MeteredUint64Test, LeasesDeclaredWidth) {
  InternalArena arena;
  {
    MeteredUint64 reg(arena, 12, 100);
    EXPECT_EQ(arena.current_bits(), 12u);
    EXPECT_EQ(reg.get(), 100u);
    reg = 4095;
    EXPECT_EQ(static_cast<std::uint64_t>(reg), 4095u);
  }
  EXPECT_EQ(arena.current_bits(), 0u);
}

// ---------------------------------------------------------------------
// StContext
// ---------------------------------------------------------------------

TEST(StContextTest, LoadInputResetsEverything) {
  StContext ctx(3);
  ctx.LoadInput("0101#");
  EXPECT_EQ(ctx.input_size(), 5u);
  EXPECT_EQ(ctx.tape(0).Read(), '0');
  ctx.tape(1).Write('z');
  auto alloc = ctx.arena().Allocate(9);
  alloc.Release();
  ctx.LoadInput("11#");
  EXPECT_EQ(ctx.input_size(), 3u);
  EXPECT_EQ(ctx.arena().high_water_bits(), 0u);
  EXPECT_EQ(ctx.tape(1).Read(), tape::kBlank);
}

TEST(StContextTest, ReportAggregates) {
  StContext ctx(2);
  ctx.LoadInput("abc");
  ctx.tape(0).MoveRight();
  ctx.tape(0).MoveLeft();
  auto alloc = ctx.arena().Allocate(33);
  tape::ResourceReport report = ctx.Report();
  EXPECT_EQ(report.scan_bound, 2u);
  EXPECT_EQ(report.internal_space, 33u);
  EXPECT_EQ(report.num_external_tapes, 2u);
}

// ---------------------------------------------------------------------
// tape_io
// ---------------------------------------------------------------------

TEST(TapeIoTest, WriteAndRewind) {
  tape::Tape t;
  WriteString(t, "0101#");
  Rewind(t);
  EXPECT_EQ(t.Read(), '0');
  EXPECT_EQ(t.reversals(), 1u);
}

TEST(TapeIoTest, SkipFieldReturnsLength) {
  tape::Tape t("0101#11#");
  EXPECT_EQ(SkipField(t), 4u);
  EXPECT_EQ(t.Read(), '1');
  EXPECT_EQ(SkipField(t), 2u);
  EXPECT_TRUE(AtEnd(t));
}

TEST(TapeIoTest, ReadFieldConsumesSeparator) {
  tape::Tape t("0101#11#");
  EXPECT_EQ(ReadField(t), "0101");
  EXPECT_EQ(ReadField(t), "11");
  EXPECT_TRUE(AtEnd(t));
}

TEST(TapeIoTest, CopyFieldCopiesWithSeparator) {
  tape::Tape src("0101#11#");
  tape::Tape dst;
  CopyField(src, dst);
  Rewind(dst);
  EXPECT_EQ(ReadField(dst), "0101");
}

TEST(TapeIoTest, CountFields) {
  tape::Tape t("0#1#00#11#");
  EXPECT_EQ(CountFields(t), 4u);
  tape::Tape empty;
  EXPECT_EQ(CountFields(empty), 0u);
}

struct CompareCase {
  const char* a;
  const char* b;
  int expected;
};

class CompareFieldsTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(CompareFieldsTest, ComparesLexicographically) {
  tape::Tape a(std::string(GetParam().a) + "#rest#");
  tape::Tape b(std::string(GetParam().b) + "#rest#");
  EXPECT_EQ(CompareFields(a, b), GetParam().expected);
  // Both heads must have consumed exactly their first field.
  EXPECT_EQ(ReadField(a), "rest");
  EXPECT_EQ(ReadField(b), "rest");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompareFieldsTest,
    ::testing::Values(CompareCase{"0101", "0101", 0},
                      CompareCase{"0101", "0110", -1},
                      CompareCase{"0110", "0101", 1},
                      CompareCase{"01", "0101", -1},   // proper prefix
                      CompareCase{"0101", "01", 1},
                      CompareCase{"", "0", -1},
                      CompareCase{"", "", 0},
                      CompareCase{"1", "0", 1}));

TEST(TapeIoTest, CompareFieldsCostsNoReversals) {
  tape::Tape a("000111#");
  tape::Tape b("000110#");
  CompareFields(a, b);
  EXPECT_EQ(a.reversals(), 0u);
  EXPECT_EQ(b.reversals(), 0u);
}


TEST(SortedFieldCursorTest, WalksAndCollapsesDuplicates) {
  tape::Tape t("0#0#1#1#1#10#");
  InternalArena arena;
  SortedFieldCursor cursor(t, 6, arena);
  ASSERT_FALSE(cursor.exhausted());
  EXPECT_EQ(*cursor.value(), "0");
  cursor.AdvanceDistinct();
  EXPECT_EQ(*cursor.value(), "1");
  cursor.AdvanceDistinct();
  EXPECT_EQ(*cursor.value(), "10");
  cursor.AdvanceDistinct();
  EXPECT_TRUE(cursor.exhausted());
  // Arena metered the longest field.
  EXPECT_GE(arena.high_water_bits(), 16u);
}

TEST(SortedFieldCursorTest, AdvanceStepsEveryField) {
  tape::Tape t("0#0#1#");
  InternalArena arena;
  SortedFieldCursor cursor(t, 3, arena);
  std::size_t seen = 0;
  while (!cursor.exhausted()) {
    ++seen;
    cursor.Advance();
  }
  EXPECT_EQ(seen, 3u);
}

TEST(SortedFieldCursorTest, ZeroCountIsImmediatelyExhausted) {
  tape::Tape t("0#");
  InternalArena arena;
  SortedFieldCursor cursor(t, 0, arena);
  EXPECT_TRUE(cursor.exhausted());
  cursor.AdvanceDistinct();  // no-op, no crash
  EXPECT_TRUE(cursor.exhausted());
}

TEST(SortedFieldCursorTest, AdvanceDistinctSkipsLongDuplicateRuns) {
  // Three runs of duplicates of very different lengths; AdvanceDistinct
  // must land on each distinct value exactly once.
  std::string content;
  for (int i = 0; i < 17; ++i) content += "0#";
  for (int i = 0; i < 1; ++i) content += "01#";
  for (int i = 0; i < 9; ++i) content += "111#";
  tape::Tape t(content);
  InternalArena arena;
  SortedFieldCursor cursor(t, 27, arena);
  std::vector<std::string> distinct;
  while (!cursor.exhausted()) {
    distinct.push_back(*cursor.value());
    cursor.AdvanceDistinct();
  }
  EXPECT_EQ(distinct,
            (std::vector<std::string>{"0", "01", "111"}));
}

TEST(SortedFieldCursorTest, AdvanceDistinctExhaustsOnAllDuplicates) {
  tape::Tape t("10#10#10#10#10#");
  InternalArena arena;
  SortedFieldCursor cursor(t, 5, arena);
  EXPECT_EQ(*cursor.value(), "10");
  cursor.AdvanceDistinct();
  EXPECT_TRUE(cursor.exhausted());
  cursor.AdvanceDistinct();  // idempotent once exhausted
  EXPECT_TRUE(cursor.exhausted());
}

TEST(SortedFieldCursorTest, RespectsCountOverTapeContent) {
  tape::Tape t("0#1#garbage#");
  InternalArena arena;
  SortedFieldCursor cursor(t, 2, arena);
  EXPECT_EQ(*cursor.value(), "0");
  cursor.Advance();
  EXPECT_EQ(*cursor.value(), "1");
  cursor.Advance();
  EXPECT_TRUE(cursor.exhausted());  // never reads the garbage field
}

}  // namespace
}  // namespace rstlab::stmodel
