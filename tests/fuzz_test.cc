// Robustness sweeps: random and adversarial byte strings into every
// parser and tape-level entry point. The contract is "error status or
// correct result", never a crash or an inconsistent answer.

#include <string>

#include <gtest/gtest.h>

#include "conform/harness.h"
#include "fingerprint/fingerprint.h"
#include "problems/instance.h"
#include "problems/reference.h"
#include "query/streaming_xml.h"
#include "query/xml.h"
#include "sorting/deciders.h"
#include "sorting/merge_sort.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "util/random.h"

namespace rstlab {
namespace {

std::string RandomBytes(Rng& rng, std::size_t max_len,
                        const std::string& alphabet) {
  const std::size_t len =
      static_cast<std::size_t>(rng.UniformBelow(max_len + 1));
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(
        alphabet[static_cast<std::size_t>(rng.UniformBelow(
            alphabet.size()))]);
  }
  return out;
}

/// Per-test trial count: RSTLAB_TEST_CASES when set, else `fallback`.
int Trials(int fallback) {
  return static_cast<int>(
      conform::EnvTestCases(static_cast<std::size_t>(fallback)));
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, InstanceParseNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < Trials(300); ++trial) {
    const std::string text = RandomBytes(rng, 64, "01#x< >/");
    Result<problems::Instance> parsed = problems::Instance::Parse(text);
    if (parsed.ok()) {
      // Round trip must reproduce the input exactly.
      EXPECT_EQ(parsed.value().Encode(), text);
    }
  }
}

TEST_P(FuzzTest, XmlParseNeverCrashes) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < Trials(300); ++trial) {
    const std::string text = RandomBytes(rng, 96, "01<>/abinstceq ");
    Result<query::XmlDocument> parsed = query::ParseXml(text);
    if (parsed.ok()) {
      // Serialization must parse again to the same document.
      const std::string again = query::SerializeXml(*parsed.value());
      Result<query::XmlDocument> reparsed = query::ParseXml(again);
      ASSERT_TRUE(reparsed.ok());
      EXPECT_EQ(query::SerializeXml(*reparsed.value()), again);
    }
  }
}

/// The tape deciders' lenient field model: fields are '#'-separated and
/// a trailing unterminated field still counts (the tape has no "strict
/// trailing separator" notion — content simply ends at the first blank).
std::vector<std::string> LenientFields(const std::string& text) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : text) {
    if (c == '#') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) fields.push_back(std::move(current));
  return fields;
}

TEST_P(FuzzTest, TapeDecidersErrorOrAgreeWithOracle) {
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < Trials(100); ++trial) {
    const std::string text = RandomBytes(rng, 48, "01#");
    const std::vector<std::string> fields = LenientFields(text);
    stmodel::StContext ctx(sorting::kDeciderTapes);
    ctx.LoadInput(text);
    Result<bool> decided = sorting::DecideOnTapes(
        problems::Problem::kMultisetEquality, ctx);
    if (fields.size() % 2 != 0) {
      EXPECT_FALSE(decided.ok()) << text;
      continue;
    }
    ASSERT_TRUE(decided.ok()) << text;
    // Oracle over the lenient field model.
    std::vector<std::string> first(
        fields.begin(),
        fields.begin() + static_cast<std::ptrdiff_t>(fields.size() / 2));
    std::vector<std::string> second(
        fields.begin() + static_cast<std::ptrdiff_t>(fields.size() / 2),
        fields.end());
    std::sort(first.begin(), first.end());
    std::sort(second.begin(), second.end());
    EXPECT_EQ(decided.value(), first == second) << text;
  }
}

TEST_P(FuzzTest, FingerprintTapeErrorOrSound) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < Trials(100); ++trial) {
    const std::string text = RandomBytes(rng, 48, "01#");
    Result<problems::Instance> parsed = problems::Instance::Parse(text);
    stmodel::StContext ctx(1);
    ctx.LoadInput(text);
    auto outcome = fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
    if (!parsed.ok()) {
      EXPECT_FALSE(outcome.ok()) << text;
    } else if (outcome.ok() &&
               problems::RefMultisetEquality(parsed.value())) {
      // One-sided error: equal multisets must be accepted.
      EXPECT_TRUE(outcome.value().accepted) << text;
    }
  }
}

TEST_P(FuzzTest, MergeSortMatchesStdSortOnArbitraryFields) {
  Rng rng(GetParam() + 400);
  for (int trial = 0; trial < Trials(60); ++trial) {
    // Fields over a wider alphabet (the sorter is generic), including
    // empty fields.
    std::vector<std::string> fields;
    const std::size_t count =
        static_cast<std::size_t>(rng.UniformBelow(20));
    std::string input;
    for (std::size_t i = 0; i < count; ++i) {
      fields.push_back(RandomBytes(rng, 6, "01abc"));
      input += fields.back();
      input += '#';
    }
    stmodel::StContext ctx(3);
    ctx.LoadInput(input);
    ASSERT_TRUE(sorting::SortFieldsOnTapes(ctx, 0, 1, 2).ok());
    std::sort(fields.begin(), fields.end());
    tape::Tape& t = ctx.tape(0);
    t.Seek(0);
    std::vector<std::string> sorted;
    while (!stmodel::AtEnd(t)) sorted.push_back(stmodel::ReadField(t));
    EXPECT_EQ(sorted, fields);
  }
}

TEST_P(FuzzTest, StreamingXmlExtractorNeverCrashes) {
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < Trials(200); ++trial) {
    const std::string text =
        RandomBytes(rng, 96, "01<>/seting12m ");
    stmodel::StContext ctx(query::kStreamingXmlTapes);
    ctx.LoadInput(text);
    Status status = query::ExtractSetValues(ctx, 1, 2, nullptr, nullptr);
    (void)status;  // any status is fine; no crash, no hang
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rstlab
