#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "listmachine/analysis.h"
#include "listmachine/machines.h"
#include "listmachine/simulation.h"
#include "listmachine/skeleton.h"
#include "machine/machine_builder.h"
#include "machine/turing_machine.h"

namespace rstlab::listmachine {
namespace {

machine::TuringMachine Make(machine::MachineSpec spec) {
  Result<machine::TuringMachine> tm =
      machine::TuringMachine::Create(std::move(spec));
  EXPECT_TRUE(tm.ok()) << tm.status();
  return std::move(tm).value();
}

TEST(SimulationTest, DeterministicAcceptanceTransfers) {
  machine::TuringMachine tm = Make(machine::zoo::EvenOnes());
  for (const char* field_cstr : {"0110", "111", "1", "0000"}) {
    const std::string field = field_cstr;
    Result<SimulationResult> sim =
        SimulateTmAsNlm(tm, {field}, {}, 10000);
    ASSERT_TRUE(sim.ok()) << sim.status();
    EXPECT_TRUE(sim.value().tm_halted);
    const std::size_t ones = static_cast<std::size_t>(
        std::count(field.begin(), field.end(), '1'));
    EXPECT_EQ(sim.value().tm_accepted, ones % 2 == 0);
    EXPECT_EQ(sim.value().run.accepted, sim.value().tm_accepted);
  }
}

TEST(SimulationTest, TwoFieldEqualityTransfers) {
  machine::TuringMachine tm = Make(machine::zoo::TwoFieldEquality());
  struct Case {
    std::string v;
    std::string w;
  };
  for (const Case& c : {Case{"0110", "0110"}, Case{"0110", "0111"},
                        Case{"10", "10"}, Case{"10", "01"},
                        Case{"1", "1"}, Case{"0", "1"}}) {
    Result<SimulationResult> sim =
        SimulateTmAsNlm(tm, {c.v, c.w}, {}, 100000);
    ASSERT_TRUE(sim.ok()) << sim.status();
    ASSERT_TRUE(sim.value().tm_halted);
    EXPECT_EQ(sim.value().tm_accepted, c.v == c.w) << c.v << "#" << c.w;
    EXPECT_EQ(sim.value().run.accepted, sim.value().tm_accepted);
  }
}

TEST(SimulationTest, NondeterministicProbabilityTransfers) {
  // For every choice sequence, the NLM run must accept iff the TM run
  // accepts — which is exactly how Lemma 16 preserves acceptance
  // probabilities (Lemma 18 counting).
  machine::TuringMachine tm = Make(machine::zoo::GuessFirstBit());
  int tm_accepting = 0;
  int nlm_accepting = 0;
  const int kChoices = 2;
  for (std::uint64_t c1 = 0; c1 < kChoices; ++c1) {
    for (std::uint64_t c2 = 0; c2 < kChoices; ++c2) {
      machine::RunResult tm_run = tm.RunWithChoices("1", {c1, c2}, 100);
      ASSERT_TRUE(tm_run.halted);
      Result<SimulationResult> sim =
          SimulateTmAsNlm(tm, {std::string("1")}, {c1, c2}, 100);
      ASSERT_TRUE(sim.ok());
      tm_accepting += tm_run.accepted;
      nlm_accepting += sim.value().run.accepted;
      EXPECT_EQ(sim.value().run.accepted, tm_run.accepted);
    }
  }
  EXPECT_EQ(tm_accepting, nlm_accepting);
  EXPECT_EQ(tm_accepting, 2);  // probability 1/2
}

TEST(SimulationTest, ReversalsMatchTuringMachine) {
  machine::TuringMachine tm = Make(machine::zoo::TwoFieldEquality());
  Result<SimulationResult> sim =
      SimulateTmAsNlm(tm, {"0101", "0101"}, {}, 100000);
  ASSERT_TRUE(sim.ok());
  // The TM reverses tape 1 twice (rewind + direction change at
  // comparison start); the NLM must record the same reversal counts
  // (the (r, t)-boundedness transfer in Lemma 16).
  machine::RunResult tm_run = tm.RunWithChoices(
      "0101#0101#", std::vector<std::uint64_t>(100000, 0), 100000);
  ASSERT_TRUE(tm_run.halted);
  ASSERT_EQ(sim.value().run.reversals.size(), 2u);
  EXPECT_EQ(sim.value().run.reversals[0],
            tm_run.costs.external_reversals[0]);
  EXPECT_EQ(sim.value().run.reversals[1],
            tm_run.costs.external_reversals[1]);
}

TEST(SimulationTest, InitialCellsCarryInputPositions) {
  machine::TuringMachine tm = Make(machine::zoo::EvenOnes());
  Result<SimulationResult> sim =
      SimulateTmAsNlm(tm, {"01", "10", "11"}, {}, 10000);
  ASSERT_TRUE(sim.ok());
  // The first recorded local view reads list-1 cell 0 = <v_0>.
  ASSERT_FALSE(sim.value().run.steps.empty());
  const StepRecord& first = sim.value().run.steps.front();
  bool found = false;
  for (const Symbol& s : first.reads[0]) {
    if (s.kind == Symbol::Kind::kInput) {
      EXPECT_EQ(s.origin, 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimulationTest, StateCensusStaysBelowLemma16Bound) {
  machine::TuringMachine tm = Make(machine::zoo::TwoFieldEquality());
  Result<SimulationResult> sim =
      SimulateTmAsNlm(tm, {"010101", "010101"}, {}, 100000);
  ASSERT_TRUE(sim.ok());
  // Bound (2) of Lemma 16: |A| <= 2^{d t^2 r s} + 3t log(m(n+1)); with
  // s = 0 internal space the dominating term is polynomial in the run
  // length. Loose operational check: far fewer states than TM steps + a
  // constant.
  EXPECT_LE(sim.value().distinct_states, sim.value().tm_steps + 2);
  EXPECT_GE(sim.value().distinct_states, 2u);
}

TEST(SimulationTest, SkeletonMachineryAppliesToSimulatedRuns) {
  machine::TuringMachine tm = Make(machine::zoo::TwoFieldEquality());
  Result<SimulationResult> a =
      SimulateTmAsNlm(tm, {"0101", "0101"}, {}, 100000);
  Result<SimulationResult> b =
      SimulateTmAsNlm(tm, {"0110", "0110"}, {}, 100000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Equal-shape runs on same-length inputs: both machines compare the
  // two fields, so positions 0 and 1 are compared in both runs.
  EXPECT_TRUE(ArePositionsCompared(a.value().run, 0, 1));
  EXPECT_TRUE(ArePositionsCompared(b.value().run, 0, 1));
  // Growth bounds hold for the induced list machine runs too.
  GrowthCheck growth = CheckGrowth(a.value().run, 2);
  EXPECT_TRUE(growth.within_bounds);
}

TEST(SimulationTest, RejectsBadInputs) {
  machine::TuringMachine tm = Make(machine::zoo::EvenOnes());
  EXPECT_FALSE(SimulateTmAsNlm(tm, {"01a"}, {}, 100).ok());
}

TEST(SimulationTest, EmptyInputRuns) {
  machine::TuringMachine tm = Make(machine::zoo::EvenOnes());
  Result<SimulationResult> sim = SimulateTmAsNlm(tm, {}, {}, 100);
  ASSERT_TRUE(sim.ok());
  EXPECT_TRUE(sim.value().tm_halted);
  EXPECT_TRUE(sim.value().tm_accepted);  // zero ones is even
}


TEST(SimulationTest, PalindromeTurningCasesTransfer) {
  // The palindrome machine turns both heads mid-content, driving the
  // Case 2 (direction-change block split) path of the simulation.
  machine::TuringMachine tm = Make(machine::zoo::Palindrome());
  for (const std::string& v :
       {std::string("0110"), std::string("0111"), std::string("010"),
        std::string("10101"), std::string("110011"),
        std::string("1100110")}) {
    machine::RunResult tm_run = tm.RunWithChoices(
        v + "#", std::vector<std::uint64_t>(100000, 0), 100000);
    ASSERT_TRUE(tm_run.halted);
    Result<SimulationResult> sim = SimulateTmAsNlm(tm, {v}, {}, 100000);
    ASSERT_TRUE(sim.ok()) << sim.status();
    EXPECT_EQ(sim.value().run.accepted, tm_run.accepted) << v;
    // Reversal transfer on both lists.
    ASSERT_EQ(sim.value().run.reversals.size(), 2u);
    EXPECT_EQ(sim.value().run.reversals[0],
              tm_run.costs.external_reversals[0]);
    EXPECT_EQ(sim.value().run.reversals[1],
              tm_run.costs.external_reversals[1]);
  }
}


TEST(SimulationTest, InternalMemoryMachineTransfers) {
  // BalancedZerosOnes is the only zoo machine with s > 0: its binary
  // counters live in the abstract NLM state, exercising the
  // 2^{d t^2 r s} component of the Lemma 16 state bound.
  machine::TuringMachine tm = Make(machine::zoo::BalancedZerosOnes());
  for (const std::string& v :
       {std::string("0011"), std::string("0001"), std::string("010101"),
        std::string("1110")}) {
    machine::RunResult tm_run = tm.RunWithChoices(
        v + "#", std::vector<std::uint64_t>(1000000, 0), 1000000);
    ASSERT_TRUE(tm_run.halted);
    Result<SimulationResult> sim =
        SimulateTmAsNlm(tm, {v}, {}, 1000000);
    ASSERT_TRUE(sim.ok()) << sim.status();
    EXPECT_EQ(sim.value().run.accepted, tm_run.accepted) << v;
    // One external scan: the induced NLM performs no reversals either.
    EXPECT_EQ(sim.value().run.ScanBound(), 1u);
    // The state census now reflects internal memory contents: distinct
    // counter configurations produce distinct abstract states.
    EXPECT_GE(sim.value().distinct_states, v.size());
  }
}


TEST(SimulationTest, SimulatedCellsAreWellFormedTraces) {
  // The simulation writes the same trace strings the generic executor
  // would: every non-initial cell parses into t + 1 bracketed
  // components (the code analogue of the paper's "cell contents allow
  // reconstruction" property).
  machine::TuringMachine tm = Make(machine::zoo::Palindrome());
  Result<SimulationResult> sim =
      SimulateTmAsNlm(tm, {"011010110"}, {}, 100000);
  ASSERT_TRUE(sim.ok());
  const std::size_t t = 2;
  std::size_t traces = 0;
  for (const auto& list : sim.value().run.final_config.lists) {
    for (const CellContent& cell : list) {
      if (cell.empty() || cell.front().kind != Symbol::Kind::kState) {
        continue;
      }
      ++traces;
      for (std::size_t comp = 0; comp <= t; ++comp) {
        EXPECT_TRUE(TraceComponent(cell, comp).has_value());
      }
      EXPECT_FALSE(TraceComponent(cell, t + 1).has_value());
    }
  }
  EXPECT_GT(traces, 0u);
}

}  // namespace
}  // namespace rstlab::listmachine
