#include <map>
#include <string>

#include <gtest/gtest.h>

#include "problems/generators.h"
#include "problems/reference.h"
#include "query/relalg.h"
#include "query/relation.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace rstlab::query {
namespace {

Relation MakeRelation(std::string name,
                      const std::vector<std::vector<std::string>>& rows) {
  Relation r;
  r.name = std::move(name);
  for (const auto& row : rows) {
    r.arity = std::max(r.arity, row.size());
    r.Insert(row);
  }
  return r;
}

std::map<std::string, Relation> RandomDatabase(Rng& rng, std::size_t size,
                                               std::size_t arity) {
  std::map<std::string, Relation> db;
  for (const char* name : {"R1", "R2"}) {
    Relation r;
    r.name = name;
    r.arity = arity;
    for (std::size_t i = 0; i < size; ++i) {
      Tuple tuple;
      for (std::size_t c = 0; c < arity; ++c) {
        tuple.push_back(BitString::Random(4, rng).ToString());
      }
      r.Insert(tuple);
    }
    db[name] = r;
  }
  return db;
}

std::map<std::string, Relation> RandomDatabaseWide(Rng& rng,
                                                   std::size_t size) {
  std::map<std::string, Relation> db;
  for (const char* name : {"R1", "R2"}) {
    Relation r;
    r.name = name;
    r.arity = 1;
    for (std::size_t i = 0; i < size; ++i) {
      r.Insert({BitString::Random(20, rng).ToString()});
    }
    db[name] = r;
  }
  return db;
}

Result<Relation> EvalBoth(const RelAlgExprPtr& expr,
                          const std::map<std::string, Relation>& db,
                          Relation* streamed_out) {
  stmodel::StContext ctx(kRelAlgTapes);
  ctx.LoadInput(EncodeDatabaseStream(db));
  Result<Relation> streamed = EvaluateOnTapes(expr, ctx);
  if (streamed.ok() && streamed_out != nullptr) {
    *streamed_out = streamed.value();
  }
  return EvaluateInMemory(expr, db);
}

// ---------------------------------------------------------------------
// Relation / tuple encoding
// ---------------------------------------------------------------------

TEST(RelationTest, TupleEncodeDecodeRoundtrip) {
  Tuple t = {"01", "10", "111"};
  EXPECT_EQ(EncodeTuple(t), "01,10,111");
  EXPECT_EQ(DecodeTuple("01,10,111"), t);
  EXPECT_EQ(DecodeTuple("01"), (Tuple{"01"}));
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r = MakeRelation("R", {{"0"}, {"0"}, {"1"}});
  EXPECT_EQ(r.tuples.size(), 2u);
}

TEST(RelationTest, EqualityIsSetwise) {
  Relation a = MakeRelation("A", {{"0"}, {"1"}});
  Relation b = MakeRelation("B", {{"1"}, {"0"}});
  EXPECT_TRUE(a == b);
}

TEST(RelationTest, TapeRoundtrip) {
  Relation r = MakeRelation("R", {{"01", "10"}, {"11", "00"}});
  tape::Tape t;
  WriteRelationToTape(r, t);
  t.Seek(0);
  Relation back = ReadRelationFromTape(t, "R", 2);
  EXPECT_TRUE(back == r);
}

// ---------------------------------------------------------------------
// In-memory evaluator
// ---------------------------------------------------------------------

TEST(InMemoryTest, BasicOperators) {
  std::map<std::string, Relation> db;
  db["R1"] = MakeRelation("R1", {{"0"}, {"1"}, {"00"}});
  db["R2"] = MakeRelation("R2", {{"1"}, {"11"}});

  Result<Relation> uni = EvaluateInMemory(Union(Rel("R1"), Rel("R2")), db);
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni.value().tuples.size(), 4u);

  Result<Relation> diff =
      EvaluateInMemory(Difference(Rel("R1"), Rel("R2")), db);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.value() == MakeRelation("x", {{"0"}, {"00"}}));

  Result<Relation> inter =
      EvaluateInMemory(Intersection(Rel("R1"), Rel("R2")), db);
  ASSERT_TRUE(inter.ok());
  EXPECT_TRUE(inter.value() == MakeRelation("x", {{"1"}}));

  Result<Relation> missing = EvaluateInMemory(Rel("R3"), db);
  EXPECT_FALSE(missing.ok());
}

TEST(InMemoryTest, SelectionAndProjection) {
  std::map<std::string, Relation> db;
  db["R1"] = MakeRelation(
      "R1", {{"0", "1"}, {"1", "1"}, {"0", "0"}});
  db["R2"] = MakeRelation("R2", {});

  Result<Relation> sel =
      EvaluateInMemory(SelectEqConst(Rel("R1"), 0, "0"), db);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().tuples.size(), 2u);

  Result<Relation> sel_col =
      EvaluateInMemory(SelectEqColumn(Rel("R1"), 0, 1), db);
  ASSERT_TRUE(sel_col.ok());
  EXPECT_TRUE(sel_col.value() ==
              MakeRelation("x", {{"1", "1"}, {"0", "0"}}));

  Result<Relation> proj = EvaluateInMemory(Project(Rel("R1"), {1}), db);
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj.value().tuples.size(), 2u);  // dedup: {"1"}, {"0"}
}

TEST(InMemoryTest, Product) {
  std::map<std::string, Relation> db;
  db["R1"] = MakeRelation("R1", {{"0"}, {"1"}});
  db["R2"] = MakeRelation("R2", {{"a"}, {"b"}, {"c"}});
  Result<Relation> prod =
      EvaluateInMemory(Product(Rel("R1"), Rel("R2")), db);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod.value().tuples.size(), 6u);
  EXPECT_EQ(prod.value().arity, 2u);
}

// ---------------------------------------------------------------------
// Streaming evaluator vs in-memory evaluator
// ---------------------------------------------------------------------

class StreamingAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingAgreementTest, AgreesOnRandomDatabases) {
  Rng rng(GetParam());
  std::map<std::string, Relation> db = RandomDatabase(rng, 12, 2);
  const std::vector<RelAlgExprPtr> queries = {
      Rel("R1"),
      Union(Rel("R1"), Rel("R2")),
      Difference(Rel("R1"), Rel("R2")),
      Difference(Rel("R2"), Rel("R1")),
      Intersection(Rel("R1"), Rel("R2")),
      SymmetricDifferenceQuery(),
      SelectEqColumn(Rel("R1"), 0, 1),
      Project(Rel("R1"), {0}),
      Project(Union(Rel("R1"), Rel("R2")), {1}),
      Product(Project(Rel("R1"), {0}), Project(Rel("R2"), {1})),
      Union(Intersection(Rel("R1"), Rel("R2")),
            Difference(Rel("R1"), Rel("R2"))),  // == R1
  };
  for (const auto& query : queries) {
    Relation streamed;
    Result<Relation> reference = EvalBoth(query, db, &streamed);
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_TRUE(streamed == reference.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(StreamingTest, NeedsSixTapes) {
  stmodel::StContext ctx(3);
  ctx.LoadInput("");
  EXPECT_FALSE(EvaluateOnTapes(Rel("R1"), ctx).ok());
}

TEST(StreamingTest, EmptyDatabase) {
  stmodel::StContext ctx(kRelAlgTapes);
  ctx.LoadInput("");
  Result<Relation> out = EvaluateOnTapes(SymmetricDifferenceQuery(), ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().tuples.empty());
}


TEST(InMemoryTest, EquiJoin) {
  std::map<std::string, Relation> db;
  db["R1"] = MakeRelation("R1", {{"a", "1"}, {"b", "2"}, {"c", "1"}});
  db["R2"] = MakeRelation("R2", {{"1", "x"}, {"2", "y"}, {"3", "z"}});
  // Join R1.col1 = R2.col0.
  Result<Relation> joined = EvaluateInMemory(
      EquiJoin(Rel("R1"), Rel("R2"), 2, {{1, 0}}), db);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined.value() ==
              MakeRelation("x", {{"a", "1", "1", "x"},
                                 {"c", "1", "1", "x"},
                                 {"b", "2", "2", "y"}}));
}

TEST(StreamingTest, EquiJoinAgreesWithInMemory) {
  Rng rng(77);
  std::map<std::string, Relation> db = RandomDatabase(rng, 10, 2);
  const RelAlgExprPtr join =
      EquiJoin(Rel("R1"), Rel("R2"), 2, {{0, 0}});
  Relation streamed;
  Result<Relation> reference = EvalBoth(join, db, &streamed);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(streamed == reference.value());
}

// Theorem 11(b): the symmetric-difference query decides SET-EQUALITY.
class SymmetricDifferenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymmetricDifferenceTest, EmptyResultIffSetsEqual) {
  Rng rng(GetParam());
  for (bool equal : {true, false}) {
    problems::Instance inst =
        equal ? problems::EqualSets(8, 8, rng)
              : problems::PerturbedMultisets(8, 8, 1, rng);
    std::map<std::string, Relation> db;
    db["R1"].name = "R1";
    db["R2"].name = "R2";
    for (const auto& v : inst.first) {
      db["R1"].Insert({v.ToString()});
    }
    for (const auto& v : inst.second) {
      db["R2"].Insert({v.ToString()});
    }
    stmodel::StContext ctx(kRelAlgTapes);
    ctx.LoadInput(EncodeDatabaseStream(db));
    Result<Relation> out =
        EvaluateOnTapes(SymmetricDifferenceQuery(), ctx);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value().tuples.empty(),
              problems::RefSetEquality(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetricDifferenceTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// Theorem 11(a): the streaming evaluation uses Theta(log N) scans.
TEST(StreamingTest, ScanBoundGrowsLogarithmically) {
  Rng rng(5);
  std::vector<std::uint64_t> scans;
  for (std::size_t size : {32u, 128u, 512u}) {
    // 20-bit values so the requested sizes are actually realized
    // (4-bit values would cap a set-semantics relation at 16 tuples).
    std::map<std::string, Relation> db = RandomDatabaseWide(rng, size);
    stmodel::StContext ctx(kRelAlgTapes);
    ctx.LoadInput(EncodeDatabaseStream(db));
    ASSERT_TRUE(EvaluateOnTapes(SymmetricDifferenceQuery(), ctx).ok());
    scans.push_back(ctx.Report().scan_bound);
  }
  // Quadrupling the data adds a constant number of scans (the query
  // performs a constant number of merge sorts, each gaining two passes
  // per quadrupling) — the signature of c_Q * log N growth.
  EXPECT_EQ(scans[1] - scans[0], scans[2] - scans[1]);
  EXPECT_LE(scans[1] - scans[0], 200u);
  EXPECT_LT(scans[2], scans[0] * 3);
}

}  // namespace
}  // namespace rstlab::query
