// Property tests of the list-machine execution engine: randomized
// machine programs drive the Definition 24 semantics into corners that
// hand-written machines do not reach, and the Lemma 30/31 invariants
// plus skeleton determinism must survive all of them.

#include <vector>

#include <gtest/gtest.h>

#include "conform/harness.h"
#include "listmachine/analysis.h"
#include "listmachine/list_machine.h"
#include "listmachine/machines.h"
#include "listmachine/skeleton.h"
#include "util/random.h"

namespace rstlab::listmachine {
namespace {

/// Per-test trial count: RSTLAB_TEST_CASES when set, else 20.
const int kTrials = static_cast<int>(conform::EnvTestCases(20));

/// A machine whose transition table is filled with seeded random
/// movements and state successors. States 0..num_states-1 are interior;
/// the step counter in the state id guarantees termination: state ids
/// encode (step, table_row) and any step >= max_steps is final.
class RandomProgram : public ListMachineProgram {
 public:
  RandomProgram(std::uint64_t seed, std::size_t t, std::size_t rows,
                std::size_t max_steps)
      : t_(t), rows_(rows), max_steps_(max_steps) {
    Rng rng(seed);
    table_.resize(rows);
    for (auto& row : table_) {
      row.next_row = static_cast<int>(rng.UniformBelow(rows));
      for (std::size_t i = 0; i < t; ++i) {
        row.movements.push_back(
            Movement{rng.Bernoulli(0.5) ? +1 : -1, rng.Bernoulli(0.6)});
      }
      row.accept = rng.Bernoulli(0.5);
    }
  }

  std::size_t num_lists() const override { return t_; }
  std::size_t num_choices() const override { return 1; }
  StateId initial_state() const override { return 0; }
  bool IsFinal(StateId state) const override {
    return static_cast<std::size_t>(state) / rows_ >= max_steps_;
  }
  bool IsAccepting(StateId state) const override {
    return IsFinal(state) &&
           table_[static_cast<std::size_t>(state) % rows_].accept;
  }
  TransitionResult Step(StateId state,
                        const std::vector<const CellContent*>& reads,
                        ChoiceId choice) const override {
    (void)reads;
    (void)choice;
    const std::size_t step = static_cast<std::size_t>(state) / rows_;
    const std::size_t row = static_cast<std::size_t>(state) % rows_;
    TransitionResult tr;
    tr.movements = table_[row].movements;
    tr.next_state = static_cast<StateId>((step + 1) * rows_ +
                                         static_cast<std::size_t>(
                                             table_[row].next_row));
    return tr;
  }

 private:
  struct Row {
    int next_row = 0;
    std::vector<Movement> movements;
    bool accept = false;
  };
  std::size_t t_;
  std::size_t rows_;
  std::size_t max_steps_;
  std::vector<Row> table_;
};

class ExecutorPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorPropertyTest, InvariantsHoldOnRandomPrograms) {
  Rng rng(GetParam() * 7919);
  for (int trial = 0; trial < kTrials; ++trial) {
    // Random programs reverse direction almost every step, and each
    // reversal lets trace strings embed all current reads — growth is
    // exponential in the reversal count (exactly what Lemma 30's
    // 11 * max(t,2)^r bound says). Keep r small enough to stay in RAM.
    const std::size_t t = 2;
    const std::size_t rows = 2 + rng.UniformBelow(5);
    const std::size_t steps = 4 + rng.UniformBelow(9);
    const std::size_t m = 1 + rng.UniformBelow(6);
    RandomProgram program(rng.Next64(), t, rows, steps);
    ListMachineExecutor exec(&program);

    std::vector<std::uint64_t> input(m);
    for (auto& v : input) v = rng.UniformBelow(100);

    Result<ListMachineRun> run =
        exec.RunDeterministic(input, steps + 2);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run.value().halted);

    // Invariant 1: heads stay on their lists.
    const ListMachineConfig& fc = run.value().final_config;
    for (std::size_t i = 0; i < t; ++i) {
      ASSERT_LT(fc.heads[i], fc.lists[i].size());
    }

    // Invariant 2: Lemma 30 growth bounds.
    GrowthCheck growth = CheckGrowth(run.value(), m);
    EXPECT_TRUE(growth.within_bounds)
        << "t=" << t << " steps=" << steps << " m=" << m << ": lists "
        << growth.measured_total_list_length << "/"
        << growth.bound_total_list_length << ", cells "
        << growth.measured_max_cell_size << "/"
        << growth.bound_max_cell_size;

    // Invariant 3: Lemma 31 run shape (k = rows * (steps + 1) states).
    RunShapeCheck shape =
        CheckRunShape(run.value(), m, rows * (steps + 1));
    EXPECT_TRUE(shape.within_bounds);

    // Invariant 4: every trace cell is well-bracketed (TraceComponent
    // finds all t + 1 components on freshly written cells).
    for (std::size_t i = 0; i < t; ++i) {
      for (const CellContent& cell : fc.lists[i]) {
        if (cell.empty() || cell.front().kind != Symbol::Kind::kState) {
          continue;
        }
        for (std::size_t comp = 0; comp <= t; ++comp) {
          EXPECT_TRUE(TraceComponent(cell, comp).has_value());
        }
        EXPECT_FALSE(TraceComponent(cell, t + 1).has_value());
      }
    }

    // Invariant 5: determinism — identical reruns give identical
    // skeletons and acceptance.
    Result<ListMachineRun> rerun =
        exec.RunDeterministic(input, steps + 2);
    ASSERT_TRUE(rerun.ok());
    EXPECT_EQ(BuildSkeleton(run.value()), BuildSkeleton(rerun.value()));
    EXPECT_EQ(run.value().accepted, rerun.value().accepted);

    // Invariant 6: value-obliviousness — RandomProgram ignores reads,
    // so a different same-length input yields the same skeleton.
    std::vector<std::uint64_t> other(m);
    for (auto& v : other) v = 100 + rng.UniformBelow(100);
    Result<ListMachineRun> other_run =
        exec.RunDeterministic(other, steps + 2);
    ASSERT_TRUE(other_run.ok());
    EXPECT_EQ(BuildSkeleton(run.value()),
              BuildSkeleton(other_run.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10));

TEST(ExecutorPropertyTest, ReversalAccountingMatchesDirectionChanges) {
  // Cross-check reversal counters against a recomputation from the
  // recorded step directions.
  Rng rng(4242);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::size_t t = 2;
    RandomProgram program(rng.Next64(), t, 3, 10);
    ListMachineExecutor exec(&program);
    Result<ListMachineRun> run = exec.RunDeterministic({1, 2, 3}, 15);
    ASSERT_TRUE(run.ok());
    // Recompute: direction changes visible in consecutive step records.
    std::vector<std::uint64_t> recomputed(t, 0);
    for (std::size_t s = 1; s < run.value().steps.size(); ++s) {
      for (std::size_t i = 0; i < t; ++i) {
        if (run.value().steps[s].directions_before[i] !=
            run.value().steps[s - 1].directions_before[i]) {
          ++recomputed[i];
        }
      }
    }
    // The final configuration may add one more change after the last
    // recorded step.
    for (std::size_t i = 0; i < t; ++i) {
      if (!run.value().steps.empty() &&
          run.value().final_config.directions[i] !=
              run.value().steps.back().directions_before[i]) {
        ++recomputed[i];
      }
    }
    EXPECT_EQ(run.value().reversals, recomputed);
  }
}

}  // namespace
}  // namespace rstlab::listmachine
