#include <gtest/gtest.h>

#include <vector>

#include "obs/ring_sink.h"
#include "obs/trace.h"
#include "tape/resource_meter.h"
#include "tape/tape.h"

namespace rstlab::tape {
namespace {

TEST(TapeTest, FreshTapeIsBlank) {
  Tape t;
  EXPECT_EQ(t.Read(), kBlank);
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.reversals(), 0u);
  EXPECT_EQ(t.direction(), Direction::kRight);
}

TEST(TapeTest, ReadsInitialContent) {
  Tape t("abc");
  EXPECT_EQ(t.Read(), 'a');
  t.MoveRight();
  EXPECT_EQ(t.Read(), 'b');
  t.MoveRight();
  EXPECT_EQ(t.Read(), 'c');
  t.MoveRight();
  EXPECT_EQ(t.Read(), kBlank);
}

TEST(TapeTest, WriteDoesNotMoveHead) {
  Tape t;
  t.Write('x');
  EXPECT_EQ(t.Read(), 'x');
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.reversals(), 0u);
}

TEST(TapeTest, ForwardScanCostsNoReversal) {
  Tape t("hello");
  for (int i = 0; i < 10; ++i) t.MoveRight();
  EXPECT_EQ(t.reversals(), 0u);
}

TEST(TapeTest, DirectionChangeCountsOnce) {
  Tape t("hello");
  t.MoveRight();
  t.MoveRight();
  t.MoveLeft();  // reversal 1
  t.MoveLeft();
  EXPECT_EQ(t.reversals(), 1u);
  t.MoveRight();  // reversal 2
  EXPECT_EQ(t.reversals(), 2u);
}

TEST(TapeTest, BlockedLeftMoveAtCellZeroChargesNothing) {
  // The tape is one-sided: at cell 0 a left move cannot happen, so it
  // must not flip the recorded direction or charge a reversal —
  // Definition 1 counts direction changes of the actual head
  // trajectory, and a blocked move has none.
  Tape t("ab");
  t.MoveLeft();
  EXPECT_EQ(t.reversals(), 0u);
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.direction(), Direction::kRight);
  // Repeated blocked moves stay free.
  t.MoveLeft();
  t.MoveLeft();
  EXPECT_EQ(t.reversals(), 0u);
  // Moving right afterwards continues the initial rightward scan: no
  // phantom right-reversal either.
  t.MoveRight();
  EXPECT_EQ(t.reversals(), 0u);
}

TEST(TapeTest, BlockedLeftMoveAfterRealReversalKeepsLeftDirection) {
  Tape t("abc");
  t.MoveRight();
  t.MoveLeft();  // real reversal at cell 1
  EXPECT_EQ(t.reversals(), 1u);
  EXPECT_EQ(t.head(), 0u);
  t.MoveLeft();  // blocked at cell 0: still facing left, no charge
  EXPECT_EQ(t.reversals(), 1u);
  EXPECT_EQ(t.direction(), Direction::kLeft);
  t.MoveRight();  // real reversal back to the right
  EXPECT_EQ(t.reversals(), 2u);
}

TEST(TapeTest, SeekZeroRoundTripCostsOneReversalPerTurn) {
  Tape t("0123456789");
  t.Seek(5);
  EXPECT_EQ(t.reversals(), 0u);
  t.Seek(0);  // backward scan: one reversal
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.reversals(), 1u);
  t.Seek(0);  // already there: a no-op, no phantom charge
  EXPECT_EQ(t.reversals(), 1u);
  t.Seek(5);  // forward again: second reversal
  EXPECT_EQ(t.reversals(), 2u);
  t.Seek(0);
  t.Seek(0);
  EXPECT_EQ(t.reversals(), 3u);
}

TEST(TapeTest, LeftEdgeChurnKeepsScanBoundExact) {
  // Regression for the phantom-reversal bug: left-edge churn used to
  // inflate r. A run that scans right then returns to cell 0 and pokes
  // the edge must bill exactly scan_bound = 2 (one reversal).
  Tape t("abcd");
  for (int i = 0; i < 4; ++i) t.MoveRight();
  t.Seek(0);
  t.MoveLeft();
  t.MoveLeft();
  ResourceReport report = MeasureTapes({&t}, 0);
  EXPECT_EQ(report.scan_bound, 2u);
  EXPECT_EQ(report.reversals_per_tape[0], 1u);
}

TEST(TapeTest, SeekCostsAtMostTwoReversals) {
  Tape t("0123456789");
  t.Seek(7);
  EXPECT_EQ(t.head(), 7u);
  EXPECT_EQ(t.reversals(), 0u);  // forward only
  t.Seek(2);
  EXPECT_EQ(t.head(), 2u);
  EXPECT_EQ(t.reversals(), 1u);
  t.Seek(5);
  EXPECT_EQ(t.reversals(), 2u);
}

TEST(TapeTest, ResetClearsAccounting) {
  Tape t("abc");
  t.MoveRight();
  t.MoveLeft();
  t.Reset("xyz");
  EXPECT_EQ(t.reversals(), 0u);
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.Read(), 'x');
}

TEST(TapeTest, CellsUsedGrowsWithVisits) {
  Tape t;
  for (int i = 0; i < 5; ++i) t.MoveRight();
  EXPECT_GE(t.cells_used(), 5u);
}

TEST(ResourceMeterTest, AggregatesScanBound) {
  Tape a("xx");
  Tape b("yy");
  a.MoveRight();
  a.MoveLeft();   // 1 reversal
  b.MoveRight();
  b.MoveLeft();
  b.MoveRight();  // 2 reversals
  ResourceReport report = MeasureTapes({&a, &b}, 17);
  EXPECT_EQ(report.scan_bound, 1u + 1u + 2u);
  EXPECT_EQ(report.internal_space, 17u);
  EXPECT_EQ(report.num_external_tapes, 2u);
  ASSERT_EQ(report.reversals_per_tape.size(), 2u);
  EXPECT_EQ(report.reversals_per_tape[0], 1u);
  EXPECT_EQ(report.reversals_per_tape[1], 2u);
}

TEST(ResourceMeterTest, ComplianceChecks) {
  ResourceReport report;
  report.scan_bound = 4;
  report.internal_space = 100;
  report.num_external_tapes = 2;
  StBounds bounds{4, 100, 2};
  EXPECT_TRUE(Complies(report, bounds));
  bounds.max_scans = 3;
  EXPECT_FALSE(Complies(report, bounds));
  bounds.max_scans = 4;
  bounds.max_internal_space = 99;
  EXPECT_FALSE(Complies(report, bounds));
  bounds.max_internal_space = 100;
  bounds.max_external_tapes = 1;
  EXPECT_FALSE(Complies(report, bounds));
}

TEST(ResourceMeterTest, FirstViolationPinpointsScanBoundBreach) {
  // A traced tape run whose third reversal breaks max_scans = 3: the
  // checker must name the exact event — tape id, head position and
  // index in the stream — not just the final tally.
  obs::RingSink ring;
  Tape t("abcdef");
  t.AttachTrace(&ring, /*tape_id=*/0);
  for (int i = 0; i < 6; ++i) t.MoveRight();
  t.MoveLeft();   // reversal 1 at pos 6 -> scan_bound 2
  t.MoveLeft();
  t.MoveRight();  // reversal 2 at pos 4 -> scan_bound 3
  t.MoveRight();
  t.MoveLeft();   // reversal 3 at pos 6 -> scan_bound 4 > 3
  t.FlushTrace();

  const std::vector<obs::TraceEvent> events = ring.Snapshot();
  StBounds bounds{/*max_scans=*/3, /*max_internal_space=*/1024,
                  /*max_external_tapes=*/1};
  const auto violation = FirstViolation(events, bounds);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->quantity, "scan_bound");
  EXPECT_EQ(violation->measured, 4u);
  EXPECT_EQ(violation->bound, 3u);
  EXPECT_EQ(violation->tape_id, 0);
  EXPECT_EQ(violation->position, 6u);
  // The offending event is the third kReversal in the stream; check
  // the index points at exactly that event.
  ASSERT_LT(violation->event_index, events.size());
  EXPECT_EQ(events[violation->event_index].kind,
            obs::EventKind::kReversal);
  EXPECT_NE(violation->ToString().find("scan_bound 4 > 3"),
            std::string::npos);

  // The same stream complies once the bound matches the measured run.
  bounds.max_scans = 4;
  EXPECT_FALSE(FirstViolation(events, bounds).has_value());
}

TEST(ResourceMeterTest, FirstViolationSpotsArenaAndTapeBreaches) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent high_water;
  high_water.kind = obs::EventKind::kArenaHighWater;
  high_water.value = 200;
  events.push_back(high_water);
  const auto arena_violation =
      FirstViolation(events, StBounds{4, /*max_internal_space=*/100, 2});
  ASSERT_TRUE(arena_violation.has_value());
  EXPECT_EQ(arena_violation->quantity, "internal_space");
  EXPECT_EQ(arena_violation->measured, 200u);
  EXPECT_EQ(arena_violation->event_index, 0u);

  events.clear();
  for (std::int32_t tape = 0; tape < 3; ++tape) {
    obs::TraceEvent begin;
    begin.kind = obs::EventKind::kScanBegin;
    begin.tape_id = tape;
    events.push_back(begin);
  }
  const auto tape_violation =
      FirstViolation(events, StBounds{4, 100, /*max_external_tapes=*/2});
  ASSERT_TRUE(tape_violation.has_value());
  EXPECT_EQ(tape_violation->quantity, "external_tapes");
  EXPECT_EQ(tape_violation->measured, 3u);
  EXPECT_EQ(tape_violation->event_index, 2u);
}

TEST(ResourceMeterTest, ReportToStringMentionsEverything) {
  ResourceReport report;
  report.scan_bound = 3;
  report.internal_space = 12;
  report.num_external_tapes = 2;
  report.external_space = 99;
  const std::string s = report.ToString();
  EXPECT_NE(s.find("r=3"), std::string::npos);
  EXPECT_NE(s.find("s=12"), std::string::npos);
  EXPECT_NE(s.find("t=2"), std::string::npos);
  EXPECT_NE(s.find("ext=99"), std::string::npos);
}

}  // namespace
}  // namespace rstlab::tape
