#include <gtest/gtest.h>

#include "tape/resource_meter.h"
#include "tape/tape.h"

namespace rstlab::tape {
namespace {

TEST(TapeTest, FreshTapeIsBlank) {
  Tape t;
  EXPECT_EQ(t.Read(), kBlank);
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.reversals(), 0u);
  EXPECT_EQ(t.direction(), Direction::kRight);
}

TEST(TapeTest, ReadsInitialContent) {
  Tape t("abc");
  EXPECT_EQ(t.Read(), 'a');
  t.MoveRight();
  EXPECT_EQ(t.Read(), 'b');
  t.MoveRight();
  EXPECT_EQ(t.Read(), 'c');
  t.MoveRight();
  EXPECT_EQ(t.Read(), kBlank);
}

TEST(TapeTest, WriteDoesNotMoveHead) {
  Tape t;
  t.Write('x');
  EXPECT_EQ(t.Read(), 'x');
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.reversals(), 0u);
}

TEST(TapeTest, ForwardScanCostsNoReversal) {
  Tape t("hello");
  for (int i = 0; i < 10; ++i) t.MoveRight();
  EXPECT_EQ(t.reversals(), 0u);
}

TEST(TapeTest, DirectionChangeCountsOnce) {
  Tape t("hello");
  t.MoveRight();
  t.MoveRight();
  t.MoveLeft();  // reversal 1
  t.MoveLeft();
  EXPECT_EQ(t.reversals(), 1u);
  t.MoveRight();  // reversal 2
  EXPECT_EQ(t.reversals(), 2u);
}

TEST(TapeTest, InitialLeftMoveIsAReversal) {
  // The head starts in right direction; moving left first thing is a
  // direction change.
  Tape t("ab");
  t.MoveLeft();
  EXPECT_EQ(t.reversals(), 1u);
  EXPECT_EQ(t.head(), 0u);  // clamped at the left end
}

TEST(TapeTest, SeekCostsAtMostTwoReversals) {
  Tape t("0123456789");
  t.Seek(7);
  EXPECT_EQ(t.head(), 7u);
  EXPECT_EQ(t.reversals(), 0u);  // forward only
  t.Seek(2);
  EXPECT_EQ(t.head(), 2u);
  EXPECT_EQ(t.reversals(), 1u);
  t.Seek(5);
  EXPECT_EQ(t.reversals(), 2u);
}

TEST(TapeTest, ResetClearsAccounting) {
  Tape t("abc");
  t.MoveRight();
  t.MoveLeft();
  t.Reset("xyz");
  EXPECT_EQ(t.reversals(), 0u);
  EXPECT_EQ(t.head(), 0u);
  EXPECT_EQ(t.Read(), 'x');
}

TEST(TapeTest, CellsUsedGrowsWithVisits) {
  Tape t;
  for (int i = 0; i < 5; ++i) t.MoveRight();
  EXPECT_GE(t.cells_used(), 5u);
}

TEST(ResourceMeterTest, AggregatesScanBound) {
  Tape a("xx");
  Tape b("yy");
  a.MoveRight();
  a.MoveLeft();   // 1 reversal
  b.MoveRight();
  b.MoveLeft();
  b.MoveRight();  // 2 reversals
  ResourceReport report = MeasureTapes({&a, &b}, 17);
  EXPECT_EQ(report.scan_bound, 1u + 1u + 2u);
  EXPECT_EQ(report.internal_space, 17u);
  EXPECT_EQ(report.num_external_tapes, 2u);
  ASSERT_EQ(report.reversals_per_tape.size(), 2u);
  EXPECT_EQ(report.reversals_per_tape[0], 1u);
  EXPECT_EQ(report.reversals_per_tape[1], 2u);
}

TEST(ResourceMeterTest, ComplianceChecks) {
  ResourceReport report;
  report.scan_bound = 4;
  report.internal_space = 100;
  report.num_external_tapes = 2;
  StBounds bounds{4, 100, 2};
  EXPECT_TRUE(Complies(report, bounds));
  bounds.max_scans = 3;
  EXPECT_FALSE(Complies(report, bounds));
  bounds.max_scans = 4;
  bounds.max_internal_space = 99;
  EXPECT_FALSE(Complies(report, bounds));
  bounds.max_internal_space = 100;
  bounds.max_external_tapes = 1;
  EXPECT_FALSE(Complies(report, bounds));
}

TEST(ResourceMeterTest, ReportToStringMentionsEverything) {
  ResourceReport report;
  report.scan_bound = 3;
  report.internal_space = 12;
  report.num_external_tapes = 2;
  report.external_space = 99;
  const std::string s = report.ToString();
  EXPECT_NE(s.find("r=3"), std::string::npos);
  EXPECT_NE(s.find("s=12"), std::string::npos);
  EXPECT_NE(s.find("t=2"), std::string::npos);
  EXPECT_NE(s.find("ext=99"), std::string::npos);
}

}  // namespace
}  // namespace rstlab::tape
