#include <algorithm>

#include <gtest/gtest.h>

#include "problems/generators.h"
#include "problems/reference.h"
#include "sorting/deciders.h"
#include "sorting/las_vegas.h"
#include "stmodel/st_context.h"
#include "util/bitstring.h"
#include "util/random.h"

namespace rstlab::sorting {
namespace {

std::vector<std::string> RandomFields(std::size_t count, std::size_t bits,
                                      Rng& rng) {
  std::vector<std::string> fields;
  for (std::size_t i = 0; i < count; ++i) {
    fields.push_back(BitString::Random(bits, rng).ToString());
  }
  return fields;
}

SortSubroutine CorrectSorter() {
  return [](const std::vector<std::string>& fields) {
    std::vector<std::string> out = fields;
    std::sort(out.begin(), out.end());
    return out;
  };
}

TEST(CertifiedSortTest, CorrectSubroutineAlwaysAnswers) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> fields = RandomFields(32, 16, rng);
    LasVegasOutcome outcome =
        CertifiedSort(fields, CorrectSorter(), rng);
    ASSERT_TRUE(outcome.sorted.has_value());
    std::vector<std::string> expected = fields;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(*outcome.sorted, expected);
  }
}

TEST(CertifiedSortTest, NeverReturnsWrongAnswer) {
  // The LasVegas contract: output correct or "I don't know" — never a
  // wrong output. The faulty sorter corrupts every run; the certificate
  // must catch (almost) every corruption, and whenever it lets a run
  // through, the output must actually be correct.
  Rng rng(2);
  SortSubroutine faulty = FaultySorter(1.0, 99);
  int answered = 0;
  int wrong = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::string> fields = RandomFields(16, 16, rng);
    LasVegasOutcome outcome = CertifiedSort(fields, faulty, rng);
    if (!outcome.sorted.has_value()) continue;
    ++answered;
    std::vector<std::string> expected = fields;
    std::sort(expected.begin(), expected.end());
    if (*outcome.sorted != expected) ++wrong;
  }
  EXPECT_EQ(wrong, 0);
  // The fingerprint misses a corruption with probability <= 1/2 (in
  // practice almost never), so most runs answer "I don't know".
  EXPECT_LE(answered, trials / 2);
}

TEST(CertifiedSortTest, IntermittentFaultsStillSafe) {
  Rng rng(3);
  SortSubroutine flaky = FaultySorter(0.3, 7);
  int answered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::string> fields = RandomFields(16, 16, rng);
    LasVegasOutcome outcome = CertifiedSort(fields, flaky, rng);
    if (!outcome.sorted.has_value()) continue;
    ++answered;
    std::vector<std::string> expected = fields;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(*outcome.sorted, expected);
  }
  // ~70% clean runs must get through.
  EXPECT_GE(answered, trials / 2);
}

TEST(CertifiedSortTest, EmptyAndSingleton) {
  Rng rng(4);
  LasVegasOutcome empty = CertifiedSort({}, CorrectSorter(), rng);
  ASSERT_TRUE(empty.sorted.has_value());
  EXPECT_TRUE(empty.sorted->empty());
  LasVegasOutcome one = CertifiedSort({"0101"}, CorrectSorter(), rng);
  ASSERT_TRUE(one.sorted.has_value());
  EXPECT_EQ(one.sorted->size(), 1u);
}

TEST(CertifiedSortTest, AllEqualMultiset) {
  // Degenerate key distribution: every field identical. Any
  // arrangement is correctly sorted and multiset-equal, so a correct
  // subroutine must always be accepted, and even a permanently faulty
  // one can never push a *wrong* answer through the certificate — a
  // swap corruption is invisible (and harmless), a value corruption
  // changes the multiset and must be caught.
  Rng rng(11);
  const std::vector<std::string> fields(17, "1010");
  LasVegasOutcome outcome = CertifiedSort(fields, CorrectSorter(), rng);
  ASSERT_TRUE(outcome.sorted.has_value());
  EXPECT_EQ(*outcome.sorted, fields);

  SortSubroutine faulty = FaultySorter(1.0, 5);
  for (int t = 0; t < 50; ++t) {
    LasVegasOutcome o = CertifiedSort(fields, faulty, rng);
    if (o.sorted.has_value()) {
      EXPECT_EQ(*o.sorted, fields);
    }
  }
}

TEST(CheckSortViaSortingTest, AllEqualMultisetIsSorted) {
  // First list = second list = m copies of one value: a "yes" of
  // CHECK-SORT with maximally non-distinct keys.
  problems::Instance inst;
  for (int i = 0; i < 8; ++i) {
    inst.first.push_back(BitString::FromString("0110"));
    inst.second.push_back(BitString::FromString("0110"));
  }
  ASSERT_TRUE(problems::RefCheckSort(inst));
  stmodel::StContext ctx(kDeciderTapes);
  ctx.LoadInput(inst.Encode());
  Result<bool> decided = CheckSortViaSorting(ctx);
  ASSERT_TRUE(decided.ok()) << decided.status();
  EXPECT_TRUE(decided.value());
}

class CheckSortViaSortingTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckSortViaSortingTest, MatchesOracle) {
  Rng rng(GetParam());
  for (bool yes : {true, false}) {
    problems::Instance inst =
        yes ? problems::SortedPair(16, 12, rng)
            : problems::MisorderedPair(16, 12, rng);
    stmodel::StContext ctx(kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    Result<bool> decided = CheckSortViaSorting(ctx);
    ASSERT_TRUE(decided.ok()) << decided.status();
    EXPECT_EQ(decided.value(), problems::RefCheckSort(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckSortViaSortingTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(CheckSortViaSortingTest, ScanBoundLogarithmic) {
  Rng rng(9);
  std::vector<std::uint64_t> scans;
  for (std::size_t m : {32u, 128u, 512u}) {
    problems::Instance inst = problems::SortedPair(m, 12, rng);
    stmodel::StContext ctx(kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    ASSERT_TRUE(CheckSortViaSorting(ctx).ok());
    scans.push_back(ctx.Report().scan_bound);
  }
  EXPECT_EQ(scans[1] - scans[0], scans[2] - scans[1]);
}

}  // namespace
}  // namespace rstlab::sorting
