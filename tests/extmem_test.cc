#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "extmem/block_cache.h"
#include "extmem/block_file.h"
#include "extmem/file_storage.h"
#include "extmem/io_stats.h"
#include "extmem/storage.h"
#include "obs/metrics.h"

namespace rstlab::extmem {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

FileStorage::FileOptions SmallFileOptions() {
  FileStorage::FileOptions options;
  options.block_size = 16;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  return options;
}

// ---------------------------------------------------------------------
// MemStorage

TEST(MemStorageTest, FreshStorageReadsBlank) {
  MemStorage storage;
  EXPECT_EQ(storage.size(), 0u);
  EXPECT_EQ(storage.ReadCell(0), kBlankCell);
  EXPECT_EQ(storage.ReadCell(1000), kBlankCell);
}

TEST(MemStorageTest, WriteGrowsLogicalLength) {
  MemStorage storage;
  storage.WriteCell(5, 'x');
  EXPECT_EQ(storage.size(), 6u);
  EXPECT_EQ(storage.ReadCell(5), 'x');
  // The gap reads blank.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(storage.ReadCell(i), kBlankCell);
}

TEST(MemStorageTest, ReserveExtendsWithBlanks) {
  MemStorage storage(std::string("abc"));
  storage.Reserve(10);
  EXPECT_EQ(storage.size(), 10u);
  EXPECT_EQ(storage.ReadCell(2), 'c');
  EXPECT_EQ(storage.ReadCell(9), kBlankCell);
  // Reserving less than the current length is a no-op.
  storage.Reserve(1);
  EXPECT_EQ(storage.size(), 10u);
}

TEST(MemStorageTest, AssignReplacesContent) {
  MemStorage storage(std::string("old content here"));
  storage.Assign("new");
  EXPECT_EQ(storage.size(), 3u);
  EXPECT_EQ(storage.ReadRange(0, 100), "new");
}

TEST(MemStorageTest, ReadRangeClampsToLength) {
  MemStorage storage(std::string("abcdef"));
  EXPECT_EQ(storage.ReadRange(2, 3), "cde");
  EXPECT_EQ(storage.ReadRange(4, 100), "ef");
  EXPECT_EQ(storage.ReadRange(6, 4), "");
  EXPECT_EQ(storage.ReadRange(100, 4), "");
}

TEST(MemStorageTest, IoStatsAreAllZero) {
  MemStorage storage(std::string("abc"));
  storage.WriteCell(100, 'x');
  const IoStats stats = storage.io_stats();
  EXPECT_EQ(stats.block_reads, 0u);
  EXPECT_EQ(stats.block_writes, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

// ---------------------------------------------------------------------
// Checksums and the header codec

TEST(BlockFileTest, Fnv1a64MatchesReferenceVector) {
  // Offset basis for the empty input; "a" from the published FNV test
  // vectors.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
}

TEST(BlockFileTest, HeaderRoundTrips) {
  TapeFileHeader header;
  header.block_size = 4096;
  header.length = 170000;  // fits the 42-block extent
  header.num_blocks = 42;
  char buffer[kTapeFileHeaderSize];
  EncodeTapeFileHeader(header, buffer);
  Result<TapeFileHeader> decoded = DecodeTapeFileHeader(buffer);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().block_size, 4096u);
  EXPECT_EQ(decoded.value().length, 170000u);
  EXPECT_EQ(decoded.value().num_blocks, 42u);
}

TEST(BlockFileTest, HeaderRejectsBadMagic) {
  TapeFileHeader header;
  header.block_size = 64;
  char buffer[kTapeFileHeaderSize];
  EncodeTapeFileHeader(header, buffer);
  buffer[0] = 'X';
  Result<TapeFileHeader> decoded = DecodeTapeFileHeader(buffer);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bad magic"), std::string::npos);
}

TEST(BlockFileTest, HeaderRejectsChecksumMismatch) {
  TapeFileHeader header;
  header.block_size = 64;
  header.length = 7;
  char buffer[kTapeFileHeaderSize];
  EncodeTapeFileHeader(header, buffer);
  buffer[20] ^= 0x01;  // flip a bit inside the checksummed region
  Result<TapeFileHeader> decoded = DecodeTapeFileHeader(buffer);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos);
}

// ---------------------------------------------------------------------
// BlockFile device

TEST(BlockFileTest, WriteReadRoundTripAndBlankBeyondExtent) {
  const std::string path = TempPath("blockfile_roundtrip.rstape");
  auto file = BlockFile::Create(path, 16);
  ASSERT_TRUE(file.ok()) << file.status();
  std::unique_ptr<BlockFile> owned = std::move(file).value();
  BlockFile& device = *owned;

  std::string payload(16, 'q');
  ASSERT_TRUE(device.WriteBlock(2, payload.data()).ok());
  EXPECT_EQ(device.num_blocks(), 3u);  // gap blocks materialized blank

  char out[16];
  ASSERT_TRUE(device.ReadBlock(2, out).ok());
  EXPECT_EQ(std::string(out, 16), payload);
  ASSERT_TRUE(device.ReadBlock(0, out).ok());
  EXPECT_EQ(std::string(out, 16), std::string(16, kBlankCell));
  // Beyond the extent: synthesized blank, no error.
  ASSERT_TRUE(device.ReadBlock(100, out).ok());
  EXPECT_EQ(std::string(out, 16), std::string(16, kBlankCell));

  owned.reset();
  std::remove(path.c_str());
}

TEST(BlockFileTest, SyncThenOpenRestoresState) {
  const std::string path = TempPath("blockfile_reopen.rstape");
  {
    auto file = BlockFile::Create(path, 16);
    ASSERT_TRUE(file.ok()) << file.status();
    std::string payload(16, 'z');
    ASSERT_TRUE(file.value()->WriteBlock(0, payload.data()).ok());
    ASSERT_TRUE(file.value()->Sync(10).ok());
  }
  auto reopened = BlockFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::unique_ptr<BlockFile> device = std::move(reopened).value();
  EXPECT_EQ(device->block_size(), 16u);
  EXPECT_EQ(device->num_blocks(), 1u);
  EXPECT_EQ(device->header_length(), 10u);
  char out[16];
  ASSERT_TRUE(device->ReadBlock(0, out).ok());
  EXPECT_EQ(std::string(out, 16), std::string(16, 'z'));
  device.reset();
  std::remove(path.c_str());
}

TEST(BlockFileTest, OpenRejectsForeignFile) {
  const std::string path = TempPath("blockfile_foreign.rstape");
  {
    std::ofstream out(path, std::ios::binary);
    out << std::string(200, 'A');
  }
  auto opened = BlockFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("bad magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BlockFileTest, OpenRejectsShortHeader) {
  const std::string path = TempPath("blockfile_short.rstape");
  {
    std::ofstream out(path, std::ios::binary);
    out << "RSTL";  // 4 bytes: not even a full header
  }
  auto opened = BlockFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

// A crash between writing a block record and fflush can leave a partial
// record on disk; the next Open must call that out rather than read it.
TEST(BlockFileTest, OpenRejectsTruncatedBlockRecords) {
  const std::string path = TempPath("blockfile_torn.rstape");
  {
    auto file = BlockFile::Create(path, 16);
    ASSERT_TRUE(file.ok()) << file.status();
    std::string payload(16, 'k');
    ASSERT_TRUE(file.value()->WriteBlock(0, payload.data()).ok());
    ASSERT_TRUE(file.value()->WriteBlock(1, payload.data()).ok());
    ASSERT_TRUE(file.value()->Sync(32).ok());
  }
  // Kill the tail of the second record (simulated mid-flush crash).
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - 5);
  auto opened = BlockFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BlockFileTest, OpenRejectsFlippedPayloadByte) {
  const std::string path = TempPath("blockfile_bitrot.rstape");
  {
    auto file = BlockFile::Create(path, 16);
    ASSERT_TRUE(file.ok()) << file.status();
    std::string payload(16, 'm');
    ASSERT_TRUE(file.value()->WriteBlock(0, payload.data()).ok());
    ASSERT_TRUE(file.value()->Sync(16).ok());
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kTapeFileHeaderSize) + 3);
    f.put('M');  // flip one payload byte under its checksum
  }
  auto opened = BlockFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("checksum mismatch"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(BlockFileTest, OpenRejectsTrailingGarbage) {
  const std::string path = TempPath("blockfile_trailing.rstape");
  {
    auto file = BlockFile::Create(path, 16);
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(file.value()->Sync(0).ok());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  auto opened = BlockFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// FileStorage

TEST(FileStorageTest, WriteReadRoundTrip) {
  const std::string path = TempPath("filestorage_roundtrip.rstape");
  auto storage = FileStorage::Create(path, SmallFileOptions());
  ASSERT_TRUE(storage.ok()) << storage.status();
  FileStorage& fs = *storage.value();
  EXPECT_STREQ(fs.backend_name(), "file");

  const std::string content = "the quick brown fox jumps over the lazy dog";
  for (std::size_t i = 0; i < content.size(); ++i) {
    fs.WriteCell(i, content[i]);
  }
  EXPECT_EQ(fs.size(), content.size());
  for (std::size_t i = 0; i < content.size(); ++i) {
    EXPECT_EQ(fs.ReadCell(i), content[i]) << "cell " << i;
  }
  EXPECT_EQ(fs.ReadRange(0, content.size()), content);
  EXPECT_EQ(fs.ReadCell(content.size() + 500), kBlankCell);
}

TEST(FileStorageTest, DeleteOnCloseRemovesBackingFile) {
  const std::string path = TempPath("filestorage_temp.rstape");
  {
    auto storage = FileStorage::Create(path, SmallFileOptions());
    ASSERT_TRUE(storage.ok()) << storage.status();
    storage.value()->WriteCell(0, 'x');
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FileStorageTest, PersistentStorageReopens) {
  const std::string path = TempPath("filestorage_persist.rstape");
  FileStorage::FileOptions options = SmallFileOptions();
  options.delete_on_close = false;
  const std::string content = "persist me across storage lifetimes!";
  {
    auto storage = FileStorage::Create(path, options);
    ASSERT_TRUE(storage.ok()) << storage.status();
    for (std::size_t i = 0; i < content.size(); ++i) {
      storage.value()->WriteCell(i, content[i]);
    }
  }  // destructor flushes
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    auto reopened = FileStorage::Open(path, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    std::unique_ptr<FileStorage> fs = std::move(reopened).value();
    EXPECT_EQ(fs->size(), content.size());
    EXPECT_EQ(fs->ReadRange(0, content.size()), content);
  }
  std::remove(path.c_str());
}

TEST(FileStorageTest, ReopenAfterCleanCloseRoundTripsModifications) {
  // Three storage lifetimes over one file: create + explicit Flush,
  // reopen + mutate + extend, reopen + verify. A clean close must
  // round-trip not just the original content but modifications made in
  // a later lifetime, including growth past the original size.
  const std::string path = TempPath("filestorage_reopen_rt.rstape");
  FileStorage::FileOptions options = SmallFileOptions();
  options.delete_on_close = false;
  {
    auto storage = FileStorage::Create(path, options);
    ASSERT_TRUE(storage.ok()) << storage.status();
    storage.value()->Assign("0101");
    ASSERT_TRUE(storage.value()->Flush().ok());
  }
  {
    auto reopened = FileStorage::Open(path, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    std::unique_ptr<FileStorage> fs = std::move(reopened).value();
    ASSERT_EQ(fs->ReadRange(0, fs->size()), "0101");
    fs->WriteCell(0, '1');
    fs->Reserve(6);
    fs->WriteCell(5, 'x');
  }  // destructor flushes
  {
    auto reopened = FileStorage::Open(path, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    std::unique_ptr<FileStorage> fs = std::move(reopened).value();
    EXPECT_EQ(fs->size(), 6u);
    EXPECT_EQ(fs->ReadRange(0, 6),
              std::string("1101") + kBlankCell + "x");
  }
  std::remove(path.c_str());
}

TEST(FileStorageTest, LruEvictionPreservesContentLargerThanCache) {
  // 4-block cache over a tape spanning 64 blocks: every cell still
  // reads back what was written, through eviction and write-back.
  const std::string path = TempPath("filestorage_evict.rstape");
  FileStorage::FileOptions options = SmallFileOptions();
  options.readahead_blocks = 0;
  auto storage = FileStorage::Create(path, options);
  ASSERT_TRUE(storage.ok()) << storage.status();
  FileStorage& fs = *storage.value();

  const std::size_t cells = 64 * options.block_size;
  for (std::size_t i = 0; i < cells; ++i) {
    fs.WriteCell(i, static_cast<char>('a' + (i % 26)));
  }
  // Backward scan to force reloads of evicted blocks.
  fs.SetDirectionHint(-1);
  for (std::size_t i = cells; i-- > 0;) {
    ASSERT_EQ(fs.ReadCell(i), static_cast<char>('a' + (i % 26)))
        << "cell " << i;
  }
  const IoStats stats = fs.io_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.block_writes, 0u);
  EXPECT_GT(stats.block_reads, 0u);
}

TEST(FileStorageTest, SequentialScanReadaheadHitRateIsHigh) {
  const std::string path = TempPath("filestorage_readahead.rstape");
  FileStorage::FileOptions options = SmallFileOptions();
  options.delete_on_close = false;
  const std::size_t cells = 128 * options.block_size;
  {
    auto storage = FileStorage::Create(path, options);
    ASSERT_TRUE(storage.ok()) << storage.status();
    for (std::size_t i = 0; i < cells; ++i) {
      storage.value()->WriteCell(i, static_cast<char>('0' + (i % 10)));
    }
  }
  // A cold sequential scan over the reopened file: all but the first
  // block should arrive via readahead, and nearly all prefetched blocks
  // get used.
  auto reopened = FileStorage::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::unique_ptr<FileStorage> fs = std::move(reopened).value();
  fs->SetDirectionHint(+1);
  for (std::size_t i = 0; i < cells; ++i) {
    ASSERT_EQ(fs->ReadCell(i), static_cast<char>('0' + (i % 10)));
  }
  const IoStats stats = fs->io_stats();
  EXPECT_GT(stats.readahead_blocks, 0u);
  EXPECT_GE(stats.ReadaheadHitRate(), 0.9)
      << "readahead=" << stats.readahead_blocks
      << " hits=" << stats.readahead_hits;
  EXPECT_GE(stats.HitRate(), 0.9);
  fs.reset();
  std::remove(path.c_str());
}

TEST(FileStorageTest, BackwardScanReadaheadFollowsDirectionHint) {
  const std::string path = TempPath("filestorage_backward.rstape");
  FileStorage::FileOptions options = SmallFileOptions();
  options.delete_on_close = false;
  const std::size_t cells = 64 * options.block_size;
  {
    auto storage = FileStorage::Create(path, options);
    ASSERT_TRUE(storage.ok()) << storage.status();
    for (std::size_t i = 0; i < cells; ++i) {
      storage.value()->WriteCell(i, static_cast<char>('A' + (i % 26)));
    }
  }
  auto reopened = FileStorage::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::unique_ptr<FileStorage> fs = std::move(reopened).value();
  fs->SetDirectionHint(-1);
  for (std::size_t i = cells; i-- > 0;) {
    ASSERT_EQ(fs->ReadCell(i), static_cast<char>('A' + (i % 26)));
  }
  const IoStats stats = fs->io_stats();
  EXPECT_GT(stats.readahead_blocks, 0u);
  EXPECT_GE(stats.ReadaheadHitRate(), 0.9);
  fs.reset();
  std::remove(path.c_str());
}

TEST(FileStorageTest, ReserveReadsBlankWithoutDeviceTraffic) {
  const std::string path = TempPath("filestorage_reserve.rstape");
  auto storage = FileStorage::Create(path, SmallFileOptions());
  ASSERT_TRUE(storage.ok()) << storage.status();
  FileStorage& fs = *storage.value();
  fs.Reserve(10000);
  EXPECT_EQ(fs.size(), 10000u);
  EXPECT_EQ(fs.ReadCell(9999), kBlankCell);
  // Absent blocks are synthesized blank in the cache, not read from
  // the device.
  EXPECT_EQ(fs.io_stats().block_reads, 0u);
}

TEST(FileStorageTest, AssignReplacesContentAndResetsFile) {
  const std::string path = TempPath("filestorage_assign.rstape");
  auto storage = FileStorage::Create(path, SmallFileOptions());
  ASSERT_TRUE(storage.ok()) << storage.status();
  FileStorage& fs = *storage.value();
  for (std::size_t i = 0; i < 1000; ++i) fs.WriteCell(i, 'x');
  fs.Assign("short");
  EXPECT_EQ(fs.size(), 5u);
  EXPECT_EQ(fs.ReadRange(0, 5), "short");
  EXPECT_EQ(fs.ReadCell(999), kBlankCell);
}

TEST(FileStorageTest, FlushMakesFileReopenable) {
  const std::string path = TempPath("filestorage_flush.rstape");
  FileStorage::FileOptions options = SmallFileOptions();
  options.delete_on_close = false;
  auto storage = FileStorage::Create(path, options);
  ASSERT_TRUE(storage.ok()) << storage.status();
  std::unique_ptr<FileStorage> fs = std::move(storage).value();
  for (std::size_t i = 0; i < 100; ++i) fs->WriteCell(i, 'f');
  ASSERT_TRUE(fs->Flush().ok());
  {
    // The on-disk image is valid while the storage is still live.
    auto opened = BlockFile::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(opened.value()->header_length(), 100u);
  }
  // Writes after a Flush still land (the memoized block pointer must
  // not skip the re-dirtying).
  fs->WriteCell(0, 'g');
  ASSERT_TRUE(fs->Flush().ok());
  {
    auto again = FileStorage::Open(path, options);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(again.value()->ReadCell(0), 'g');
  }
  fs.reset();
  std::remove(path.c_str());
}

TEST(FileStorageTest, PublishesIoStatsToMetricsOnDestruction) {
  obs::MetricsRegistry metrics;
  const std::string path = TempPath("filestorage_metrics.rstape");
  FileStorage::FileOptions options = SmallFileOptions();
  options.metrics = &metrics;
  {
    auto storage = FileStorage::Create(path, options);
    ASSERT_TRUE(storage.ok()) << storage.status();
    for (std::size_t i = 0; i < 64 * options.block_size; ++i) {
      storage.value()->WriteCell(i, 'p');
    }
  }
  EXPECT_GT(metrics.counter("extmem.block_writes"), 0u);
  EXPECT_GT(metrics.counter("extmem.cache_misses"), 0u);
}

// ---------------------------------------------------------------------
// IoStats arithmetic

TEST(IoStatsTest, DeltaSinceSubtractsCounterWise) {
  IoStats earlier;
  earlier.block_reads = 10;
  earlier.cache_hits = 100;
  IoStats later = earlier;
  later.block_reads = 25;
  later.cache_hits = 180;
  later.evictions = 3;
  const IoStats delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.block_reads, 15u);
  EXPECT_EQ(delta.cache_hits, 80u);
  EXPECT_EQ(delta.evictions, 3u);
}

TEST(IoStatsTest, RatesAreOneWhenIdle) {
  const IoStats stats;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 1.0);
  EXPECT_DOUBLE_EQ(stats.ReadaheadHitRate(), 1.0);
}

// ---------------------------------------------------------------------
// Factory and options plumbing

TEST(StorageFactoryTest, CreatesMemBackendByDefault) {
  StorageOptions options;
  auto storage = CreateStorage(options);
  ASSERT_TRUE(storage.ok()) << storage.status();
  EXPECT_STREQ(storage.value()->backend_name(), "mem");
}

TEST(StorageFactoryTest, CreatesFileBackendInRequestedDirectory) {
  StorageOptions options;
  options.backend = BackendKind::kFile;
  options.block_size = 16;
  options.cache_blocks = 4;
  options.dir = TempPath("factory-tapes");
  auto storage = CreateStorage(options);
  ASSERT_TRUE(storage.ok()) << storage.status();
  EXPECT_STREQ(storage.value()->backend_name(), "file");
  std::unique_ptr<TapeStorage> owned = std::move(storage).value();
  owned->WriteCell(0, 'y');
  EXPECT_EQ(owned->ReadCell(0), 'y');
  // Temp-tape mode: the backing file is gone once the storage dies.
  owned.reset();
  EXPECT_TRUE(std::filesystem::is_empty(options.dir));
  std::filesystem::remove_all(options.dir);
}

TEST(StorageFactoryTest, ParseBackendFlagsStripsRecognizedFlags) {
  const char* raw[] = {"prog", "--tape-backend=file", "keep",
                       "--cache-blocks=7", nullptr};
  char* argv[5];
  for (int i = 0; i < 4; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[4] = nullptr;
  int argc = 4;
  StorageOptions options = ParseBackendFlags(&argc, argv);
  EXPECT_EQ(options.backend, BackendKind::kFile);
  EXPECT_EQ(options.cache_blocks, 7u);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "keep");
}

}  // namespace
}  // namespace rstlab::extmem
