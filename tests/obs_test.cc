#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.h"
#include "obs/flags.h"
#include "obs/jsonl_sink.h"
#include "obs/metrics.h"
#include "obs/ring_sink.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "parallel/trial_runner.h"
#include "problems/generators.h"
#include "stmodel/st_context.h"
#include "tape/resource_meter.h"
#include "tape/tape.h"
#include "util/random.h"

namespace rstlab::obs {
namespace {

using rstlab::tape::Direction;
using rstlab::tape::StBounds;
using rstlab::tape::Tape;

std::vector<TraceEvent> EventsOfKind(const std::vector<TraceEvent>& events,
                                     EventKind kind) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

/// Order-sensitive fold of the fields every event carries, so two
/// event streams compare equal iff they are field-for-field identical.
std::uint64_t HashEvents(const std::vector<TraceEvent>& events) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  auto mix = [&h](std::uint64_t v) {
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  };
  for (const TraceEvent& e : events) {
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.tape_id)));
    mix(e.trial);
    mix(e.scan);
    mix(e.position);
    mix(e.lo);
    mix(e.hi);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.direction)));
    mix(e.value);
  }
  return h;
}

// ---------------------------------------------------------------------
// RingSink
// ---------------------------------------------------------------------

TEST(RingSinkTest, KeepsMostRecentEventsOldestFirst) {
  RingSink ring(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.OnEvent(MakeTrialEvent(EventKind::kTrialBegin, i));
  }
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].trial, 2u);
  EXPECT_EQ(events[1].trial, 3u);
  EXPECT_EQ(events[2].trial, 4u);
  ring.Clear();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

// ---------------------------------------------------------------------
// Tape emission: the known 2-scan fingerprint run
// ---------------------------------------------------------------------

TEST(TraceTest, FingerprintRunEmitsExactlyTwoScans) {
  Rng rng(7);
  problems::Instance inst = problems::EqualMultisets(4, 8, rng);
  const std::string encoded = inst.Encode();
  const std::uint64_t n = encoded.size();

  stmodel::StContext ctx(1);
  ctx.LoadInput(encoded);
  RingSink ring;
  ctx.AttachTrace(&ring);
  auto outcome = fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
  ASSERT_TRUE(outcome.ok());
  ctx.FlushTrace();

  const std::vector<TraceEvent> events = ring.Snapshot();

  // Theorem 8(a): exactly one reversal — at the right end of the input,
  // where the backward scan starts.
  const auto reversals = EventsOfKind(events, EventKind::kReversal);
  ASSERT_EQ(reversals.size(), 1u);
  EXPECT_EQ(reversals[0].tape_id, 0);
  EXPECT_EQ(reversals[0].position, n);
  EXPECT_EQ(reversals[0].direction, -1);

  // Two scan segments, with full-input envelopes: 0 -> n then n -> 0.
  const auto ends = EventsOfKind(events, EventKind::kScanEnd);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0].scan, 0u);
  EXPECT_EQ(ends[0].position, n);
  EXPECT_EQ(ends[0].lo, 0u);
  EXPECT_EQ(ends[0].hi, n);
  EXPECT_EQ(ends[0].direction, +1);
  EXPECT_EQ(ends[1].scan, 1u);
  EXPECT_EQ(ends[1].position, 0u);
  EXPECT_EQ(ends[1].lo, 0u);
  EXPECT_EQ(ends[1].hi, n);
  EXPECT_EQ(ends[1].direction, -1);

  // The trace agrees with the aggregate report: scan_bound = 1 + #rev.
  EXPECT_EQ(ctx.Report().scan_bound, 1u + reversals.size());

  // The arena trace reaches the measured high-water mark.
  const auto arena = EventsOfKind(events, EventKind::kArenaHighWater);
  ASSERT_FALSE(arena.empty());
  EXPECT_EQ(arena.back().value, ctx.Report().internal_space);

  // Event-level compliance: the run fits co-RST(2, O(log N), 1) ...
  EXPECT_FALSE(
      FirstViolation(events, StBounds{2, 4096, 1}).has_value());
  // ... and a checker with max_scans = 1 pinpoints the reversal.
  const auto violation = FirstViolation(events, StBounds{1, 4096, 1});
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->quantity, "scan_bound");
  EXPECT_EQ(violation->tape_id, 0);
  EXPECT_EQ(violation->position, n);
  EXPECT_EQ(events[violation->event_index].kind, EventKind::kReversal);
}

// ---------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------

TEST(TraceTest, PerTrialEventStreamsAreThreadCountInvariant) {
  struct StreamTally {
    std::map<std::uint64_t, std::uint64_t> hash_by_trial;
    void Merge(const StreamTally& o) {
      hash_by_trial.insert(o.hash_by_trial.begin(),
                           o.hash_by_trial.end());
    }
  };
  const std::uint64_t trials = 12;
  const parallel::SeedSequence seeds(2026);
  auto run_at = [&](std::size_t threads) {
    parallel::TrialRunner runner(threads);
    return runner.RunSeeded<StreamTally>(
        trials, seeds,
        [](std::uint64_t trial, Rng& rng, StreamTally& tally) {
          problems::Instance inst =
              trial % 2 == 0 ? problems::EqualMultisets(4, 8, rng)
                             : problems::PerturbedMultisets(4, 8, 1, rng);
          stmodel::StContext ctx(1);
          ctx.LoadInput(inst.Encode());
          RingSink ring;
          ctx.AttachTrace(&ring);
          auto outcome =
              fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
          ASSERT_TRUE(outcome.ok());
          ctx.FlushTrace();
          tally.hash_by_trial[trial] = HashEvents(ring.Snapshot());
        });
  };
  const StreamTally one = run_at(1);
  const StreamTally four = run_at(4);
  ASSERT_EQ(one.hash_by_trial.size(), trials);
  EXPECT_EQ(one.hash_by_trial, four.hash_by_trial);
}

TEST(TraceTest, TrialRunnerEmitsOneBeginEndPairPerTrial) {
  RingSink ring(1024);
  parallel::TrialRunner runner(3);
  runner.set_trace(&ring);
  struct CountTally {
    std::uint64_t count = 0;
    void Merge(const CountTally& o) { count += o.count; }
  };
  const CountTally tally = runner.Run<CountTally>(
      10, [](std::uint64_t, CountTally& local) { ++local.count; });
  EXPECT_EQ(tally.count, 10u);
  const auto events = ring.Snapshot();
  const auto begins = EventsOfKind(events, EventKind::kTrialBegin);
  const auto ends = EventsOfKind(events, EventKind::kTrialEnd);
  ASSERT_EQ(begins.size(), 10u);
  ASSERT_EQ(ends.size(), 10u);
  std::map<std::uint64_t, int> seen;
  for (const TraceEvent& e : begins) seen[e.trial] += 1;
  for (const TraceEvent& e : ends) seen[e.trial] += 1;
  EXPECT_EQ(seen.size(), 10u);
  for (const auto& [trial, count] : seen) {
    EXPECT_LT(trial, 10u);
    EXPECT_EQ(count, 2);
  }
}

// ---------------------------------------------------------------------
// JSON-lines exporter
// ---------------------------------------------------------------------

TEST(JsonlSinkTest, FormatsEventsOnePerLine) {
  TraceEvent event;
  event.kind = EventKind::kScanEnd;
  event.tape_id = 2;
  event.trial = 5;
  event.scan = 1;
  event.position = 3;
  event.lo = 3;
  event.hi = 9;
  event.direction = -1;
  EXPECT_EQ(FormatEventJson(event),
            "{\"ev\":\"scan_end\",\"tape\":2,\"trial\":5,\"scan\":1,"
            "\"pos\":3,\"lo\":3,\"hi\":9,\"dir\":-1,\"value\":0}");

  TraceEvent labelled = MakeRunEvent(EventKind::kRunBegin, 0, "a\"b");
  EXPECT_EQ(FormatEventJson(labelled),
            "{\"ev\":\"run_begin\",\"tape\":-1,\"trial\":0,\"scan\":0,"
            "\"pos\":0,\"dir\":1,\"value\":0,\"label\":\"a\\\"b\"}");

  const std::string path = ::testing::TempDir() + "obs_jsonl_test.jsonl";
  {
    JsonlSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.OnEvent(event);
    sink.OnEvent(labelled);
    sink.Flush();
    EXPECT_EQ(sink.lines(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], FormatEventJson(event));
  EXPECT_EQ(lines[1], FormatEventJson(labelled));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Timeline renderer
// ---------------------------------------------------------------------

TEST(TimelineTest, RendersPerTapeSegments) {
  RingSink ring;
  Tape t("0123456789");
  t.AttachTrace(&ring, 0);
  for (int i = 0; i < 10; ++i) t.MoveRight();
  t.Seek(4);
  t.FlushTrace();
  const std::string rendered = RenderScanTimeline(ring.Snapshot());
  EXPECT_NE(rendered.find("tape 0: scans=2 reversals=1 span=[0,10]"),
            std::string::npos);
  EXPECT_NE(rendered.find("scan 0 -> 0..10"), std::string::npos);
  EXPECT_NE(rendered.find("scan 1 <- 10..4"), std::string::npos);
  EXPECT_EQ(rendered.find("(open)"), std::string::npos);
}

TEST(TimelineTest, MarksUnflushedSegmentsOpen) {
  RingSink ring;
  Tape t("ab");
  t.AttachTrace(&ring, 0);
  t.MoveRight();
  // No FlushTrace: the lone rightward segment never saw its kScanEnd.
  const std::string rendered = RenderScanTimeline(ring.Snapshot());
  EXPECT_NE(rendered.find("(open)"), std::string::npos);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(MetricsTest, RegistryCountsAndRenders) {
  MetricsRegistry registry;
  registry.Add("b.count");
  registry.Add("b.count", 4);
  registry.Add("a.count", 2);
  registry.SetGauge("z.gauge", 1.5);
  EXPECT_EQ(registry.counter("b.count"), 5u);
  EXPECT_EQ(registry.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("z.gauge"), 1.5);
  EXPECT_EQ(registry.ToJsonObject(),
            "{\"a.count\":2,\"b.count\":5,\"z.gauge\":1.5}");
  std::ostringstream os;
  registry.Print(os);
  EXPECT_NE(os.str().find("a.count = 2"), std::string::npos);
}

TEST(MetricsTest, CountingSinkTalliesKindsAndForwards) {
  MetricsRegistry registry;
  RingSink inner;
  CountingSink counting(registry, &inner);
  counting.OnEvent(MakeTrialEvent(EventKind::kTrialBegin, 0));
  counting.OnEvent(MakeTrialEvent(EventKind::kTrialEnd, 0));
  TraceEvent high_water;
  high_water.kind = EventKind::kArenaHighWater;
  high_water.value = 77;
  counting.OnEvent(high_water);
  EXPECT_EQ(registry.counter("trace.events"), 3u);
  EXPECT_EQ(registry.counter("trace.trial_begin"), 1u);
  EXPECT_EQ(registry.counter("trace.trial_end"), 1u);
  EXPECT_EQ(registry.counter("trace.arena_high_water"), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("arena.high_water_bits"), 77.0);
  EXPECT_EQ(inner.total(), 3u);
}

// ---------------------------------------------------------------------
// TeeSink and flag parsing
// ---------------------------------------------------------------------

TEST(TraceTest, TeeSinkForwardsToBoth) {
  RingSink a;
  RingSink b;
  TeeSink tee(&a, &b);
  tee.OnEvent(MakeTrialEvent(EventKind::kTrialBegin, 3));
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(b.total(), 1u);
  TeeSink half(nullptr, &b);
  half.OnEvent(MakeTrialEvent(EventKind::kTrialEnd, 3));
  EXPECT_EQ(b.total(), 2u);
}

TEST(FlagsTest, ParseObsFlagsStripsOnlyItsFlags) {
  const char* argv_in[] = {"bench", "--trace=/tmp/t.jsonl", "--threads=2",
                           "--metrics", "--benchmark_min_time=0.01"};
  char* argv[5];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(argv_in[i]);
  int argc = 5;
  const ObsOptions options = ParseObsFlags(&argc, argv);
  EXPECT_EQ(options.trace_path, "/tmp/t.jsonl");
  EXPECT_TRUE(options.metrics);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--threads=2");
  EXPECT_STREQ(argv[2], "--benchmark_min_time=0.01");
}

TEST(FlagsTest, ObsSessionWithoutFlagsIsNullSink) {
  ObsSession session(ObsOptions{}, "bench_test");
  EXPECT_EQ(session.sink(), nullptr);
  EXPECT_EQ(session.metrics(), nullptr);
  std::ostringstream os;
  session.Finish(os);
}

TEST(FlagsTest, ObsSessionWiresMetricsOverTrace) {
  ObsOptions options;
  options.trace_path = ::testing::TempDir() + "obs_session_test.jsonl";
  options.metrics = true;
  std::ostringstream os;
  {
    ObsSession session(options, "bench_test");
    ASSERT_NE(session.sink(), nullptr);
    ASSERT_NE(session.metrics(), nullptr);
    session.sink()->OnEvent(MakeTrialEvent(EventKind::kTrialBegin, 0));
    session.Finish(os);
    // run_begin + trial_begin + run_end all counted and exported.
    EXPECT_EQ(session.metrics()->counter("trace.events"), 3u);
  }
  EXPECT_NE(os.str().find("metrics (bench_test):"), std::string::npos);
  std::ifstream in(options.trace_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
  std::remove(options.trace_path.c_str());
}

}  // namespace
}  // namespace rstlab::obs
