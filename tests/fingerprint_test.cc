#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/counting_storage.h"
#include "extmem/storage.h"
#include "fingerprint/barrett.h"
#include "fingerprint/fingerprint.h"
#include "fingerprint/prime.h"
#include "fingerprint/prime_pool.h"
#include "obs/ring_sink.h"
#include "obs/trace.h"
#include "parallel/trial_runner.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "stmodel/internal_arena.h"
#include "stmodel/st_context.h"
#include "tape/tape.h"
#include "util/random.h"

namespace rstlab::fingerprint {
namespace {

// ---------------------------------------------------------------------
// Modular arithmetic and primes
// ---------------------------------------------------------------------

TEST(PrimeTest, MulModLargeOperands) {
  const std::uint64_t p = 0xffffffffffffffc5ULL;  // largest 64-bit prime
  EXPECT_EQ(MulMod(p - 1, p - 1, p), 1u);
  EXPECT_EQ(MulMod(123456789, 987654321, 1000000007),
            (123456789ULL * 987654321ULL) % 1000000007ULL);
}

TEST(PrimeTest, PowModKnownValues) {
  EXPECT_EQ(PowMod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(PowMod(5, 0, 7), 1u);
  EXPECT_EQ(PowMod(7, 1, 7), 0u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(PowMod(3, 1000000006, 1000000007), 1u);
  EXPECT_EQ(PowMod(2, 100, 1), 0u);
}

TEST(PrimeTest, IsPrimeMatchesTrialDivisionBelow10000) {
  auto trial = [](std::uint64_t n) {
    if (n < 2) return false;
    for (std::uint64_t d = 2; d * d <= n; ++d) {
      if (n % d == 0) return false;
    }
    return true;
  };
  for (std::uint64_t n = 0; n < 10000; ++n) {
    ASSERT_EQ(IsPrime(n), trial(n)) << n;
  }
}

TEST(PrimeTest, IsPrimeLargeKnownValues) {
  EXPECT_TRUE(IsPrime(1000000007ULL));
  EXPECT_TRUE(IsPrime(0xffffffffffffffc5ULL));
  EXPECT_FALSE(IsPrime(1000000007ULL * 3));
  // Carmichael numbers are composite.
  EXPECT_FALSE(IsPrime(561));
  EXPECT_FALSE(IsPrime(41041));
}

TEST(PrimeTest, RandomPrimeAtMostIsPrimeAndBounded) {
  Rng rng(5);
  for (std::uint64_t k : {2ULL, 10ULL, 1000ULL, 1000000ULL}) {
    for (int i = 0; i < 20; ++i) {
      Result<std::uint64_t> p = RandomPrimeAtMost(k, rng);
      ASSERT_TRUE(p.ok());
      EXPECT_LE(p.value(), k);
      EXPECT_TRUE(IsPrime(p.value()));
    }
  }
  EXPECT_FALSE(RandomPrimeAtMost(1, rng).ok());
}

TEST(PrimeTest, RandomPrimeIsRoughlyUniform) {
  // Sanity: both halves of [2, k] are hit.
  Rng rng(6);
  const std::uint64_t k = 10000;
  int low = 0;
  int high = 0;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t p = RandomPrimeAtMost(k, rng).value();
    (p <= k / 2 ? low : high)++;
  }
  EXPECT_GT(low, 50);
  EXPECT_GT(high, 50);
}

TEST(PrimeTest, BertrandIntervalPrime) {
  for (std::uint64_t k : {1ULL, 2ULL, 7ULL, 100ULL, 12345ULL, 1000000ULL}) {
    Result<std::uint64_t> p = PrimeInBertrandInterval(k);
    ASSERT_TRUE(p.ok());
    EXPECT_GT(p.value(), 3 * k);
    EXPECT_LE(p.value(), 6 * k);
    EXPECT_TRUE(IsPrime(p.value()));
  }
  EXPECT_FALSE(PrimeInBertrandInterval(~std::uint64_t{0} / 2).ok());
}

TEST(PrimeTest, CountPrimesUpTo) {
  EXPECT_EQ(CountPrimesUpTo(10), 4u);
  EXPECT_EQ(CountPrimesUpTo(100), 25u);
  EXPECT_EQ(CountPrimesUpTo(1), 0u);
}

// ---------------------------------------------------------------------
// Barrett reduction
// ---------------------------------------------------------------------

TEST(BarrettTest, MatchesMulModOverRandom64BitInputs) {
  Rng rng(0xBA77);
  for (int i = 0; i < 5000; ++i) {
    // Any modulus in [2, 2^63); operands arbitrary 64-bit.
    const std::uint64_t m =
        rng.UniformInRange(2, (std::uint64_t{1} << 63) - 1);
    const Barrett barrett(m);
    const std::uint64_t a = rng.Next64();
    const std::uint64_t b = rng.Next64();
    ASSERT_EQ(barrett.MulMod(a, b), MulMod(a, b, m))
        << "a=" << a << " b=" << b << " m=" << m;
  }
}

TEST(BarrettTest, MatchesPowMod) {
  Rng rng(0xBA78);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t m =
        rng.UniformInRange(2, (std::uint64_t{1} << 62));
    const Barrett barrett(m);
    const std::uint64_t base = rng.Next64();
    const std::uint64_t exp = rng.UniformBelow(1 << 20);
    ASSERT_EQ(barrett.PowMod(base, exp), PowMod(base % m, exp, m))
        << "base=" << base << " exp=" << exp << " m=" << m;
  }
}

TEST(BarrettTest, EdgeModuli) {
  for (std::uint64_t m : {std::uint64_t{2}, std::uint64_t{3},
                          (std::uint64_t{1} << 63) - 1,
                          (std::uint64_t{1} << 62) + 1}) {
    const Barrett barrett(m);
    EXPECT_EQ(barrett.Reduce(0), 0u);
    EXPECT_EQ(barrett.MulMod(m - 1, m - 1), MulMod(m - 1, m - 1, m));
    // Largest possible 128-bit product of two 64-bit operands.
    const std::uint64_t big = ~std::uint64_t{0};
    EXPECT_EQ(barrett.MulMod(big, big), MulMod(big, big, m));
  }
}

TEST(BarrettTest, BoundaryModuliNearTopOfRange) {
  // The largest prime below 2^63 (2^63 - 25) and its neighbours: the
  // reciprocal has the fewest usable quotient bits here, so quotient
  // error is maximal.
  const std::uint64_t near_top[] = {
      (std::uint64_t{1} << 63) - 25,  // prime
      (std::uint64_t{1} << 63) - 1,   // largest in-range value
      (std::uint64_t{1} << 63) - 2,
  };
  const unsigned __int128 max128 = ~static_cast<unsigned __int128>(0);
  for (std::uint64_t m : near_top) {
    const Barrett barrett(m);
    // Reduce of the absolute maximum 128-bit value against the widening
    // reference reduction.
    const std::uint64_t expected = static_cast<std::uint64_t>(max128 % m);
    EXPECT_EQ(barrett.Reduce(max128), expected) << "m=" << m;
    EXPECT_EQ(barrett.Reduce(static_cast<unsigned __int128>(m)), 0u);
    EXPECT_EQ(barrett.Reduce(static_cast<unsigned __int128>(m) - 1),
              m - 1);
  }
}

TEST(BarrettTest, SmallestOddPrimeExhaustive) {
  // m = 3: every residue class is reachable; sweep products around the
  // 64-bit extremes as well as a dense small range.
  const Barrett barrett(3);
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      ASSERT_EQ(barrett.MulMod(a, b), (a * b) % 3);
    }
  }
  const std::uint64_t top = ~std::uint64_t{0};
  for (std::uint64_t a = top - 8; a != 0; ++a) {
    EXPECT_EQ(barrett.MulMod(a, top), MulMod(a, top, 3));
  }
  EXPECT_EQ(barrett.PowMod(2, 64), PowMod(2, 64, 3));
}

TEST(BarrettTest, PowerOfTwoModuliStayCorrect) {
  // Powers of two are the only in-range divisors of 2^128: the
  // precomputed reciprocal is floor(2^128/m) - 1 instead of the exact
  // quotient, which is off the header's error analysis but must still
  // reduce correctly (the subtraction loop absorbs the extra slack).
  Rng rng(0xB0);
  for (int shift = 1; shift < 63; ++shift) {
    const std::uint64_t m = std::uint64_t{1} << shift;
    const Barrett barrett(m);
    const std::uint64_t big = ~std::uint64_t{0};
    ASSERT_EQ(barrett.MulMod(big, big), MulMod(big, big, m)) << m;
    for (int i = 0; i < 32; ++i) {
      const std::uint64_t a = rng.Next64();
      const std::uint64_t b = rng.Next64();
      ASSERT_EQ(barrett.MulMod(a, b), MulMod(a, b, m))
          << "a=" << a << " b=" << b << " m=" << m;
    }
  }
}

TEST(BarrettDeathTest, RejectsOutOfRangeModuliInEveryBuildMode) {
  // The precondition 2 <= m < 2^63 is enforced with an abort even in
  // release builds: a silent out-of-range modulus would corrupt every
  // subsequent Reduce.
  EXPECT_DEATH(Barrett(0), "outside");
  EXPECT_DEATH(Barrett(1), "outside");
  EXPECT_DEATH(Barrett(std::uint64_t{1} << 63), "outside");
  EXPECT_DEATH(Barrett(~std::uint64_t{0}), "outside");
}

// ---------------------------------------------------------------------
// PrimePool
// ---------------------------------------------------------------------

TEST(PrimePoolTest, SieveMatchesMillerRabin) {
  const PrimePool pool(1000);
  ASSERT_TRUE(pool.sieved());
  EXPECT_EQ(pool.Count(), CountPrimesUpTo(1000));
  std::size_t index = 0;
  for (std::uint64_t p = 2; p <= 1000; ++p) {
    if (!IsPrime(p)) continue;
    ASSERT_LT(index, pool.primes().size());
    EXPECT_EQ(pool.primes()[index], p);
    ++index;
  }
}

TEST(PrimePoolTest, SampleDrawsOnlyPrimesInRange) {
  const PrimePool pool(500);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Result<std::uint64_t> p = pool.Sample(rng);
    ASSERT_TRUE(p.ok());
    EXPECT_LE(p.value(), 500u);
    EXPECT_TRUE(IsPrime(p.value()));
  }
}

TEST(PrimePoolTest, FallsBackAboveSieveLimit) {
  // A pool whose k exceeds the sieve limit samples via Miller-Rabin.
  const PrimePool pool(1 << 20, /*sieve_limit=*/1 << 10);
  EXPECT_FALSE(pool.sieved());
  EXPECT_TRUE(pool.primes().empty());
  Rng rng(7);
  Result<std::uint64_t> p = pool.Sample(rng);
  ASSERT_TRUE(p.ok());
  EXPECT_LE(p.value(), std::uint64_t{1} << 20);
  EXPECT_TRUE(IsPrime(p.value()));
}

// ---------------------------------------------------------------------
// Fingerprinting (Theorem 8(a))
// ---------------------------------------------------------------------

TEST(FingerprintTest, ParamsSatisfyPaperConstraints) {
  Rng rng(7);
  Result<FingerprintParams> params = SampleFingerprintParams(64, 32, rng);
  ASSERT_TRUE(params.ok());
  const FingerprintParams& p = params.value();
  EXPECT_LE(p.p1, p.k);
  EXPECT_TRUE(IsPrime(p.p1));
  EXPECT_GT(p.p2, 3 * p.k);
  EXPECT_LE(p.p2, 6 * p.k);
  EXPECT_GE(p.x, 1u);
  EXPECT_LT(p.x, p.p2);
}

TEST(FingerprintTest, OverflowGuard) {
  Rng rng(8);
  // m^3 * n around 2^63 must be rejected, not wrapped.
  EXPECT_FALSE(SampleFingerprintParams(1 << 21, 1 << 10, rng).ok());
}

TEST(FingerprintTest, SampledXReachesEveryValueInDomain) {
  // ExactAcceptProbability enumerates x over {1..p2-1}; the sampler
  // must cover the same domain or sampled and exact acceptance
  // probabilities disagree. Rng::UniformInRange is inclusive on both
  // ends, so UniformInRange(1, p2 - 1) is exactly that set — pin it.
  // m = n = 1 gives k = 2 and p2 = 7, small enough that 512 draws hit
  // all six values with probability 1 - ~6e-36.
  Rng rng(41);
  std::set<std::uint64_t> seen;
  std::uint64_t p2 = 0;
  for (int draw = 0; draw < 512; ++draw) {
    Result<FingerprintParams> params = SampleFingerprintParams(1, 1, rng);
    ASSERT_TRUE(params.ok());
    p2 = params.value().p2;
    ASSERT_GE(params.value().x, 1u);
    ASSERT_LT(params.value().x, p2);
    seen.insert(params.value().x);
  }
  EXPECT_EQ(p2, 7u);  // k = 2 -> smallest Bertrand prime in (6, 12]
  EXPECT_EQ(seen.size(), p2 - 1);  // every value in {1..p2-1} reached
}

// Completeness (no false negatives): equal multisets are ALWAYS
// accepted, for every parameter draw.
class FingerprintCompletenessTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FingerprintCompletenessTest, EqualMultisetsAlwaysAccepted) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    problems::Instance inst = problems::EqualMultisets(16, 24, rng);
    FingerprintOutcome outcome = TestMultisetEquality(inst, rng);
    EXPECT_TRUE(outcome.accepted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FingerprintCompletenessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Soundness: unequal multisets are accepted with probability well below
// 1/2 (the paper's bound is 1/3 + O(1/m); measured rates are far
// smaller).
TEST(FingerprintTest, UnequalMultisetsRarelyAccepted) {
  Rng rng(11);
  int false_accepts = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    problems::Instance inst = problems::PerturbedMultisets(16, 24, 1, rng);
    false_accepts += TestMultisetEquality(inst, rng).accepted;
  }
  EXPECT_LE(false_accepts, trials / 2);  // the Theorem 8(a) guarantee
  EXPECT_LE(false_accepts, trials / 10);  // and in practice much better
}

TEST(FingerprintTest, DetectsMultiplicityChanges) {
  // Multiset {a, a, b} vs {a, b, b}: set-equal but multiset-different.
  Rng rng(13);
  problems::Instance inst;
  const BitString a = BitString::Random(24, rng);
  const BitString b = BitString::Random(24, rng);
  inst.first = {a, a, b};
  inst.second = {a, b, b};
  int accepts = 0;
  for (int trial = 0; trial < 100; ++trial) {
    accepts += TestMultisetEquality(inst, rng).accepted;
  }
  EXPECT_LE(accepts, 50);
}

TEST(FingerprintTest, AcceptsEmptyInstance) {
  Rng rng(17);
  problems::Instance inst;
  EXPECT_TRUE(TestMultisetEquality(inst, rng).accepted);
}

TEST(FingerprintTest, OrderInsensitive) {
  Rng rng(19);
  problems::Instance inst = problems::EqualMultisets(32, 16, rng);
  // AcceptsWithParams must agree for any fixed params regardless of
  // order (the fingerprint is a multiset invariant).
  Result<FingerprintParams> params = SampleFingerprintParams(32, 16, rng);
  ASSERT_TRUE(params.ok());
  EXPECT_TRUE(AcceptsWithParams(inst, params.value()));
  rng.Shuffle(inst.second);
  EXPECT_TRUE(AcceptsWithParams(inst, params.value()));
}


// ---------------------------------------------------------------------
// Exact error probabilities (full enumeration of the random choices)
// ---------------------------------------------------------------------

TEST(ExactProbabilityTest, EqualMultisetsHaveProbabilityOne) {
  problems::Instance inst;
  inst.first = {BitString::FromString("01"), BitString::FromString("10")};
  inst.second = {BitString::FromString("10"),
                 BitString::FromString("01")};
  Result<double> p = ExactAcceptProbability(inst);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_DOUBLE_EQ(p.value(), 1.0);
}

TEST(ExactProbabilityTest, UnequalMultisetsBelowPaperBound) {
  // Exhaust all m = 2, n = 2 unequal instances and verify the exact
  // false-positive probability never reaches the paper's 1/2 bound.
  double worst = 0.0;
  for (std::uint64_t code = 0; code < 256; ++code) {
    problems::Instance inst;
    inst.first = {BitString::FromUint64((code >> 0) & 3, 2),
                  BitString::FromUint64((code >> 2) & 3, 2)};
    inst.second = {BitString::FromUint64((code >> 4) & 3, 2),
                   BitString::FromUint64((code >> 6) & 3, 2)};
    if (problems::RefMultisetEquality(inst)) continue;
    Result<double> p = ExactAcceptProbability(inst);
    ASSERT_TRUE(p.ok()) << p.status();
    worst = std::max(worst, p.value());
  }
  EXPECT_LT(worst, 0.5);
  // At these tiny parameters the exact worst case is far below the
  // bound (the polynomial test leaves little room with p2 >> degree).
  EXPECT_LT(worst, 0.1);
}

TEST(ExactProbabilityTest, RejectsLargeParameters) {
  Rng rng(1);
  problems::Instance inst = problems::EqualMultisets(64, 32, rng);
  EXPECT_FALSE(ExactAcceptProbability(inst, 5000).ok());
}

// ---------------------------------------------------------------------
// Tape-level implementation: the co-RST(2, O(log N), 1) profile
// ---------------------------------------------------------------------

class FingerprintTapeTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FingerprintTapeTest, MatchesHostSemanticsAndBudget) {
  Rng rng(GetParam());
  for (bool equal : {true, false}) {
    problems::Instance inst =
        equal ? problems::EqualMultisets(8, 16, rng)
              : problems::PerturbedMultisets(8, 16, 1, rng);
    stmodel::StContext ctx(1);
    ctx.LoadInput(inst.Encode());
    Rng run_rng(GetParam() * 1000 + equal);
    Result<FingerprintOutcome> outcome =
        TestMultisetEqualityOnTapes(ctx, run_rng);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    if (equal) {
      EXPECT_TRUE(outcome.value().accepted);  // no false negatives, ever
    }
    // Exactly 2 scans (1 reversal), never writing external memory.
    tape::ResourceReport report = ctx.Report();
    EXPECT_EQ(report.scan_bound, 2u);
    EXPECT_EQ(report.num_external_tapes, 1u);
    // O(log N) internal bits: generous constant.
    EXPECT_LE(report.internal_space,
              64 * stmodel::BitsFor(ctx.input_size()));

    // The tape decision must replay exactly on the host with the same
    // parameters.
    EXPECT_EQ(outcome.value().accepted,
              AcceptsWithParams(inst, outcome.value().params));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FingerprintTapeTest,
                         ::testing::Values(3, 6, 9, 12, 15));

TEST(FingerprintTapeTest, RejectsMalformedInput) {
  stmodel::StContext ctx(1);
  Rng rng(1);
  ctx.LoadInput("01#2#");
  EXPECT_FALSE(TestMultisetEqualityOnTapes(ctx, rng).ok());
  ctx.LoadInput("01#1");
  EXPECT_FALSE(TestMultisetEqualityOnTapes(ctx, rng).ok());
  ctx.LoadInput("01#1#0#");
  EXPECT_FALSE(TestMultisetEqualityOnTapes(ctx, rng).ok());
}

TEST(FingerprintTapeTest, MalformedInputsGetNamedStatuses) {
  stmodel::StContext ctx(1);
  Rng rng(1);
  const auto message = [&ctx, &rng](const std::string& input) {
    ctx.LoadInput(input);
    const Result<FingerprintOutcome> outcome =
        TestMultisetEqualityOnTapes(ctx, rng);
    return outcome.ok() ? std::string("ok") : outcome.status().message();
  };
  // Each malformed edge maps to a distinct named InvalidArgument, so a
  // caller (and the conform differential suite) can pin which scan-1
  // precondition failed instead of getting a misaligned scan 2.
  EXPECT_EQ(message(""), "empty input tape");
  EXPECT_EQ(message("#"), "odd field count: instance must have 2m fields");
  EXPECT_EQ(message("0#1#0#"),
            "odd field count: instance must have 2m fields");
  EXPECT_EQ(message("01#1"),
            "unterminated field: instance must end with '#'");
  EXPECT_EQ(message("01#2#"), "non-binary character in field");
  EXPECT_EQ(message("01#_#"), "blank cell inside input");
  // Trailing blanks after the final separator are inside the declared
  // input region, so they are malformed too (the head must cross them).
  EXPECT_EQ(message("0#0#__"), "blank cell inside input");
  // The well-formed empty-value instance "##" stays accepted.
  EXPECT_EQ(message("##"), "ok");
}

using extmem::CountingStorage;

TEST(FingerprintTapeTest, ReadsEachCellExactlyOncePerScan) {
  Rng rng(17);
  problems::Instance inst = problems::EqualMultisets(4, 8, rng);
  const std::string encoded = inst.Encode();
  const std::uint64_t n = encoded.size();

  stmodel::StContext ctx(1);
  ctx.LoadInput(encoded);
  auto storage = std::make_unique<CountingStorage>(encoded);
  CountingStorage* counter = storage.get();
  ctx.tape(0) = tape::Tape(std::move(storage));

  Rng run_rng(18);
  ASSERT_TRUE(TestMultisetEqualityOnTapes(ctx, run_rng).ok());
  // Scan 1 reads each of the N cells once plus the terminating blank
  // probe; scan 2 reads each cell once on the way back. Reading any
  // cell more often would misreport the model's per-scan cost in the
  // obs trace and the extmem cache statistics.
  EXPECT_EQ(counter->reads, 2 * n + 1);
  EXPECT_EQ(counter->writes, 0u);
}

TEST(FingerprintTapeTest, ObsEventStreamPinsScanEnvelope) {
  Rng rng(21);
  problems::Instance inst = problems::EqualMultisets(3, 6, rng);
  const std::string encoded = inst.Encode();
  const std::uint64_t n = encoded.size();

  stmodel::StContext ctx(1);
  ctx.LoadInput(encoded);
  obs::RingSink ring;
  ctx.AttachTrace(&ring);
  Rng run_rng(22);
  ASSERT_TRUE(TestMultisetEqualityOnTapes(ctx, run_rng).ok());
  ctx.FlushTrace();

  std::size_t reversal_count = 0;
  std::vector<obs::TraceEvent> scan_ends;
  for (const obs::TraceEvent& event : ring.Snapshot()) {
    if (event.kind == obs::EventKind::kReversal) ++reversal_count;
    if (event.kind == obs::EventKind::kScanEnd) scan_ends.push_back(event);
  }
  // The read-once scan preserves the certified two-scan envelope:
  // segment 0 covers [0, n] forward, segment 1 covers it backward.
  EXPECT_EQ(reversal_count, 1u);
  ASSERT_EQ(scan_ends.size(), 2u);
  EXPECT_EQ(scan_ends[0].lo, 0u);
  EXPECT_EQ(scan_ends[0].hi, n);
  EXPECT_EQ(scan_ends[1].lo, 0u);
  EXPECT_EQ(scan_ends[1].hi, n);
}

// ---------------------------------------------------------------------
// Claim 1
// ---------------------------------------------------------------------

TEST(Claim1Test, CollisionRateSmall) {
  Rng rng(23);
  problems::Instance inst = problems::PerturbedMultisets(16, 24, 4, rng);
  const double rate = EstimateClaim1CollisionRate(inst, 100, rng);
  // Claim 1: O(1/m); with m = 16 and the large k, collisions are rare.
  EXPECT_LE(rate, 0.25);
}

TEST(Claim1Test, ZeroTrialsIsZero) {
  Rng rng(29);
  problems::Instance inst = problems::EqualMultisets(4, 8, rng);
  EXPECT_EQ(EstimateClaim1CollisionRate(inst, 0, rng), 0.0);
}

// ---------------------------------------------------------------------
// Parallel trial-engine paths
// ---------------------------------------------------------------------

TEST(ParallelFingerprintTest, ExactProbabilityMatchesSerial) {
  Rng rng(31);
  for (int i = 0; i < 8; ++i) {
    problems::Instance inst;
    inst.first = {BitString::Random(3, rng), BitString::Random(3, rng)};
    inst.second = {BitString::Random(3, rng), BitString::Random(3, rng)};
    const Result<double> serial = ExactAcceptProbability(inst);
    for (std::size_t threads : {1u, 4u}) {
      parallel::TrialRunner runner(threads);
      const Result<double> par = ExactAcceptProbability(inst, runner);
      ASSERT_EQ(serial.ok(), par.ok());
      if (serial.ok()) {
        // Integer accept counts over an identical enumeration: the
        // quotients must match exactly, not approximately.
        EXPECT_EQ(serial.value(), par.value());
      }
    }
  }
}

TEST(ParallelFingerprintTest, Claim1TalliesIdenticalAcrossThreadCounts) {
  Rng rng(37);
  problems::Instance inst = problems::PerturbedMultisets(8, 24, 4, rng);
  parallel::TrialRunner one(1);
  const Claim1Estimate reference =
      EstimateClaim1CollisionRate(inst, 300, /*seed=*/123, one);
  EXPECT_EQ(reference.trials, 300u);
  for (std::size_t threads : {2u, 4u, 7u}) {
    parallel::TrialRunner runner(threads);
    const Claim1Estimate estimate =
        EstimateClaim1CollisionRate(inst, 300, /*seed=*/123, runner);
    EXPECT_EQ(estimate.trials, reference.trials);
    EXPECT_EQ(estimate.collisions, reference.collisions);
  }
  // A different seed draws different primes (sanity that the seed is
  // actually load-bearing, over enough trials to see a difference in
  // the sampled prime multiset — collision counts may still agree).
  const Claim1Estimate other =
      EstimateClaim1CollisionRate(inst, 300, /*seed=*/124, one);
  EXPECT_EQ(other.trials, 300u);
}

}  // namespace
}  // namespace rstlab::fingerprint
