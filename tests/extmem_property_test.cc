// Differential properties of the storage backends: a tape is a tape,
// whether its cells live in RAM or in a checksummed block file behind
// a tiny cache. Random operation sequences and a full decider run must
// be observably identical across backends — contents, head positions,
// and the paper's metered quantities (r, s) bit for bit.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "conform/harness.h"
#include "extmem/file_storage.h"
#include "extmem/storage.h"
#include "problems/generators.h"
#include "problems/instance.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "tape/tape.h"
#include "util/random.h"

namespace rstlab {
namespace {

std::string TempDirPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// A file-backed tape with a deliberately tiny geometry (16-cell
/// blocks, 4-block cache), so even short op sequences cross block
/// boundaries and trigger eviction.
tape::Tape MakeFileTape(const std::string& dir) {
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 16;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  options.dir = dir;
  auto storage = extmem::CreateStorage(options);
  EXPECT_TRUE(storage.ok()) << storage.status();
  return tape::Tape(std::move(storage).value());
}

enum class Op { kRead, kWrite, kMoveLeft, kMoveRight, kSeek, kReset };

/// Replays a random op sequence on both tapes, checking every
/// observable after every op.
void RunDifferentialSequence(std::uint64_t seed, std::size_t num_ops) {
  const std::string dir = TempDirPath("difftapes");
  tape::Tape mem;                       // MemStorage backend
  tape::Tape file = MakeFileTape(dir);  // FileStorage backend
  ASSERT_STREQ(mem.storage().backend_name(), "mem");
  ASSERT_STREQ(file.storage().backend_name(), "file");

  Rng rng(seed);
  for (std::size_t step = 0; step < num_ops; ++step) {
    const Op op = static_cast<Op>(rng.Next64() % 6);
    switch (op) {
      case Op::kRead:
        break;  // compared below on every step
      case Op::kWrite: {
        const char symbol = static_cast<char>('a' + rng.Next64() % 26);
        mem.Write(symbol);
        file.Write(symbol);
        break;
      }
      case Op::kMoveLeft:
        mem.MoveLeft();
        file.MoveLeft();
        break;
      case Op::kMoveRight:
        mem.MoveRight();
        file.MoveRight();
        break;
      case Op::kSeek: {
        // Bias targets around the used region, sometimes far past EOF
        // so heads sit on never-written blank cells.
        const std::size_t span = mem.cells_used() + 64;
        const std::size_t target = rng.Next64() % span;
        mem.Seek(target);
        file.Seek(target);
        break;
      }
      case Op::kReset: {
        std::string content;
        const std::size_t len = rng.Next64() % 200;
        content.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
          content.push_back(static_cast<char>('0' + rng.Next64() % 10));
        }
        mem.Reset(content);
        file.Reset(std::move(content));
        break;
      }
    }
    ASSERT_EQ(mem.Read(), file.Read()) << "step " << step;
    ASSERT_EQ(mem.head(), file.head()) << "step " << step;
    ASSERT_EQ(mem.direction(), file.direction()) << "step " << step;
    ASSERT_EQ(mem.reversals(), file.reversals()) << "step " << step;
    ASSERT_EQ(mem.cells_used(), file.cells_used()) << "step " << step;
  }
  EXPECT_EQ(mem.contents(), file.contents());
}

TEST(ExtmemDifferentialTest, RandomOpSequencesMatchAcrossBackends) {
  // Op-sequence length is tunable via RSTLAB_TEST_CASES (see README).
  const std::size_t num_ops = conform::EnvTestCases(600);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunDifferentialSequence(seed, num_ops);
  }
}

TEST(ExtmemDifferentialTest, HeadFarPastEofReadsBlankOnBothBackends) {
  const std::string dir = TempDirPath("difftapes");
  tape::Tape mem("abc");
  tape::Tape file = MakeFileTape(dir);
  file.Reset("abc");
  mem.Seek(10000);
  file.Seek(10000);
  EXPECT_EQ(mem.Read(), tape::kBlank);
  EXPECT_EQ(file.Read(), tape::kBlank);
  EXPECT_EQ(mem.cells_used(), file.cells_used());
  mem.Write('z');
  file.Write('z');
  EXPECT_EQ(mem.cells_used(), file.cells_used());
  EXPECT_EQ(mem.contents(), file.contents());
}

/// StorageOptions for an out-of-core run: 64-cell blocks, 4-block
/// cache — a 256-cell budget per tape.
extmem::StorageOptions OutOfCoreOptions(const std::string& dir) {
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 64;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  options.dir = dir;
  return options;
}

/// The E3 acceptance run: the merge-sort CHECK-SORT decider on an
/// instance at least 4x the per-tape cache budget, on both backends.
/// The verdict and the paper-metered (r, s) must be bit-identical, and
/// the file backend's sequential readahead must be effective.
void RunOutOfCoreDeciderCase(bool sorted_instance) {
  const std::string dir = TempDirPath("e3tapes");
  const extmem::StorageOptions options = OutOfCoreOptions(dir);
  const std::size_t budget = options.block_size * options.cache_blocks;

  Rng rng(7);
  const problems::Instance instance =
      sorted_instance ? problems::SortedPair(32, 16, rng)
                      : problems::MisorderedPair(32, 16, rng);
  const std::string encoded = instance.Encode();
  ASSERT_GE(encoded.size(), 4 * budget)
      << "instance must not fit the cache budget";

  // Explicitly mem (not the process default, which CI may force to
  // file): this run is the in-RAM reference.
  stmodel::StContext mem_ctx(sorting::kDeciderTapes,
                             extmem::StorageOptions{});
  ASSERT_EQ(mem_ctx.backend(), extmem::BackendKind::kMem);
  mem_ctx.LoadInput(encoded);
  Result<bool> mem_verdict =
      sorting::DecideOnTapes(problems::Problem::kCheckSort, mem_ctx);
  ASSERT_TRUE(mem_verdict.ok()) << mem_verdict.status();

  stmodel::StContext file_ctx(sorting::kDeciderTapes, options);
  ASSERT_EQ(file_ctx.backend(), extmem::BackendKind::kFile);
  file_ctx.LoadInput(encoded);
  Result<bool> file_verdict =
      sorting::DecideOnTapes(problems::Problem::kCheckSort, file_ctx);
  ASSERT_TRUE(file_verdict.ok()) << file_verdict.status();

  // Same verdict and bit-identical metering.
  EXPECT_EQ(mem_verdict.value(), file_verdict.value());
  EXPECT_EQ(mem_verdict.value(), sorted_instance);
  const tape::ResourceReport mem_report = mem_ctx.Report();
  const tape::ResourceReport file_report = file_ctx.Report();
  EXPECT_EQ(mem_report.scan_bound, file_report.scan_bound);
  EXPECT_EQ(mem_report.reversals_per_tape, file_report.reversals_per_tape);
  EXPECT_EQ(mem_report.internal_space, file_report.internal_space);
  EXPECT_EQ(mem_report.external_space, file_report.external_space);

  // The file run really went out of core, and its readahead tracked
  // the scan-shaped access pattern.
  const extmem::IoStats io = file_ctx.IoStatsTotal();
  EXPECT_GT(io.block_reads + io.block_writes, 0u);
  EXPECT_GT(io.readahead_blocks, 0u);
  EXPECT_GE(io.ReadaheadHitRate(), 0.9)
      << "readahead=" << io.readahead_blocks
      << " hits=" << io.readahead_hits;
  EXPECT_EQ(mem_ctx.IoStatsTotal().block_reads, 0u);
}

TEST(ExtmemOutOfCoreTest, CheckSortDeciderMatchesOnSortedInstance) {
  RunOutOfCoreDeciderCase(/*sorted_instance=*/true);
}

TEST(ExtmemOutOfCoreTest, CheckSortDeciderMatchesOnMisorderedInstance) {
  RunOutOfCoreDeciderCase(/*sorted_instance=*/false);
}

TEST(ExtmemOutOfCoreTest, MultisetEqualityDeciderMatchesAcrossBackends) {
  const std::string dir = TempDirPath("e3tapes");
  Rng rng(11);
  const std::string encoded = problems::EqualMultisets(24, 16, rng).Encode();

  stmodel::StContext mem_ctx(sorting::kDeciderTapes,
                             extmem::StorageOptions{});
  mem_ctx.LoadInput(encoded);
  Result<bool> mem_verdict =
      sorting::DecideOnTapes(problems::Problem::kMultisetEquality, mem_ctx);
  ASSERT_TRUE(mem_verdict.ok()) << mem_verdict.status();

  stmodel::StContext file_ctx(sorting::kDeciderTapes, OutOfCoreOptions(dir));
  file_ctx.LoadInput(encoded);
  Result<bool> file_verdict = sorting::DecideOnTapes(
      problems::Problem::kMultisetEquality, file_ctx);
  ASSERT_TRUE(file_verdict.ok()) << file_verdict.status();

  EXPECT_EQ(mem_verdict.value(), file_verdict.value());
  EXPECT_TRUE(mem_verdict.value());
  EXPECT_EQ(mem_ctx.Report().scan_bound, file_ctx.Report().scan_bound);
  EXPECT_EQ(mem_ctx.Report().internal_space,
            file_ctx.Report().internal_space);
}

TEST(ExtmemOutOfCoreTest, TapeDirectoryIsEmptyAfterContexts) {
  const std::string dir = TempDirPath("e3cleanup");
  {
    stmodel::StContext ctx(3, OutOfCoreOptions(dir));
    ctx.LoadInput("1#0#1#");
    EXPECT_FALSE(std::filesystem::is_empty(dir));
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rstlab
