#include <string>

#include <gtest/gtest.h>

#include "permutation/phi.h"
#include "problems/check_phi.h"
#include "problems/generators.h"
#include "problems/instance.h"
#include "problems/reference.h"
#include "problems/short_reduction.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "util/random.h"

namespace rstlab::problems {
namespace {

Instance MakeInstance(const std::vector<std::string>& first,
                      const std::vector<std::string>& second) {
  Instance instance;
  for (const auto& v : first) {
    instance.first.push_back(BitString::FromString(v));
  }
  for (const auto& v : second) {
    instance.second.push_back(BitString::FromString(v));
  }
  return instance;
}

// ---------------------------------------------------------------------
// Instance encoding
// ---------------------------------------------------------------------

TEST(InstanceTest, EncodeAndSize) {
  Instance inst = MakeInstance({"01", "10"}, {"10", "01"});
  EXPECT_EQ(inst.m(), 2u);
  EXPECT_EQ(inst.Encode(), "01#10#10#01#");
  EXPECT_EQ(inst.N(), 12u);
}

TEST(InstanceTest, ParseRoundtrip) {
  Instance inst = MakeInstance({"0", "111", "01"}, {"01", "111", "0"});
  Result<Instance> parsed = Instance::Parse(inst.Encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), inst);
}

TEST(InstanceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Instance::Parse("01#2#").ok());
  EXPECT_FALSE(Instance::Parse("01#1").ok());   // missing trailing '#'
  EXPECT_FALSE(Instance::Parse("01#1#0#").ok());  // odd field count
}

TEST(InstanceTest, EmptyInstance) {
  Result<Instance> parsed = Instance::Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().m(), 0u);
}

// ---------------------------------------------------------------------
// Reference deciders
// ---------------------------------------------------------------------

TEST(ReferenceTest, SetEqualityIgnoresMultiplicity) {
  Instance inst = MakeInstance({"0", "0", "1"}, {"1", "1", "0"});
  EXPECT_TRUE(RefSetEquality(inst));
  EXPECT_FALSE(RefMultisetEquality(inst));
}

TEST(ReferenceTest, MultisetEqualityCountsMultiplicity) {
  Instance eq = MakeInstance({"0", "1", "0"}, {"0", "0", "1"});
  EXPECT_TRUE(RefMultisetEquality(eq));
  Instance ne = MakeInstance({"0", "1", "1"}, {"0", "0", "1"});
  EXPECT_FALSE(RefMultisetEquality(ne));
}

TEST(ReferenceTest, CheckSortRequiresSortedSecond) {
  Instance sorted = MakeInstance({"10", "01"}, {"01", "10"});
  EXPECT_TRUE(RefCheckSort(sorted));
  Instance unsorted = MakeInstance({"10", "01"}, {"10", "01"});
  EXPECT_FALSE(RefCheckSort(unsorted));
  Instance wrong_values = MakeInstance({"10", "01"}, {"00", "10"});
  EXPECT_FALSE(RefCheckSort(wrong_values));
}

TEST(ReferenceTest, ProblemNames) {
  EXPECT_STREQ(ProblemName(Problem::kSetEquality), "SET-EQUALITY");
  EXPECT_STREQ(ProblemName(Problem::kMultisetEquality),
               "MULTISET-EQUALITY");
  EXPECT_STREQ(ProblemName(Problem::kCheckSort), "CHECK-SORT");
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

class GeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorTest, EqualMultisetsIsYes) {
  Rng rng(GetParam());
  Instance inst = EqualMultisets(16, 12, rng);
  EXPECT_TRUE(RefMultisetEquality(inst));
  EXPECT_TRUE(RefSetEquality(inst));
}

TEST_P(GeneratorTest, EqualSetsHasDistinctValues) {
  Rng rng(GetParam());
  Instance inst = EqualSets(16, 12, rng);
  EXPECT_TRUE(RefSetEquality(inst));
  std::set<std::string> values;
  for (const auto& v : inst.first) values.insert(v.ToString());
  EXPECT_EQ(values.size(), 16u);
}

TEST_P(GeneratorTest, PerturbedMultisetsIsNo) {
  Rng rng(GetParam());
  for (std::size_t changes : {1u, 2u, 5u}) {
    Instance inst = PerturbedMultisets(16, 12, changes, rng);
    EXPECT_FALSE(RefMultisetEquality(inst));
  }
}

TEST_P(GeneratorTest, SortedPairIsYesCheckSort) {
  Rng rng(GetParam());
  Instance inst = SortedPair(16, 12, rng);
  EXPECT_TRUE(RefCheckSort(inst));
}

TEST_P(GeneratorTest, MisorderedPairIsNoCheckSort) {
  Rng rng(GetParam());
  Instance inst = MisorderedPair(16, 12, rng);
  EXPECT_FALSE(RefCheckSort(inst));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------
// CHECK-phi
// ---------------------------------------------------------------------

class CheckPhiTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckPhiTest, YesInstancesAreYes) {
  Rng rng(GetParam());
  const std::size_t m = 8;
  CheckPhi problem(m, 10, permutation::BitReversalPermutation(m));
  Instance yes = problem.RandomYesInstance(rng);
  EXPECT_TRUE(problem.IsValidInstance(yes));
  EXPECT_TRUE(problem.Decide(yes));
}

TEST_P(CheckPhiTest, NoInstancesAreNo) {
  Rng rng(GetParam());
  const std::size_t m = 8;
  CheckPhi problem(m, 10, permutation::BitReversalPermutation(m));
  Instance no = problem.RandomNoInstance(rng);
  EXPECT_TRUE(problem.IsValidInstance(no));
  EXPECT_FALSE(problem.Decide(no));
}

// Theorem 6's coincidence argument: on valid CHECK-phi instances all
// four problems agree.
TEST_P(CheckPhiTest, FourProblemsCoincide) {
  Rng rng(GetParam());
  const std::size_t m = 8;
  CheckPhi problem(m, 10, permutation::BitReversalPermutation(m));
  EXPECT_TRUE(problem.CoincidesOnInstance(problem.RandomYesInstance(rng)));
  EXPECT_TRUE(problem.CoincidesOnInstance(problem.RandomNoInstance(rng)));
}

TEST_P(CheckPhiTest, IntervalsPartitionByTopBits) {
  Rng rng(GetParam());
  const std::size_t m = 16;
  CheckPhi problem(m, 12, permutation::BitReversalPermutation(m));
  Instance yes = problem.RandomYesInstance(rng);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_EQ(problem.IntervalOf(yes.second[j]), j);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckPhiTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(CheckPhiTest, RejectsForeignInstances) {
  CheckPhi problem(4, 6, permutation::BitReversalPermutation(4));
  // Wrong m.
  Instance wrong_m = MakeInstance({"000000"}, {"000000"});
  EXPECT_FALSE(problem.IsValidInstance(wrong_m));
  // Wrong value length.
  Rng rng(1);
  Instance wrong_len = EqualMultisets(4, 5, rng);
  EXPECT_FALSE(problem.IsValidInstance(wrong_len));
}

// ---------------------------------------------------------------------
// SHORT reduction (Appendix E)
// ---------------------------------------------------------------------

class ShortReductionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ShortReductionTest, PreservesTheAnswer) {
  Rng rng(GetParam());
  for (std::size_t m : {4u, 8u}) {
    // n = m^3 per Lemma 22 would be large; any n >= log2 m works for
    // the construction, so use a moderate multiple.
    const std::size_t n = 4 * m;
    CheckPhi problem(m, n, permutation::BitReversalPermutation(m));
    ShortReduction reduction(problem);
    const Instance yes = problem.RandomYesInstance(rng);
    const Instance no = problem.RandomNoInstance(rng);
    EXPECT_TRUE(RefMultisetEquality(reduction.Reduce(yes)));
    EXPECT_TRUE(RefSetEquality(reduction.Reduce(yes)));
    EXPECT_TRUE(RefCheckSort(reduction.Reduce(yes)));
    EXPECT_FALSE(RefMultisetEquality(reduction.Reduce(no)));
    EXPECT_FALSE(RefSetEquality(reduction.Reduce(no)));
    EXPECT_FALSE(RefCheckSort(reduction.Reduce(no)));
  }
}

TEST_P(ShortReductionTest, RecordsAreShort) {
  Rng rng(GetParam());
  const std::size_t m = 8;
  const std::size_t n = m * m * m;  // the paper's n = m^3
  CheckPhi problem(m, n, permutation::BitReversalPermutation(m));
  ShortReduction reduction(problem);
  const Instance yes = problem.RandomYesInstance(rng);
  const Instance reduced = reduction.Reduce(yes);
  const std::size_t m_prime = reduced.m();
  EXPECT_EQ(m_prime, m * reduction.blocks_per_value());
  for (const auto& v : reduced.first) {
    EXPECT_EQ(v.size(), reduction.record_bits());
    // Records are O(log m') bits: the SHORT regime.
    EXPECT_LE(v.size(), 5 * stmodel::BitsFor(m_prime));
  }
  // Output size is Theta(input size): each log m payload block becomes
  // a 5 log m record (plus separator), a constant blow-up just above 5x.
  EXPECT_GE(reduced.N(), yes.N());
  EXPECT_LE(reduced.N(), 6 * yes.N());
}

TEST_P(ShortReductionTest, TapeVersionMatchesHostVersion) {
  Rng rng(GetParam());
  const std::size_t m = 4;
  const std::size_t n = 8;
  CheckPhi problem(m, n, permutation::BitReversalPermutation(m));
  ShortReduction reduction(problem);
  const Instance instance = problem.RandomYesInstance(rng);

  stmodel::StContext ctx(2);
  ctx.LoadInput(instance.Encode());
  Status status = reduction.ReduceOnTapes(ctx);
  ASSERT_TRUE(status.ok()) << status;

  const Instance host = reduction.Reduce(instance);
  std::string expected = host.Encode();
  std::string actual = ctx.tape(1).contents().substr(0, expected.size());
  EXPECT_EQ(actual, expected);

  // Resource profile: constant scans, O(log N) internal bits.
  tape::ResourceReport report = ctx.Report();
  EXPECT_LE(report.scan_bound, 3u);
  EXPECT_LE(report.internal_space,
            10 * stmodel::BitsFor(ctx.input_size()) + 64);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortReductionTest,
                         ::testing::Values(7, 14, 21));

TEST(ShortReductionTest, SecondHalfOfReductionIsSorted) {
  // The reduced second list must be ascending (so SHORT-CHECK-SORT
  // coincides with SHORT-MULTISET-EQUALITY, as Appendix E requires).
  Rng rng(3);
  const std::size_t m = 8;
  CheckPhi problem(m, 16, permutation::BitReversalPermutation(m));
  ShortReduction reduction(problem);
  const Instance reduced = reduction.Reduce(problem.RandomYesInstance(rng));
  EXPECT_TRUE(
      std::is_sorted(reduced.second.begin(), reduced.second.end()));
}

TEST(ShortReductionTest, EmptyInstanceReducesToEmptyYesInstance) {
  // f(empty) = empty, which both reference deciders call "yes" —
  // the reduction preserves the (trivial) answer at the bottom edge.
  CheckPhi problem(2, 4, permutation::BitReversalPermutation(2));
  ShortReduction reduction(problem);
  const Instance reduced = reduction.Reduce(Instance{});
  EXPECT_EQ(reduced.m(), 0u);
  EXPECT_TRUE(RefMultisetEquality(reduced));
  EXPECT_TRUE(RefSetEquality(reduced));
  EXPECT_TRUE(RefCheckSort(reduced));
}

TEST(ShortReductionTest, SingleElementInstancePreservesTheAnswer) {
  // m = 1: the line index degenerates to zero bits (clamped to one),
  // phi is the identity on {0}, and the answer is v_0 == v'_0.
  Rng rng(7);
  CheckPhi problem(1, 4, permutation::Identity(1));
  ShortReduction reduction(problem);
  const Instance yes = problem.RandomYesInstance(rng);
  EXPECT_TRUE(problem.Decide(yes));
  EXPECT_TRUE(RefMultisetEquality(reduction.Reduce(yes)));
  EXPECT_TRUE(RefSetEquality(reduction.Reduce(yes)));
  EXPECT_TRUE(RefCheckSort(reduction.Reduce(yes)));
  const Instance no = problem.RandomNoInstance(rng);
  EXPECT_FALSE(problem.Decide(no));
  EXPECT_FALSE(RefMultisetEquality(reduction.Reduce(no)));
  EXPECT_FALSE(RefSetEquality(reduction.Reduce(no)));
  EXPECT_FALSE(RefCheckSort(reduction.Reduce(no)));
}

}  // namespace
}  // namespace rstlab::problems
