#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine_builder.h"
#include "machine/turing_machine.h"
#include "util/random.h"

namespace rstlab::machine {
namespace {

TuringMachine Make(MachineSpec spec) {
  Result<TuringMachine> tm = TuringMachine::Create(std::move(spec));
  EXPECT_TRUE(tm.ok()) << tm.status();
  return std::move(tm).value();
}

TEST(TuringMachineTest, CreateRejectsBadSpecs) {
  MachineSpec spec;
  spec.accepting_states = {5};  // not final
  EXPECT_FALSE(TuringMachine::Create(spec).ok());

  MachineSpec arity = zoo::FirstSymbolOne();
  arity.transitions.begin()->second[0].moves.clear();
  EXPECT_FALSE(TuringMachine::Create(arity).ok());
}

TEST(TuringMachineTest, FirstSymbolOne) {
  TuringMachine tm = Make(zoo::FirstSymbolOne());
  Result<RunResult> yes = tm.RunDeterministic("101", 100);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes.value().halted);
  EXPECT_TRUE(yes.value().accepted);
  Result<RunResult> no = tm.RunDeterministic("011", 100);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no.value().accepted);
  Result<RunResult> empty = tm.RunDeterministic("", 100);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().accepted);
}

class EvenOnesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EvenOnesTest, MatchesParity) {
  TuringMachine tm = Make(zoo::EvenOnes());
  const std::string& input = GetParam();
  const std::size_t ones =
      static_cast<std::size_t>(std::count(input.begin(), input.end(), '1'));
  Result<RunResult> run = tm.RunDeterministic(input, 1000);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().halted);
  EXPECT_EQ(run.value().accepted, ones % 2 == 0) << input;
  // A single forward scan: no reversals.
  EXPECT_EQ(run.value().costs.scan_bound, 1u);
}

INSTANTIATE_TEST_SUITE_P(Inputs, EvenOnesTest,
                         ::testing::Values("", "0", "1", "11", "101",
                                           "0110", "111", "11011011",
                                           "000000", "10101010"));

TEST(TuringMachineTest, FairCoinAcceptsWithHalf) {
  TuringMachine tm = Make(zoo::FairCoin());
  EXPECT_DOUBLE_EQ(tm.AcceptanceProbability("0", 10), 0.5);
  // Empirically too.
  Rng rng(3);
  int accepted = 0;
  for (int i = 0; i < 4000; ++i) {
    accepted += tm.RunRandomized("0", rng, 10).accepted;
  }
  EXPECT_NEAR(accepted / 4000.0, 0.5, 0.03);
}

class BiasedCoinTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(BiasedCoinTest, ExactProbability) {
  const auto [num, k] = GetParam();
  TuringMachine tm = Make(zoo::BiasedCoin(num, k));
  const double expected =
      static_cast<double>(num) / std::pow(2.0, static_cast<double>(k));
  EXPECT_NEAR(tm.AcceptanceProbability("1", 50), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BiasedCoinTest,
    ::testing::Values(std::make_pair(0u, 2u), std::make_pair(1u, 2u),
                      std::make_pair(3u, 2u), std::make_pair(4u, 2u),
                      std::make_pair(5u, 3u), std::make_pair(7u, 4u),
                      std::make_pair(11u, 4u)));

TEST(TuringMachineTest, GuessFirstBitHasProbabilityHalf) {
  TuringMachine tm = Make(zoo::GuessFirstBit());
  EXPECT_DOUBLE_EQ(tm.AcceptanceProbability("0", 10), 0.5);
  EXPECT_DOUBLE_EQ(tm.AcceptanceProbability("1", 10), 0.5);
}

TEST(TuringMachineTest, DeterministicRunnerRejectsNondeterminism) {
  TuringMachine tm = Make(zoo::FairCoin());
  EXPECT_FALSE(tm.RunDeterministic("0", 10).ok());
}

// Definition 17 / Lemma 18: probability == fraction of accepting choice
// sequences over C^l.
TEST(TuringMachineTest, ChoiceSequenceCountingMatchesProbability) {
  TuringMachine tm = Make(zoo::GuessFirstBit());
  const std::size_t b = tm.MaxBranching();
  EXPECT_EQ(b, 2u);
  // l = 2 steps suffice; enumerate C^2 with C = {0, 1} (lcm(1,2) = 2).
  int accepting = 0;
  int total = 0;
  for (std::uint64_t c1 = 0; c1 < 2; ++c1) {
    for (std::uint64_t c2 = 0; c2 < 2; ++c2) {
      RunResult run = tm.RunWithChoices("1", {c1, c2}, 10);
      EXPECT_TRUE(run.halted);
      accepting += run.accepted;
      ++total;
    }
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(accepting) / total,
                   tm.AcceptanceProbability("1", 10));
}

class TwoFieldEqualityTest
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {
};

TEST_P(TwoFieldEqualityTest, DecidesEquality) {
  TuringMachine tm = Make(zoo::TwoFieldEquality());
  const auto& [v, w] = GetParam();
  Result<RunResult> run = tm.RunDeterministic(v + "#" + w + "#", 10000);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run.value().halted);
  EXPECT_EQ(run.value().accepted, v == w) << v << " vs " << w;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, TwoFieldEqualityTest,
    ::testing::Values(std::make_pair("0", "0"), std::make_pair("1", "0"),
                      std::make_pair("01", "01"),
                      std::make_pair("01", "10"),
                      std::make_pair("0110", "0110"),
                      std::make_pair("0110", "0111"),
                      std::make_pair("0110", "011"),
                      std::make_pair("011", "0110"),
                      std::make_pair("10101", "10101")));

TEST(TwoFieldEqualityTest, UsesReversalsOnBothTapes) {
  TuringMachine tm = Make(zoo::TwoFieldEquality());
  Result<RunResult> run =
      tm.RunDeterministic("0110#0110#", 10000);
  ASSERT_TRUE(run.ok());
  // Tape 1 rewinds once (1 reversal); tape 0 keeps moving right.
  EXPECT_EQ(run.value().costs.external_reversals[0], 0u);
  EXPECT_EQ(run.value().costs.external_reversals[1], 2u);
  EXPECT_EQ(run.value().costs.scan_bound, 3u);
}

TEST(TuringMachineTest, RunCostsCountInternalSpace) {
  // A machine with one internal tape that writes 3 cells.
  MachineBuilder b(1, 1);
  b.SetStart(0).AddFinal(3, true);
  const char B = kBlank;
  b.On(0, std::string({B, B})).Go(1, "xy", {Move::kStay, Move::kRight});
  b.On(1, std::string({'x', B})).Go(2, "xy", {Move::kStay, Move::kRight});
  b.On(2, std::string({'x', B})).Go(3, "xy", {Move::kStay, Move::kStay});
  TuringMachine tm = Make(b.Build());
  Result<RunResult> run = tm.RunDeterministic("", 100);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().accepted);
  EXPECT_EQ(run.value().costs.internal_space, 3u);
}

TEST(TuringMachineTest, MaxStepsReportsNotHalted) {
  // A machine that loops forever moving right.
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(9, true);
  for (char c : {'0', '1', kBlank}) {
    b.On(0, std::string(1, c)).Go(0, std::string(1, c), {Move::kRight});
  }
  TuringMachine tm = Make(b.Build());
  RunResult run = tm.RunWithChoices("0101", std::vector<std::uint64_t>(50, 0), 50);
  EXPECT_FALSE(run.halted);
  EXPECT_FALSE(run.accepted);
}


class PalindromeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PalindromeTest, DecidesPalindromes) {
  TuringMachine tm = Make(zoo::Palindrome());
  const std::string& v = GetParam();
  const bool is_palindrome =
      std::equal(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(
                                            v.size() / 2),
                 v.rbegin());
  Result<RunResult> run = tm.RunDeterministic(v + "#", 100000);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run.value().halted);
  EXPECT_EQ(run.value().accepted, is_palindrome) << v;
}

INSTANTIATE_TEST_SUITE_P(
    Words, PalindromeTest,
    ::testing::Values("", "0", "1", "00", "01", "010", "011", "0110",
                      "0101", "10101", "110011", "110010",
                      "01011010010110101101001011010"));

TEST(PalindromeTest, TurnsBothHeads) {
  TuringMachine tm = Make(zoo::Palindrome());
  Result<RunResult> run = tm.RunDeterministic("011110#", 100000);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().accepted);
  EXPECT_EQ(run.value().costs.external_reversals[0], 2u);
  EXPECT_EQ(run.value().costs.external_reversals[1], 1u);
}


class BalancedZerosOnesTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BalancedZerosOnesTest, CountsCorrectly) {
  TuringMachine tm = Make(zoo::BalancedZerosOnes());
  const std::string& v = GetParam();
  const auto zeros = std::count(v.begin(), v.end(), '0');
  const auto ones = std::count(v.begin(), v.end(), '1');
  Result<RunResult> run = tm.RunDeterministic(v + "#", 1000000);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_TRUE(run.value().halted) << v;
  EXPECT_EQ(run.value().accepted, zeros == ones) << v;
}

INSTANTIATE_TEST_SUITE_P(
    Words, BalancedZerosOnesTest,
    ::testing::Values("", "0", "1", "01", "10", "00", "0011", "0101",
                      "0001", "11110000", "111100001", "010101010101",
                      "000000001111111101", "0110100110010110"));

TEST(BalancedZerosOnesTest, UsesOneScanAndLogSpace) {
  TuringMachine tm = Make(zoo::BalancedZerosOnes());
  // A 64-character balanced input.
  std::string v;
  for (int i = 0; i < 32; ++i) v += "01";
  Result<RunResult> run = tm.RunDeterministic(v + "#", 1000000);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().accepted);
  // One external scan, no reversals: ST(1, O(log N), 1).
  EXPECT_EQ(run.value().costs.scan_bound, 1u);
  // Internal space: two counters of ~log2(32) digits plus markers.
  EXPECT_LE(run.value().costs.internal_space, 20u);
  EXPECT_GE(run.value().costs.internal_space, 4u);
}

TEST(BalancedZerosOnesTest, InternalSpaceGrowsLogarithmically) {
  TuringMachine tm = Make(zoo::BalancedZerosOnes());
  std::vector<std::size_t> space;
  for (std::size_t half : {8u, 64u, 512u}) {
    std::string v(half, '0');
    v += std::string(half, '1');
    Result<RunResult> run = tm.RunDeterministic(v + "#", 10000000);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run.value().accepted);
    space.push_back(run.value().costs.internal_space);
  }
  // +3 digits per 8x input growth, per counter (plus slack).
  EXPECT_LE(space[2], space[0] + 16);
  EXPECT_GT(space[2], space[0]);
}

// Lemma 3: run lengths and external space of bounded machines stay
// below N * 2^{O(r(t+s))}.
TEST(Lemma3Test, HoldsForTheZooMachines) {
  struct Case {
    MachineSpec spec;
    std::string input;
  };
  std::vector<Case> cases;
  cases.push_back({zoo::EvenOnes(), "0110101#"});
  cases.push_back({zoo::TwoFieldEquality(), "0101#0101#"});
  cases.push_back({zoo::Palindrome(), "0110110#"});
  for (auto& c : cases) {
    TuringMachine tm = Make(std::move(c.spec));
    Result<RunResult> run = tm.RunDeterministic(c.input, 100000);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run.value().halted);
    Lemma3Check check =
        CheckLemma3(run.value(), c.input.size(), tm.spec());
    EXPECT_TRUE(check.within_bounds)
        << "len " << check.run_length << " space "
        << check.external_space << " vs 2^" << check.log2_bound;
  }
}

}  // namespace
}  // namespace rstlab::machine
