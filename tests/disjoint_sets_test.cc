#include <gtest/gtest.h>

#include "fingerprint/prime.h"
#include "problems/disjoint_sets.h"
#include "problems/generators.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace rstlab::problems {
namespace {

TEST(DisjointSetsTest, RefDisjointBasics) {
  Instance disjoint;
  disjoint.first = {BitString::FromString("00"),
                    BitString::FromString("01")};
  disjoint.second = {BitString::FromString("10"),
                     BitString::FromString("11")};
  EXPECT_TRUE(RefDisjoint(disjoint));

  Instance overlapping = disjoint;
  overlapping.second[0] = BitString::FromString("01");
  EXPECT_FALSE(RefDisjoint(overlapping));

  Instance empty;
  EXPECT_TRUE(RefDisjoint(empty));
}

class DisjointGeneratorTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointGeneratorTest, GeneratorsProduceCorrectAnswers) {
  Rng rng(GetParam());
  for (std::size_t m : {4u, 16u, 64u}) {
    Instance yes = DisjointSets(m, 12, rng);
    EXPECT_TRUE(RefDisjoint(yes));
    Instance no = OverlappingSets(m, 12, 1, rng);
    EXPECT_FALSE(RefDisjoint(no));
    Instance very_no = OverlappingSets(m, 12, m, rng);
    EXPECT_FALSE(RefDisjoint(very_no));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointGeneratorTest,
                         ::testing::Values(1, 2, 3, 4, 5));

class DisjointDeciderTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointDeciderTest, TapeDeciderAgreesWithOracle) {
  Rng rng(GetParam());
  std::vector<Instance> instances = {
      DisjointSets(8, 10, rng),
      OverlappingSets(8, 10, 1, rng),
      OverlappingSets(8, 10, 4, rng),
      EqualSets(8, 10, rng),  // definitely overlapping
  };
  for (const Instance& inst : instances) {
    stmodel::StContext ctx(sorting::kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    Result<bool> decided = sorting::DecideDisjointOnTapes(ctx);
    ASSERT_TRUE(decided.ok()) << decided.status();
    EXPECT_EQ(decided.value(), RefDisjoint(inst)) << inst.Encode();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointDeciderTest,
                         ::testing::Values(10, 20, 30, 40, 50));

TEST(DisjointDeciderTest, EmptyInstanceIsDisjoint) {
  stmodel::StContext ctx(sorting::kDeciderTapes);
  ctx.LoadInput("");
  Result<bool> decided = sorting::DecideDisjointOnTapes(ctx);
  ASSERT_TRUE(decided.ok());
  EXPECT_TRUE(decided.value());
}

TEST(DisjointDeciderTest, ScanBoundIsLogarithmic) {
  Rng rng(77);
  std::vector<std::uint64_t> scans;
  for (std::size_t m : {32u, 128u, 512u}) {
    Instance inst = DisjointSets(m, 12, rng);
    stmodel::StContext ctx(sorting::kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    ASSERT_TRUE(sorting::DecideDisjointOnTapes(ctx).ok());
    scans.push_back(ctx.Report().scan_bound);
  }
  EXPECT_EQ(scans[1] - scans[0], scans[2] - scans[1]);
  EXPECT_LE(scans[1] - scans[0], 60u);
}

// The Section 9 observation, made measurable: residue fingerprints are
// the wrong tool for disjointness.
TEST(DisjointnessGuessTest, HasBothErrorKinds) {
  Rng rng(91);
  // A deliberately small prime so residue collisions are plentiful.
  const std::uint64_t small_prime = 31;
  int false_intersecting = 0;  // disjoint sets guessed intersecting
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Instance yes = DisjointSets(16, 16, rng);
    if (!GuessDisjointnessByResidues(yes, small_prime)
             .guessed_disjoint) {
      ++false_intersecting;
    }
  }
  // With 32 values into 31 residue classes, collisions are essentially
  // certain: the guess errs on almost every disjoint instance.
  EXPECT_GT(false_intersecting, trials / 2);

  // Intersecting instances are always flagged intersecting (shared
  // values share residues) — the guess's errors are one-sided in the
  // WRONG direction for the paper's RST classes (which forbid false
  // positives for "disjoint").
  for (int t = 0; t < 20; ++t) {
    Instance no = OverlappingSets(16, 16, 2, rng);
    EXPECT_FALSE(
        GuessDisjointnessByResidues(no, small_prime).guessed_disjoint);
  }
}

TEST(DisjointnessGuessTest, LargePrimeReducesButCannotRemoveError) {
  Rng rng(93);
  // Even with a comfortably large prime, the residue test decides
  // membership of VALUES, not of the aggregate — it is a Bloom-filter
  // style one-sided test (false "intersecting" only), not the
  // no-false-positives shape Theorem 8(a) delivers for multiset
  // equality. Verify the direction of the error.
  Result<std::uint64_t> p = fingerprint::PrimeInBertrandInterval(1 << 20);
  ASSERT_TRUE(p.ok());
  for (int t = 0; t < 50; ++t) {
    Instance no = OverlappingSets(8, 16, 1, rng);
    EXPECT_FALSE(
        GuessDisjointnessByResidues(no, p.value()).guessed_disjoint);
  }
}

}  // namespace
}  // namespace rstlab::problems
