// The conformance harness's own test: corpus replay first (every
// counterexample the harness ever found stays a permanent regression
// test), then the harness machinery (replay triples, shrinker,
// determinism), then a randomized sweep of every differential suite.
// The sweep's case count is tunable via RSTLAB_TEST_CASES so sanitizer
// jobs can dial it down without editing code.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "conform/case_id.h"
#include "conform/gen.h"
#include "conform/harness.h"
#include "conform/oracle.h"
#include "conform/shrink.h"
#include "util/random.h"

#ifndef RSTLAB_CORPUS_DIR
#define RSTLAB_CORPUS_DIR "tests/corpus"
#endif

namespace rstlab::conform {
namespace {

// ---------------------------------------------------------------------
// Corpus replay: runs before the random sweeps (gtest runs this file's
// tests in declaration order) so known-bad inputs are checked first.

TEST(ConformCorpus, EveryCheckedInCaseStillPasses) {
  Result<std::vector<CaseId>> corpus = LoadCorpusDir(RSTLAB_CORPUS_DIR);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_FALSE(corpus.value().empty())
      << "corpus at " << RSTLAB_CORPUS_DIR << " is empty or missing";
  for (const CaseId& id : corpus.value()) {
    Result<CaseOutcome> outcome = ReplayCase(id);
    ASSERT_TRUE(outcome.ok()) << id.ToString() << ": " << outcome.status();
    EXPECT_TRUE(outcome.value().passed)
        << id.ToString() << ": " << outcome.value().failure
        << "\ncounterexample: " << outcome.value().counterexample;
  }
}

TEST(ConformCorpus, LoaderSkipsCommentsAndRejectsGarbage) {
  Result<std::vector<CaseId>> corpus = LoadCorpusDir(RSTLAB_CORPUS_DIR);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  // Files sort lexicographically, so cross_model.case precedes
  // tape_backend.case and the first entry is its first triple.
  EXPECT_EQ(corpus.value().front(), (CaseId{"trial-tally", 1, 0}));
  // A missing directory is an empty corpus, not an error.
  Result<std::vector<CaseId>> missing = LoadCorpusDir("no/such/dir");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing.value().empty());
}

TEST(ConformCorpus, LoaderReportsFileAndLineOfMalformedTriples) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "rstlab_bad_corpus.case";
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "tape-backend:1:5\n"
        << "not a triple\n";
  }
  Result<std::vector<CaseId>> loaded = LoadCorpusFile(path.string());
  EXPECT_FALSE(loaded.ok());
  // The diagnostic names the offending file and line so a reviewer can
  // fix the corpus without bisecting it.
  EXPECT_NE(loaded.status().message().find(":3:"), std::string::npos)
      << loaded.status();
  std::remove(path.string().c_str());
  EXPECT_FALSE(LoadCorpusFile("no/such/file.case").ok());
}

// ---------------------------------------------------------------------
// Replay triples.

TEST(CaseIdTest, RoundTripsThroughToString) {
  const CaseId id{"tape-backend", 42, 17};
  EXPECT_EQ(id.ToString(), "tape-backend:42:17");
  Result<CaseId> parsed = CaseId::Parse(id.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), id);
}

TEST(CaseIdTest, ParseRejectsMalformedTriples) {
  for (const char* bad :
       {"", "tape-backend", "tape-backend:1", "tape-backend:1:2:3",
        "tape-backend:x:2", "tape-backend:1:y", ":1:2",
        "tape-backend:1:"}) {
    EXPECT_FALSE(CaseId::Parse(bad).ok()) << "accepted \"" << bad << "\"";
  }
}

TEST(CaseIdTest, SuiteNameDecorrelatesRngStreams) {
  // Two suites replaying the same (seed, index) must see independent
  // randomness, else a cross-suite failure pattern would be an artifact
  // of shared streams rather than two real bugs.
  const std::uint64_t a = CaseRngSeed(CaseId{"tape-backend", 1, 0});
  const std::uint64_t b = CaseRngSeed(CaseId{"trial-tally", 1, 0});
  EXPECT_NE(a, b);
  // And the seed is a pure function of the triple.
  EXPECT_EQ(a, CaseRngSeed(CaseId{"tape-backend", 1, 0}));
}

TEST(HarnessTest, ReplayUnknownSuiteIsNotFound) {
  EXPECT_FALSE(ReplayCase(CaseId{"no-such-suite", 1, 0}).ok());
}

// ---------------------------------------------------------------------
// Shrinker.

TEST(ShrinkTest, RemovalSpansCoverHalvesDownToSingles) {
  const auto spans = RemovalSpans(4);
  // Most aggressive first: remove 2-element halves, then singles.
  ASSERT_GE(spans.size(), 2u);
  EXPECT_EQ(spans.front().second, 2u);
  EXPECT_EQ(spans.back().second, 1u);
  // Every element is covered by some single-element span.
  std::vector<bool> covered(4, false);
  for (const auto& [begin, length] : spans) {
    if (length == 1) covered[begin] = true;
  }
  for (bool c : covered) EXPECT_TRUE(c);
  EXPECT_TRUE(RemovalSpans(0).empty());
}

TEST(ShrinkTest, GreedyShrinkFindsMinimalFailingSubsequence) {
  // "Fails" iff the sequence contains both a 7 and an 11. The unique
  // 1-minimal failing subsequences have exactly two elements.
  const std::function<bool(const std::vector<int>&)> still_fails =
      [](const std::vector<int>& v) {
        bool seven = false, eleven = false;
        for (int x : v) {
          seven |= x == 7;
          eleven |= x == 11;
        }
        return seven && eleven;
      };
  const std::function<std::vector<std::vector<int>>(
      const std::vector<int>&)>
      candidates = [](const std::vector<int>& v) {
        return SequenceRemovalCandidates(v);
      };
  std::vector<int> failing = {3, 7, 1, 4, 11, 5, 9, 2, 6};
  ShrinkStats stats;
  const std::vector<int> shrunk =
      GreedyShrink(std::move(failing), still_fails, candidates,
                   /*max_attempts=*/1000, &stats);
  EXPECT_EQ(shrunk, (std::vector<int>{7, 11}));
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_GT(stats.improvements, 0u);
  EXPECT_LE(stats.attempts, 1000u);
}

TEST(ShrinkTest, BudgetBoundsAttempts) {
  const std::function<bool(const std::vector<int>&)> always_fails =
      [](const std::vector<int>&) { return true; };
  const std::function<std::vector<std::vector<int>>(
      const std::vector<int>&)>
      candidates = [](const std::vector<int>& v) {
        // Never-shrinking candidates: the descent would loop forever
        // without the attempt budget.
        return std::vector<std::vector<int>>{v};
      };
  std::vector<int> value(8, 1);
  ShrinkStats stats;
  GreedyShrink(std::move(value), always_fails, candidates,
               /*max_attempts=*/25, &stats);
  EXPECT_EQ(stats.attempts, 25u);
}

// ---------------------------------------------------------------------
// Harness determinism and reporting.

TEST(HarnessTest, SuiteRunsAreByteIdenticalAcrossInvocations) {
  for (const Suite* suite : AllSuites()) {
    const SuiteReport first = RunSuite(*suite, /*seed=*/7, /*cases=*/5);
    const SuiteReport second = RunSuite(*suite, /*seed=*/7, /*cases=*/5);
    EXPECT_EQ(first.ToString(), second.ToString()) << suite->name();
  }
}

TEST(HarnessTest, EnvTestCasesFallsBackOnBadValues) {
  // The variable may be set by CI for the sweep below; stash and
  // restore it around the parsing checks.
  const char* saved = std::getenv("RSTLAB_TEST_CASES");
  const std::string stash = saved != nullptr ? saved : "";
  ::setenv("RSTLAB_TEST_CASES", "37", 1);
  EXPECT_EQ(EnvTestCases(10), 37u);
  ::setenv("RSTLAB_TEST_CASES", "banana", 1);
  EXPECT_EQ(EnvTestCases(10), 10u);
  ::setenv("RSTLAB_TEST_CASES", "0", 1);
  EXPECT_EQ(EnvTestCases(10), 10u);
  ::unsetenv("RSTLAB_TEST_CASES");
  EXPECT_EQ(EnvTestCases(10), 10u);
  if (saved != nullptr) ::setenv("RSTLAB_TEST_CASES", stash.c_str(), 1);
}

// ---------------------------------------------------------------------
// Self-test fault injection: a smoke detector is only trusted once it
// has seen smoke. With a known fault injected into every oracle's
// observed values, each suite must report at least one failure, and
// every failure must arrive shrunk and replayable. This is also what
// exercises the failure-reporting and shrink-descent code on green
// trees, so a regression in *those* paths cannot hide behind passing
// oracles.

class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { SetFaultInjection(true); }
  ~ScopedFaultInjection() { SetFaultInjection(false); }
};

TEST(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(FaultInjectionEnabled());
}

TEST(FaultInjectionTest, EverySuiteDetectsAnInjectedFaultAndShrinks) {
  ScopedFaultInjection fault;
  for (const Suite* suite : AllSuites()) {
    const SuiteReport report = RunSuite(*suite, /*seed=*/1, /*cases=*/8);
    ASSERT_FALSE(report.passed())
        << suite->name() << " stayed green with a broken subject";
    for (const CaseFailure& f : report.failures) {
      EXPECT_EQ(f.id.suite, suite->name());
      EXPECT_FALSE(f.failure.empty()) << f.id.ToString();
      EXPECT_FALSE(f.counterexample.empty()) << f.id.ToString();
    }
    // The report renders a replay triple per failure.
    const std::string rendered = report.ToString();
    EXPECT_NE(rendered.find("FAIL"), std::string::npos);
    EXPECT_NE(rendered.find("--replay=" + report.failures[0].id.ToString()),
              std::string::npos);
  }
}

TEST(FaultInjectionTest, FailingRunsAreStillDeterministic) {
  // Failure reports (shrink descent included) must be byte-identical
  // across invocations, or a red CI run could not be replayed locally.
  ScopedFaultInjection fault;
  const Suite* suite = FindSuite("trial-tally");
  ASSERT_NE(suite, nullptr);
  const SuiteReport first = RunSuite(*suite, /*seed=*/3, /*cases=*/4);
  const SuiteReport second = RunSuite(*suite, /*seed=*/3, /*cases=*/4);
  EXPECT_FALSE(first.passed());
  EXPECT_EQ(first.ToString(), second.ToString());
}

TEST(FaultInjectionTest, PhantomReversalFaultShrinksToASingleBlockedMove) {
  // The injected tape fault is the pre-fix phantom reversal at cell 0;
  // ddmin must strip every irrelevant op and leave (at most a handful
  // of) blocked left moves — the ISSUE's <= 8 tape cells bar.
  ScopedFaultInjection fault;
  const Suite* suite = FindSuite("tape-backend");
  ASSERT_NE(suite, nullptr);
  const SuiteReport report = RunSuite(*suite, /*seed=*/1, /*cases=*/12);
  ASSERT_FALSE(report.passed());
  for (const CaseFailure& f : report.failures) {
    EXPECT_NE(f.counterexample.find("L"), std::string::npos)
        << f.counterexample;
    EXPECT_NE(f.counterexample.find("(1 ops, 1 cells)"), std::string::npos)
        << f.id.ToString() << " did not shrink to the minimal op: "
        << f.counterexample;
    EXPECT_GT(f.shrink_attempts, 0u) << f.id.ToString();
  }
}

// ---------------------------------------------------------------------
// Generator sanity: generated values land in the space the oracles
// assume, so shrinking cannot morph a failure into an encoding error.

TEST(GenTest, InstancesAreWellFormedAndOpsStayBounded) {
  Rng rng(0x5eed);
  for (int trial = 0; trial < 50; ++trial) {
    const problems::Instance instance = GenInstance()(rng, 8);
    ASSERT_FALSE(instance.first.empty());
    ASSERT_EQ(instance.first.size(), instance.second.size());
    for (const auto& s : instance.first) ASSERT_GT(s.size(), 0u);

    const std::vector<TapeOp> ops = GenTapeOps()(rng, 8);
    ASSERT_FALSE(ops.empty());
    ASSERT_GT(TapeOpsCellSpan(ops), 0u);
  }
}

// ---------------------------------------------------------------------
// The randomized sweep: every registered suite, RSTLAB_TEST_CASES
// cases (default 40), seed fixed so failures are replayable verbatim.

class ConformSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConformSweep, SuitePassesRandomizedCases) {
  const Suite& suite = *AllSuites()[GetParam()];
  const std::uint64_t cases = EnvTestCases(40);
  const SuiteReport report = RunSuite(suite, /*seed=*/1, cases);
  EXPECT_TRUE(report.passed()) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, ConformSweep,
    ::testing::Range<std::size_t>(0, AllSuites().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = AllSuites()[info.param]->name();
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rstlab::conform
