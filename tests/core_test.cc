#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/complexity.h"
#include "core/experiment.h"

namespace rstlab::core {
namespace {

TEST(ComplexityTest, BoundEvaluators) {
  EXPECT_EQ(ConstScans(3)(1000), 3u);
  EXPECT_EQ(LogScans(1.0)(1024), 10u);
  EXPECT_EQ(LogScans(2.0)(1024), 20u);
  EXPECT_EQ(ConstSpace(64)(1), 64u);
  EXPECT_EQ(LogSpace(1.0)(1 << 16), 16u);
  // N^{1/4}/log N at N = 2^16: 16 / 16 = 1.
  EXPECT_EQ(FourthRootOverLogSpace(1.0)(1 << 16), 1u);
  EXPECT_GT(FourthRootOverLogSpace(1.0)(1 << 28),
            FourthRootOverLogSpace(1.0)(1 << 16));
}

TEST(ComplexityTest, ClassAdmission) {
  ResourceClass cls =
      CoRstClass("co-RST(2, O(log N), 1)", ConstScans(2), LogSpace(64.0), 1);
  tape::ResourceReport report;
  report.scan_bound = 2;
  report.internal_space = 100;
  report.num_external_tapes = 1;
  EXPECT_TRUE(cls.Admits(report, 1 << 10));  // 64*10 = 640 >= 100
  report.scan_bound = 3;
  EXPECT_FALSE(cls.Admits(report, 1 << 10));
  report.scan_bound = 2;
  report.internal_space = 10000;
  EXPECT_FALSE(cls.Admits(report, 1 << 10));
}

TEST(ComplexityTest, ModesAreRecorded) {
  EXPECT_EQ(StClass("x", ConstScans(1), ConstSpace(1), 1).mode,
            MachineMode::kDeterministic);
  EXPECT_EQ(RstClass("x", ConstScans(1), ConstSpace(1), 1).mode,
            MachineMode::kRandomized);
  EXPECT_EQ(NstClass("x", ConstScans(1), ConstSpace(1), 1).mode,
            MachineMode::kNondeterministic);
}

TEST(ExperimentTest, TablePrintsAligned) {
  Table table("demo", {"N", "scans"});
  table.AddRow({"1024", "20"});
  table.AddRow({"2048", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("scans"), std::string::npos);
  EXPECT_NE(out.find("2048"), std::string::npos);
}

TEST(ExperimentTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5), "0.500");
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
}


TEST(ExperimentTest, ToCsv) {
  Table table("demo", {"N", "label"});
  table.AddRow({"1024", "plain"});
  table.AddRow({"2048", "has,comma"});
  table.AddRow({"4096", "has\"quote"});
  EXPECT_EQ(table.ToCsv(),
            "N,label\n"
            "1024,plain\n"
            "2048,\"has,comma\"\n"
            "4096,\"has\"\"quote\"\n");
}

TEST(ExperimentTest, FitRecoversExactLogLaw) {
  // y = 3 log2 x + 5.
  std::vector<double> xs = {2, 4, 8, 16, 32, 64};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3 * std::log2(x) + 5);
  LogFit fit = FitLog2(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(ExperimentTest, FitOnNoisyData) {
  std::vector<double> xs = {2, 4, 8, 16, 32, 64, 128};
  std::vector<double> ys;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ys.push_back(2 * std::log2(xs[i]) + (i % 2 == 0 ? 0.2 : -0.2));
  }
  LogFit fit = FitLog2(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(ExperimentTest, FitConstantSeries) {
  std::vector<double> xs = {2, 4, 8};
  std::vector<double> ys = {5, 5, 5};
  LogFit fit = FitLog2(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

}  // namespace
}  // namespace rstlab::core
