#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fingerprint/batch.h"
#include "fingerprint/fingerprint.h"
#include "parallel/seed_sequence.h"
#include "parallel/trial_runner.h"
#include "problems/generators.h"
#include "util/random.h"
#include "util/simd.h"

namespace rstlab::fingerprint {
namespace {

using simd::SimdLevel;

const SimdLevel kAllLevels[] = {SimdLevel::kScalar, SimdLevel::kLanes4,
                                SimdLevel::kLanes8};

/// Per-lane scalar reference: the engine at any level must reproduce
/// AcceptsWithParams' verdicts and (by exactness) its internal sums.
std::vector<std::uint8_t> ReferenceVerdicts(
    const problems::Instance& instance, const FingerprintParamBatch& batch) {
  std::vector<std::uint8_t> verdicts(batch.lanes());
  for (std::size_t lane = 0; lane < batch.lanes(); ++lane) {
    verdicts[lane] = AcceptsWithParams(instance, batch.Lane(lane)) ? 1 : 0;
  }
  return verdicts;
}

TEST(BatchEngineTest, MatchesScalarReferenceAtEveryLevelAndWidth) {
  Rng rng(0xBA7C);
  for (const std::size_t lanes : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u}) {
    for (int unequal = 0; unequal < 2; ++unequal) {
      const problems::Instance instance =
          unequal == 1 ? problems::PerturbedMultisets(6, 12, 1, rng)
                       : problems::EqualMultisets(6, 12, rng);
      Result<FingerprintParamBatch> batch =
          SampleFingerprintParamBatch(6, 12, lanes, rng);
      ASSERT_TRUE(batch.ok());
      const std::vector<std::uint8_t> expected =
          ReferenceVerdicts(instance, batch.value());
      BatchTally reference;
      bool have_reference = false;
      for (const SimdLevel level : kAllLevels) {
        const BatchFingerprintEngine engine(batch.value(), level);
        const BatchTally tally = engine.Evaluate(instance);
        ASSERT_EQ(tally.lane_accepted, expected)
            << "level=" << simd::SimdLevelName(level) << " lanes=" << lanes;
        if (!have_reference) {
          reference = tally;
          have_reference = true;
          continue;
        }
        // Bit-identical sums, not just verdicts.
        EXPECT_EQ(tally.sum_first, reference.sum_first)
            << simd::SimdLevelName(level);
        EXPECT_EQ(tally.sum_second, reference.sum_second)
            << simd::SimdLevelName(level);
      }
    }
  }
}

TEST(BatchEngineTest, EqualMultisetsAcceptedOnEveryLane) {
  Rng rng(0xACC);
  for (int round = 0; round < 20; ++round) {
    const problems::Instance instance = problems::EqualMultisets(8, 16, rng);
    Result<AmplifiedOutcome> outcome =
        TestMultisetEqualityAmplified(instance, 8, rng, SimdLevel::kLanes8);
    ASSERT_TRUE(outcome.ok());
    // One-sided error: every lane of an equal instance accepts.
    EXPECT_TRUE(outcome.value().accepted);
    for (const std::uint8_t lane : outcome.value().lane_accepted) {
      EXPECT_EQ(lane, 1);
    }
  }
}

TEST(BatchEngineTest, AmplificationShrinksFalsePositiveRate) {
  Rng rng(0xA3B);
  std::size_t single_fp = 0;
  std::size_t amplified_fp = 0;
  const std::size_t trials = 120;
  for (std::size_t t = 0; t < trials; ++t) {
    const problems::Instance instance =
        problems::PerturbedMultisets(4, 8, 1, rng);
    const FingerprintOutcome single = TestMultisetEquality(instance, rng);
    single_fp += single.accepted ? 1 : 0;
    Result<AmplifiedOutcome> amplified =
        TestMultisetEqualityAmplified(instance, 8, rng);
    ASSERT_TRUE(amplified.ok());
    amplified_fp += amplified.value().accepted ? 1 : 0;
  }
  // Eight independent lanes drive the false-positive rate from ~1/3
  // to ~(1/3)^8; with 120 trials the amplified count is essentially
  // always zero and certainly below the single-lane count.
  EXPECT_LE(amplified_fp, single_fp);
  EXPECT_LE(amplified_fp, 2u);
}

TEST(BatchEngineTest, WideModuliFallBackExactly) {
  // Force lanes whose moduli exceed the 32-bit Shoup domain: the
  // engine must take the exact scalar fallback inside the one-pass
  // schedule and still match the per-lane reference.
  Rng rng(0x81D);
  const problems::Instance instance = problems::EqualMultisets(4, 40, rng);
  FingerprintParamBatch batch;
  FingerprintParams wide;
  wide.k = 0;
  wide.p1 = (std::uint64_t{1} << 31) + 11;  // prime 2147483659
  wide.p2 = (std::uint64_t{1} << 31) + 11;
  wide.x = 123456789;
  batch.PushLane(wide);
  FingerprintParams narrow;
  narrow.k = 0;
  narrow.p1 = 97;
  narrow.p2 = 389;
  narrow.x = 42;
  batch.PushLane(narrow);
  const std::vector<std::uint8_t> expected =
      ReferenceVerdicts(instance, batch);
  for (const SimdLevel level : kAllLevels) {
    const BatchFingerprintEngine engine(batch, level);
    EXPECT_FALSE(engine.vectorized());  // out-of-domain moduli
    EXPECT_EQ(engine.Evaluate(instance).lane_accepted, expected)
        << simd::SimdLevelName(level);
  }
}

TEST(BatchEngineTest, BatchResiduesMatchModUint64AtEveryLevel) {
  Rng rng(0x4E5);
  const problems::Instance instance = problems::EqualMultisets(5, 24, rng);
  const std::vector<std::uint64_t> primes = {2, 3, 97, 1009, 104729,
                                             (std::uint64_t{1} << 31) + 11};
  for (const SimdLevel level : kAllLevels) {
    const std::vector<std::uint64_t> residues =
        BatchResidues(instance, primes, level);
    ASSERT_EQ(residues.size(), 2 * instance.m() * primes.size());
    for (std::size_t i = 0; i < instance.m(); ++i) {
      for (std::size_t lane = 0; lane < primes.size(); ++lane) {
        EXPECT_EQ(residues[i * primes.size() + lane],
                  instance.first[i].ModUint64(primes[lane]));
        EXPECT_EQ(residues[(instance.m() + i) * primes.size() + lane],
                  instance.second[i].ModUint64(primes[lane]));
      }
    }
  }
}

TEST(BatchEngineTest, BatchedClaim1IdenticalAcrossThreadsAndLevels) {
  Rng rng(0xC1A);
  const problems::Instance instance =
      problems::PerturbedMultisets(6, 10, 2, rng);
  parallel::TrialRunner one(1);
  parallel::TrialRunner many(4);
  Claim1Estimate reference;
  bool have_reference = false;
  for (const SimdLevel level : kAllLevels) {
    const Claim1Estimate serial = EstimateClaim1CollisionRateBatched(
        instance, 64, 99, one, 8, level);
    const Claim1Estimate parallel_run = EstimateClaim1CollisionRateBatched(
        instance, 64, 99, many, 8, level);
    EXPECT_EQ(serial.trials, 64u);
    EXPECT_EQ(serial.collisions, parallel_run.collisions);
    if (!have_reference) {
      reference = serial;
      have_reference = true;
    }
    EXPECT_EQ(serial.collisions, reference.collisions)
        << simd::SimdLevelName(level);
  }
}

TEST(BatchEngineTest, RunSeededBatchesIsThreadCountInvariant) {
  struct SumTally {
    std::uint64_t sum = 0;
    void Merge(const SumTally& other) { sum += other.sum; }
  };
  const parallel::SeedSequence seeds(1234);
  const auto body = [](std::uint64_t first, std::uint64_t count, Rng& rng,
                       SumTally& tally) {
    for (std::uint64_t c = 0; c < count; ++c) {
      tally.sum += rng.UniformInRange(0, 1000) * (first + c + 1);
    }
  };
  parallel::TrialRunner one(1);
  parallel::TrialRunner many(7);
  for (const std::uint64_t trials : {0ull, 1ull, 7ull, 8ull, 100ull}) {
    const SumTally a = one.RunSeededBatches<SumTally>(trials, 8, seeds, body);
    const SumTally b = many.RunSeededBatches<SumTally>(trials, 8, seeds, body);
    EXPECT_EQ(a.sum, b.sum) << trials;
  }
}

TEST(BatchEngineTest, EmptyBatchAndEmptyInstance) {
  Rng rng(7);
  const problems::Instance empty_instance;
  Result<FingerprintParamBatch> batch =
      SampleFingerprintParamBatch(3, 5, 4, rng);
  ASSERT_TRUE(batch.ok());
  for (const SimdLevel level : kAllLevels) {
    const BatchFingerprintEngine engine(batch.value(), level);
    // Zero values on both sides: both sums are 0 on every lane.
    const BatchTally tally = engine.Evaluate(empty_instance);
    EXPECT_TRUE(tally.all_accepted());
    const BatchFingerprintEngine none(FingerprintParamBatch{}, level);
    EXPECT_EQ(none.Evaluate(empty_instance).lane_accepted.size(), 0u);
  }
}

}  // namespace
}  // namespace rstlab::fingerprint
