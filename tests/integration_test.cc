// Cross-module integration tests: the full pipelines the experiment
// binaries run, exercised end to end at small scale.

#include <map>

#include <gtest/gtest.h>

#include "core/complexity.h"
#include "core/rstlab.h"

namespace rstlab {
namespace {

// One CHECK-phi instance driven through every decision procedure in the
// library: the reference oracles, the deterministic sort-based decider,
// the fingerprint tester, the NST certificate machinery, the relational
// algebra query, and the XML query evaluators must all agree (on the
// one-sided-error testers: never a false negative).
class FullPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FullPipelineTest, AllDecidersAgreeOnCheckPhiInstances) {
  Rng rng(GetParam());
  const std::size_t m = 4;
  const std::size_t n = 8;
  problems::CheckPhi problem(m, n,
                             permutation::BitReversalPermutation(m));

  for (bool yes : {true, false}) {
    const problems::Instance inst = yes
                                        ? problem.RandomYesInstance(rng)
                                        : problem.RandomNoInstance(rng);
    ASSERT_TRUE(problem.IsValidInstance(inst));
    ASSERT_EQ(problem.Decide(inst), yes);

    // On valid CHECK-phi instances all three problems coincide
    // (Theorem 6's reduction), so every decider must answer `yes`.
    for (problems::Problem p :
         {problems::Problem::kSetEquality,
          problems::Problem::kMultisetEquality,
          problems::Problem::kCheckSort}) {
      EXPECT_EQ(problems::RefDecide(p, inst), yes);

      stmodel::StContext ctx(sorting::kDeciderTapes);
      ctx.LoadInput(inst.Encode());
      Result<bool> decided = sorting::DecideOnTapes(p, ctx);
      ASSERT_TRUE(decided.ok());
      EXPECT_EQ(decided.value(), yes);

      EXPECT_EQ(nst::ExistsAcceptingCertificate(p, inst), yes);
    }

    // Fingerprint tester: never a false negative.
    if (yes) {
      EXPECT_TRUE(fingerprint::TestMultisetEquality(inst, rng).accepted);
    }

    // Relational algebra: symmetric difference empty iff yes.
    std::map<std::string, query::Relation> db;
    db["R1"].name = "R1";
    db["R2"].name = "R2";
    for (const auto& v : inst.first) db["R1"].Insert({v.ToString()});
    for (const auto& v : inst.second) db["R2"].Insert({v.ToString()});
    stmodel::StContext qctx(query::kRelAlgTapes);
    qctx.LoadInput(query::EncodeDatabaseStream(db));
    Result<query::Relation> result =
        query::EvaluateOnTapes(query::SymmetricDifferenceQuery(), qctx);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tuples.empty(), yes);

    // XML evaluators.
    query::XmlDocument doc = query::EncodeSetInstanceAsXml(inst);
    EXPECT_EQ(query::EvaluatePaperXQueryToString(*doc) ==
                  "<result><true></true></result>",
              yes);
    // The XPath filter detects X - Y nonempty; on CHECK-phi no
    // instances, some v_i misses from the second list.
    EXPECT_EQ(query::PaperXPathSelects(inst), !yes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullPipelineTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The SHORT reduction pipeline: CHECK-phi instance -> f(v) on tapes ->
// deterministic decider on the reduced instance.
TEST(FullPipelineTest, ShortReductionThenSortDecider) {
  Rng rng(42);
  const std::size_t m = 4;
  const std::size_t n = 8;
  problems::CheckPhi problem(m, n,
                             permutation::BitReversalPermutation(m));
  problems::ShortReduction reduction(problem);

  for (bool yes : {true, false}) {
    const problems::Instance inst = yes
                                        ? problem.RandomYesInstance(rng)
                                        : problem.RandomNoInstance(rng);
    stmodel::StContext rctx(2);
    rctx.LoadInput(inst.Encode());
    ASSERT_TRUE(reduction.ReduceOnTapes(rctx).ok());
    // Feed tape 1's content to the decider as a fresh input.
    const std::string reduced_encoding =
        rctx.tape(1).contents().substr(
            0, reduction.Reduce(inst).Encode().size());

    stmodel::StContext dctx(sorting::kDeciderTapes);
    dctx.LoadInput(reduced_encoding);
    Result<bool> decided = sorting::DecideOnTapes(
        problems::Problem::kMultisetEquality, dctx);
    ASSERT_TRUE(decided.ok());
    EXPECT_EQ(decided.value(), yes);
  }
}

// Resource-class bookkeeping across a real run: the fingerprint tester
// complies with co-RST(2, O(log N), 1) (Theorem 8(a)).
TEST(FullPipelineTest, FingerprintCompliesWithPaperClass) {
  Rng rng(7);
  core::ResourceClass cls = core::CoRstClass(
      "co-RST(2, O(log N), 1)", core::ConstScans(2),
      core::LogSpace(64.0), 1);
  for (int trial = 0; trial < 5; ++trial) {
    problems::Instance inst = problems::EqualMultisets(16, 16, rng);
    stmodel::StContext ctx(1);
    ctx.LoadInput(inst.Encode());
    Result<fingerprint::FingerprintOutcome> outcome =
        fingerprint::TestMultisetEqualityOnTapes(ctx, rng);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().accepted);
    EXPECT_TRUE(cls.Admits(ctx.Report(), ctx.input_size()))
        << ctx.Report().ToString();
  }
}

// The TM -> list machine pipeline: simulate, then run the merge-lemma
// analysis on the simulated run.
TEST(FullPipelineTest, SimulatedRunsPassListMachineAnalyses) {
  Result<machine::TuringMachine> tm =
      machine::TuringMachine::Create(machine::zoo::TwoFieldEquality());
  ASSERT_TRUE(tm.ok());
  Result<listmachine::SimulationResult> sim =
      listmachine::SimulateTmAsNlm(tm.value(), {"0101", "0101"}, {},
                                   100000);
  ASSERT_TRUE(sim.ok());
  EXPECT_TRUE(sim.value().tm_accepted);

  listmachine::GrowthCheck growth =
      listmachine::CheckGrowth(sim.value().run, 2);
  EXPECT_TRUE(growth.within_bounds);

  // phi = identity on one pair: position 0 vs 1 compared is allowed by
  // the bound t^{2r} * sortedness >= 1.
  listmachine::MergeLemmaCheck merge = listmachine::CheckMergeLemma(
      sim.value().run, permutation::Identity(1));
  EXPECT_TRUE(merge.within_bounds);
}


// Exhaustive differential test: EVERY m = 2, n = 2 instance (256 of
// them) through every decision procedure. Any disagreement anywhere in
// the stack fails loudly with the exact instance.
TEST(FullPipelineTest, ExhaustiveMicroInstances) {
  Rng rng(31337);
  for (std::uint64_t code = 0; code < 256; ++code) {
    problems::Instance inst;
    inst.first = {BitString::FromUint64((code >> 0) & 3, 2),
                  BitString::FromUint64((code >> 2) & 3, 2)};
    inst.second = {BitString::FromUint64((code >> 4) & 3, 2),
                   BitString::FromUint64((code >> 6) & 3, 2)};
    for (problems::Problem p :
         {problems::Problem::kSetEquality,
          problems::Problem::kMultisetEquality,
          problems::Problem::kCheckSort}) {
      const bool oracle = problems::RefDecide(p, inst);
      stmodel::StContext ctx(sorting::kDeciderTapes);
      ctx.LoadInput(inst.Encode());
      Result<bool> decided = sorting::DecideOnTapes(p, ctx);
      ASSERT_TRUE(decided.ok());
      ASSERT_EQ(decided.value(), oracle)
          << ProblemName(p) << " on " << inst.Encode();
      ASSERT_EQ(nst::ExistsAcceptingCertificate(p, inst), oracle)
          << ProblemName(p) << " on " << inst.Encode();
    }
    // Fingerprint: completeness on every equal instance, and the exact
    // acceptance probability below 1/2 on every unequal one.
    if (problems::RefMultisetEquality(inst)) {
      EXPECT_TRUE(fingerprint::TestMultisetEquality(inst, rng).accepted)
          << inst.Encode();
    } else {
      Result<double> p = fingerprint::ExactAcceptProbability(inst);
      ASSERT_TRUE(p.ok());
      EXPECT_LT(p.value(), 0.5) << inst.Encode();
    }
    // Disjointness decider vs oracle on the same instances.
    stmodel::StContext dctx(sorting::kDeciderTapes);
    dctx.LoadInput(inst.Encode());
    Result<bool> disjoint = sorting::DecideDisjointOnTapes(dctx);
    ASSERT_TRUE(disjoint.ok());
    EXPECT_EQ(disjoint.value(), problems::RefDisjoint(inst))
        << inst.Encode();
  }
}

}  // namespace
}  // namespace rstlab
