#include <gtest/gtest.h>

#include "problems/generators.h"
#include "problems/reference.h"
#include "query/xml.h"
#include "query/xml_reduction.h"
#include "query/xpath.h"
#include "query/xquery.h"
#include "util/random.h"

namespace rstlab::query {
namespace {

problems::Instance MakeInstance(const std::vector<std::string>& first,
                                const std::vector<std::string>& second) {
  problems::Instance instance;
  for (const auto& v : first) {
    instance.first.push_back(BitString::FromString(v));
  }
  for (const auto& v : second) {
    instance.second.push_back(BitString::FromString(v));
  }
  return instance;
}

// ---------------------------------------------------------------------
// XML model
// ---------------------------------------------------------------------

TEST(XmlTest, SerializeParseRoundtrip) {
  auto root = std::make_unique<XmlNode>();
  root->name = "a";
  root->AddChild("b")->text = "01";
  XmlNode* c = root->AddChild("c");
  c->AddChild("d")->text = "10";
  const std::string serialized = SerializeXml(*root);
  EXPECT_EQ(serialized, "<a><b>01</b><c><d>10</d></c></a>");
  Result<XmlDocument> parsed = ParseXml(serialized);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeXml(*parsed.value()), serialized);
}

TEST(XmlTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());
  EXPECT_FALSE(ParseXml("<a><</a>").ok());
  EXPECT_FALSE(ParseXml("<>x</>").ok());
}

TEST(XmlTest, StringValueConcatenatesDescendants) {
  Result<XmlDocument> doc = ParseXml("<a><b>01</b><c><d>10</d></c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->StringValue(), "0110");
}

TEST(XmlTest, EncodeSetInstanceShape) {
  problems::Instance inst = MakeInstance({"01", "10"}, {"11"});
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  EXPECT_EQ(
      SerializeXml(*doc),
      "<instance>"
      "<set1><item><string>01</string></item>"
      "<item><string>10</string></item></set1>"
      "<set2><item><string>11</string></item></set2>"
      "</instance>");
}

// ---------------------------------------------------------------------
// XPath
// ---------------------------------------------------------------------

TEST(XPathTest, AxesWork) {
  problems::Instance inst = MakeInstance({"01", "10"}, {"10", "11"});
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  // child::set1
  XPathPath child_path = {{Axis::kChild, "set1", nullptr}};
  EXPECT_EQ(EvalPath(*doc, child_path).size(), 1u);
  // descendant::string finds all four strings.
  XPathPath desc_path = {{Axis::kDescendant, "string", nullptr}};
  EXPECT_EQ(EvalPath(*doc, desc_path).size(), 4u);
  // ancestor::instance from a string node.
  const XmlNode* s = EvalPath(*doc, desc_path)[0];
  XPathPath anc_path = {{Axis::kAncestor, "instance", nullptr}};
  EXPECT_EQ(EvalPath(*s, anc_path).size(), 1u);
}

TEST(XPathTest, PaperQuerySelectsSetDifference) {
  // X = {01, 10}, Y = {10, 11}: X - Y = {01}, one item selected.
  problems::Instance inst = MakeInstance({"01", "10"}, {"10", "11"});
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  std::vector<const XmlNode*> selected =
      EvalPath(*doc, PaperXPathQuery());
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0]->StringValue(), "01");
}

TEST(XPathTest, PaperQueryEmptyWhenSubset) {
  // X subset of Y: nothing selected.
  problems::Instance inst = MakeInstance({"10"}, {"10", "11"});
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  EXPECT_FALSE(FilterMatches(*doc, PaperXPathQuery()));
}

class XPathSemanticsTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(XPathSemanticsTest, SelectsExactlyXMinusY) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    problems::Instance inst = problems::EqualMultisets(6, 5, rng);
    if (trial % 2 == 0) {
      inst = problems::PerturbedMultisets(6, 5, 2, rng);
    }
    XmlDocument doc = EncodeSetInstanceAsXml(inst);
    std::vector<const XmlNode*> selected =
        EvalPath(*doc, PaperXPathQuery());
    // Reference: multiset of selected strings == items of X whose value
    // is not in Y (with multiplicity of occurrences in the item list).
    std::set<std::string> y_values;
    for (const auto& v : inst.second) y_values.insert(v.ToString());
    std::size_t expected = 0;
    for (const auto& v : inst.first) {
      if (y_values.count(v.ToString()) == 0) ++expected;
    }
    EXPECT_EQ(selected.size(), expected);
    EXPECT_EQ(PaperXPathSelects(inst), expected > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathSemanticsTest,
                         ::testing::Values(1, 2, 3, 4));


TEST(XPathTest, ExtraAxes) {
  problems::Instance inst = MakeInstance({"01"}, {"10"});
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  // descendant-or-self::instance from the root selects the root.
  XPathPath dos = {{Axis::kDescendantOrSelf, "instance", nullptr}};
  EXPECT_EQ(EvalPath(*doc, dos).size(), 1u);
  // self::instance selects the context itself.
  XPathPath self_path = {{Axis::kSelf, "instance", nullptr}};
  EXPECT_EQ(EvalPath(*doc, self_path).size(), 1u);
  XPathPath self_wrong = {{Axis::kSelf, "set1", nullptr}};
  EXPECT_TRUE(EvalPath(*doc, self_wrong).empty());
  // parent:: from a string node climbs exactly one level.
  XPathPath strings = {{Axis::kDescendant, "string", nullptr}};
  const XmlNode* s = EvalPath(*doc, strings)[0];
  XPathPath parent = {{Axis::kParent, "item", nullptr}};
  EXPECT_EQ(EvalPath(*s, parent).size(), 1u);
  XPathPath grandparent = {{Axis::kParent, "item", nullptr},
                           {Axis::kParent, "set1", nullptr}};
  EXPECT_EQ(EvalPath(*s, grandparent).size(), 1u);
  // The paper's query expressed with descendant-or-self (the common
  // "//" spelling) selects the same items.
  XPathPath lhs = {{Axis::kChild, "string", nullptr}};
  XPathPath rhs = {{Axis::kAncestor, "instance", nullptr},
                   {Axis::kChild, "set2", nullptr},
                   {Axis::kChild, "item", nullptr},
                   {Axis::kChild, "string", nullptr}};
  XPathPath variant = {{Axis::kDescendantOrSelf, "", nullptr},
                       {Axis::kSelf, "set1", nullptr},
                       {Axis::kChild, "item",
                        Not(EqualsExpr(lhs, rhs))}};
  // Empty name test matches any element.
  EXPECT_EQ(EvalPath(*doc, variant).size(),
            EvalPath(*doc, PaperXPathQuery()).size());
}


TEST(XPathParserTest, ParsesThePaperQueryVerbatim) {
  Result<XPathPath> parsed = ParseXPath(
      "descendant::set1 / child::item [ not( child::string = "
      "ancestor::instance/child::set2/child::item/child::string ) ]");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // The parsed query behaves identically to the hand-built one on
  // random instances.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    problems::Instance inst =
        trial % 2 == 0 ? problems::EqualSets(5, 5, rng)
                       : problems::PerturbedMultisets(5, 5, 1, rng);
    XmlDocument doc = EncodeSetInstanceAsXml(inst);
    EXPECT_EQ(EvalPath(*doc, parsed.value()).size(),
              EvalPath(*doc, PaperXPathQuery()).size());
  }
}

TEST(XPathParserTest, ParsesAllAxes) {
  for (const char* text :
       {"child::a", "descendant::b", "ancestor::c", "parent::d",
        "self::e", "descendant-or-self::f", "child::",
        "child::a/child::b", "child::a[child::b]",
        "child::a[child::b = child::c]",
        "child::a[not(child::b)]"}) {
    Result<XPathPath> parsed = ParseXPath(text);
    EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status();
  }
}

TEST(XPathParserTest, RejectsMalformedQueries) {
  for (const char* text :
       {"", "bogus::a", "child:a", "child::a[", "child::a[child::b",
        "child::a]", "child::a[not child::b]", "child::a//child::b",
        "child::a[child::b = ]"}) {
    EXPECT_FALSE(ParseXPath(text).ok()) << text;
  }
}

TEST(XPathParserTest, ParsedQueryEvaluates) {
  problems::Instance inst = MakeInstance({"01", "10"}, {"10", "11"});
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  Result<XPathPath> q = ParseXPath("descendant::string");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(EvalPath(*doc, q.value()).size(), 4u);
}

// ---------------------------------------------------------------------
// XQuery
// ---------------------------------------------------------------------

TEST(XQueryTest, ReturnsTrueElementIffSetsEqual) {
  problems::Instance equal = MakeInstance({"01", "10"}, {"10", "01"});
  problems::Instance unequal = MakeInstance({"01", "10"}, {"10", "11"});
  XmlDocument doc_eq = EncodeSetInstanceAsXml(equal);
  XmlDocument doc_ne = EncodeSetInstanceAsXml(unequal);
  EXPECT_EQ(EvaluatePaperXQueryToString(*doc_eq),
            "<result><true></true></result>");
  EXPECT_EQ(EvaluatePaperXQueryToString(*doc_ne), "<result></result>");
}

class XQuerySemanticsTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XQuerySemanticsTest, MatchesSetEquality) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    problems::Instance inst =
        trial % 2 == 0 ? problems::EqualSets(6, 5, rng)
                       : problems::PerturbedMultisets(6, 5, 1, rng);
    XmlDocument doc = EncodeSetInstanceAsXml(inst);
    const bool query_true =
        EvaluatePaperXQueryToString(*doc) ==
        "<result><true></true></result>";
    EXPECT_EQ(query_true, problems::RefSetEquality(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XQuerySemanticsTest,
                         ::testing::Values(5, 6, 7, 8));

TEST(XQueryTest, MultisetsWithEqualSetsAreEqualForTheQuery) {
  // The XQuery checks SET equality: multiplicities are invisible.
  problems::Instance inst =
      MakeInstance({"01", "01", "10"}, {"10", "10", "01"});
  XmlDocument doc = EncodeSetInstanceAsXml(inst);
  EXPECT_EQ(EvaluatePaperXQueryToString(*doc),
            "<result><true></true></result>");
}

// ---------------------------------------------------------------------
// The T-tilde reduction (Theorem 13)
// ---------------------------------------------------------------------

TEST(TTildeTest, NoInstancesAlwaysRejected) {
  Rng rng(31);
  FilterOracle oracle = ModelFilterOracle(0.5);
  for (int trial = 0; trial < 50; ++trial) {
    problems::Instance inst = problems::PerturbedMultisets(6, 6, 1, rng);
    if (problems::RefSetEquality(inst)) continue;
    EXPECT_FALSE(TTildeAcceptsSetEquality(inst, oracle, rng));
  }
}

TEST(TTildeTest, YesInstancesAcceptedAboutQuarter) {
  Rng rng(37);
  FilterOracle oracle = ModelFilterOracle(0.5);
  problems::Instance inst = problems::EqualSets(6, 6, rng);
  int accepted = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    accepted += TTildeAcceptsSetEquality(inst, oracle, rng);
  }
  EXPECT_NEAR(accepted / static_cast<double>(trials), 0.25, 0.03);
}

TEST(TTildeTest, BoostingNeedsThreeRoundsForHalf) {
  // The paper suggests two rounds reach probability 1/2; with
  // per-round acceptance exactly 1/4 the true boosted probabilities are
  // 1-(3/4)^k: 0.4375 at k = 2 and 0.578 at k = 3.
  Rng rng(41);
  FilterOracle oracle = ModelFilterOracle(0.5);
  problems::Instance inst = problems::EqualSets(6, 6, rng);
  const int trials = 4000;
  int two_rounds = 0;
  int three_rounds = 0;
  for (int i = 0; i < trials; ++i) {
    two_rounds += BoostedTTildeAccepts(inst, oracle, rng, 2);
    three_rounds += BoostedTTildeAccepts(inst, oracle, rng, 3);
  }
  EXPECT_NEAR(two_rounds / static_cast<double>(trials), 0.4375, 0.03);
  EXPECT_NEAR(three_rounds / static_cast<double>(trials), 0.578, 0.03);
  EXPECT_LT(two_rounds, trials / 2);   // 2 rounds are NOT enough
  EXPECT_GT(three_rounds, trials / 2);  // 3 rounds are
}

TEST(TTildeTest, BoostedStillSoundOnNoInstances) {
  Rng rng(43);
  FilterOracle oracle = ModelFilterOracle(0.5);
  problems::Instance inst = problems::PerturbedMultisets(6, 6, 1, rng);
  ASSERT_FALSE(problems::RefSetEquality(inst));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(BoostedTTildeAccepts(inst, oracle, rng, 3));
  }
}

}  // namespace
}  // namespace rstlab::query
