#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/analyzer.h"
#include "check/diagnostics.h"
#include "check/nlm_adapter.h"
#include "check/registry.h"
#include "core/complexity.h"
#include "listmachine/list_machine.h"
#include "listmachine/machines.h"
#include "machine/machine_builder.h"
#include "machine/paper_machines.h"
#include "machine/turing_machine.h"
#include "util/random.h"

namespace rstlab::check {
namespace {

using machine::Action;
using machine::MachineBuilder;
using machine::MachineSpec;
using machine::Move;
using machine::kBlank;

// ---------------------------------------------------------------------
// The CI gate: every shipped paper/zoo machine must certify clean.
// ---------------------------------------------------------------------

TEST(RegistryTest, AllShippedMachinesAreClean) {
  for (const CheckedMachine& entry : AllCheckedMachines()) {
    const Analysis analysis = Analyze(entry.spec, entry.options);
    EXPECT_TRUE(analysis.clean())
        << entry.name << ":\n"
        << analysis.diagnostics.ToString();
    EXPECT_EQ(analysis.diagnostics.num_warnings(), 0u)
        << entry.name << ":\n"
        << analysis.diagnostics.ToString();
  }
}

TEST(RegistryTest, AllShippedListMachinesAreClean) {
  for (const CheckedListMachine& entry : AllCheckedListMachines()) {
    const Diagnostics diag = CheckListMachine(*entry.program, entry.options);
    EXPECT_TRUE(diag.clean()) << entry.name << ":\n" << diag.ToString();
    EXPECT_EQ(diag.num_warnings(), 0u)
        << entry.name << ":\n"
        << diag.ToString();
  }
}

// The Theorem 8(a) acceptance criterion: at most 2 reversals certified
// statically on every external tape, matching co-RST(2, 0, 1).
TEST(RegistryTest, Theorem8aReversalBoundAtMostTwo) {
  const Analysis analysis = Analyze(machine::paper::Theorem8aFingerprint());
  ASSERT_EQ(analysis.resources.external_reversals.size(), 1u);
  for (const BoundExpr& b : analysis.resources.external_reversals) {
    ASSERT_TRUE(b.IsConstant());
    EXPECT_LE(b.ConstantValue(), 2u);
  }
  ASSERT_TRUE(analysis.resources.scan_bound.IsConstant());
  EXPECT_LE(analysis.resources.scan_bound.ConstantValue(), 2u);
}

TEST(RegistryTest, Theorem8aHasNoFalseNegatives) {
  // Equal digit sums accept on every branch (probability 1); a sum
  // mismatch mod one of the primes is caught by at least one branch.
  auto tm = machine::TuringMachine::Create(
      machine::paper::Theorem8aFingerprint());
  ASSERT_TRUE(tm.ok()) << tm.status();
  EXPECT_DOUBLE_EQ(tm.value().AcceptanceProbability("101$011", 1000), 1.0);
  EXPECT_DOUBLE_EQ(tm.value().AcceptanceProbability("11$10#1", 1000), 1.0);
  // Co-RST one-sidedness: a no-instance may still fool the branch whose
  // prime divides the digit-sum difference, but never every branch.
  EXPECT_DOUBLE_EQ(tm.value().AcceptanceProbability("1$0", 1000), 0.0);
  EXPECT_LT(tm.value().AcceptanceProbability("111$", 1000), 1.0);
}

TEST(RegistryTest, Theorem8bDecidesSomeAllOnesField) {
  auto tm = machine::TuringMachine::Create(
      machine::paper::Theorem8bGuessVerify());
  ASSERT_TRUE(tm.ok()) << tm.status();
  // NST acceptance: some run accepts.
  EXPECT_GT(tm.value().AcceptanceProbability("01#11", 1000), 0.0);
  EXPECT_GT(tm.value().AcceptanceProbability("1", 1000), 0.0);
  EXPECT_EQ(tm.value().AcceptanceProbability("01#10", 1000), 0.0);
  EXPECT_EQ(tm.value().AcceptanceProbability("", 1000), 0.0);
}

// ---------------------------------------------------------------------
// Negative suite: one deliberately broken machine per diagnostic code,
// asserting both the code and its location.
// ---------------------------------------------------------------------

/// A healthy little base machine to break: 0 --1--> accept, 0 --0--> 1,
/// 1 --*--> reject.
MachineSpec BaseMachine() {
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(100, true).AddFinal(101, false);
  b.On(0, "1").Go(100, "1", {Move::kStay});
  b.On(0, "0").Go(1, "0", {Move::kRight});
  b.On(1, "0").Go(101, "0", {Move::kStay});
  b.On(1, "1").Go(101, "1", {Move::kStay});
  b.On(1, std::string(1, kBlank))
      .Go(101, std::string(1, kBlank), {Move::kStay});
  b.On(0, std::string(1, kBlank))
      .Go(101, std::string(1, kBlank), {Move::kStay});
  return b.Build();
}

TEST(NegativeTest, RST001ActionArity) {
  MachineSpec spec = BaseMachine();
  spec.transitions.at({0, "1"})[0].write = "11";  // arity 2 on 1 tape
  const Analysis analysis = Analyze(spec);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kActionArity);
  ASSERT_NE(d, nullptr) << analysis.diagnostics.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->state, 0);
  EXPECT_EQ(d->key, "1");
}

TEST(NegativeTest, RST002KeyArity) {
  MachineSpec spec = BaseMachine();
  spec.transitions[{0, "10"}] = {Action{100, "1", {Move::kStay}}};
  const Analysis analysis = Analyze(spec);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kKeyArity);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->state, 0);
  EXPECT_EQ(d->key, "10");
}

TEST(NegativeTest, RST003Alphabet) {
  MachineSpec spec = BaseMachine();
  spec.transitions[{0, "7"}] = {Action{100, "7", {Move::kStay}}};
  AnalyzeOptions options;
  options.alphabet = "01";
  const Analysis analysis = Analyze(spec, options);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kAlphabet);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->state, 0);
  EXPECT_EQ(d->key, "7");
  EXPECT_EQ(d->tape, 0u);
}

TEST(NegativeTest, RST004FinalHasRules) {
  MachineSpec spec = BaseMachine();
  spec.transitions[{100, "1"}] = {Action{100, "1", {Move::kStay}}};
  const Analysis analysis = Analyze(spec);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kFinalHasRules);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->state, 100);
}

TEST(NegativeTest, RST005AcceptingNotFinal) {
  MachineSpec spec = BaseMachine();
  spec.accepting_states.push_back(1);
  const Analysis analysis = Analyze(spec);
  const Diagnostic* d =
      analysis.diagnostics.FindCode(Code::kAcceptingNotFinal);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->state, 1);
}

TEST(NegativeTest, RST006NondeterministicKey) {
  MachineSpec spec = machine::zoo::GuessFirstBit();
  AnalyzeOptions options;
  options.declared_deterministic = true;
  const Analysis analysis = Analyze(spec, options);
  const Diagnostic* d =
      analysis.diagnostics.FindCode(Code::kNondeterministicKey);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->state, 0);
}

TEST(NegativeTest, RST007NeverBranches) {
  AnalyzeOptions options;
  options.declared = core::RstClass("RST(1, 0, 1)", core::ConstScans(1),
                                    core::ConstSpace(0), 1);
  const Analysis analysis = Analyze(BaseMachine(), options);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kNeverBranches);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(NegativeTest, RST008UnreachableState) {
  MachineSpec spec = BaseMachine();
  spec.transitions[{9, "1"}] = {Action{100, "1", {Move::kStay}}};
  const Analysis analysis = Analyze(spec);
  const Diagnostic* d =
      analysis.diagnostics.FindCode(Code::kUnreachableState);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->state, 9);
}

TEST(NegativeTest, RST009StuckSuccessor) {
  MachineSpec spec = BaseMachine();
  // State 7 is neither final nor has any rules.
  spec.transitions.at({0, "1"})[0].next_state = 7;
  const Analysis analysis = Analyze(spec);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kStuckSuccessor);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->state, 0);
  EXPECT_EQ(d->key, "1");
}

TEST(NegativeTest, RST010ReversalBound) {
  // Palindrome needs 2 reversals on tape 0; declaring r(N) = 1 must be
  // refuted statically.
  AnalyzeOptions options;
  options.declared = core::StClass("ST(1, 0, 2)", core::ConstScans(1),
                                   core::ConstSpace(0), 2);
  const Analysis analysis = Analyze(machine::zoo::Palindrome(), options);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kReversalBound);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(NegativeTest, RST011SpaceBound) {
  // BalancedZerosOnes grows its internal counters on a loop; a constant
  // space declaration is statically impossible.
  AnalyzeOptions options;
  options.declared = core::StClass("ST(1, 0, 1)", core::ConstScans(1),
                                   core::ConstSpace(0), 1);
  const Analysis analysis =
      Analyze(machine::zoo::BalancedZerosOnes(), options);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kSpaceBound);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(NegativeTest, RST011SpaceBoundFiniteOverflow) {
  // A straight-line machine that writes 3 internal cells declared with
  // s(N) = 1: the finite static bound already exceeds it.
  MachineBuilder b(1, 1);
  b.SetStart(0).AddFinal(100, true);
  const std::string bb(2, kBlank);
  b.On(0, bb).Go(1, bb, {Move::kStay, Move::kRight});
  b.On(1, bb).Go(2, bb, {Move::kStay, Move::kRight});
  b.On(2, bb).Go(100, bb, {Move::kStay, Move::kStay});
  AnalyzeOptions options;
  options.declared = core::StClass("ST(1, 1, 1)", core::ConstScans(1),
                                   core::ConstSpace(1), 1);
  const Analysis analysis = Analyze(b.Build(), options);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kSpaceBound);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(NegativeTest, RST012TrivialStart) {
  MachineSpec spec = BaseMachine();
  spec.start_state = 100;  // final
  const Analysis analysis = Analyze(spec);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kTrivialStart);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->state, 100);
}

TEST(NegativeTest, RST016TapeCount) {
  AnalyzeOptions options;
  options.declared = core::StClass("ST(4, 0, 1)", core::ConstScans(4),
                                   core::ConstSpace(0), 1);
  const Analysis analysis =
      Analyze(machine::zoo::TwoFieldEquality(), options);
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kTapeCount);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

// ---------------------------------------------------------------------
// NLM adapter negatives (RST013, RST014, plus shared codes).
// ---------------------------------------------------------------------

/// Minimal configurable list machine for adapter tests: walks the input
/// list right and halts at the end.
class ProbeProgram : public listmachine::ListMachineProgram {
 public:
  std::size_t num_lists() const override { return 2; }
  std::size_t num_choices() const override { return num_choices_; }
  listmachine::StateId initial_state() const override { return 0; }
  bool IsFinal(listmachine::StateId state) const override {
    return state >= 10;
  }
  bool IsAccepting(listmachine::StateId state) const override {
    return accept_nonfinal_ ? state == 5 : state == 10;
  }
  listmachine::TransitionResult Step(
      listmachine::StateId state,
      const std::vector<const listmachine::CellContent*>& reads,
      listmachine::ChoiceId choice) const override {
    (void)reads;
    (void)choice;
    listmachine::TransitionResult tr;
    tr.next_state = state >= 2 ? 10 : state + 1;
    tr.movements.assign(break_arity_ ? 1 : 2,
                        listmachine::Movement{
                            break_direction_ ? 0 : +1, true});
    return tr;
  }

  std::size_t num_choices_ = 1;
  bool accept_nonfinal_ = false;
  bool break_arity_ = false;
  bool break_direction_ = false;
};

NlmCheckOptions ProbeOptions() {
  NlmCheckOptions options;
  options.sample_inputs = {{1, 2, 3}};
  return options;
}

TEST(NlmAdapterTest, RST013NoChoices) {
  ProbeProgram program;
  program.num_choices_ = 0;
  const Diagnostics diag = CheckListMachine(program, ProbeOptions());
  const Diagnostic* d = diag.FindCode(Code::kNoChoices);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(NlmAdapterTest, RST014MovementArity) {
  ProbeProgram program;
  program.break_arity_ = true;
  const Diagnostics diag = CheckListMachine(program, ProbeOptions());
  const Diagnostic* d = diag.FindCode(Code::kBadMovement);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->state, 0);  // found at the very first probed step
}

TEST(NlmAdapterTest, RST014HeadDirection) {
  ProbeProgram program;
  program.break_direction_ = true;
  const Diagnostics diag = CheckListMachine(program, ProbeOptions());
  const Diagnostic* d = diag.FindCode(Code::kBadMovement);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(NlmAdapterTest, RST005AcceptingNotFinalProbed) {
  ProbeProgram program;
  program.accept_nonfinal_ = true;
  const Diagnostics diag = CheckListMachine(program, ProbeOptions());
  const Diagnostic* d = diag.FindCode(Code::kAcceptingNotFinal);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, 5);
}

TEST(NlmAdapterTest, RST010ObservedScanBound) {
  // The zig-zag machine performs reversals; r(N) = 1 is refuted by the
  // dynamic probe.
  listmachine::ZigZagMachine program(/*t=*/2, /*num_sweeps=*/3, /*m=*/4);
  NlmCheckOptions options;
  options.sample_inputs = {{1, 2, 3, 4}};
  options.declared = core::StClass("ST(1, 0, 2)", core::ConstScans(1),
                                   core::ConstSpace(0), 2);
  const Diagnostics diag = CheckListMachine(program, options);
  const Diagnostic* d = diag.FindCode(Code::kReversalBound);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

// ---------------------------------------------------------------------
// Runtime certificate hook (RST015) and the builder's eager validation.
// ---------------------------------------------------------------------

TEST(CertificateTest, RST015FiresOnViolation) {
  StaticResources certified;
  certified.external_reversals = {BoundExpr::Constant(0)};
  machine::RunCosts costs;
  costs.external_reversals = {3};
  const Status status =
      CheckCostsAgainstCertificate(costs, certified, /*n=*/16);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("RST015"), std::string::npos);
}

TEST(CertificateTest, RST015FiresOnInternalSpaceViolation) {
  StaticResources certified;
  certified.total_internal_cells = BoundExpr::Constant(2);
  machine::RunCosts costs;
  costs.internal_space = 5;
  const Status status =
      CheckCostsAgainstCertificate(costs, certified, /*n=*/16);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("RST015"), std::string::npos);
}

TEST(CertificateTest, UnboundedCertificateAdmitsEverything) {
  StaticResources certified;
  certified.external_reversals = {BoundExpr::Unbounded()};
  certified.total_internal_cells = BoundExpr::Unbounded();
  machine::RunCosts costs;
  costs.external_reversals = {1'000'000};
  costs.internal_space = 1'000'000;
  EXPECT_TRUE(CheckCostsAgainstCertificate(costs, certified, 16).ok());
}

TEST(CertificateTest, SymbolicCertificateScalesWithRunSize) {
  // A log-space certificate admits a 2logN-cell run at large N but
  // rejects the same bill at a tiny N — the certificate is a function
  // of the run's own input size now, not of one baked-in check_n.
  StaticResources certified;
  certified.total_internal_cells = BoundExpr::LogN(2);
  machine::RunCosts costs;
  costs.internal_space = 20;
  EXPECT_TRUE(
      CheckCostsAgainstCertificate(costs, certified, std::size_t{1} << 10)
          .ok());
  const Status small_n =
      CheckCostsAgainstCertificate(costs, certified, /*n=*/16);
  EXPECT_FALSE(small_n.ok());
  EXPECT_NE(small_n.message().find("RST015"), std::string::npos);
}

TEST(BuilderTest, GoValidatesArityEagerly) {
  MachineBuilder b(2, 0);
  b.SetStart(0).AddFinal(100, true);
  b.On(0, "01").Go(100, "0", {Move::kStay, Move::kStay});  // short write
  EXPECT_FALSE(b.status().ok());
  EXPECT_NE(b.status().message().find("RST001"), std::string::npos);
  EXPECT_NE(b.status().message().find("state 0"), std::string::npos);
  EXPECT_NE(b.status().message().find("key \"01\""), std::string::npos);
  EXPECT_FALSE(b.BuildChecked().ok());
}

TEST(BuilderTest, OnValidatesKeyArityEagerly) {
  MachineBuilder b(2, 0);
  b.SetStart(0).AddFinal(100, true);
  b.On(0, "0").Go(100, "00", {Move::kStay, Move::kStay});
  EXPECT_FALSE(b.status().ok());
  EXPECT_NE(b.status().message().find("RST002"), std::string::npos);
}

TEST(BuilderTest, CleanBuilderChecksOut) {
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(100, true);
  b.On(0, "1").Go(100, "1", {Move::kStay});
  EXPECT_TRUE(b.status().ok()) << b.status();
  EXPECT_TRUE(b.BuildChecked().ok());
}

// ---------------------------------------------------------------------
// Property test: analyzer-certified bounds are never exceeded by 1k
// random runs of each shipped machine (the soundness of the phase
// analysis, exercised end to end).
// ---------------------------------------------------------------------

TEST(CertificateProperty, RandomRunsNeverExceedStaticBounds) {
  Rng rng(20260805);
  for (const CheckedMachine& entry : AllCheckedMachines()) {
    const Analysis analysis = Analyze(entry.spec, entry.options);
    ASSERT_TRUE(analysis.clean()) << entry.name;
    auto tm = machine::TuringMachine::Create(entry.spec);
    ASSERT_TRUE(tm.ok()) << entry.name << ": " << tm.status();

    // Random inputs over the machine's own alphabet, plus the curated
    // samples; 1000 runs per machine.
    const std::string alphabet =
        entry.options.alphabet.value_or("01") + "#";
    for (int run = 0; run < 1000; ++run) {
      std::string input;
      if (run < static_cast<int>(entry.sample_inputs.size())) {
        input = entry.sample_inputs[static_cast<std::size_t>(run)];
      } else {
        const std::size_t len = rng.UniformBelow(13);
        for (std::size_t i = 0; i < len; ++i) {
          input += alphabet[rng.UniformBelow(alphabet.size())];
        }
      }
      const machine::RunResult result =
          tm.value().RunRandomized(input, rng, 5000);
      const Status certified = CheckCostsAgainstCertificate(
          result.costs, analysis.resources, input.size());
      EXPECT_TRUE(certified.ok())
          << entry.name << " on \"" << input << "\": " << certified;
    }
  }
}

// Static bounds agree with the hand-derived reversal counts of the zoo
// comments (regression against analyzer drift).
TEST(StaticBoundsTest, MatchHandDerivedZooBounds) {
  struct Expected {
    const char* name;
    std::uint64_t scan_bound;
  };
  const std::vector<Expected> expected = {
      {"first-symbol-one", 1}, {"even-ones", 1},
      {"fair-coin", 1},        {"biased-coin", 1},
      {"two-field-equality", 3},
      {"guess-first-bit", 1},  {"palindrome", 4},
      {"balanced-zeros-ones", 1},
      {"theorem8a-fingerprint", 2},
      {"theorem8a-batch-fingerprint", 2},
      {"theorem8b-guess-verify", 1},
  };
  const std::vector<CheckedMachine> machines = AllCheckedMachines();
  ASSERT_EQ(machines.size(), expected.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    EXPECT_EQ(machines[i].name, expected[i].name);
    const Analysis analysis = Analyze(machines[i].spec, machines[i].options);
    ASSERT_TRUE(analysis.resources.scan_bound.IsConstant())
        << machines[i].name << ": "
        << analysis.resources.scan_bound.ToString();
    EXPECT_EQ(analysis.resources.scan_bound.ConstantValue(),
              expected[i].scan_bound)
        << machines[i].name;
  }
}

}  // namespace
}  // namespace rstlab::check
