#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "problems/generators.h"
#include "problems/reference.h"
#include "sorting/deciders.h"
#include "sorting/merge_sort.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "util/random.h"

namespace rstlab::sorting {
namespace {

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string out;
  for (const auto& f : fields) {
    out += f;
    out += '#';
  }
  return out;
}

std::vector<std::string> TapeFields(stmodel::StContext& ctx,
                                    std::size_t index) {
  tape::Tape& t = ctx.tape(index);
  t.Seek(0);
  std::vector<std::string> fields;
  while (!stmodel::AtEnd(t)) fields.push_back(stmodel::ReadField(t));
  return fields;
}

// ---------------------------------------------------------------------
// Merge sort
// ---------------------------------------------------------------------

class MergeSortTest
    : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(MergeSortTest, SortsLikeStdSort) {
  std::vector<std::string> fields = GetParam();
  stmodel::StContext ctx(3);
  ctx.LoadInput(JoinFields(fields));
  SortStats stats;
  Status status = SortFieldsOnTapes(ctx, 0, 1, 2, &stats);
  ASSERT_TRUE(status.ok()) << status;
  std::sort(fields.begin(), fields.end());
  EXPECT_EQ(TapeFields(ctx, 0), fields);
  EXPECT_EQ(stats.num_fields, GetParam().size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MergeSortTest,
    ::testing::Values(
        std::vector<std::string>{},
        std::vector<std::string>{"1"},
        std::vector<std::string>{"1", "0"},
        std::vector<std::string>{"0", "1"},
        std::vector<std::string>{"10", "01", "11", "00"},
        std::vector<std::string>{"1", "1", "1"},
        std::vector<std::string>{"01", "0", "011", "0011", "0"},
        std::vector<std::string>{"111", "110", "101", "100", "011",
                                 "010", "001", "000"},
        std::vector<std::string>{"0101", "0101", "1010", "1010",
                                 "0101"}));

class MergeSortRandomTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(MergeSortRandomTest, SortsRandomInputs) {
  Rng rng(GetParam());
  std::vector<std::string> fields;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    fields.push_back(BitString::Random(8, rng).ToString());
  }
  stmodel::StContext ctx(3);
  ctx.LoadInput(JoinFields(fields));
  SortStats stats;
  ASSERT_TRUE(SortFieldsOnTapes(ctx, 0, 1, 2, &stats).ok());
  std::sort(fields.begin(), fields.end());
  EXPECT_EQ(TapeFields(ctx, 0), fields);
  // ceil(log2(m)) passes.
  if (GetParam() > 1) {
    EXPECT_EQ(stats.passes,
              static_cast<std::size_t>(std::ceil(
                  std::log2(static_cast<double>(GetParam())))));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSortRandomTest,
                         ::testing::Values(2, 3, 7, 16, 33, 100, 255,
                                           256, 500));

TEST(MergeSortTest, ReversalsGrowLogarithmically) {
  // Doubling the field count adds a constant number of reversals.
  std::vector<std::uint64_t> scans;
  Rng rng(3);
  for (std::size_t m : {64u, 128u, 256u, 512u}) {
    std::vector<std::string> fields;
    for (std::size_t i = 0; i < m; ++i) {
      fields.push_back(BitString::Random(16, rng).ToString());
    }
    stmodel::StContext ctx(3);
    ctx.LoadInput(JoinFields(fields));
    ASSERT_TRUE(SortFieldsOnTapes(ctx, 0, 1, 2).ok());
    scans.push_back(ctx.Report().scan_bound);
  }
  for (std::size_t i = 1; i < scans.size(); ++i) {
    const std::uint64_t delta = scans[i] - scans[i - 1];
    EXPECT_GE(delta, 1u);
    EXPECT_LE(delta, 16u);  // constant per doubling (~6 per extra pass)
  }
  // And consecutive deltas are equal: the signature of c*log N growth.
  EXPECT_EQ(scans[2] - scans[1], scans[1] - scans[0]);
  EXPECT_EQ(scans[3] - scans[2], scans[2] - scans[1]);
}

TEST(MergeSortTest, StableOnTies) {
  // Our WriteField merge prefers reader A on ties; with equal values the
  // output is simply all of them.
  stmodel::StContext ctx(3);
  ctx.LoadInput("1#1#1#1#1#");
  ASSERT_TRUE(SortFieldsOnTapes(ctx, 0, 1, 2).ok());
  EXPECT_EQ(TapeFields(ctx, 0),
            (std::vector<std::string>{"1", "1", "1", "1", "1"}));
}

TEST(MergeSortTest, RejectsBadTapeArguments) {
  stmodel::StContext ctx(3);
  ctx.LoadInput("1#");
  EXPECT_FALSE(SortFieldsOnTapes(ctx, 0, 0, 1).ok());
  EXPECT_FALSE(SortFieldsOnTapes(ctx, 0, 1, 5).ok());
}


class KWayMergeSortTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KWayMergeSortTest, SortsCorrectlyForEveryK) {
  const std::size_t k = GetParam();
  Rng rng(100 + k);
  for (std::size_t m : {0u, 1u, 2u, 17u, 64u, 200u}) {
    std::vector<std::string> fields;
    for (std::size_t i = 0; i < m; ++i) {
      fields.push_back(BitString::Random(10, rng).ToString());
    }
    stmodel::StContext ctx(1 + k);
    ctx.LoadInput(JoinFields(fields));
    std::vector<std::size_t> aux;
    for (std::size_t i = 1; i <= k; ++i) aux.push_back(i);
    SortStats stats;
    ASSERT_TRUE(SortFieldsOnTapesKWay(ctx, 0, aux, &stats).ok());
    std::sort(fields.begin(), fields.end());
    EXPECT_EQ(TapeFields(ctx, 0), fields) << "k=" << k << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, KWayMergeSortTest,
                         ::testing::Values(2, 3, 4, 6));

TEST(KWayMergeSortTest, MoreTapesFewerPasses) {
  Rng rng(7);
  std::vector<std::string> fields;
  for (std::size_t i = 0; i < 256; ++i) {
    fields.push_back(BitString::Random(10, rng).ToString());
  }
  std::vector<std::size_t> passes;
  std::vector<std::uint64_t> scans;
  for (std::size_t k : {2u, 4u, 8u}) {
    stmodel::StContext ctx(1 + k);
    ctx.LoadInput(JoinFields(fields));
    std::vector<std::size_t> aux;
    for (std::size_t i = 1; i <= k; ++i) aux.push_back(i);
    SortStats stats;
    ASSERT_TRUE(SortFieldsOnTapesKWay(ctx, 0, aux, &stats).ok());
    passes.push_back(stats.passes);
    scans.push_back(ctx.Report().scan_bound);
  }
  // ceil(log_k 256): 8, 4, 3.
  EXPECT_EQ(passes[0], 8u);
  EXPECT_EQ(passes[1], 4u);
  EXPECT_EQ(passes[2], 3u);
  // Passes fall with k, but the model's r sums reversals over ALL
  // tapes (Definition 1), and each pass rewinds every aux tape — so
  // the total scan bill is non-monotone in k: k = 4 beats k = 2, while
  // k = 8 pays more rewinds than its 3 passes save. A measured
  // trade-off the model's cost definition makes visible.
  EXPECT_GT(scans[0], scans[1]);
  EXPECT_LT(scans[1], scans[2]);
}

TEST(KWayMergeSortTest, RejectsBadArguments) {
  stmodel::StContext ctx(3);
  ctx.LoadInput("1#");
  EXPECT_FALSE(SortFieldsOnTapesKWay(ctx, 0, {1}, nullptr).ok());
  EXPECT_FALSE(SortFieldsOnTapesKWay(ctx, 0, {0, 1}, nullptr).ok());
  EXPECT_FALSE(SortFieldsOnTapesKWay(ctx, 0, {1, 9}, nullptr).ok());
}

// ---------------------------------------------------------------------
// Deciders (Corollary 7 upper bound)
// ---------------------------------------------------------------------

class DeciderAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeciderAgreementTest, AgreesWithReferenceOnAllProblems) {
  Rng rng(GetParam());
  std::vector<problems::Instance> instances = {
      problems::EqualMultisets(8, 10, rng),
      problems::PerturbedMultisets(8, 10, 1, rng),
      problems::SortedPair(8, 10, rng),
      problems::MisorderedPair(8, 10, rng),
      problems::EqualSets(8, 10, rng),
  };
  // Also a set-equal but multiset-unequal instance.
  {
    problems::Instance inst;
    const BitString a = BitString::Random(10, rng);
    const BitString b = BitString::Random(10, rng);
    inst.first = {a, a, b};
    inst.second = {a, b, b};
    instances.push_back(inst);
  }
  for (const auto& inst : instances) {
    for (problems::Problem problem :
         {problems::Problem::kSetEquality,
          problems::Problem::kMultisetEquality,
          problems::Problem::kCheckSort}) {
      stmodel::StContext ctx(kDeciderTapes);
      ctx.LoadInput(inst.Encode());
      Result<bool> decision = DecideOnTapes(problem, ctx);
      ASSERT_TRUE(decision.ok()) << decision.status();
      EXPECT_EQ(decision.value(), problems::RefDecide(problem, inst))
          << ProblemName(problem) << " on " << inst.Encode();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeciderAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DeciderTest, EmptyInstanceIsYes) {
  stmodel::StContext ctx(kDeciderTapes);
  ctx.LoadInput("");
  Result<bool> decision =
      DecideOnTapes(problems::Problem::kSetEquality, ctx);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision.value());
}

TEST(DeciderTest, ScanBoundGrowsLogarithmically) {
  Rng rng(5);
  std::vector<double> ns;
  std::vector<double> scans;
  for (std::size_t m : {16u, 64u, 256u, 1024u}) {
    problems::Instance inst = problems::EqualMultisets(m, 16, rng);
    stmodel::StContext ctx(kDeciderTapes);
    ctx.LoadInput(inst.Encode());
    ASSERT_TRUE(
        DecideOnTapes(problems::Problem::kMultisetEquality, ctx).ok());
    ns.push_back(static_cast<double>(inst.N()));
    scans.push_back(static_cast<double>(ctx.Report().scan_bound));
  }
  // r(N) = Theta(log N): scans per quadrupling of m grow by a constant.
  const double d1 = scans[1] - scans[0];
  const double d2 = scans[2] - scans[1];
  const double d3 = scans[3] - scans[2];
  EXPECT_NEAR(d2, d1, 6.0);
  EXPECT_NEAR(d3, d2, 6.0);
  EXPECT_LT(scans.back(), 30 * std::log2(ns.back()));
}

TEST(DeciderTest, RequiresEnoughTapes) {
  stmodel::StContext ctx(3);
  ctx.LoadInput("0#1#");
  EXPECT_FALSE(
      DecideOnTapes(problems::Problem::kSetEquality, ctx).ok());
}

TEST(DeciderTest, RejectsOddFieldCount) {
  stmodel::StContext ctx(kDeciderTapes);
  ctx.LoadInput("0#1#0#");
  EXPECT_FALSE(
      DecideOnTapes(problems::Problem::kSetEquality, ctx).ok());
}

// ---------------------------------------------------------------------
// The sorting function (Corollary 10 upper-bound mechanics)
// ---------------------------------------------------------------------

TEST(SortInputTest, ProducesSortedCopyOnTapeOne) {
  Rng rng(9);
  problems::Instance inst = problems::EqualMultisets(16, 8, rng);
  // Use only the first half as the sort input.
  std::string input;
  std::vector<std::string> fields;
  for (const auto& v : inst.first) {
    fields.push_back(v.ToString());
    input += v.ToString();
    input += '#';
  }
  stmodel::StContext ctx(kDeciderTapes);
  ctx.LoadInput(input);
  ASSERT_TRUE(SortInputToTape(ctx).ok());
  std::sort(fields.begin(), fields.end());
  EXPECT_EQ(TapeFields(ctx, 1), fields);
}

}  // namespace
}  // namespace rstlab::sorting
