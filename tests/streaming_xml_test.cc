#include <gtest/gtest.h>

#include "problems/generators.h"
#include "problems/reference.h"
#include "query/streaming_xml.h"
#include "query/xml.h"
#include "query/xml_reduction.h"
#include "query/xpath.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "util/random.h"

namespace rstlab::query {
namespace {

std::string EncodeAsDocument(const problems::Instance& inst) {
  return SerializeXml(*EncodeSetInstanceAsXml(inst));
}

TEST(ExtractSetValuesTest, SpoolsValuesInOrder) {
  problems::Instance inst;
  inst.first = {BitString::FromString("01"), BitString::FromString("10")};
  inst.second = {BitString::FromString("11")};
  stmodel::StContext ctx(kStreamingXmlTapes);
  ctx.LoadInput(EncodeAsDocument(inst));
  std::size_t count_x = 0;
  std::size_t count_y = 0;
  ASSERT_TRUE(ExtractSetValues(ctx, 1, 2, &count_x, &count_y).ok());
  EXPECT_EQ(count_x, 2u);
  EXPECT_EQ(count_y, 1u);
  ctx.tape(1).Seek(0);
  EXPECT_EQ(stmodel::ReadField(ctx.tape(1)), "01");
  EXPECT_EQ(stmodel::ReadField(ctx.tape(1)), "10");
  ctx.tape(2).Seek(0);
  EXPECT_EQ(stmodel::ReadField(ctx.tape(2)), "11");
}

TEST(ExtractSetValuesTest, SingleForwardScanOfTheDocument) {
  Rng rng(5);
  problems::Instance inst = problems::EqualSets(16, 8, rng);
  stmodel::StContext ctx(kStreamingXmlTapes);
  ctx.LoadInput(EncodeAsDocument(inst));
  ASSERT_TRUE(ExtractSetValues(ctx, 1, 2, nullptr, nullptr).ok());
  EXPECT_EQ(ctx.tape(0).reversals(), 0u);  // one forward pass
}

TEST(ExtractSetValuesTest, RejectsMalformedDocuments) {
  stmodel::StContext ctx(kStreamingXmlTapes);
  ctx.LoadInput("<instance><set1><item><string>01</string>");
  EXPECT_FALSE(ExtractSetValues(ctx, 1, 2, nullptr, nullptr).ok());
  ctx.LoadInput("<instance>junk</instance>");
  EXPECT_FALSE(ExtractSetValues(ctx, 1, 2, nullptr, nullptr).ok());
  ctx.LoadInput("<instance><string>01</string></instance>");
  EXPECT_FALSE(ExtractSetValues(ctx, 1, 2, nullptr, nullptr).ok());
}

class StreamingXmlAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingXmlAgreementTest, FilterAgreesWithDomEvaluator) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    problems::Instance inst =
        trial % 2 == 0 ? problems::EqualSets(8, 8, rng)
                       : problems::PerturbedMultisets(8, 8, 1, rng);
    stmodel::StContext ctx(kStreamingXmlTapes);
    ctx.LoadInput(EncodeAsDocument(inst));
    Result<bool> streamed = FilterPaperXPathOnTapes(ctx);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(streamed.value(), PaperXPathSelects(inst));
  }
}

TEST_P(StreamingXmlAgreementTest, XQueryAgreesWithDomEvaluator) {
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 10; ++trial) {
    problems::Instance inst =
        trial % 2 == 0 ? problems::EqualSets(8, 8, rng)
                       : problems::PerturbedMultisets(8, 8, 1, rng);
    stmodel::StContext ctx(kStreamingXmlTapes);
    ctx.LoadInput(EncodeAsDocument(inst));
    Result<bool> streamed = EvaluatePaperXQueryOnTapes(ctx);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(streamed.value(), problems::RefSetEquality(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingXmlAgreementTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(StreamingXmlTest, MultisetsWithEqualSetsAccepted) {
  // Set semantics: duplicates are invisible to the XQuery query.
  problems::Instance inst;
  inst.first = {BitString::FromString("01"), BitString::FromString("01"),
                BitString::FromString("10")};
  inst.second = {BitString::FromString("10"),
                 BitString::FromString("01"),
                 BitString::FromString("10")};
  stmodel::StContext ctx(kStreamingXmlTapes);
  ctx.LoadInput(EncodeAsDocument(inst));
  Result<bool> streamed = EvaluatePaperXQueryOnTapes(ctx);
  ASSERT_TRUE(streamed.ok());
  EXPECT_TRUE(streamed.value());
}

TEST(StreamingXmlTest, ScanBoundGrowsLogarithmically) {
  // The upper-bound complement to Theorem 13's lower bound: with
  // external tapes, filtering takes Theta(log N) scans.
  Rng rng(11);
  std::vector<std::uint64_t> scans;
  for (std::size_t m : {32u, 128u, 512u}) {
    problems::Instance inst = problems::EqualSets(m, 12, rng);
    stmodel::StContext ctx(kStreamingXmlTapes);
    ctx.LoadInput(EncodeAsDocument(inst));
    ASSERT_TRUE(FilterPaperXPathOnTapes(ctx).ok());
    scans.push_back(ctx.Report().scan_bound);
  }
  EXPECT_EQ(scans[1] - scans[0], scans[2] - scans[1]);
  EXPECT_LE(scans[1] - scans[0], 60u);
}

TEST(StreamingXmlTest, EmptySetsAreEqualAndSubset) {
  problems::Instance empty;
  stmodel::StContext ctx(kStreamingXmlTapes);
  ctx.LoadInput(EncodeAsDocument(empty));
  Result<bool> filter = FilterPaperXPathOnTapes(ctx);
  ASSERT_TRUE(filter.ok());
  EXPECT_FALSE(filter.value());  // nothing to select

  stmodel::StContext ctx2(kStreamingXmlTapes);
  ctx2.LoadInput(EncodeAsDocument(empty));
  Result<bool> query = EvaluatePaperXQueryOnTapes(ctx2);
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query.value());
}


class XmlEncoderOnTapesTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlEncoderOnTapesTest, MatchesHostEncoder) {
  Rng rng(GetParam());
  for (std::size_t m : {0u, 1u, 4u, 16u}) {
    problems::Instance inst = problems::EqualMultisets(m, 8, rng);
    stmodel::StContext ctx(2);
    ctx.LoadInput(inst.Encode());
    ASSERT_TRUE(EncodeInstanceAsXmlOnTapes(ctx).ok());
    const std::string expected = EncodeAsDocument(inst);
    EXPECT_EQ(ctx.tape(1).contents().substr(0, expected.size()),
              expected);
    // Constant scans (paper Section 4: "a constant number of
    // sequential scans ... and two external memory tapes").
    EXPECT_LE(ctx.Report().scan_bound, 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlEncoderOnTapesTest,
                         ::testing::Values(1, 2, 3));

TEST(XmlEncoderOnTapesTest, RoundTripsThroughTheStreamingFilter) {
  // instance -> XML (on tapes) -> XPath filter (on tapes): the full
  // streaming pipeline of Theorem 13's setup.
  Rng rng(5);
  problems::Instance inst = problems::PerturbedMultisets(8, 8, 1, rng);
  stmodel::StContext ectx(2);
  ectx.LoadInput(inst.Encode());
  ASSERT_TRUE(EncodeInstanceAsXmlOnTapes(ectx).ok());
  const std::string doc = ectx.tape(1).contents().substr(
      0, EncodeAsDocument(inst).size());
  stmodel::StContext fctx(kStreamingXmlTapes);
  fctx.LoadInput(doc);
  Result<bool> filtered = FilterPaperXPathOnTapes(fctx);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered.value(), PaperXPathSelects(inst));
}

}  // namespace
}  // namespace rstlab::query
