#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "permutation/phi.h"
#include "permutation/sortedness.h"
#include "util/random.h"

namespace rstlab::permutation {
namespace {

/// Brute-force longest monotone (ascending or descending) subsequence,
/// O(2^m); ground truth for small m.
std::size_t BruteForceSortedness(const Permutation& perm) {
  const std::size_t m = perm.size();
  std::size_t best = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    std::vector<std::size_t> sub;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::size_t{1} << i)) sub.push_back(perm[i]);
    }
    const bool asc = std::is_sorted(sub.begin(), sub.end());
    const bool desc = std::is_sorted(sub.rbegin(), sub.rend());
    if (asc || desc) best = std::max(best, sub.size());
  }
  return best;
}

TEST(SortednessTest, IsPermutationDetectsValidity) {
  EXPECT_TRUE(IsPermutation({0, 1, 2}));
  EXPECT_TRUE(IsPermutation({2, 0, 1}));
  EXPECT_TRUE(IsPermutation({}));
  EXPECT_FALSE(IsPermutation({0, 0, 1}));
  EXPECT_FALSE(IsPermutation({0, 3, 1}));
}

TEST(SortednessTest, LisKnownCases) {
  EXPECT_EQ(LongestIncreasingSubsequence({}), 0u);
  EXPECT_EQ(LongestIncreasingSubsequence({5}), 1u);
  EXPECT_EQ(LongestIncreasingSubsequence({1, 2, 3, 4}), 4u);
  EXPECT_EQ(LongestIncreasingSubsequence({4, 3, 2, 1}), 1u);
  EXPECT_EQ(LongestIncreasingSubsequence({3, 1, 2, 5, 4}), 3u);
}

TEST(SortednessTest, IdentityHasFullSortedness) {
  EXPECT_EQ(Sortedness(Identity(16)), 16u);
}

TEST(SortednessTest, ReversalHasFullSortedness) {
  Permutation rev(10);
  for (std::size_t i = 0; i < 10; ++i) rev[i] = 9 - i;
  EXPECT_EQ(Sortedness(rev), 10u);  // descending run counts too
}

class SortednessBruteForceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SortednessBruteForceTest, MatchesBruteForce) {
  Rng rng(GetParam());
  for (std::size_t m : {1u, 2u, 3u, 5u, 8u, 10u, 12u}) {
    Permutation perm = RandomPermutation(m, rng);
    EXPECT_EQ(Sortedness(perm), BruteForceSortedness(perm))
        << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortednessBruteForceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SortednessTest, InverseIsInverse) {
  Rng rng(11);
  Permutation perm = RandomPermutation(20, rng);
  Permutation inv = Inverse(perm);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(inv[perm[i]], i);
    EXPECT_EQ(perm[inv[i]], i);
  }
}

TEST(PhiTest, ReverseBits) {
  EXPECT_EQ(ReverseBits(0b001, 3), 0b100u);
  EXPECT_EQ(ReverseBits(0b110, 3), 0b011u);
  EXPECT_EQ(ReverseBits(0b1, 1), 0b1u);
  EXPECT_EQ(ReverseBits(0, 4), 0u);
}

TEST(PhiTest, BitReversalIsPermutationAndInvolution) {
  for (std::size_t m : {2u, 4u, 8u, 16u, 64u}) {
    Permutation phi = BitReversalPermutation(m);
    EXPECT_TRUE(IsPermutation(phi));
    // Bit reversal is an involution: phi(phi(i)) == i.
    for (std::size_t i = 0; i < m; ++i) EXPECT_EQ(phi[phi[i]], i);
  }
}

// Remark 20: sortedness(phi_m) <= 2*sqrt(m) - 1.
class Remark20Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Remark20Test, BitReversalSortednessBound) {
  const std::size_t m = GetParam();
  Permutation phi = BitReversalPermutation(m);
  const double bound = 2.0 * std::sqrt(static_cast<double>(m)) - 1.0;
  EXPECT_LE(static_cast<double>(Sortedness(phi)), bound) << "m=" << m;
}

// (m = 2 is excluded: every 2-permutation has sortedness 2 > 2*sqrt(2)-1;
// Remark 20's bound is meaningful from m = 4 on.)
INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Remark20Test,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256,
                                           512, 1024, 4096, 16384));

TEST(Remark20Test, RandomPermutationSortednessAtLeastSqrt) {
  // Erdos-Szekeres: every permutation has sortedness >= sqrt(m).
  Rng rng(13);
  for (std::size_t m : {16u, 64u, 256u, 1024u}) {
    Permutation perm = RandomPermutation(m, rng);
    EXPECT_GE(static_cast<double>(Sortedness(perm)),
              std::sqrt(static_cast<double>(m)));
  }
}

TEST(Remark20Test, EveryPermutationSatisfiesErdosSzekeres) {
  // Exhaustive for m = 6: sortedness >= ceil(sqrt(6)) = 3 requires only
  // sortedness >= sqrt(m); check all 720 permutations.
  Permutation perm = Identity(6);
  do {
    EXPECT_GE(static_cast<double>(Sortedness(perm)), std::sqrt(6.0));
  } while (std::next_permutation(perm.begin(), perm.end()));
}

}  // namespace
}  // namespace rstlab::permutation
