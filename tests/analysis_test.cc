#include <gtest/gtest.h>

#include "listmachine/analysis.h"
#include "listmachine/machines.h"
#include "listmachine/skeleton.h"
#include "permutation/phi.h"
#include "util/random.h"

namespace rstlab::listmachine {
namespace {

std::vector<std::uint64_t> Iota(std::size_t count, std::uint64_t start) {
  std::vector<std::uint64_t> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = start + i;
  return v;
}

TEST(SaturatingPowTest, Values) {
  EXPECT_EQ(SaturatingPow(2, 10), 1024u);
  EXPECT_EQ(SaturatingPow(3, 0), 1u);
  EXPECT_EQ(SaturatingPow(0, 5), 0u);
  EXPECT_EQ(SaturatingPow(2, 100), ~std::uint64_t{0});  // saturates
}

// ---------------------------------------------------------------------
// Lemma 30 (growth) and Lemma 31 (run shape)
// ---------------------------------------------------------------------

class GrowthTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GrowthTest, WithinLemma30And31Bounds) {
  const auto [t, sweeps, m] = GetParam();
  ZigZagMachine machine(static_cast<std::size_t>(t),
                        static_cast<std::size_t>(sweeps),
                        static_cast<std::size_t>(m));
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic(
      Iota(static_cast<std::size_t>(m), 0), 1000000);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value().halted);

  GrowthCheck growth =
      CheckGrowth(run.value(), static_cast<std::size_t>(m));
  EXPECT_TRUE(growth.within_bounds)
      << "lists " << growth.measured_total_list_length << " vs "
      << growth.bound_total_list_length << ", cells "
      << growth.measured_max_cell_size << " vs "
      << growth.bound_max_cell_size;

  // k for ZigZag: sweeps * (m-1) interior states + finals; generous.
  const std::size_t k = static_cast<std::size_t>(sweeps * m + 2);
  RunShapeCheck shape =
      CheckRunShape(run.value(), static_cast<std::size_t>(m), k);
  EXPECT_TRUE(shape.within_bounds)
      << "length " << shape.run_length << " vs " << shape.bound_run_length;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GrowthTest,
    ::testing::Values(std::make_tuple(2, 1, 4), std::make_tuple(2, 2, 4),
                      std::make_tuple(2, 4, 8), std::make_tuple(3, 3, 6),
                      std::make_tuple(4, 2, 8),
                      std::make_tuple(3, 5, 16)));

TEST(Lemma32Test, LogBoundIsIndependentOfN) {
  // The bound depends on m, k, t, r only — recompute twice to make sure
  // it is well-defined and monotone in m and r.
  const double b1 = Lemma32LogBound(8, 20, 2, 3);
  const double b2 = Lemma32LogBound(16, 20, 2, 3);
  const double b3 = Lemma32LogBound(8, 20, 2, 4);
  EXPECT_GT(b1, 0.0);
  EXPECT_GT(b2, b1);
  EXPECT_GT(b3, b1);
}

// ---------------------------------------------------------------------
// Lemma 38 (merge lemma)
// ---------------------------------------------------------------------

class MergeLemmaTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeLemmaTest, ComparedCountWithinBound) {
  const std::size_t m = GetParam();
  // Run the reverse-compare machine on 2m inputs and check the
  // merge-lemma bound for the bit-reversal permutation.
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  std::vector<std::uint64_t> input(2 * m, 1);  // all equal: full run
  Result<ListMachineRun> run = exec.RunDeterministic(input, 100000);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value().halted);

  MergeLemmaCheck check = CheckMergeLemma(
      run.value(), permutation::BitReversalPermutation(m));
  EXPECT_TRUE(check.within_bounds)
      << check.compared_count << " > " << check.bound;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeLemmaTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(MergeLemmaTest, ZigZagWithinBound) {
  for (std::size_t sweeps : {1u, 2u, 3u}) {
    const std::size_t m = 8;
    ZigZagMachine machine(2, sweeps, 2 * m);
    ListMachineExecutor exec(&machine);
    Result<ListMachineRun> run =
        exec.RunDeterministic(Iota(2 * m, 0), 100000);
    ASSERT_TRUE(run.ok());
    MergeLemmaCheck check = CheckMergeLemma(
        run.value(), permutation::BitReversalPermutation(m));
    EXPECT_TRUE(check.within_bounds);
  }
}

// ---------------------------------------------------------------------
// Lemma 34 (composition) and the fooling-pair construction (the heart
// of Lemma 21 / experiment E8)
// ---------------------------------------------------------------------

TEST(CompositionTest, SwapOfUncomparedPositionsPreservesAcceptance) {
  const std::size_t m = 4;
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);

  // Two accepted inputs differing exactly at the never-compared
  // positions 0 and m (values v_0 = v'_0 in each).
  std::vector<std::uint64_t> v = {5, 1, 2, 3, 5, 3, 2, 1};
  std::vector<std::uint64_t> w = {9, 1, 2, 3, 9, 3, 2, 1};
  ASSERT_TRUE(ReverseCompareMachine::ReferencePredicate(v, m));
  ASSERT_TRUE(ReverseCompareMachine::ReferencePredicate(w, m));

  const std::vector<ChoiceId> choices(100, 0);
  CompositionOutcome outcome =
      TestComposition(exec, v, w, 0, m, choices, 1000);
  EXPECT_TRUE(outcome.preconditions_met);
  EXPECT_TRUE(outcome.prediction_holds);
  EXPECT_TRUE(outcome.accepted);

  // The composed input u = (5, ..., 9, ...) violates the reference
  // predicate (v_0 != v'_0) yet the machine accepts it: the fooling
  // input of Lemma 21, realized.
  EXPECT_FALSE(
      ReverseCompareMachine::ReferencePredicate(outcome.input_u, m));
  Result<ListMachineRun> fooled =
      exec.RunDeterministic(outcome.input_u, 1000);
  ASSERT_TRUE(fooled.ok());
  EXPECT_TRUE(fooled.value().accepted);
}

TEST(CompositionTest, DetectsComparedPositions) {
  // Positions m-1 and m+1 ARE compared by the machine; the
  // preconditions must fail for them when values differ there.
  const std::size_t m = 4;
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  std::vector<std::uint64_t> v = {5, 1, 2, 3, 5, 3, 2, 1};
  std::vector<std::uint64_t> w = v;
  w[m - 1] = 7;
  w[m + 1] = 7;
  const std::vector<ChoiceId> choices(100, 0);
  CompositionOutcome outcome =
      TestComposition(exec, v, w, m - 1, m + 1, choices, 1000);
  EXPECT_FALSE(outcome.preconditions_met);
}

TEST(CompositionTest, RandomizedSweep) {
  // Property sweep: for random value assignments agreeing except at
  // positions {0, m}, the composition lemma's conclusion always holds.
  Rng rng(17);
  const std::size_t m = 4;
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  const std::vector<ChoiceId> choices(100, 0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> v(2 * m);
    for (std::size_t j = 0; j < m; ++j) {
      v[j] = rng.UniformBelow(4);
      v[2 * m - j - 1] = v[j];  // wait: set the reverse pairs equal
    }
    // Build a predicate-satisfying base: v'_j = v_{m-j}.
    for (std::size_t j = 1; j < m; ++j) v[m + j] = v[m - j];
    v[m] = v[0];
    std::vector<std::uint64_t> w = v;
    w[0] = v[0] + 10;
    w[m] = v[m] + 10;
    CompositionOutcome outcome =
        TestComposition(exec, v, w, 0, m, choices, 1000);
    ASSERT_TRUE(outcome.preconditions_met);
    EXPECT_TRUE(outcome.prediction_holds);
  }
}

}  // namespace
}  // namespace rstlab::listmachine
