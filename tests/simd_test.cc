#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/simd.h"

namespace rstlab::simd {
namespace {

TEST(SimdLevelTest, LanesAndNames) {
  EXPECT_EQ(SimdLanes(SimdLevel::kScalar), 1u);
  EXPECT_EQ(SimdLanes(SimdLevel::kLanes4), 4u);
  EXPECT_EQ(SimdLanes(SimdLevel::kLanes8), 8u);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kLanes4), "lanes4");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kLanes8), "lanes8");
}

TEST(SimdLevelTest, ParseSpellings) {
  EXPECT_EQ(ParseSimdLevelName("off"), SimdLevel::kScalar);
  EXPECT_EQ(ParseSimdLevelName("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(ParseSimdLevelName("1"), SimdLevel::kScalar);
  EXPECT_EQ(ParseSimdLevelName("4"), SimdLevel::kLanes4);
  EXPECT_EQ(ParseSimdLevelName("lanes4"), SimdLevel::kLanes4);
  EXPECT_EQ(ParseSimdLevelName("8"), SimdLevel::kLanes8);
  EXPECT_EQ(ParseSimdLevelName("lanes8"), SimdLevel::kLanes8);
  // Unknown spellings and "auto" degrade to hardware detection, never
  // to an abort — a stale env var must not brick a bench run.
  EXPECT_EQ(ParseSimdLevelName("auto"), DetectSimdLevel());
  EXPECT_EQ(ParseSimdLevelName("bogus"), DetectSimdLevel());
}

TEST(SimdLevelTest, EnvResolution) {
  ASSERT_EQ(setenv("RSTLAB_SIMD", "off", 1), 0);
  EXPECT_EQ(ResolveSimdLevel(), SimdLevel::kScalar);
  ASSERT_EQ(setenv("RSTLAB_SIMD", "4", 1), 0);
  EXPECT_EQ(ResolveSimdLevel(), SimdLevel::kLanes4);
  ASSERT_EQ(unsetenv("RSTLAB_SIMD"), 0);
  EXPECT_EQ(ResolveSimdLevel(), DetectSimdLevel());
}

TEST(SimdLevelTest, ProcessOverrideWinsOverEnv) {
  ASSERT_EQ(setenv("RSTLAB_SIMD", "off", 1), 0);
  SetProcessSimdLevel(SimdLevel::kLanes8);
  EXPECT_EQ(ProcessSimdLevel(), SimdLevel::kLanes8);
  SetProcessSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ProcessSimdLevel(), SimdLevel::kScalar);
  ASSERT_EQ(unsetenv("RSTLAB_SIMD"), 0);
}

TEST(SimdLevelTest, ParseSimdFlagStripsArgv) {
  char prog[] = "bench";
  char flag[] = "--simd=4";
  char keep[] = "--benchmark_filter=all";
  char* argv[] = {prog, flag, keep, nullptr};
  int argc = 3;
  EXPECT_EQ(ParseSimdFlag(&argc, argv), SimdLevel::kLanes4);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=all");
  EXPECT_EQ(argv[2], nullptr);
  EXPECT_EQ(ProcessSimdLevel(), SimdLevel::kLanes4);
  SetProcessSimdLevel(SimdLevel::kScalar);
}

TEST(U64x2Test, ArithmeticPrimitives) {
  const std::uint64_t a_vals[2] = {5, (std::uint64_t{1} << 32) - 1};
  const std::uint64_t b_vals[2] = {7, 3};
  const U64x2 a = Load2(a_vals);
  const U64x2 b = Load2(b_vals);
  EXPECT_EQ(Lane0(Add(a, b)), 12u);
  EXPECT_EQ(Lane1(Add(a, b)), (std::uint64_t{1} << 32) + 2);
  EXPECT_EQ(Lane0(Sub(b, Dup(2))), 5u);
  EXPECT_EQ(Lane0(ShiftLeftOne(a)), 10u);
  EXPECT_EQ(Lane1(ShiftRight(a, 16)), 0xffffu);
  EXPECT_EQ(Lane0(And(a, Dup(1))), 1u);
  // Low-32 x low-32 full product: (2^32-1)*3 needs the full 64 bits.
  EXPECT_EQ(Lane1(MulLo32(a, b)), ((std::uint64_t{1} << 32) - 1) * 3);
}

TEST(U64x2Test, CondSubAndSelect) {
  const std::uint64_t v_vals[2] = {10, 3};
  const U64x2 v = Load2(v_vals);
  const U64x2 m = Dup(7);
  EXPECT_EQ(Lane0(CondSub(v, m)), 3u);  // 10 >= 7 subtracts
  EXPECT_EQ(Lane1(CondSub(v, m)), 3u);  // 3 < 7 unchanged
  const std::uint64_t c_vals[2] = {1, 0};
  const U64x2 picked = Select01(Load2(c_vals), Dup(111), Dup(222));
  EXPECT_EQ(Lane0(picked), 111u);
  EXPECT_EQ(Lane1(picked), 222u);
}

TEST(U64x2Test, ShoupMulmodAgainstReference) {
  // The exact 32-bit Shoup multiplication the batch kernels build on:
  // for w < p < 2^31, a < 2^32, one conditional subtraction of
  // a*w - ((a * floor(w<<32 / p)) >> 32) * p lands in [0, p).
  const std::uint64_t p = 2147483629;  // largest prime below 2^31
  std::uint64_t a = 1;
  std::uint64_t w = 912391239;
  const std::uint64_t wsh = (w << 32) / p;
  for (int i = 0; i < 2000; ++i) {
    a = (a * 2862933555777941757ULL + 3037000493ULL) % p;
    const std::uint64_t q = ((a * wsh) >> 32);
    std::uint64_t t = a * w - q * p;
    if (t >= p) t -= p;
    const unsigned __int128 exact =
        static_cast<unsigned __int128>(a) * w % p;
    ASSERT_EQ(t, static_cast<std::uint64_t>(exact)) << a;
  }
}

}  // namespace
}  // namespace rstlab::simd
