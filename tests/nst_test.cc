#include <gtest/gtest.h>

#include "nst/certificate.h"
#include "nst/paper_verifier.h"
#include "permutation/phi.h"
#include "problems/generators.h"
#include "problems/reference.h"
#include "stmodel/internal_arena.h"
#include "stmodel/st_context.h"
#include "util/random.h"

namespace rstlab::nst {
namespace {

using problems::Instance;
using problems::Problem;

Instance MakeInstance(const std::vector<std::string>& first,
                      const std::vector<std::string>& second) {
  Instance instance;
  for (const auto& v : first) {
    instance.first.push_back(BitString::FromString(v));
  }
  for (const auto& v : second) {
    instance.second.push_back(BitString::FromString(v));
  }
  return instance;
}

// ---------------------------------------------------------------------
// Host-level certificates
// ---------------------------------------------------------------------

TEST(CertificateTest, VerifyPermutationCertificate) {
  Instance inst = MakeInstance({"01", "10"}, {"10", "01"});
  Certificate good;
  good.pi = {1, 0};
  EXPECT_TRUE(
      VerifyCertificate(Problem::kMultisetEquality, inst, good));
  Certificate bad;
  bad.pi = {0, 1};
  EXPECT_FALSE(
      VerifyCertificate(Problem::kMultisetEquality, inst, bad));
  Certificate not_perm;
  not_perm.pi = {1, 1};
  EXPECT_FALSE(
      VerifyCertificate(Problem::kMultisetEquality, inst, not_perm));
}

TEST(CertificateTest, CheckSortNeedsSortedSecond) {
  Instance unsorted = MakeInstance({"01", "10"}, {"10", "01"});
  Certificate cert;
  cert.pi = {1, 0};
  EXPECT_FALSE(unsorted.second[0] < unsorted.second[1]);
  // Multiset-wise fine...
  EXPECT_TRUE(
      VerifyCertificate(Problem::kMultisetEquality, unsorted, cert));
  // ...but CHECK-SORT needs the second list ascending.
  EXPECT_FALSE(VerifyCertificate(Problem::kCheckSort, unsorted, cert));

  Instance sorted = MakeInstance({"10", "01"}, {"01", "10"});
  EXPECT_TRUE(VerifyCertificate(Problem::kCheckSort, sorted, cert));
}

TEST(CertificateTest, SetEqualityUsesMaps) {
  // {a, a, b} vs {b, a, a} as sets: alpha/beta need not be injective.
  Instance inst = MakeInstance({"00", "00", "11"}, {"11", "00", "00"});
  Certificate cert;
  cert.alpha = {1, 1, 0};
  cert.beta = {2, 0, 0};
  EXPECT_TRUE(VerifyCertificate(Problem::kSetEquality, inst, cert));
  cert.alpha = {0, 1, 0};  // v_0 = "00" mapped to "11": wrong
  EXPECT_FALSE(VerifyCertificate(Problem::kSetEquality, inst, cert));
}

class HonestCertificateTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HonestCertificateTest, FoundExactlyOnYesInstances) {
  Rng rng(GetParam());
  struct Case {
    Problem problem;
    Instance instance;
  };
  std::vector<Case> cases = {
      {Problem::kMultisetEquality, problems::EqualMultisets(8, 8, rng)},
      {Problem::kMultisetEquality,
       problems::PerturbedMultisets(8, 8, 1, rng)},
      {Problem::kCheckSort, problems::SortedPair(8, 8, rng)},
      {Problem::kCheckSort, problems::MisorderedPair(8, 8, rng)},
      {Problem::kSetEquality, problems::EqualSets(8, 8, rng)},
  };
  for (const Case& c : cases) {
    const bool yes = RefDecide(c.problem, c.instance);
    auto cert = FindHonestCertificate(c.problem, c.instance);
    EXPECT_EQ(cert.has_value(), yes);
    if (cert.has_value()) {
      EXPECT_TRUE(VerifyCertificate(c.problem, c.instance, *cert));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HonestCertificateTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Soundness + completeness, exhaustively over certificates for tiny m:
// a certificate exists iff the reference decider says yes.
class ExhaustiveCertificateTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustiveCertificateTest, ExistsIffYes) {
  Rng rng(GetParam());
  std::vector<Instance> instances = {
      problems::EqualMultisets(4, 6, rng),
      problems::PerturbedMultisets(4, 6, 1, rng),
      problems::SortedPair(4, 6, rng),
      problems::MisorderedPair(4, 6, rng),
      MakeInstance({"00", "00", "11", "01"}, {"11", "00", "01", "00"}),
      MakeInstance({"00", "00", "11", "01"}, {"11", "00", "01", "01"}),
  };
  for (const Instance& inst : instances) {
    for (Problem problem :
         {Problem::kMultisetEquality, Problem::kCheckSort,
          Problem::kSetEquality}) {
      EXPECT_EQ(ExistsAcceptingCertificate(problem, inst),
                RefDecide(problem, inst))
          << ProblemName(problem) << " on " << inst.Encode();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveCertificateTest,
                         ::testing::Values(10, 20, 30, 40));

// ---------------------------------------------------------------------
// The paper's tape-level verifier (Theorem 8(b))
// ---------------------------------------------------------------------

class PaperVerifierTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PaperVerifierTest, HonestCertificateAcceptedOnYes) {
  Rng rng(GetParam());
  struct Case {
    Problem problem;
    Instance instance;
  };
  std::vector<Case> cases = {
      {Problem::kMultisetEquality, problems::EqualMultisets(4, 6, rng)},
      {Problem::kCheckSort, problems::SortedPair(4, 6, rng)},
      {Problem::kSetEquality, problems::EqualSets(4, 6, rng)},
  };
  for (const Case& c : cases) {
    auto cert = FindHonestCertificate(c.problem, c.instance);
    ASSERT_TRUE(cert.has_value());
    stmodel::StContext ctx(3);
    ctx.LoadInput(c.instance.Encode());
    Result<NstRunResult> run =
        RunPaperVerifier(c.problem, c.instance, *cert, ctx);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_TRUE(run.value().accepted) << ProblemName(c.problem);

    // Constant scans, O(log N) internal memory.
    tape::ResourceReport report = ctx.Report();
    EXPECT_LE(report.scan_bound, 5u);
    EXPECT_LE(report.internal_space,
              64 * stmodel::BitsFor(ctx.input_size()));
  }
}

TEST_P(PaperVerifierTest, NoCertificateAcceptedOnNo) {
  Rng rng(GetParam() + 100);
  const std::size_t m = 3;
  Instance no_multiset = problems::PerturbedMultisets(m, 5, 1, rng);
  // Try every permutation certificate.
  permutation::Permutation pi = permutation::Identity(m);
  do {
    Certificate cert;
    cert.pi = pi;
    stmodel::StContext ctx(3);
    ctx.LoadInput(no_multiset.Encode());
    Result<NstRunResult> run = RunPaperVerifier(
        Problem::kMultisetEquality, no_multiset, cert, ctx);
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run.value().accepted);
  } while (std::next_permutation(pi.begin(), pi.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperVerifierTest,
                         ::testing::Values(1, 2, 3));

TEST(PaperVerifierTest, CheckSortRejectsUnsortedSecondList) {
  // Multiset-equal but unsorted: every permutation certificate must be
  // rejected for CHECK-SORT (the adjacent-pair sweep fires).
  Instance inst = MakeInstance({"01", "10"}, {"10", "01"});
  permutation::Permutation pi = permutation::Identity(2);
  do {
    Certificate cert;
    cert.pi = pi;
    stmodel::StContext ctx(3);
    ctx.LoadInput(inst.Encode());
    Result<NstRunResult> run =
        RunPaperVerifier(Problem::kCheckSort, inst, cert, ctx);
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run.value().accepted);
  } while (std::next_permutation(pi.begin(), pi.end()));
}

TEST(PaperVerifierTest, MalformedCertificateRejected) {
  Rng rng(7);
  Instance inst = problems::EqualMultisets(3, 5, rng);
  Certificate bad;
  bad.pi = {0, 1};  // wrong size
  stmodel::StContext ctx(3);
  ctx.LoadInput(inst.Encode());
  Result<NstRunResult> run =
      RunPaperVerifier(Problem::kMultisetEquality, inst, bad, ctx);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run.value().accepted);
}

TEST(PaperVerifierTest, CopyCountMatchesConstruction) {
  Rng rng(9);
  const std::size_t m = 3;
  const std::size_t n = 5;
  Instance inst = problems::EqualMultisets(m, n, rng);
  auto cert = FindHonestCertificate(Problem::kMultisetEquality, inst);
  ASSERT_TRUE(cert.has_value());
  stmodel::StContext ctx(3);
  ctx.LoadInput(inst.Encode());
  Result<NstRunResult> run =
      RunPaperVerifier(Problem::kMultisetEquality, inst, *cert, ctx);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().accepted);
  // n*m bit-check copies plus m injectivity copies.
  EXPECT_EQ(run.value().copies_written, n * m + m);
  // |u| = m index fields + the encoded instance.
  EXPECT_GT(run.value().copy_length, inst.N());
}

TEST(PaperVerifierTest, EmptyInstanceAccepted) {
  Instance empty;
  Certificate cert;
  stmodel::StContext ctx(3);
  ctx.LoadInput("");
  Result<NstRunResult> run =
      RunPaperVerifier(Problem::kMultisetEquality, empty, cert, ctx);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().accepted);
}

}  // namespace
}  // namespace rstlab::nst
