// The symbolic bound engine: BoundExpr algebra and saturation, growth
// inference over the shipped registry across the N sweep, the two new
// diagnostics (RST017 shadowed rule, RST018 dominance witness), and
// the N-parametric k-way sort certificate.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/analyzer.h"
#include "check/bound_expr.h"
#include "check/diagnostics.h"
#include "check/growth.h"
#include "check/registry.h"
#include "check/sort_certificate.h"
#include "core/complexity.h"
#include "machine/machine_builder.h"
#include "tape/resource_meter.h"
#include "util/random.h"

namespace rstlab::check {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

using machine::MachineBuilder;
using machine::MachineSpec;
using machine::Move;

// ---------------------------------------------------------------------
// BoundExpr algebra.
// ---------------------------------------------------------------------

TEST(BoundExprTest, ConstantArithmetic) {
  const BoundExpr five = BoundExpr::Constant(2) + BoundExpr::Constant(3);
  EXPECT_TRUE(five.IsConstant());
  EXPECT_EQ(five.ConstantValue(), 5u);
  const BoundExpr ten = five * BoundExpr::Constant(2);
  EXPECT_EQ(ten.Eval(1), 10u);
  EXPECT_EQ(ten.Eval(1u << 20), 10u);  // constants ignore N
}

TEST(BoundExprTest, PolynomialEvalAndToString) {
  // 3 + 2*logN + N*logN: Eval at N = 1024 (logN = 10).
  const BoundExpr e = BoundExpr::Constant(3) + BoundExpr::LogN(2) +
                      BoundExpr::Linear(1) * BoundExpr::LogN(1);
  EXPECT_EQ(e.Eval(1024), 3u + 2u * 10u + 1024u * 10u);
  EXPECT_EQ(e.ToString(), "3 + 2*logN + N*logN");
  EXPECT_FALSE(e.IsConstant());
  EXPECT_FALSE(e.unbounded());
}

TEST(BoundExprTest, MulDistributesOverTerms) {
  // (1 + N) * (2 + logN) = 2 + logN + 2N + N*logN.
  const BoundExpr product =
      (BoundExpr::Constant(1) + BoundExpr::Linear(1)) *
      (BoundExpr::Constant(2) + BoundExpr::LogN(1));
  const std::size_t n = 1u << 16;  // logN = 16
  EXPECT_EQ(product.Eval(n),
            2u + 16u + 2u * n + static_cast<std::uint64_t>(n) * 16u);
}

TEST(BoundExprTest, MaxIsTermwiseDominator) {
  const BoundExpr a = BoundExpr::Constant(10) + BoundExpr::LogN(1);
  const BoundExpr b = BoundExpr::Constant(2) + BoundExpr::LogN(5);
  const BoundExpr m = BoundExpr::Max(a, b);
  for (std::size_t n : {2u, 256u, 1u << 20}) {
    EXPECT_GE(m.Eval(n), a.Eval(n));
    EXPECT_GE(m.Eval(n), b.Eval(n));
  }
}

TEST(BoundExprTest, UnboundedAbsorbsAndZeroAnnihilates) {
  const BoundExpr top = BoundExpr::Unbounded();
  EXPECT_TRUE(top.unbounded());
  EXPECT_EQ(top.Eval(4), kMax);
  EXPECT_TRUE((top + BoundExpr::Constant(1)).unbounded());
  EXPECT_TRUE((top * BoundExpr::Linear(2)).unbounded());
  // 0 * unbounded = 0: a block that is never entered costs nothing even
  // if its body defies analysis.
  const BoundExpr zero = BoundExpr::Constant(0);
  EXPECT_FALSE((zero * top).unbounded());
  EXPECT_EQ((zero * top).Eval(1u << 20), 0u);
}

TEST(BoundExprTest, CeilLog2MatchesDefinition) {
  EXPECT_EQ(CeilLog2(0), 1u);  // clamped to max(2, n)
  EXPECT_EQ(CeilLog2(1), 1u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(1u << 20), 20u);
  EXPECT_EQ(CeilLog2((1u << 20) + 1), 21u);
}

// ---------------------------------------------------------------------
// Saturation at UINT64_MAX-adjacent values (the satellite fix: bound
// accumulation must clamp, never wrap to a small admissible-looking
// number).
// ---------------------------------------------------------------------

TEST(SaturationTest, SatAddBoundary) {
  EXPECT_EQ(SatAdd(kMax - 1, 1), kMax);  // exact, no clamp needed
  EXPECT_EQ(SatAdd(kMax, 0), kMax);
  EXPECT_EQ(SatAdd(kMax, 1), kMax);      // clamped
  EXPECT_EQ(SatAdd(kMax, kMax), kMax);
  EXPECT_EQ(SatAdd(1, kMax - 1), kMax);
}

TEST(SaturationTest, SatMulBoundary) {
  EXPECT_EQ(SatMul(kMax, 0), 0u);
  EXPECT_EQ(SatMul(0, kMax), 0u);
  EXPECT_EQ(SatMul(kMax, 1), kMax);
  EXPECT_EQ(SatMul(kMax / 2, 2), kMax - 1);  // exact
  EXPECT_EQ(SatMul(kMax / 2 + 1, 2), kMax);  // clamped
  EXPECT_EQ(SatMul(kMax, kMax), kMax);
}

TEST(SaturationTest, EvalSaturatesInsteadOfWrapping) {
  const BoundExpr huge = BoundExpr::Constant(kMax) + BoundExpr::Constant(1);
  EXPECT_EQ(huge.Eval(2), kMax);
  const BoundExpr product = BoundExpr::Linear(kMax);
  EXPECT_EQ(product.Eval(3), kMax);
  // N^3 at N = 2^22 overflows 64 bits; Eval must clamp.
  const BoundExpr cubic = BoundExpr::Monomial(1, 3, 0);
  EXPECT_EQ(cubic.Eval(std::size_t{1} << 22), kMax);
}

TEST(SaturationTest, CertifyKWaySortSaturatesAtHugeGeometry) {
  const std::size_t huge = std::numeric_limits<std::size_t>::max();
  const SortCertificate cert =
      CertifyKWaySort(huge, huge, huge, huge, huge - 1);
  // Wrapping arithmetic would fold these to small, admissible-looking
  // numbers; saturation pins them to the top.
  EXPECT_EQ(cert.max_internal_bits, huge);
  EXPECT_GE(cert.max_scan_bound, cert.fanout);
  const SymbolicSortCertificate symbolic =
      CertifyKWaySortSymbolic(huge, huge, huge);
  EXPECT_EQ(symbolic.internal_bits.Eval(1u << 20), kMax);
}

// ---------------------------------------------------------------------
// Property: Eval is monotone in N for any expression built from the
// public factories (growth inference and admission both rely on it).
// ---------------------------------------------------------------------

TEST(BoundExprProperty, EvalIsMonotoneInN) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    BoundExpr e = BoundExpr::Constant(rng.UniformBelow(100));
    const std::size_t num_terms = 1 + rng.UniformBelow(4);
    for (std::size_t t = 0; t < num_terms; ++t) {
      e += BoundExpr::Monomial(rng.UniformBelow(1u << 20),
                               static_cast<unsigned>(rng.UniformBelow(3)),
                               static_cast<unsigned>(rng.UniformBelow(3)));
    }
    std::uint64_t prev = 0;
    for (std::size_t n = 1; n <= (std::size_t{1} << 32);
         n <<= 1) {
      const std::uint64_t at_n = e.Eval(n);
      ASSERT_GE(at_n, prev) << e.ToString() << " at N = " << n;
      prev = at_n;
    }
  }
}

TEST(BoundExprTest, FindWitnessNLocatesCrossing) {
  // Linear(1) vs a constant envelope of 1000: first power-of-two
  // crossing above 256 is 1024.
  const auto witness = FindWitnessN(
      BoundExpr::Linear(1), [](std::size_t) -> std::uint64_t { return 1000; },
      /*n_lo=*/256, /*n_hi=*/std::size_t{1} << 40);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(*witness, 1024u);
  // A quadratic envelope dominates Linear everywhere in the window.
  const auto none = FindWitnessN(
      BoundExpr::Linear(1),
      [](std::size_t n) -> std::uint64_t {
        return SatMul(static_cast<std::uint64_t>(n), n);
      },
      256, std::size_t{1} << 40);
  EXPECT_FALSE(none.has_value());
}

// ---------------------------------------------------------------------
// Registry sweep: every shipped machine's symbolic certificate stays
// inside its declared envelope at every N in 2^8 .. 2^24.
// ---------------------------------------------------------------------

TEST(RegistrySweepTest, DeclaredEnvelopesDominateAcrossNSweep) {
  for (const CheckedMachine& entry : AllCheckedMachines()) {
    const Analysis analysis = Analyze(entry.spec, entry.options);
    ASSERT_TRUE(analysis.clean())
        << entry.name << ":\n"
        << analysis.diagnostics.ToString();
    const BoundExpr& r = analysis.resources.scan_bound;
    const BoundExpr& s = analysis.resources.total_internal_cells;
    EXPECT_FALSE(r.unbounded()) << entry.name;
    EXPECT_FALSE(s.unbounded()) << entry.name;
    if (!entry.options.declared.has_value()) continue;
    const core::ResourceClass& declared = *entry.options.declared;
    for (std::size_t n = std::size_t{1} << 8; n <= (std::size_t{1} << 24);
         n <<= 1) {
      EXPECT_LE(r.Eval(n), declared.r_of_n(n))
          << entry.name << " scans at N = " << n;
      EXPECT_LE(s.Eval(n), declared.s_of_n(n))
          << entry.name << " cells at N = " << n;
    }
  }
}

TEST(RegistrySweepTest, BalancedZerosOnesInfersLogarithmicSpace) {
  // The flagship of the growth pass: the binary-counter rule must bound
  // the counter machine's internal tape by O(log N) — before the
  // symbolic engine this collapsed to "unbounded".
  const Analysis analysis = Analyze(machine::zoo::BalancedZerosOnes());
  const BoundExpr& cells = analysis.resources.total_internal_cells;
  ASSERT_FALSE(cells.unbounded());
  EXPECT_EQ(GrowthOf(cells), GrowthClass::kLogarithmic);
  EXPECT_EQ(GrowthOf(analysis.resources.scan_bound),
            GrowthClass::kConstant);
}

// ---------------------------------------------------------------------
// RST017: shadowed duplicate rule.
// ---------------------------------------------------------------------

MachineSpec MachineWithDuplicateRule() {
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(100, true).AddFinal(101, false);
  b.On(0, "1").Go(100, "1", {Move::kStay});
  b.On(0, "1").Go(100, "1", {Move::kStay});  // byte-identical twin
  b.On(0, "0").Go(101, "0", {Move::kStay});
  b.On(0, std::string(1, machine::kBlank))
      .Go(101, std::string(1, machine::kBlank), {Move::kStay});
  return b.Build();
}

TEST(NegativeTest, RST017ShadowedRule) {
  const Analysis analysis = Analyze(MachineWithDuplicateRule());
  const Diagnostic* d = analysis.diagnostics.FindCode(Code::kShadowedRule);
  ASSERT_NE(d, nullptr) << analysis.diagnostics.ToString();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->state, 0);
  EXPECT_EQ(d->key, "1");
}

TEST(NegativeTest, RST017SkippedForDeclaredRandomizedMachines) {
  // A biased coin encodes probability 3/5 as duplicate actions — the
  // duplicates carry weight there and must not be flagged.
  AnalyzeOptions options;
  options.declared = core::RstClass("RST(1, 0, 1)", core::ConstScans(1),
                                    core::ConstSpace(0), 1);
  const Analysis analysis =
      Analyze(machine::zoo::BiasedCoin(3, 5), options);
  EXPECT_EQ(analysis.diagnostics.FindCode(Code::kShadowedRule), nullptr)
      << analysis.diagnostics.ToString();
}

// ---------------------------------------------------------------------
// RST018: declared class not dominated, with a concrete witness N.
// ---------------------------------------------------------------------

TEST(NegativeTest, RST018ReportsWitnessN) {
  // 4*logN dominates the counter machine's inferred 2*logN + 22 cells
  // at check_n = 2^20 (80 >= 62) but not at N = 256 (32 < 38): the
  // single-point check passes and the sweep must catch the crossing,
  // naming the witness.
  AnalyzeOptions options;
  options.declared = core::StClass("ST(1, O(log N), 1)",
                                   core::ConstScans(1), core::LogSpace(4.0),
                                   1);
  const Analysis analysis =
      Analyze(machine::zoo::BalancedZerosOnes(), options);
  const Diagnostic* d =
      analysis.diagnostics.FindCode(Code::kClassNotDominated);
  ASSERT_NE(d, nullptr) << analysis.diagnostics.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("witness N = 256"), std::string::npos)
      << d->message;
  // The point check at check_n holds, so RST011 must not also fire —
  // RST018 owns the asymptotic finding.
  EXPECT_EQ(analysis.diagnostics.FindCode(Code::kSpaceBound), nullptr)
      << analysis.diagnostics.ToString();
}

// ---------------------------------------------------------------------
// The symbolic k-way sort certificate.
// ---------------------------------------------------------------------

TEST(SortSymbolicTest, DominatesConcreteCertificateForEveryM) {
  for (const std::size_t fanout : {2u, 4u, 16u}) {
    const SymbolicSortCertificate symbolic =
        CertifyKWaySortSymbolic(/*max_field_len=*/8, fanout,
                                /*run_length=*/8);
    for (const std::size_t m : {0u, 1u, 2u, 17u, 256u, 4096u, 65536u}) {
      // m fields of <= 8 payload cells occupy at most 9m input cells
      // (and at least m); any N >= m is a valid size for the instance.
      const std::size_t n = std::max<std::size_t>(1, 9 * m);
      const SortCertificate concrete =
          CertifyKWaySort(m, 8, n, fanout, 8);
      EXPECT_GE(symbolic.scan_bound.Eval(n), concrete.max_scan_bound)
          << "m=" << m << " k=" << fanout;
      EXPECT_GE(symbolic.internal_bits.Eval(n), concrete.max_internal_bits)
          << "m=" << m << " k=" << fanout;
    }
  }
}

TEST(SortSymbolicTest, GrowthIsLogarithmicInBothResources) {
  // Corollary 7's ST(O(log N), O(1), 2): O(log N) scans and O(log N)
  // bits — a constant number of machine words.
  const SymbolicSortCertificate cert = CertifyKWaySortSymbolic(64, 16, 1024);
  EXPECT_EQ(GrowthOf(cert.scan_bound), GrowthClass::kLogarithmic);
  EXPECT_EQ(GrowthOf(cert.internal_bits), GrowthClass::kLogarithmic);
}

TEST(SortSymbolicTest, ViolationFiresRst015AtTheRunsOwnN) {
  const SymbolicSortCertificate cert = CertifyKWaySortSymbolic(8, 4, 8);
  tape::ResourceReport report;
  report.scan_bound = SatAdd(cert.scan_bound.Eval(1024), 1);
  const Status scans =
      CheckSortCostsAgainstSymbolicCertificate(report, cert, 1024);
  ASSERT_FALSE(scans.ok());
  EXPECT_NE(scans.message().find("RST015"), std::string::npos);
  EXPECT_NE(scans.message().find("N = 1024"), std::string::npos);
  // The same bill is admissible at a larger N, where the envelope is
  // wider — the certificate is a function of the run's own size.
  EXPECT_TRUE(CheckSortCostsAgainstSymbolicCertificate(
                  report, cert, std::size_t{1} << 30)
                  .ok());
}

}  // namespace
}  // namespace rstlab::check
