#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitstring.h"
#include "util/random.h"
#include "util/status.h"

namespace rstlab {
namespace {

// ---------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, ValueRoundtrip) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, ErrorPropagates) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Status FailsThenPropagates() {
  RSTLAB_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next64() == b.Next64();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformBelow(bound), bound);
    }
  }
}

TEST(RngTest, UniformBelowCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.UniformInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo = saw_lo || v == 10;
    saw_hi = saw_hi || v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(17);
  Rng forked = a.Fork();
  // The fork differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next64() == forked.Next64();
  EXPECT_LT(same, 4);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

// ---------------------------------------------------------------------
// BitString
// ---------------------------------------------------------------------

TEST(BitStringTest, EmptyBasics) {
  BitString s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.ToString(), "");
}

TEST(BitStringTest, FromStringRoundtrip) {
  for (const char* bits_cstr :
       {"0", "1", "0101", "1111111", "0000000000",
        "110100100010000100000"}) {
    const std::string bits = bits_cstr;
    EXPECT_EQ(BitString::FromString(bits).ToString(), bits);
  }
}

TEST(BitStringTest, FromUint64Roundtrip) {
  EXPECT_EQ(BitString::FromUint64(5, 4).ToString(), "0101");
  EXPECT_EQ(BitString::FromUint64(0, 3).ToString(), "000");
  EXPECT_EQ(BitString::FromUint64(255, 8).ToString(), "11111111");
  for (std::uint64_t v : {0ULL, 1ULL, 37ULL, 1023ULL}) {
    EXPECT_EQ(BitString::FromUint64(v, 10).ToUint64(), v);
  }
}

TEST(BitStringTest, PushBackGrows) {
  BitString s;
  s.PushBack(true);
  s.PushBack(false);
  s.PushBack(true);
  EXPECT_EQ(s.ToString(), "101");
  // Across the 64-bit word boundary.
  BitString long_s;
  for (int i = 0; i < 130; ++i) long_s.PushBack(i % 2 == 0);
  EXPECT_EQ(long_s.size(), 130u);
  EXPECT_TRUE(long_s.bit(0));
  EXPECT_FALSE(long_s.bit(129));
}

TEST(BitStringTest, SetBit) {
  BitString s(8);
  s.set_bit(3, true);
  EXPECT_EQ(s.ToString(), "00010000");
  s.set_bit(3, false);
  EXPECT_EQ(s.ToString(), "00000000");
}

TEST(BitStringTest, LexicographicOrder) {
  const BitString a = BitString::FromString("0101");
  const BitString b = BitString::FromString("0110");
  const BitString prefix = BitString::FromString("01");
  EXPECT_LT(a, b);
  EXPECT_LT(prefix, a);  // proper prefix compares less
  EXPECT_EQ(a, BitString::FromString("0101"));
  EXPECT_GT(b, a);
}

TEST(BitStringTest, OrderMatchesNumericForEqualLengths) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t x = rng.UniformBelow(1 << 16);
    const std::uint64_t y = rng.UniformBelow(1 << 16);
    const BitString bx = BitString::FromUint64(x, 16);
    const BitString by = BitString::FromUint64(y, 16);
    EXPECT_EQ(bx < by, x < y);
    EXPECT_EQ(bx == by, x == y);
  }
}

TEST(BitStringTest, TopBits) {
  const BitString s = BitString::FromString("11010001");
  EXPECT_EQ(s.TopBits(0), 0u);
  EXPECT_EQ(s.TopBits(1), 1u);
  EXPECT_EQ(s.TopBits(3), 0b110u);
  EXPECT_EQ(s.TopBits(8), 0b11010001u);
}

TEST(BitStringTest, ModMatchesNumeric) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t v = rng.UniformBelow(1ULL << 32);
    const std::uint64_t p = 2 + rng.UniformBelow(1 << 20);
    EXPECT_EQ(BitString::FromUint64(v, 40).ModUint64(p), v % p);
  }
}

TEST(BitStringTest, ModOfLongString) {
  // 200-bit string of all 1s mod small primes: (2^200 - 1) mod p.
  BitString ones(200);
  for (std::size_t i = 0; i < 200; ++i) ones.set_bit(i, true);
  // 2^200 mod 7: 200 = 3*66+2 -> 2^200 = 4 mod 7 -> value = 3 mod 7.
  EXPECT_EQ(ones.ModUint64(7), 3u);
  EXPECT_EQ(ones.ModUint64(2), 1u);
}

TEST(BitStringTest, RandomHasCleanTail) {
  Rng rng(31);
  for (std::size_t len : {1u, 63u, 64u, 65u, 100u, 130u}) {
    const BitString a = BitString::Random(len, rng);
    EXPECT_EQ(a.size(), len);
    EXPECT_EQ(a.ToString().size(), len);
    // Comparisons against a copy built from the string representation
    // must agree (this fails if tail bits are dirty).
    EXPECT_EQ(a, BitString::FromString(a.ToString()));
  }
}

TEST(BitStringTest, HashConsistentWithEquality) {
  Rng rng(37);
  BitStringHash hasher;
  for (int trial = 0; trial < 100; ++trial) {
    const BitString a = BitString::Random(80, rng);
    const BitString b = BitString::FromString(a.ToString());
    EXPECT_EQ(hasher(a), hasher(b));
  }
}

class BitStringLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitStringLengthTest, RoundtripAtManyLengths) {
  Rng rng(41 + GetParam());
  const BitString s = BitString::Random(GetParam(), rng);
  EXPECT_EQ(BitString::FromString(s.ToString()), s);
}

INSTANTIATE_TEST_SUITE_P(Lengths, BitStringLengthTest,
                         ::testing::Values(0, 1, 2, 7, 8, 31, 32, 33, 63,
                                           64, 65, 127, 128, 129, 512));

}  // namespace
}  // namespace rstlab
