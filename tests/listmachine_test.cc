#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "listmachine/analysis.h"
#include "listmachine/list_machine.h"
#include "listmachine/machines.h"
#include "listmachine/skeleton.h"
#include "permutation/sortedness.h"
#include "util/random.h"

namespace rstlab::listmachine {
namespace {

std::vector<std::uint64_t> Iota(std::size_t count, std::uint64_t start) {
  std::vector<std::uint64_t> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = start + i;
  return v;
}

// ---------------------------------------------------------------------
// Executor semantics
// ---------------------------------------------------------------------

TEST(ExecutorTest, InitialConfiguration) {
  ZigZagMachine machine(2, 1, 3);
  ListMachineExecutor exec(&machine);
  ListMachineConfig config = exec.InitialConfiguration({7, 8, 9});
  EXPECT_EQ(config.state, machine.initial_state());
  ASSERT_EQ(config.lists.size(), 2u);
  ASSERT_EQ(config.lists[0].size(), 3u);
  // Cell j holds <v_j> with origin j.
  EXPECT_EQ(config.lists[0][1][1].kind, Symbol::Kind::kInput);
  EXPECT_EQ(config.lists[0][1][1].payload, 8u);
  EXPECT_EQ(config.lists[0][1][1].origin, 1u);
  // Other lists hold one empty cell <>.
  ASSERT_EQ(config.lists[1].size(), 1u);
  EXPECT_EQ(config.lists[1][0].size(), 2u);
  EXPECT_EQ(config.heads, (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(config.directions, (std::vector<int>{+1, +1}));
}

TEST(ExecutorTest, ZigZagSingleSweepCosts) {
  // One sweep right over m=4 cells: no direction changes.
  ZigZagMachine machine(2, 1, 4);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic(Iota(4, 0), 100);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().halted);
  EXPECT_TRUE(run.value().accepted);
  EXPECT_EQ(run.value().ScanBound(), 1u);
  EXPECT_EQ(run.value().steps.size(), 3u);  // m-1 moves
}

class ZigZagSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZigZagSweepTest, ReversalsMatchSweeps) {
  const std::size_t sweeps = GetParam();
  ZigZagMachine machine(2, sweeps, 4);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic(Iota(4, 0), 10000);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value().halted);
  // Each sweep after the first turns the list-1 head around once.
  EXPECT_EQ(run.value().reversals[0], sweeps - 1);
  EXPECT_EQ(run.value().ScanBound(),
            1 + run.value().reversals[0] + run.value().reversals[1]);
}

INSTANTIATE_TEST_SUITE_P(Sweeps, ZigZagSweepTest,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(ExecutorTest, TraceStringStructure) {
  // After one step of a ZigZag machine, the written cell is
  // a <x1> <x2> <c>.
  ZigZagMachine machine(2, 1, 2);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic({5, 6}, 100);
  ASSERT_TRUE(run.ok());
  const ListMachineConfig& fc = run.value().final_config;
  // List 1 cell 0 was replaced by the trace string.
  const CellContent& y = fc.lists[0][0];
  ASSERT_GE(y.size(), 7u);
  EXPECT_EQ(y[0].kind, Symbol::Kind::kState);
  EXPECT_EQ(y[1].kind, Symbol::Kind::kOpen);
  // The embedded input symbol keeps value and origin.
  bool found_input = false;
  for (const Symbol& s : y) {
    if (s.kind == Symbol::Kind::kInput) {
      EXPECT_EQ(s.payload, 5u);
      EXPECT_EQ(s.origin, 0u);
      found_input = true;
    }
  }
  EXPECT_TRUE(found_input);
  EXPECT_EQ(y.back().kind, Symbol::Kind::kClose);
}

TEST(ExecutorTest, ListsNeverShrink) {
  ZigZagMachine machine(3, 4, 5);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic(Iota(5, 0), 10000);
  ASSERT_TRUE(run.ok());
  std::size_t total = 0;
  for (const auto& list : run.value().final_config.lists) {
    total += list.size();
  }
  EXPECT_GE(total, 5u + 2u);  // initial cells at minimum
}

TEST(ExecutorTest, CoinMachineProbability) {
  CoinListMachine coin;
  ListMachineExecutor exec(&coin);
  EXPECT_DOUBLE_EQ(exec.AcceptanceProbability({1}, 10), 0.5);
  // Empirical check of the randomized runner.
  Rng rng(3);
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    accepted += exec.RunRandomized({1}, rng, 10).accepted;
  }
  EXPECT_NEAR(accepted / 2000.0, 0.5, 0.04);
}

TEST(ExecutorTest, DeterministicRunnerRejectsRandomMachines) {
  CoinListMachine coin;
  ListMachineExecutor exec(&coin);
  EXPECT_FALSE(exec.RunDeterministic({1}, 10).ok());
}

// Lemma 25-style counting: acceptance probability equals the fraction of
// accepting choice sequences.
TEST(ExecutorTest, ChoiceCountingMatchesProbability) {
  CoinListMachine coin;
  ListMachineExecutor exec(&coin);
  int accepting = 0;
  for (ChoiceId c : {0, 1}) {
    accepting += exec.RunWithChoices({1}, {c}, 10).accepted;
  }
  EXPECT_DOUBLE_EQ(accepting / 2.0, exec.AcceptanceProbability({1}, 10));
}

// ---------------------------------------------------------------------
// ReverseCompareMachine
// ---------------------------------------------------------------------

class ReverseCompareTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReverseCompareTest, AcceptsIffComparedPairsMatch) {
  Rng rng(GetParam());
  const std::size_t m = 4;
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> input(2 * m);
    for (auto& v : input) v = rng.UniformBelow(3);
    Result<ListMachineRun> run = exec.RunDeterministic(input, 1000);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run.value().halted);
    // The machine checks v'_j == v_{m-j} for 1 <= j <= budget-1 (it can
    // never reach the (v_0, v'_0) pair).
    bool expected = true;
    for (std::size_t j = 1; j < m; ++j) {
      if (input[m + j] != input[m - j]) expected = false;
    }
    EXPECT_EQ(run.value().accepted, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseCompareTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(ReverseCompareTest, ScanBoundIsSmall) {
  const std::size_t m = 8;
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic(Iota(2 * m, 0), 1000);
  ASSERT_TRUE(run.ok());
  // Head 1 never turns; head 2 turns once.
  EXPECT_LE(run.value().ScanBound(), 3u);
}

TEST(ReverseCompareTest, ComparedPairsAreTheReversePairs) {
  const std::size_t m = 4;
  ReverseCompareMachine machine(m, m);
  ListMachineExecutor exec(&machine);
  // All-equal input so the machine runs to completion.
  std::vector<std::uint64_t> input(2 * m, 7);
  Result<ListMachineRun> run = exec.RunDeterministic(input, 1000);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value().accepted);
  // Pairs (m - j, m + j) for j = 1..m-1 must be compared...
  for (std::size_t j = 1; j < m; ++j) {
    EXPECT_TRUE(ArePositionsCompared(run.value(), m - j, m + j))
        << "j=" << j;
  }
  // ...and the blind-spot pair (0, m) must NOT be compared.
  EXPECT_FALSE(ArePositionsCompared(run.value(), 0, m));
}

// ---------------------------------------------------------------------
// Skeletons
// ---------------------------------------------------------------------

TEST(SkeletonTest, IndexStringAbstractsValues) {
  CellContent cell = {Symbol::Open(), Symbol::Input(42, 3),
                      Symbol::Close()};
  const std::string ind = IndexString(cell);
  EXPECT_NE(ind.find("i3"), std::string::npos);
  EXPECT_EQ(ind.find("42"), std::string::npos);
}

TEST(SkeletonTest, EqualAcrossInputsWithSameShape) {
  // Two different inputs produce the same skeleton on an input-oblivious
  // machine (ZigZag never branches on values).
  ZigZagMachine machine(2, 3, 4);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run_a = exec.RunDeterministic(Iota(4, 0), 10000);
  Result<ListMachineRun> run_b =
      exec.RunDeterministic(Iota(4, 100), 10000);
  ASSERT_TRUE(run_a.ok());
  ASSERT_TRUE(run_b.ok());
  EXPECT_EQ(BuildSkeleton(run_a.value()), BuildSkeleton(run_b.value()));
  EXPECT_NE(BuildSkeleton(run_a.value()).Serialize(), "");
}

TEST(SkeletonTest, DiffersAcrossMachines) {
  ZigZagMachine two_sweeps(2, 2, 4);
  ZigZagMachine three_sweeps(2, 3, 4);
  ListMachineExecutor exec2(&two_sweeps);
  ListMachineExecutor exec3(&three_sweeps);
  Result<ListMachineRun> a = exec2.RunDeterministic(Iota(4, 0), 10000);
  Result<ListMachineRun> b = exec3.RunDeterministic(Iota(4, 0), 10000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(BuildSkeleton(a.value()), BuildSkeleton(b.value()));
}

TEST(SkeletonTest, MovesRecorded) {
  ZigZagMachine machine(2, 1, 3);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic(Iota(3, 0), 100);
  ASSERT_TRUE(run.ok());
  RunSkeleton skel = BuildSkeleton(run.value());
  ASSERT_EQ(skel.moves.size(), run.value().steps.size());
  // Every ZigZag step moves the list-1 head.
  for (const auto& mv : skel.moves) {
    EXPECT_NE(mv[0], 0);
  }
  EXPECT_EQ(skel.views.size(), skel.moves.size() + 1);
}

TEST(SkeletonTest, ComparedPairsSymmetricAndReflexive) {
  ReverseCompareMachine machine(2, 2);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run =
      exec.RunDeterministic({1, 2, 2, 1}, 1000);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(ArePositionsCompared(run.value(), 1, 1));  // reflexive
  EXPECT_EQ(ArePositionsCompared(run.value(), 1, 3),
            ArePositionsCompared(run.value(), 3, 1));
}


// ---------------------------------------------------------------------
// Structured trace access + IdentityCompareMachine
// ---------------------------------------------------------------------

TEST(TraceComponentTest, ParsesTopLevelGroups) {
  // y = a5 <v7@2> <> <c3>
  CellContent y = {Symbol::State(5), Symbol::Open(),
                   Symbol::Input(7, 2), Symbol::Close(), Symbol::Open(),
                   Symbol::Close(), Symbol::Open(), Symbol::Choice(3),
                   Symbol::Close()};
  auto x1 = TraceComponent(y, 0);
  ASSERT_TRUE(x1.has_value());
  ASSERT_EQ(x1->size(), 1u);
  EXPECT_EQ((*x1)[0].kind, Symbol::Kind::kInput);
  auto x2 = TraceComponent(y, 1);
  ASSERT_TRUE(x2.has_value());
  EXPECT_TRUE(x2->empty());
  auto c = TraceComponent(y, 2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ((*c)[0].kind, Symbol::Kind::kChoice);
  EXPECT_FALSE(TraceComponent(y, 3).has_value());
  // Non-trace cells have no components.
  CellContent initial = {Symbol::Open(), Symbol::Input(1, 0),
                         Symbol::Close()};
  EXPECT_FALSE(TraceComponent(initial, 0).has_value());
}

TEST(TraceComponentTest, HandlesNesting) {
  CellContent inner = {Symbol::State(1), Symbol::Open(),
                       Symbol::Input(9, 4), Symbol::Close(),
                       Symbol::Open(), Symbol::Close()};
  CellContent outer;
  outer.push_back(Symbol::State(2));
  outer.push_back(Symbol::Open());
  outer.insert(outer.end(), inner.begin(), inner.end());
  outer.push_back(Symbol::Close());
  outer.push_back(Symbol::Open());
  outer.push_back(Symbol::Close());
  auto x1 = TraceComponent(outer, 0);
  ASSERT_TRUE(x1.has_value());
  EXPECT_EQ(*x1, inner);
}

TEST(CarriedInputSymbolTest, RecursesAndFallsBack) {
  // Initial cell: carries its own input.
  CellContent initial = {Symbol::Open(), Symbol::Input(11, 3),
                         Symbol::Close()};
  auto carried = CarriedInputSymbol(initial, 1);
  ASSERT_TRUE(carried.has_value());
  EXPECT_EQ(carried->origin, 3u);
  // Trace whose x2 is empty: falls back to the x1 value (copy-phase
  // cells).
  CellContent y = {Symbol::State(5), Symbol::Open(),
                   Symbol::Input(7, 2), Symbol::Close(), Symbol::Open(),
                   Symbol::Close(), Symbol::Open(), Symbol::Choice(0),
                   Symbol::Close()};
  carried = CarriedInputSymbol(y, 1);
  ASSERT_TRUE(carried.has_value());
  EXPECT_EQ(carried->origin, 2u);
  // Overwritten cell: recurses into x2 and recovers the buried value.
  CellContent overwrite;
  overwrite.push_back(Symbol::State(6));
  overwrite.push_back(Symbol::Open());
  overwrite.push_back(Symbol::Input(99, 8));  // x1: some other value
  overwrite.push_back(Symbol::Close());
  overwrite.push_back(Symbol::Open());
  overwrite.insert(overwrite.end(), y.begin(), y.end());  // x2 = y
  overwrite.push_back(Symbol::Close());
  carried = CarriedInputSymbol(overwrite, 1);
  ASSERT_TRUE(carried.has_value());
  EXPECT_EQ(carried->origin, 2u);  // not 8
}

class IdentityCompareTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdentityCompareTest, DecidesIdentityAlignment) {
  Rng rng(GetParam());
  const std::size_t m = 6;
  IdentityCompareMachine machine(m);
  ListMachineExecutor exec(&machine);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint64_t> input(2 * m);
    for (std::size_t j = 0; j < m; ++j) {
      input[j] = rng.UniformBelow(4);
      input[m + j] =
          rng.Bernoulli(0.7) ? input[j] : rng.UniformBelow(4);
    }
    Result<ListMachineRun> run = exec.RunDeterministic(input, 100000);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run.value().halted);
    EXPECT_EQ(run.value().accepted,
              IdentityCompareMachine::ReferencePredicate(input, m));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdentityCompareTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(IdentityCompareTest, ConstantScanBound) {
  for (std::size_t m : {2u, 8u, 32u, 128u}) {
    IdentityCompareMachine machine(m);
    ListMachineExecutor exec(&machine);
    std::vector<std::uint64_t> input(2 * m, 5);
    Result<ListMachineRun> run = exec.RunDeterministic(input, 1000000);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run.value().accepted);
    // 2 reversals on list 2, none on list 1: scan bound 3 at EVERY m —
    // the identity permutation (sortedness m) is decidable with O(1)
    // scans, in sharp contrast to the Lemma 21 blind spot.
    EXPECT_EQ(run.value().ScanBound(), 3u) << m;
  }
}

TEST(IdentityCompareTest, ComparesAllIdentityPairs) {
  const std::size_t m = 8;
  IdentityCompareMachine machine(m);
  ListMachineExecutor exec(&machine);
  std::vector<std::uint64_t> input(2 * m, 1);
  Result<ListMachineRun> run = exec.RunDeterministic(input, 1000000);
  ASSERT_TRUE(run.ok());
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_TRUE(ArePositionsCompared(run.value(), j, m + j)) << j;
  }
  // Consistency with Lemma 38: m compared pairs <= t^{2r} * m.
  MergeLemmaCheck check = CheckMergeLemma(
      run.value(), rstlab::permutation::Identity(m));
  EXPECT_TRUE(check.within_bounds);
  EXPECT_EQ(check.compared_count, m);
}

TEST(IdentityCompareTest, EmptyInputAccepts) {
  IdentityCompareMachine machine(0);
  ListMachineExecutor exec(&machine);
  Result<ListMachineRun> run = exec.RunDeterministic({}, 100);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().accepted);
}

// ---------------------------------------------------------------------
// Lemma 26 (averaging)
// ---------------------------------------------------------------------

TEST(Lemma26Test, FindsGoodChoiceSequenceForCoin) {
  CoinListMachine coin;
  ListMachineExecutor exec(&coin);
  // Both inputs are accepted under the choice sequence (0): choice 0
  // accepts regardless of input.
  std::vector<std::vector<std::uint64_t>> inputs = {{1}, {2}};
  auto seq = FindGoodChoiceSequence(exec, coin, inputs, 1, 10);
  ASSERT_TRUE(seq.has_value());
  int accepted = 0;
  for (const auto& input : inputs) {
    accepted += exec.RunWithChoices(input, *seq, 10).accepted;
  }
  EXPECT_GE(accepted, 1);
}

TEST(Lemma26Test, ReturnsNulloptWhenImpossible) {
  // A machine that always rejects: ZigZag variant is always accepting,
  // so use the coin machine with inputs but demand acceptance of both
  // under a single choice... choice 0 accepts both, so instead ask for a
  // sequence of length 0 on a machine that needs one step.
  CoinListMachine coin;
  ListMachineExecutor exec(&coin);
  std::vector<std::vector<std::uint64_t>> inputs = {{1}};
  auto seq = FindGoodChoiceSequence(exec, coin, inputs, 0, 0);
  EXPECT_FALSE(seq.has_value());
}

}  // namespace
}  // namespace rstlab::listmachine
