#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/query_certificate.h"
#include "conform/harness.h"
#include "extmem/counting_storage.h"
#include "extmem/residency.h"
#include "extmem/storage.h"
#include "query/engine/operators.h"
#include "query/engine/plan.h"
#include "query/engine/shared_scan.h"
#include "query/engine/spool.h"
#include "query/relalg.h"
#include "query/streaming_xml.h"
#include "query/workload.h"
#include "query/xml_events.h"
#include "stmodel/st_context.h"
#include "tape/tape.h"

namespace rstlab::query::engine {
namespace {

extmem::StorageOptions MemOptions() { return extmem::StorageOptions{}; }

extmem::StorageOptions FileOptions() {
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 64;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  return options;
}

/// The depth-d expression family of the property matrix (arity-1
/// relations R1, R2).
RelAlgExprPtr ExprForDepth(int depth) {
  switch (depth) {
    case 1:
      return Rel("R1");
    case 2:
      return Difference(Rel("R1"), Rel("R2"));
    case 3:
      return SymmetricDifferenceQuery();
    case 4:
      return Project(Intersection(Union(Rel("R1"), Rel("R2")), Rel("R1")),
                     {0});
    default:
      return Union(Project(Difference(Rel("R1"), Rel("R2")), {0}),
                   Intersection(Rel("R2"), Rel("R1")));
  }
}

Result<std::vector<QueryOutcome>> RunEngine(
    const std::string& stream, const std::vector<RelAlgExprPtr>& exprs,
    const extmem::StorageOptions& storage, std::size_t threads,
    SharedScanOptions options = {}) {
  stmodel::StContext ctx(1, storage);
  ctx.LoadInput(stream);
  options.config.threads = threads;
  std::vector<QueryRequest> requests;
  requests.reserve(exprs.size());
  for (const RelAlgExprPtr& expr : exprs) requests.push_back({expr, ""});
  return ExecuteSharedScan(ctx, requests, options);
}

// ---------------------------------------------------------------------
// Property matrix: depth x backend x threads x N, engine vs reference
// ---------------------------------------------------------------------

TEST(QueryEngineProperty, MatrixMatchesReferenceBitIdentically) {
  const std::size_t seeds = conform::EnvTestCases(3);
  for (std::size_t seed = 1; seed <= seeds; ++seed) {
    for (int depth = 1; depth <= 5; ++depth) {
      RelationPairSpec spec;
      spec.seed = seed * 977 + static_cast<std::uint64_t>(depth);
      spec.num_tuples = 1 + seed * 5 + static_cast<std::size_t>(depth);
      spec.value_len = 6;
      spec.perturbations = (seed + static_cast<std::size_t>(depth)) % 3;
      spec.skew_duplicates = depth % 2 == 0;
      const RelationPairWorkload workload = MakeRelationPair(spec);
      const RelAlgExprPtr expr = ExprForDepth(depth);

      Result<Relation> reference =
          EvaluateInMemory(expr, workload.database);
      ASSERT_TRUE(reference.ok()) << reference.status().message();

      Result<std::vector<QueryOutcome>> baseline =
          RunEngine(workload.stream, {expr}, MemOptions(), 1);
      ASSERT_TRUE(baseline.ok()) << baseline.status().message();
      const QueryOutcome& base = baseline.value()[0];
      ASSERT_TRUE(base.status.ok())
          << "depth " << depth << ": " << base.status.message();
      EXPECT_TRUE(base.result == reference.value())
          << "depth " << depth << " plan " << base.plan;

      // Backend and thread variants: verdicts, result multisets and
      // (r, s) bills must be bit-identical to the mem/1-thread run.
      struct Variant {
        extmem::StorageOptions storage;
        std::size_t threads;
      };
      const Variant variants[] = {{MemOptions(), 2},
                                  {MemOptions(), 4},
                                  {FileOptions(), 1},
                                  {FileOptions(), 2},
                                  {FileOptions(), 4}};
      for (const Variant& variant : variants) {
        Result<std::vector<QueryOutcome>> run = RunEngine(
            workload.stream, {expr}, variant.storage, variant.threads);
        ASSERT_TRUE(run.ok()) << run.status().message();
        const QueryOutcome& outcome = run.value()[0];
        ASSERT_TRUE(outcome.status.ok()) << outcome.status.message();
        EXPECT_TRUE(outcome.result == base.result);
        EXPECT_TRUE(outcome.cost.SameBill(base.cost))
            << "depth " << depth << ": " << outcome.cost.ToString()
            << " vs " << base.cost.ToString();
        EXPECT_EQ(outcome.cost.tuples_out, base.cost.tuples_out);
      }
    }
  }
}

TEST(QueryEngineProperty, SymmetricDifferenceSweepStaysCertified) {
  // N sweep: exact symmetric-difference sizes and in-certificate bills
  // at growing input sizes (the Theorem 11 upper-bound shape).
  for (const std::size_t n : {4u, 16u, 64u, 256u}) {
    RelationPairSpec spec;
    spec.seed = 41 + n;
    spec.num_tuples = n;
    spec.value_len = 10;
    spec.perturbations = n / 4;
    const RelationPairWorkload workload = MakeRelationPair(spec);

    Result<std::vector<QueryOutcome>> run = RunEngine(
        workload.stream, {SymmetricDifferenceQuery()}, MemOptions(), 1);
    ASSERT_TRUE(run.ok());
    const QueryOutcome& outcome = run.value()[0];
    // certify=true by default: a bill outside the plan certificate
    // would have surfaced as RST015 in the status.
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.message();
    EXPECT_EQ(outcome.result.tuples.size(), workload.symmetric_difference);
    EXPECT_TRUE(check::WithinLogScanClass(outcome.certificate));
  }
}

TEST(QueryEngineProperty, SharedScanManyQueriesOneVsManyThreads) {
  RelationPairSpec spec;
  spec.seed = 7;
  spec.num_tuples = 24;
  spec.value_len = 8;
  spec.perturbations = 3;
  spec.skew_duplicates = true;
  const RelationPairWorkload workload = MakeRelationPair(spec);
  std::vector<RelAlgExprPtr> exprs;
  for (int depth = 1; depth <= 5; ++depth) {
    exprs.push_back(ExprForDepth(depth));
  }
  exprs.push_back(Intersection(Rel("R1"), Rel("R2")));

  Result<std::vector<QueryOutcome>> serial =
      RunEngine(workload.stream, exprs, FileOptions(), 1);
  Result<std::vector<QueryOutcome>> parallel =
      RunEngine(workload.stream, exprs, FileOptions(), 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial.value().size(), exprs.size());
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    const QueryOutcome& a = serial.value()[i];
    const QueryOutcome& b = parallel.value()[i];
    ASSERT_TRUE(a.status.ok()) << a.status.message();
    ASSERT_TRUE(b.status.ok()) << b.status.message();
    EXPECT_TRUE(a.result == b.result) << "query " << i;
    EXPECT_TRUE(a.cost.SameBill(b.cost))
        << "query " << i << ": " << a.cost.ToString() << " vs "
        << b.cost.ToString();
  }
}

// ---------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------

TEST(QueryEngineEdge, EmptyRelationAndSingleTuple) {
  // R2 never appears in the stream: an empty relation, not an error.
  const std::string stream = "R1,0110#";
  for (const auto& storage : {MemOptions(), FileOptions()}) {
    Result<std::vector<QueryOutcome>> run = RunEngine(
        stream,
        {Difference(Rel("R1"), Rel("R2")),
         Intersection(Rel("R1"), Rel("R2")), Union(Rel("R1"), Rel("R2")),
         Rel("R2")},
        storage, 1);
    ASSERT_TRUE(run.ok());
    const std::vector<QueryOutcome>& outcomes = run.value();
    for (const QueryOutcome& outcome : outcomes) {
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.message();
    }
    EXPECT_EQ(outcomes[0].result.tuples,
              (std::vector<Tuple>{{"0110"}}));  // R1 - {} = R1
    EXPECT_TRUE(outcomes[1].result.tuples.empty());
    EXPECT_EQ(outcomes[2].result.tuples.size(), 1u);
    EXPECT_TRUE(outcomes[3].result.tuples.empty());
  }
}

TEST(QueryEngineEdge, PairDifferingInExactlyOneElement) {
  RelationPairSpec spec;
  spec.seed = 13;
  spec.num_tuples = 32;
  spec.value_len = 8;
  spec.perturbations = 1;
  const RelationPairWorkload workload = MakeRelationPair(spec);
  ASSERT_EQ(workload.symmetric_difference, 2u);
  Result<std::vector<QueryOutcome>> run = RunEngine(
      workload.stream, {SymmetricDifferenceQuery()}, FileOptions(), 1);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value()[0].status.ok());
  EXPECT_EQ(run.value()[0].result.tuples.size(), 2u);
}

std::map<std::string, Relation> DupKeyDatabase(std::size_t n) {
  std::map<std::string, Relation> db;
  for (const char* name : {"R1", "R2"}) {
    Relation r;
    r.name = name;
    r.arity = 2;
    for (std::size_t i = 0; i < n; ++i) {
      std::string v;
      for (std::size_t b = 0; b < 4; ++b) v += ((i >> b) & 1) ? '1' : '0';
      // Column 1 is constant: every join key collides.
      r.Insert({v + (name[1] == '2' ? "1" : ""), "0"});
    }
    db[name] = r;
  }
  return db;
}

TEST(QueryEngineEdge, JoinWithAllDuplicateKeysMatchesReference) {
  const std::map<std::string, Relation> db = DupKeyDatabase(6);
  // Join on the all-equal column: every pair matches, the buffered
  // B-group is the whole relation.
  const RelAlgExprPtr join =
      EquiJoin(Rel("R1"), Rel("R2"), 2, {{1, 1}});
  Result<Relation> reference = EvaluateInMemory(join, db);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference.value().tuples.size(), 36u);
  for (const auto& storage : {MemOptions(), FileOptions()}) {
    Result<std::vector<QueryOutcome>> run =
        RunEngine(EncodeDatabaseStream(db), {join}, storage, 1);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run.value()[0].status.ok())
        << run.value()[0].status.message();
    EXPECT_TRUE(run.value()[0].result == reference.value());
  }
}

TEST(QueryEngineEdge, JoinOnUniqueKeyMatchesReferenceAndProductFallback) {
  RelationPairSpec spec;
  spec.seed = 23;
  spec.num_tuples = 12;
  spec.arity = 2;
  spec.value_len = 6;
  spec.perturbations = 4;
  const RelationPairWorkload workload = MakeRelationPair(spec);
  const RelAlgExprPtr join =
      EquiJoin(Rel("R1"), Rel("R2"), 2, {{0, 0}});
  Result<Relation> reference = EvaluateInMemory(join, workload.database);
  ASSERT_TRUE(reference.ok());

  Result<std::vector<QueryOutcome>> merged =
      RunEngine(workload.stream, {join}, MemOptions(), 1);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(merged.value()[0].status.ok())
      << merged.value()[0].status.message();
  EXPECT_TRUE(merged.value()[0].result == reference.value());

  // With the join rewrite disabled the same query runs through the
  // doubling product — same result, different (certified) plan.
  SharedScanOptions options;
  options.plan.merge_join = false;
  Result<std::vector<QueryOutcome>> product =
      RunEngine(workload.stream, {join}, MemOptions(), 1, options);
  ASSERT_TRUE(product.ok());
  ASSERT_TRUE(product.value()[0].status.ok())
      << product.value()[0].status.message();
  EXPECT_TRUE(product.value()[0].result == reference.value());
}

// ---------------------------------------------------------------------
// XML: the engine behind the Theorem 12/13 verdicts
// ---------------------------------------------------------------------

/// The two XML queries as engine plans over the BuildFromXml lanes.
std::vector<RelAlgExprPtr> XmlQueries() {
  return {Difference(Rel("set1"), Rel("set2")),       // XPath core
          SymmetricDifferenceQuery("set1", "set2")};  // XQuery core
}

void CheckXmlWorkload(const XmlWorkloadSpec& spec) {
  const XmlWorkload workload = MakeXmlWorkload(spec);
  // Streaming-decider verdicts for cross-validation.
  stmodel::StContext decider(kStreamingXmlTapes);
  decider.LoadInput(workload.document);
  Result<bool> xpath = FilterPaperXPathOnTapes(decider);
  ASSERT_TRUE(xpath.ok()) << xpath.status().message();
  stmodel::StContext decider2(kStreamingXmlTapes);
  decider2.LoadInput(workload.document);
  Result<bool> xquery = EvaluatePaperXQueryOnTapes(decider2);
  ASSERT_TRUE(xquery.ok());

  for (const auto& storage : {MemOptions(), FileOptions()}) {
    SharedScanOptions options;
    options.xml = true;
    Result<std::vector<QueryOutcome>> run =
        RunEngine(workload.document, XmlQueries(), storage, 2, options);
    ASSERT_TRUE(run.ok()) << run.status().message();
    const QueryOutcome& diff = run.value()[0];
    const QueryOutcome& symdiff = run.value()[1];
    ASSERT_TRUE(diff.status.ok()) << diff.status.message();
    ASSERT_TRUE(symdiff.status.ok()) << symdiff.status.message();
    // XPath: some set1 value missing from set2.
    EXPECT_EQ(!diff.result.tuples.empty(), xpath.value());
    // XQuery: sets equal iff the symmetric difference is empty.
    EXPECT_EQ(symdiff.result.tuples.empty(), xquery.value());
    EXPECT_EQ(symdiff.result.tuples.empty(), workload.sets_equal);
    EXPECT_EQ(symdiff.result.tuples.size(),
              workload.symmetric_difference);
  }
}

TEST(QueryEngineXml, DeepNestingDocument) {
  XmlWorkloadSpec spec;
  spec.seed = 3;
  spec.set1_values = 12;
  spec.set2_values = 12;
  spec.value_len = 8;
  spec.nesting_depth = 12;
  spec.perturbations = 2;
  CheckXmlWorkload(spec);
}

TEST(QueryEngineXml, SkewedFanoutAndOneGiantRoot) {
  // One giant root child: set1 carries essentially the whole document.
  XmlWorkloadSpec spec;
  spec.seed = 5;
  spec.set1_values = 300;
  spec.set2_values = 1;
  spec.value_len = 10;
  spec.nesting_depth = 2;
  spec.perturbations = 1;
  CheckXmlWorkload(spec);
}

TEST(QueryEngineXml, EqualSetsDocument) {
  XmlWorkloadSpec spec;
  spec.seed = 9;
  spec.set1_values = 20;
  spec.set2_values = 20;
  spec.value_len = 8;
  spec.perturbations = 0;
  CheckXmlWorkload(spec);
}

// ---------------------------------------------------------------------
// Regression pin: the tokenizer reads each input cell exactly once
// ---------------------------------------------------------------------

TEST(XmlEventReaderRegression, ReadsEachCellExactlyOnce) {
  // The pre-PR-10 scanner re-read cells up to three times per tag (one
  // probe per alternative). The event reader's single-read + pushback
  // loop is pinned here: a full event walk costs exactly
  // document-length reads plus the one terminating blank probe.
  XmlWorkloadSpec spec;
  spec.seed = 11;
  spec.set1_values = 9;
  spec.set2_values = 7;
  spec.value_len = 12;
  spec.nesting_depth = 3;
  spec.perturbations = 2;
  const XmlWorkload workload = MakeXmlWorkload(spec);

  auto storage =
      std::make_unique<extmem::CountingStorage>(workload.document);
  extmem::CountingStorage* counter = storage.get();
  tape::Tape t(std::move(storage));
  stmodel::StContext meter(1);  // arena donor for the reader's buffer
  XmlEventReader reader(t, meter.arena());
  std::size_t strings = 0;
  for (;;) {
    Result<XmlEvent> event = reader.Next();
    ASSERT_TRUE(event.ok()) << event.status().message();
    if (event.value().kind == XmlEventKind::kEndOfInput) break;
    if (event.value().kind == XmlEventKind::kEndTag &&
        event.value().content == "string") {
      ++strings;
    }
  }
  EXPECT_EQ(strings, spec.set1_values + spec.set2_values);
  EXPECT_EQ(counter->reads, workload.document.size() + 1);
}

// ---------------------------------------------------------------------
// Operator lifecycle: spill lanes and cache blocks released on success
// and on injected mid-stream failure
// ---------------------------------------------------------------------

TEST(QueryEngineLifecycle, FileResourcesReleasedOnSuccess) {
  const std::uint64_t blocks = extmem::ResidentCacheBlocks();
  const std::uint64_t files = extmem::LiveFileStorages();
  {
    RelationPairSpec spec;
    spec.seed = 29;
    spec.num_tuples = 40;
    spec.value_len = 8;
    spec.perturbations = 5;
    const RelationPairWorkload workload = MakeRelationPair(spec);
    Result<std::vector<QueryOutcome>> run = RunEngine(
        workload.stream, {SymmetricDifferenceQuery()}, FileOptions(), 2);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run.value()[0].status.ok());
  }
  EXPECT_EQ(extmem::ResidentCacheBlocks(), blocks);
  EXPECT_EQ(extmem::LiveFileStorages(), files);
}

TEST(QueryEngineLifecycle, FileResourcesReleasedOnInjectedFailure) {
  const std::uint64_t blocks = extmem::ResidentCacheBlocks();
  const std::uint64_t files = extmem::LiveFileStorages();
  {
    RelationPairSpec spec;
    spec.seed = 31;
    spec.num_tuples = 24;
    spec.value_len = 8;
    const RelationPairWorkload workload = MakeRelationPair(spec);
    SharedScanOptions options;
    options.config.inject_failure_in_sort = true;
    Result<std::vector<QueryOutcome>> run =
        RunEngine(workload.stream, {SymmetricDifferenceQuery()},
                  FileOptions(), 1, options);
    ASSERT_TRUE(run.ok());  // the scan itself succeeds...
    EXPECT_FALSE(run.value()[0].status.ok());  // ...the query fails
    EXPECT_NE(run.value()[0].status.message().find("injected"),
              std::string::npos);
  }
  EXPECT_EQ(extmem::ResidentCacheBlocks(), blocks);
  EXPECT_EQ(extmem::LiveFileStorages(), files);
}

TEST(QueryEngineLifecycle, FileResourcesReleasedOnSortLayerFault) {
  const std::uint64_t blocks = extmem::ResidentCacheBlocks();
  const std::uint64_t files = extmem::LiveFileStorages();
  {
    RelationPairSpec spec;
    spec.seed = 37;
    spec.num_tuples = 50;
    spec.value_len = 8;
    const RelationPairWorkload workload = MakeRelationPair(spec);
    SharedScanOptions options;
    options.config.sort.fanout = 4;
    options.config.sort.run_length = 8;
    options.config.sort.inject_failure_before_merge = true;
    Result<std::vector<QueryOutcome>> run =
        RunEngine(workload.stream, {SymmetricDifferenceQuery()},
                  FileOptions(), 1, options);
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run.value()[0].status.ok());
  }
  EXPECT_EQ(extmem::ResidentCacheBlocks(), blocks);
  EXPECT_EQ(extmem::LiveFileStorages(), files);
}

TEST(QueryEngineLifecycle, EarlyCloseReleasesScratch) {
  const std::uint64_t blocks = extmem::ResidentCacheBlocks();
  const std::uint64_t files = extmem::LiveFileStorages();
  {
    RelationPairSpec spec;
    spec.seed = 43;
    spec.num_tuples = 64;
    spec.value_len = 8;
    const RelationPairWorkload workload = MakeRelationPair(spec);
    stmodel::StContext ctx(1, FileOptions());
    ctx.LoadInput(workload.stream);
    Result<std::unique_ptr<RelationSpool>> spool =
        RelationSpool::Build(ctx);
    ASSERT_TRUE(spool.ok());
    EngineConfig config;
    CostMeter meter;
    OperatorEnv env{&config, &ctx.storage_options(), &meter};
    Result<StreamOperatorPtr> pipeline =
        BuildPipeline(SymmetricDifferenceQuery(), *spool.value(), env);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE(pipeline.value()->Open().ok());
    Result<TupleBatch> first = pipeline.value()->Next();
    ASSERT_TRUE(first.ok());
    // Abandon the stream mid-way; Close must still release everything.
    pipeline.value()->Close();
    pipeline.value()->Close();  // idempotent
  }
  EXPECT_EQ(extmem::ResidentCacheBlocks(), blocks);
  EXPECT_EQ(extmem::LiveFileStorages(), files);
}

// ---------------------------------------------------------------------
// Certificates: RST015 bill checks and the RST018 admission gate
// ---------------------------------------------------------------------

TEST(QueryCertificate, ViolationIsReportedAsRst015) {
  check::QueryPlanShape shape;
  shape.leaf_scans = 1;
  shape.sort_degrees = {1};
  const check::QueryCertificate cert = check::CertifyQueryPlan(shape);
  const Status ok =
      check::CheckQueryCostsAgainstCertificate(3, 64, cert, 1024);
  EXPECT_TRUE(ok.ok()) << ok.message();
  const Status bad = check::CheckQueryCostsAgainstCertificate(
      1u << 20, 64, cert, 1024);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("RST015"), std::string::npos);
}

TEST(QueryCertificate, AdmissionGateRejectsDuplicateKeyJoins) {
  RelationPairSpec spec;
  spec.seed = 47;
  spec.num_tuples = 8;
  spec.arity = 2;
  spec.value_len = 6;
  const RelationPairWorkload workload = MakeRelationPair(spec);
  const RelAlgExprPtr join =
      EquiJoin(Rel("R1"), Rel("R2"), 2, {{0, 0}});

  // Without the unique-keys promise the certified group buffer carries
  // an N-degree term, which escapes the O(log N) internal envelope.
  SharedScanOptions options;
  options.admit = true;
  Result<std::vector<QueryOutcome>> rejected =
      RunEngine(workload.stream, {join}, MemOptions(), 1, options);
  ASSERT_TRUE(rejected.ok());
  ASSERT_FALSE(rejected.value()[0].status.ok());
  EXPECT_NE(rejected.value()[0].status.message().find("RST018"),
            std::string::npos);

  // With the promise the same plan is admitted, runs, and its measured
  // bill passes the RST015 post-check.
  options.unique_join_keys = true;
  Result<std::vector<QueryOutcome>> admitted =
      RunEngine(workload.stream, {join}, MemOptions(), 1, options);
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE(admitted.value()[0].status.ok())
      << admitted.value()[0].status.message();
}

TEST(QueryCertificate, SymmetricDifferencePlanIsInTheLogScanClass) {
  RelationPairSpec spec;
  spec.seed = 53;
  spec.num_tuples = 16;
  const RelationPairWorkload workload = MakeRelationPair(spec);
  SharedScanOptions options;
  options.admit = true;  // full Theorem 11 admission gate
  Result<std::vector<QueryOutcome>> run =
      RunEngine(workload.stream, {SymmetricDifferenceQuery()},
                MemOptions(), 1, options);
  ASSERT_TRUE(run.ok());
  const QueryOutcome& outcome = run.value()[0];
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.message();
  EXPECT_TRUE(check::WithinLogScanClass(outcome.certificate));
  EXPECT_EQ(outcome.plan, "((R1 - R2) + (R2 - R1))");
}

// ---------------------------------------------------------------------
// Workload generator invariants
// ---------------------------------------------------------------------

TEST(QueryWorkload, RelationPairGroundTruthIsExact) {
  for (const std::size_t k : {0u, 1u, 5u}) {
    RelationPairSpec spec;
    spec.seed = 61;
    spec.num_tuples = 20;
    spec.perturbations = k;
    const RelationPairWorkload workload = MakeRelationPair(spec);
    EXPECT_EQ(workload.symmetric_difference, 2 * k);
    const Relation& r1 = workload.database.at("R1");
    const Relation& r2 = workload.database.at("R2");
    EXPECT_EQ(r1.tuples.size(), 20u);
    EXPECT_EQ(r2.tuples.size(), 20u);
    if (k == 0) {
      EXPECT_TRUE(r1 == r2);
    }
  }
  // Same spec, same instance: workloads are pure functions of the spec.
  RelationPairSpec spec;
  spec.seed = 67;
  spec.num_tuples = 10;
  spec.skew_duplicates = true;
  EXPECT_EQ(MakeRelationPair(spec).stream, MakeRelationPair(spec).stream);
}

TEST(QueryWorkload, XmlGroundTruthIsExact) {
  XmlWorkloadSpec spec;
  spec.seed = 71;
  spec.set1_values = 10;
  spec.set2_values = 6;
  spec.perturbations = 2;
  const XmlWorkload workload = MakeXmlWorkload(spec);
  // overlap = 6, common = 4: |set1 \ set2| = 6, |set2 \ set1| = 2.
  EXPECT_EQ(workload.symmetric_difference, 8u);
  EXPECT_FALSE(workload.sets_equal);
  EXPECT_EQ(MakeXmlWorkload(spec).document, workload.document);
}

}  // namespace
}  // namespace rstlab::query::engine
