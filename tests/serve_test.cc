#include <gtest/gtest.h>

#include <poll.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/artifact_cache.h"
#include "serve/client.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "serve/shutdown.h"
#include "serve/trace_bridge.h"
#include "util/status.h"

namespace rstlab::serve {
namespace {

// ---------------------------------------------------------------------
// HTTP/1.1 parser edge cases. Every malformed input must map to a named
// status plus the HTTP code the server answers with — never a crash,
// never a silent acceptance.
// ---------------------------------------------------------------------

HttpParseResult Parse(std::string_view buffer) {
  return ParseHttpRequest(buffer, HttpLimits{});
}

TEST(HttpParseTest, ParsesSimpleGet) {
  const HttpParseResult r =
      Parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(r.progress, ParseProgress::kDone);
  EXPECT_EQ(r.request.method, "GET");
  EXPECT_EQ(r.request.target, "/healthz");
  EXPECT_EQ(r.request.version, "HTTP/1.1");
  ASSERT_NE(r.request.FindHeader("host"), nullptr);
  EXPECT_EQ(*r.request.FindHeader("host"), "x");
}

TEST(HttpParseTest, HeaderLookupIsCaseInsensitive) {
  const HttpParseResult r = Parse(
      "POST /v1/experiment HTTP/1.1\r\nCoNtEnT-LeNgTh: 2\r\n\r\nok");
  ASSERT_EQ(r.progress, ParseProgress::kDone);
  EXPECT_EQ(r.request.body, "ok");
  EXPECT_NE(r.request.FindHeader("content-length"), nullptr);
}

TEST(HttpParseTest, TruncatedHeadNeedsMore) {
  EXPECT_EQ(Parse("").progress, ParseProgress::kNeedMore);
  EXPECT_EQ(Parse("POST /v1/exp").progress, ParseProgress::kNeedMore);
  EXPECT_EQ(Parse("POST / HTTP/1.1\r\nHost: x\r\n").progress,
            ParseProgress::kNeedMore);
}

TEST(HttpParseTest, TruncatedBodyNeedsMore) {
  const HttpParseResult r = Parse(
      "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345");
  EXPECT_EQ(r.progress, ParseProgress::kNeedMore);
}

TEST(HttpParseTest, BadRequestLineIs400) {
  const HttpParseResult r = Parse("NONSENSE\r\nHost: x\r\n\r\n");
  ASSERT_EQ(r.progress, ParseProgress::kError);
  EXPECT_EQ(r.http_status, 400);
  EXPECT_EQ(r.error.code(), StatusCode::kInvalidArgument);
}

TEST(HttpParseTest, NonNumericContentLengthIs400) {
  const HttpParseResult r = Parse(
      "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
  ASSERT_EQ(r.progress, ParseProgress::kError);
  EXPECT_EQ(r.http_status, 400);
  EXPECT_EQ(r.error.code(), StatusCode::kInvalidArgument);
}

TEST(HttpParseTest, OversizedDeclaredBodyIs413BeforeBodyArrives) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  // The declared length alone triggers the error — no body bytes sent.
  const HttpParseResult r = ParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n", limits);
  ASSERT_EQ(r.progress, ParseProgress::kError);
  EXPECT_EQ(r.http_status, 413);
  EXPECT_EQ(r.error.code(), StatusCode::kOutOfRange);
}

TEST(HttpParseTest, OversizedHeadIs431) {
  HttpLimits limits;
  limits.max_head_bytes = 128;
  std::string head = "GET / HTTP/1.1\r\nX-Pad: ";
  head.append(256, 'a');
  head += "\r\n\r\n";
  const HttpParseResult r = ParseHttpRequest(head, limits);
  ASSERT_EQ(r.progress, ParseProgress::kError);
  EXPECT_EQ(r.http_status, 431);
}

TEST(HttpParseTest, TransferEncodingOnRequestIs501) {
  const HttpParseResult r = Parse(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(r.progress, ParseProgress::kError);
  EXPECT_EQ(r.http_status, 501);
}

TEST(HttpParseTest, PipelinedRequestsConsumeExactly) {
  const std::string first =
      "POST /v1/experiment HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
  const std::string second = "GET /metrics HTTP/1.1\r\n\r\n";
  const std::string buffer = first + second;

  const HttpParseResult r1 = Parse(buffer);
  ASSERT_EQ(r1.progress, ParseProgress::kDone);
  EXPECT_EQ(r1.consumed, first.size());
  EXPECT_EQ(r1.request.body, "abc");

  const HttpParseResult r2 =
      Parse(std::string_view(buffer).substr(r1.consumed));
  ASSERT_EQ(r2.progress, ParseProgress::kDone);
  EXPECT_EQ(r2.request.method, "GET");
  EXPECT_EQ(r2.request.target, "/metrics");
  EXPECT_EQ(r2.consumed, second.size());
}

TEST(HttpParseTest, StatusMappingCoversProtocolCodes) {
  EXPECT_EQ(HttpStatusForError(Status::OK()), 200);
  EXPECT_EQ(HttpStatusForError(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusForError(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpStatusForError(Status::OutOfRange("x")), 413);
  EXPECT_EQ(HttpStatusForError(Status::ResourceExhausted("x")), 429);
  EXPECT_EQ(HttpStatusForError(Status::FailedPrecondition("x")), 503);
  EXPECT_EQ(HttpStatusForError(Status::Internal("x")), 500);
}

// ---------------------------------------------------------------------
// JSON parser and writer.
// ---------------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  const Result<JsonValue> parsed = JsonValue::Parse(
      R"({"a":1,"b":"x","c":[1,2,3],"d":{"e":true},"f":null})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("a")->uint_value(), 1u);
  EXPECT_EQ(root.Find("b")->string_value(), "x");
  EXPECT_EQ(root.Find("c")->array_items().size(), 3u);
  EXPECT_TRUE(root.Find("d")->Find("e")->bool_value());
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonTest, Uint64FieldsRoundTripExactly) {
  const std::uint64_t seed = 18104395783060395222ULL;
  const std::string doc = "{\"seed\":" + std::to_string(seed) + "}";
  const Result<JsonValue> parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().Find("seed")->is_uint());
  EXPECT_EQ(parsed.value().Find("seed")->uint_value(), seed);
}

TEST(JsonTest, MalformedDocumentsAreNamedErrors) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "{\"a\":1,}", "[1,2", "{\"a\" 1}", "tru",
        "{\"a\":1}x", "\"unterminated", "{\"a\":--3}"}) {
    const Result<JsonValue> parsed = JsonValue::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(JsonTest, SurrogatePairsDecodeToFourByteUtf8) {
  // A high+low surrogate escape pair (U+1F600) must decode to one
  // 4-byte UTF-8 sequence, not two 3-byte CESU-8 surrogate encodings.
  const Result<JsonValue> parsed = JsonValue::Parse(
      "{\"e\":\"\\uD83D\\uDE00\",\"bmp\":\"\\u00E9\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().Find("e")->string_value(), "\xF0\x9F\x98\x80");
  EXPECT_EQ(parsed.value().Find("bmp")->string_value(), "\xC3\xA9");
}

TEST(JsonTest, LoneSurrogatesAreRejected) {
  const std::string bad_bodies[] = {
      R"({"e":"\uD83D"})",                 // high surrogate ends the string
      R"({"e":"\uD83Dxy"})",               // high surrogate, no \u follows
      "{\"e\":\"\\uD83D\\u0041\"}",        // \u follows but is not low
      R"({"e":"\uDE00"})",                 // low surrogate first
  };
  for (const std::string& bad : bad_bodies) {
    const Result<JsonValue> parsed = JsonValue::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(JsonTest, WriterEscapesStrings) {
  const std::string doc = JsonWriter()
                              .Field("k", "a\"b\\c\nd")
                              .Field("n", std::uint64_t{7})
                              .Build();
  EXPECT_EQ(doc, "{\"k\":\"a\\\"b\\\\c\\nd\",\"n\":7}");
  // Writer output must re-parse to the same values.
  const Result<JsonValue> parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("k")->string_value(), "a\"b\\c\nd");
}

// ---------------------------------------------------------------------
// Experiment request validation: every rejection is a named status.
// ---------------------------------------------------------------------

TEST(RequestTest, ParsesFingerprintRequest) {
  const Result<ExperimentRequest> r = ParseExperimentRequest(
      R"({"request_id":"r1","tenant":"alice","problem":"fingerprint",
          "generator":{"kind":"equal","m":16,"n":12,"seed":3},
          "trials":8,"seed":42,"stream":true})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().request_id, "r1");
  EXPECT_EQ(r.value().tenant, "alice");
  ASSERT_TRUE(r.value().generator.has_value());
  EXPECT_EQ(r.value().generator->CacheKey(), "equal:16:12:3");
  EXPECT_EQ(r.value().trials, 8u);
  EXPECT_TRUE(r.value().stream);
}

TEST(RequestTest, UnknownProblemIsNotFound) {
  const Result<ExperimentRequest> r = ParseExperimentRequest(
      R"({"request_id":"r1","problem":"halting"})");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RequestTest, MalformedBodiesAreInvalidArgument) {
  const char* bad[] = {
      "{not json",
      "[1,2,3]",
      R"({"request_id":"r1"})",  // missing problem
      R"({"problem":"fingerprint",
          "generator":{"kind":"equal","m":4,"n":4}})",  // missing id
      // instance and generator are mutually exclusive and required:
      R"({"request_id":"r","problem":"fingerprint"})",
      R"({"request_id":"r","problem":"fingerprint","instance":"1#2#",
          "generator":{"kind":"equal","m":4,"n":4}})",
      R"({"request_id":"r","problem":"fingerprint",
          "generator":{"kind":"bogus","m":4,"n":4}})",
      R"({"request_id":"r","problem":"fingerprint",
          "generator":{"kind":"equal","m":0,"n":4}})",
      R"({"request_id":"r","problem":"fingerprint",
          "generator":{"kind":"equal","m":4,"n":4},"trials":0})",
      R"({"request_id":"r","problem":"xpath-count","query":""})",
      R"({"request_id":"r","problem":"xpath-count",
          "query":"child::a","xml":"<a/>",
          "generator":{"kind":"equal","m":4,"n":4}})",
  };
  for (const char* body : bad) {
    const Result<ExperimentRequest> r = ParseExperimentRequest(body);
    ASSERT_FALSE(r.ok()) << "accepted: " << body;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << body;
  }
}

TEST(RequestTest, TrialCountBeyondLimitIsRejected) {
  const Result<ExperimentRequest> r = ParseExperimentRequest(
      R"({"request_id":"r","problem":"fingerprint",
          "generator":{"kind":"equal","m":4,"n":4},"trials":11})",
      /*max_trials=*/10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestTest, GeneratorBeyondCellLimitIsRejected) {
  // An unchecked generator size would let one request allocate ~m
  // values inside a scheduler worker; the ceiling rejects it at parse
  // time. 2*m*(n+1) cells: m=16, n=12 needs 416.
  const auto body = [](std::uint64_t m, std::uint64_t n) {
    return R"({"request_id":"r","problem":"fingerprint",
               "generator":{"kind":"equal","m":)" +
           std::to_string(m) + ",\"n\":" + std::to_string(n) + "}}";
  };
  EXPECT_TRUE(ParseExperimentRequest(body(16, 12), /*max_trials=*/10,
                                     /*max_generator_cells=*/416)
                  .ok());
  const Result<ExperimentRequest> over_m = ParseExperimentRequest(
      body(17, 12), /*max_trials=*/10, /*max_generator_cells=*/416);
  ASSERT_FALSE(over_m.ok());
  EXPECT_EQ(over_m.status().code(), StatusCode::kInvalidArgument);
  const Result<ExperimentRequest> over_n = ParseExperimentRequest(
      body(1, 1000), /*max_trials=*/10, /*max_generator_cells=*/416);
  ASSERT_FALSE(over_n.ok());
  EXPECT_EQ(over_n.status().code(), StatusCode::kInvalidArgument);

  // The default ceiling stops the pathological request outright, with
  // no overflow in the size computation.
  const Result<ExperimentRequest> huge =
      ParseExperimentRequest(body(1000000000000000ULL, 8));
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kInvalidArgument);
  const Result<ExperimentRequest> huge_n =
      ParseExperimentRequest(body(8, 18446744073709551615ULL));
  ASSERT_FALSE(huge_n.ok());
  EXPECT_EQ(huge_n.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestTest, BudgetBelowCertifiedBoundIsRejected) {
  ArtifactCache cache(8);
  Result<ExperimentRequest> r = ParseExperimentRequest(
      R"({"request_id":"r","problem":"fingerprint",
          "generator":{"kind":"equal","m":4,"n":4},
          "budget":{"r":1,"s":1024,"t":2}})");
  ASSERT_TRUE(r.ok()) << r.status();
  ExperimentRequest request = std::move(r).value();
  const Status below = ValidateBudgetAgainstRegistry(request, cache);
  EXPECT_EQ(below.code(), StatusCode::kInvalidArgument);

  // A generous budget passes, and the certificate is now a cached
  // artifact: the second validation must hit.
  request.budget->max_scans = 1 << 20;
  EXPECT_TRUE(ValidateBudgetAgainstRegistry(request, cache).ok());
  EXPECT_GE(cache.stats().hits, 1u);
}

TEST(RequestTest, CertificateCacheIsKeyedByRequestSize) {
  // The symbolic certificate is evaluated at the request's own N, so
  // two request sizes must never alias one cached admission decision:
  // each size gets its own "machine@N=n" entry, and only a repeat of
  // the same size hits.
  ArtifactCache cache(8);
  auto parse = [](std::uint64_t m) {
    Result<ExperimentRequest> r = ParseExperimentRequest(
        R"({"request_id":"r","problem":"fingerprint",
            "generator":{"kind":"equal","m":)" +
        std::to_string(m) +
        R"(,"n":4},"budget":{"r":1048576,"s":1024,"t":2}})");
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  };
  const ExperimentRequest small = parse(4);
  const ExperimentRequest large = parse(8);
  EXPECT_NE(RequestInputSize(small), RequestInputSize(large));
  EXPECT_TRUE(ValidateBudgetAgainstRegistry(small, cache).ok());
  EXPECT_TRUE(ValidateBudgetAgainstRegistry(large, cache).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_TRUE(ValidateBudgetAgainstRegistry(small, cache).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
}

// ---------------------------------------------------------------------
// ArtifactCache: content-hash keying, single-flight, LRU eviction.
// ---------------------------------------------------------------------

TEST(ArtifactCacheTest, MissBuildsOnceThenHits) {
  obs::MetricsRegistry metrics;
  ArtifactCache cache(4, &metrics);
  int builds = 0;
  const auto factory = [&builds]() -> std::shared_ptr<const int> {
    ++builds;
    return std::make_shared<const int>(7);
  };
  for (int i = 0; i < 3; ++i) {
    const std::shared_ptr<const int> value =
        cache.GetOrCreate<int>("pool", "k=12", factory);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, 7);
  }
  EXPECT_EQ(builds, 1);
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(metrics.counter("serve.cache.hits"), 2u);
  EXPECT_EQ(metrics.counter("serve.cache.misses"), 1u);
}

TEST(ArtifactCacheTest, KindPartitionsTheNamespace) {
  ArtifactCache cache(4);
  const auto make = [](int v) {
    return [v]() -> std::shared_ptr<const int> {
      return std::make_shared<const int>(v);
    };
  };
  // Same content, different kinds: two distinct artifacts.
  EXPECT_EQ(*cache.GetOrCreate<int>("xml", "same", make(1)), 1);
  EXPECT_EQ(*cache.GetOrCreate<int>("xpath", "same", make(2)), 2);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsed) {
  ArtifactCache cache(2);
  const auto make = [](int v) {
    return [v]() -> std::shared_ptr<const int> {
      return std::make_shared<const int>(v);
    };
  };
  cache.GetOrCreate<int>("k", "a", make(1));
  cache.GetOrCreate<int>("k", "b", make(2));
  // Touch "a" so "b" is the LRU victim.
  cache.GetOrCreate<int>("k", "a", make(1));
  cache.GetOrCreate<int>("k", "c", make(3));

  int rebuilt_a = 0;
  int rebuilt_b = 0;
  cache.GetOrCreate<int>("k", "a", [&rebuilt_a]() {
    ++rebuilt_a;
    return std::make_shared<const int>(1);
  });
  cache.GetOrCreate<int>("k", "b", [&rebuilt_b]() {
    ++rebuilt_b;
    return std::make_shared<const int>(2);
  });
  EXPECT_EQ(rebuilt_a, 0) << "recently-used entry was evicted";
  EXPECT_EQ(rebuilt_b, 1) << "LRU entry survived past capacity";
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ArtifactCacheTest, FailedBuildsAreNotCached) {
  ArtifactCache cache(4);
  int attempts = 0;
  const auto failing = [&attempts]() -> std::shared_ptr<const int> {
    ++attempts;
    return nullptr;
  };
  EXPECT_EQ(cache.GetOrCreate<int>("k", "bad", failing), nullptr);
  EXPECT_EQ(cache.GetOrCreate<int>("k", "bad", failing), nullptr);
  EXPECT_EQ(attempts, 2) << "a failed build must retry, not cache null";
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCacheTest, HashCollisionFallsBackToFactory) {
  // Same (kind, hash), different content — injected through the erased
  // core since real 64-bit FNV-1a colliding strings are impractical to
  // find. The colliding request must get its own freshly built value,
  // and the resident entry must survive untouched.
  obs::MetricsRegistry metrics;
  ArtifactCache cache(4, &metrics);
  const auto make = [](int v) {
    return [v]() -> std::shared_ptr<const void> {
      return std::make_shared<const int>(v);
    };
  };
  const std::uint64_t hash = 42;
  const auto resident =
      cache.GetOrCreateErased("k", hash, "payload-a", make(1));
  ASSERT_NE(resident, nullptr);

  const auto colliding =
      cache.GetOrCreateErased("k", hash, "payload-b", make(2));
  ASSERT_NE(colliding, nullptr);
  EXPECT_EQ(*std::static_pointer_cast<const int>(colliding), 2)
      << "collision served the other payload's artifact";
  EXPECT_EQ(cache.stats().collisions, 1u);
  EXPECT_EQ(metrics.counter("serve.cache.collisions"), 1u);

  // The original content still hits its entry.
  const auto again =
      cache.GetOrCreateErased("k", hash, "payload-a", make(3));
  EXPECT_EQ(*std::static_pointer_cast<const int>(again), 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ArtifactCacheTest, ContentHashIsStable) {
  // The shard-determinism argument needs every process to key its cache
  // identically; pin the FNV-1a values so a drift is loud.
  EXPECT_EQ(HashContent(""), 1469598103934665603ULL);
  EXPECT_EQ(HashContent("a"), 4953267810257967366ULL);
  EXPECT_EQ(HashContent("equal:16:12:3"), HashContent("equal:16:12:3"));
  EXPECT_NE(HashContent("equal:16:12:3"), HashContent("equal:16:12:4"));
}

// ---------------------------------------------------------------------
// FairScheduler: bounded admission and per-tenant round-robin.
// ---------------------------------------------------------------------

/// A gate the test holds closed while it stacks up queued jobs.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(FairSchedulerTest, RejectsBeyondAdmissionBound) {
  FairScheduler::Options options;
  options.threads = 1;
  options.max_inflight = 2;
  FairScheduler scheduler(options);

  Gate gate;
  std::atomic<int> ran{0};
  const auto job = [&] {
    gate.Wait();
    ran.fetch_add(1);
  };
  ASSERT_TRUE(scheduler.Submit("alice", job).ok());
  ASSERT_TRUE(scheduler.Submit("alice", job).ok());

  const Status rejected = scheduler.Submit("alice", job);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_EQ(scheduler.stats().inflight, 2u);

  gate.Open();
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(scheduler.stats().completed, 2u);
  EXPECT_EQ(scheduler.stats().inflight, 0u);

  const Status draining = scheduler.Submit("alice", [] {});
  ASSERT_FALSE(draining.ok());
  EXPECT_EQ(draining.code(), StatusCode::kFailedPrecondition);
}

TEST(FairSchedulerTest, ThrowingJobReleasesItsSlot) {
  FairScheduler::Options options;
  options.threads = 1;
  options.max_inflight = 1;
  FairScheduler scheduler(options);

  // With max_inflight=1 a leaked slot would make every later Submit a
  // 429 and Drain() a deadlock.
  ASSERT_TRUE(scheduler
                  .Submit("alice",
                          [] { throw std::runtime_error("boom"); })
                  .ok());
  for (int i = 0; i < 400 && scheduler.stats().completed == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(scheduler.stats().completed, 1u);
  EXPECT_EQ(scheduler.stats().inflight, 0u);

  std::atomic<bool> ran{false};
  ASSERT_TRUE(scheduler.Submit("alice", [&] { ran = true; }).ok());
  scheduler.Drain();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(scheduler.stats().completed, 2u);
}

TEST(FairSchedulerTest, FloodingTenantDoesNotStarveOthers) {
  FairScheduler::Options options;
  options.threads = 1;
  options.max_inflight = 16;
  FairScheduler scheduler(options);

  Gate gate;
  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto tagged = [&](const std::string& tag, bool blocking) {
    return [&, tag, blocking] {
      if (blocking) gate.Wait();
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };

  // The first job occupies the single worker; everything submitted
  // while it blocks lands in tenant queues in submission order.
  ASSERT_TRUE(scheduler.Submit("flooder", tagged("f0", true)).ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        scheduler
            .Submit("flooder", tagged("f" + std::to_string(i), false))
            .ok());
  }
  ASSERT_TRUE(scheduler.Submit("bob", tagged("b0", false)).ok());

  gate.Open();
  scheduler.Drain();

  ASSERT_EQ(order.size(), 6u);
  const auto position = [&](const std::string& tag) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == tag) return i;
    }
    return order.size();
  };
  // Fairness: bob's single request must not sit behind the flooder's
  // whole backlog — at most one flooder job runs between dispatches.
  EXPECT_LT(position("b0"), position("f4"))
      << "tenant bob starved behind the flooder's backlog";
}

// ---------------------------------------------------------------------
// ShardRouter: deterministic placement, bounded remap on regrowth.
// ---------------------------------------------------------------------

TEST(ShardRouterTest, RoutingIsDeterministicAcrossInstances) {
  const ShardRouter a(3);
  const ShardRouter b(3);
  for (int i = 0; i < 200; ++i) {
    const std::string id = "req-" + std::to_string(i);
    const std::size_t shard = a.Route(id);
    EXPECT_LT(shard, 3u);
    EXPECT_EQ(shard, b.Route(id)) << id;
  }
}

TEST(ShardRouterTest, SpreadsLoadAcrossShards) {
  const ShardRouter router(3);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 999; ++i) {
    counts[router.Route("request-" + std::to_string(i))] += 1;
  }
  for (int shard = 0; shard < 3; ++shard) {
    EXPECT_GT(counts[shard], 100)
        << "shard " << shard << " owns almost nothing";
  }
}

TEST(ShardRouterTest, GrowingTheRingRemapsAMinority) {
  const ShardRouter before(4);
  const ShardRouter after(5);
  int moved = 0;
  const int total = 1000;
  for (int i = 0; i < total; ++i) {
    const std::string id = "key-" + std::to_string(i);
    if (before.Route(id) != after.Route(id)) ++moved;
  }
  // Consistent hashing moves ~1/(N+1) = 20%; hash % N would move 80%.
  EXPECT_LT(moved, total / 2);
  EXPECT_GT(moved, 0);
}

// ---------------------------------------------------------------------
// ShutdownGuard: signal -> flag + pollable wake, per the contract the
// serve daemon and the bench binaries share.
// ---------------------------------------------------------------------

bool FdReadable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  return ::poll(&p, 1, timeout_ms) == 1 && (p.revents & POLLIN) != 0;
}

TEST(ShutdownGuardTest, SigtermSetsFlagAndWakesPoller) {
  ShutdownGuard guard;
  EXPECT_FALSE(guard.requested());
  EXPECT_FALSE(FdReadable(guard.wait_fd(), 0));
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(guard.requested());
  EXPECT_TRUE(FdReadable(guard.wait_fd(), 1000));
}

TEST(ShutdownGuardTest, SigintAndProgrammaticTriggerBehaveAlike) {
  {
    ShutdownGuard guard;
    ASSERT_EQ(std::raise(SIGINT), 0);
    EXPECT_TRUE(guard.requested());
  }
  // A fresh guard starts clean: the previous trigger must not leak.
  ShutdownGuard guard;
  EXPECT_FALSE(guard.requested());
  guard.RequestShutdown();
  EXPECT_TRUE(guard.requested());
  EXPECT_TRUE(FdReadable(guard.wait_fd(), 1000));
}

// ---------------------------------------------------------------------
// NdjsonTraceSink: trial markers only, one complete line per frame.
// ---------------------------------------------------------------------

TEST(TraceBridgeTest, ForwardsTrialMarkersOnly) {
  std::vector<std::string> lines;
  NdjsonTraceSink sink([&lines](std::string_view line) {
    lines.emplace_back(line);
  });
  sink.OnEvent(obs::MakeTrialEvent(obs::EventKind::kTrialBegin, 3));
  sink.OnEvent(obs::MakeTrialEvent(obs::EventKind::kTrialEnd, 3));
  ASSERT_EQ(sink.frames(), 2u);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"trial_begin\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trial\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"trial_end\""), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end over loopback: one server per fixture, keep-alive clients.
// ---------------------------------------------------------------------

class ServeEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.threads = 2;
    options.max_inflight = 32;
    options.limits.max_body_bytes = 4096;
    server_ = std::make_unique<HttpServer>(options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect(server_->port()).ok());
  }

  void TearDown() override { server_->Shutdown(); }

  Result<ClientResponse> Post(const std::string& body) {
    return client_.Request("POST", "/v1/experiment", body);
  }

  static std::string FingerprintBody(const std::string& id,
                                     bool stream = false) {
    return JsonWriter()
        .Field("request_id", id)
        .Field("tenant", "alice")
        .Field("problem", "fingerprint")
        .FieldRaw("generator", JsonWriter()
                                   .Field("kind", "equal")
                                   .Field("m", std::uint64_t{16})
                                   .Field("n", std::uint64_t{12})
                                   .Field("seed", std::uint64_t{3})
                                   .Build())
        .Field("trials", std::uint64_t{3})
        .Field("seed", std::uint64_t{42})
        .Field("stream", stream)
        .Build();
  }

  std::unique_ptr<HttpServer> server_;
  HttpClient client_;
};

TEST_F(ServeEndToEndTest, HealthzAnswersOk) {
  const Result<ClientResponse> r = client_.Request("GET", "/healthz", "");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_NE(r.value().body.find("\"status\":\"ok\""), std::string::npos);
}

TEST_F(ServeEndToEndTest, MetricsEndpointPublishesCounters) {
  ASSERT_TRUE(Post(FingerprintBody("m1")).ok());
  const Result<ClientResponse> r = client_.Request("GET", "/metrics", "");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_NE(r.value().body.find("serve.requests"), std::string::npos);
  EXPECT_NE(r.value().body.find("serve.experiment.completed"),
            std::string::npos);
}

TEST_F(ServeEndToEndTest, ExperimentResponsesAreDeterministic) {
  const Result<ClientResponse> first = Post(FingerprintBody("same-id"));
  const Result<ClientResponse> second = Post(FingerprintBody("same-id"));
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().status, 200);
  EXPECT_EQ(first.value().body, second.value().body)
      << "byte-identical requests must produce byte-identical frames";
  EXPECT_NE(first.value().body.find("\"event\":\"result\""),
            std::string::npos);
  EXPECT_NE(first.value().body.find("\"checksum\":"), std::string::npos);
}

TEST_F(ServeEndToEndTest, MalformedJsonBodyIs400) {
  const Result<ClientResponse> r = Post("{not json at all");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 400);
  EXPECT_NE(r.value().body.find("\"event\":\"error\""), std::string::npos);
  EXPECT_NE(r.value().body.find("\"code\":\"InvalidArgument\""),
            std::string::npos);
}

TEST_F(ServeEndToEndTest, UnknownProblemIs404WithNamedError) {
  const Result<ClientResponse> r = Post(
      R"({"request_id":"r","problem":"halting","trials":1})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 404);
  EXPECT_NE(r.value().body.find("\"code\":\"NotFound\""),
            std::string::npos);
  EXPECT_NE(r.value().body.find("halting"), std::string::npos);
}

TEST_F(ServeEndToEndTest, UnknownRouteIs404) {
  const Result<ClientResponse> r =
      client_.Request("GET", "/v2/nothing", "");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 404);
}

TEST_F(ServeEndToEndTest, OversizedBodyIs413) {
  std::string body = FingerprintBody("big");
  body.append(8192, ' ');
  const Result<ClientResponse> r = Post(body);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 413);
}

TEST_F(ServeEndToEndTest, StreamingEmitsTrialFramesThenResult) {
  const Result<ClientResponse> r =
      Post(FingerprintBody("stream-1", /*stream=*/true));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 200);
  const std::vector<std::string> lines = r.value().Lines();
  // trials=3 -> begin+end per trial, then the result frame.
  ASSERT_EQ(lines.size(), 7u) << r.value().body;
  for (int trial = 0; trial < 3; ++trial) {
    EXPECT_NE(lines[2 * trial].find("\"event\":\"trial_begin\""),
              std::string::npos);
    EXPECT_NE(lines[2 * trial + 1].find("\"event\":\"trial_end\""),
              std::string::npos);
  }
  EXPECT_NE(lines.back().find("\"event\":\"result\""), std::string::npos);

  // The streamed result frame equals the buffered one byte for byte.
  const Result<ClientResponse> plain = Post(FingerprintBody("stream-1"));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(lines.back() + "\n", plain.value().body);
}

TEST_F(ServeEndToEndTest, PipelinedRequestsAnswerInOrder) {
  const std::string body1 = FingerprintBody("pipe-1");
  const std::string body2 = FingerprintBody("pipe-2");
  const auto raw = [](const std::string& body) {
    return "POST /v1/experiment HTTP/1.1\r\nHost: x\r\n"
           "Content-Type: application/json\r\n"
           "Content-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
  };
  ASSERT_TRUE(client_.SendRaw(raw(body1) + raw(body2)).ok());
  const Result<ClientResponse> r1 = client_.ReadResponse();
  const Result<ClientResponse> r2 = client_.ReadResponse();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().status, 200);
  EXPECT_EQ(r2.value().status, 200);
  EXPECT_NE(r1.value().body.find("pipe-1"), std::string::npos);
  EXPECT_NE(r2.value().body.find("pipe-2"), std::string::npos);
}

TEST_F(ServeEndToEndTest, XpathCountReturnsSelectedNodes) {
  const std::string body =
      JsonWriter()
          .Field("request_id", "xp-1")
          .Field("problem", "xpath-count")
          .Field("query", "descendant::title")
          .Field("xml",
                 "<lib><book><title>a</title></book>"
                 "<book><title>b</title></book></lib>")
          .Build();
  const Result<ClientResponse> r = Post(body);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_NE(r.value().body.find("\"extra\":2"), std::string::npos)
      << r.value().body;
}

TEST_F(ServeEndToEndTest, InvalidXpathQueryIsNamed400) {
  const std::string body = JsonWriter()
                               .Field("request_id", "xp-bad")
                               .Field("problem", "xpath-count")
                               .Field("query", "/lib/book")
                               .Field("xml", "<lib/>")
                               .Build();
  const Result<ClientResponse> r = Post(body);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().status, 400);
  EXPECT_NE(r.value().body.find("\"code\":\"InvalidArgument\""),
            std::string::npos);
}

TEST(ServeAdmissionTest, OverloadedServerAnswers429) {
  ServerOptions options;
  options.threads = 1;
  options.max_inflight = 1;
  HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string slow = JsonWriter()
                               .Field("request_id", "slow")
                               .Field("problem", "test-sleep")
                               .Field("sleep_ms", std::uint64_t{1500})
                               .Build();
  const std::string raw =
      "POST /v1/experiment HTTP/1.1\r\nHost: x\r\n"
      "Content-Length: " +
      std::to_string(slow.size()) + "\r\n\r\n" + slow;

  // Occupy the only inflight slot, then probe from a second connection.
  HttpClient holder;
  ASSERT_TRUE(holder.Connect(server.port()).ok());
  ASSERT_TRUE(holder.SendRaw(raw).ok());
  // The slot is taken once the sleep job is admitted; poll until the
  // scheduler reports it rather than racing a fixed delay.
  for (int i = 0; i < 200 && server.scheduler_stats().inflight == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.scheduler_stats().inflight, 1u);

  HttpClient prober;
  ASSERT_TRUE(prober.Connect(server.port()).ok());
  const Result<ClientResponse> rejected =
      prober.Request("POST", "/v1/experiment", slow);
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected.value().status, 429);
  EXPECT_NE(rejected.value().body.find("\"code\":\"ResourceExhausted\""),
            std::string::npos);

  const Result<ClientResponse> held = holder.ReadResponse();
  ASSERT_TRUE(held.ok()) << held.status();
  EXPECT_EQ(held.value().status, 200);
  server.Shutdown();
  EXPECT_GE(server.scheduler_stats().completed, 1u);
}

TEST(ServeShutdownTest, ShutdownDrainsInflightExperiments) {
  ServerOptions options;
  options.threads = 1;
  HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string slow = JsonWriter()
                               .Field("request_id", "drain-me")
                               .Field("problem", "test-sleep")
                               .Field("sleep_ms", std::uint64_t{300})
                               .Build();
  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  const std::string raw =
      "POST /v1/experiment HTTP/1.1\r\nHost: x\r\n"
      "Content-Length: " +
      std::to_string(slow.size()) + "\r\n\r\n" + slow;
  ASSERT_TRUE(client.SendRaw(raw).ok());
  for (int i = 0; i < 200 && server.scheduler_stats().inflight == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Shutdown must block until the admitted experiment finished.
  server.Shutdown();
  EXPECT_EQ(server.scheduler_stats().inflight, 0u);
  EXPECT_GE(server.scheduler_stats().completed, 1u);
}

}  // namespace
}  // namespace rstlab::serve
