// Property and unit tests for the parallel k-way external merge sort:
// the loser tree, the sort itself across the full fanout x thread
// matrix (output and measured (r, s) bit-identical to the serial run),
// backend independence, the RST015 sort certificate, spill-lane
// cleanup on success and failure, and the decider routing switch.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/diagnostics.h"
#include "check/sort_certificate.h"
#include "conform/harness.h"
#include "obs/metrics.h"
#include "sorting/deciders.h"
#include "sorting/loser_tree.h"
#include "sorting/merge_sort.h"
#include "sorting/parallel_sort.h"
#include "sorting/sort_config.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "util/random.h"

namespace rstlab::sorting {
namespace {

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string out;
  for (const auto& f : fields) {
    out += f;
    out += '#';
  }
  return out;
}

std::vector<std::string> TapeFields(stmodel::StContext& ctx,
                                    std::size_t index) {
  tape::Tape& t = ctx.tape(index);
  t.Seek(0);
  std::vector<std::string> fields;
  while (!stmodel::AtEnd(t)) fields.push_back(stmodel::ReadField(t));
  return fields;
}

/// A random multiset: values drawn from a small pool so duplicates are
/// guaranteed, lengths mixed so field boundaries are irregular.
std::vector<std::string> RandomMultiset(std::size_t m, Rng& rng) {
  std::vector<std::string> pool;
  const std::size_t pool_size = std::max<std::size_t>(1, m / 3 + 1);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(
        BitString::Random(1 + rng.UniformBelow(12), rng).ToString());
  }
  std::vector<std::string> fields;
  for (std::size_t i = 0; i < m; ++i) {
    fields.push_back(pool[rng.UniformBelow(pool.size())]);
  }
  return fields;
}

// ---------------------------------------------------------------------
// Loser tree
// ---------------------------------------------------------------------

TEST(LoserTreeTest, MergesSortedSequencesInOrder) {
  const std::vector<std::vector<std::string>> ways = {
      {"00", "10", "11"}, {"01", "01"}, {}, {"0", "1", "1", "11"}};
  LoserTree tree(ways.size());
  std::vector<std::size_t> next(ways.size(), 0);
  for (std::size_t i = 0; i < ways.size(); ++i) {
    tree.SetInitial(i, ways[i].empty() ? nullptr : &ways[i][0]);
    next[i] = 1;
  }
  tree.Build();
  std::vector<std::string> out;
  while (!tree.empty()) {
    const std::size_t slot = tree.top();
    out.push_back(tree.top_value());
    const std::string* replacement =
        next[slot] < ways[slot].size() ? &ways[slot][next[slot]] : nullptr;
    ++next[slot];
    tree.Replace(slot, replacement);
  }
  std::vector<std::string> expected;
  for (const auto& w : ways) expected.insert(expected.end(), w.begin(), w.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST(LoserTreeTest, TiesGoToTheLowerSlot) {
  const std::string a = "01";
  const std::string b = "01";
  LoserTree tree(3);
  tree.SetInitial(0, &b);
  tree.SetInitial(1, &a);
  tree.SetInitial(2, nullptr);
  tree.Build();
  EXPECT_EQ(tree.top(), 0u);
  tree.Replace(0, nullptr);
  EXPECT_EQ(tree.top(), 1u);
  tree.Replace(1, nullptr);
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTreeTest, SingleWayDrains) {
  const std::string only = "1";
  LoserTree tree(1);
  tree.SetInitial(0, &only);
  tree.Build();
  ASSERT_FALSE(tree.empty());
  EXPECT_EQ(tree.top_value(), "1");
  tree.Replace(0, nullptr);
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTreeTest, AllExhaustedIsEmpty) {
  LoserTree tree(5);
  for (std::size_t i = 0; i < 5; ++i) tree.SetInitial(i, nullptr);
  tree.Build();
  EXPECT_TRUE(tree.empty());
}

// ---------------------------------------------------------------------
// The fanout x threads matrix: output and (r, s) bit-identity
// ---------------------------------------------------------------------

struct MatrixResult {
  std::vector<std::string> fields;
  tape::ResourceReport report;
  ParallelSortStats stats;
};

MatrixResult RunMatrixCase(const std::vector<std::string>& input,
                           std::size_t fanout, std::size_t threads,
                           std::size_t run_length) {
  SortConfig config;
  config.fanout = fanout;
  config.threads = threads;
  config.run_length = run_length;
  stmodel::StContext ctx(1);
  ctx.LoadInput(JoinFields(input));
  MatrixResult result;
  Status status = ParallelSortFieldsOnTape(ctx, 0, config, &result.stats);
  EXPECT_TRUE(status.ok()) << status;
  result.fields = TapeFields(ctx, 0);
  result.report = ctx.Report();
  return result;
}

class ParallelSortMatrixTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelSortMatrixTest, MatchesStdSortAndSerialAtEveryThreadCount) {
  const std::size_t fanout = GetParam();
  // Trial count honours RSTLAB_TEST_CASES (property tier contract).
  const std::size_t trials = std::max<std::size_t>(
      1, conform::EnvTestCases(6));
  Rng rng(1000 + fanout);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::size_t m = rng.UniformBelow(220);
    SCOPED_TRACE("fanout " + std::to_string(fanout) + " trial " +
                 std::to_string(trial) + " m " + std::to_string(m));
    std::vector<std::string> input = RandomMultiset(m, rng);
    // run_length 4 forces multiple merge passes at every fanout.
    const MatrixResult serial = RunMatrixCase(input, fanout, 1, 4);

    std::vector<std::string> expected = input;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(serial.fields, expected);
    EXPECT_EQ(serial.stats.num_fields, m);

    for (const std::size_t threads : {2u, 4u, 8u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const MatrixResult parallel = RunMatrixCase(input, fanout, threads, 4);
      // Bit-identical output...
      EXPECT_EQ(parallel.fields, serial.fields);
      // ...and bit-identical model costs: same scan bound, internal
      // bits, external cells and per-tape reversal counts.
      EXPECT_EQ(parallel.report.scan_bound, serial.report.scan_bound);
      EXPECT_EQ(parallel.report.internal_space,
                serial.report.internal_space);
      EXPECT_EQ(parallel.report.external_space,
                serial.report.external_space);
      EXPECT_EQ(parallel.report.reversals_per_tape,
                serial.report.reversals_per_tape);
      // The deterministic structure stats agree too.
      EXPECT_EQ(parallel.stats.num_runs, serial.stats.num_runs);
      EXPECT_EQ(parallel.stats.merge_passes, serial.stats.merge_passes);
      EXPECT_EQ(parallel.stats.scratch_reversals,
                serial.stats.scratch_reversals);
      EXPECT_EQ(parallel.stats.scratch_cells, serial.stats.scratch_cells);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, ParallelSortMatrixTest,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(ParallelSortTest, AgreesWithSerialSeedSort) {
  Rng rng(77);
  for (const std::size_t m : {0u, 1u, 2u, 5u, 33u, 128u, 300u}) {
    std::vector<std::string> input = RandomMultiset(m, rng);
    stmodel::StContext seed_ctx(3);
    seed_ctx.LoadInput(JoinFields(input));
    ASSERT_TRUE(SortFieldsOnTapes(seed_ctx, 0, 1, 2).ok());

    SortConfig config;
    config.fanout = 4;
    config.threads = 4;
    config.run_length = 8;
    stmodel::StContext ctx(1);
    ctx.LoadInput(JoinFields(input));
    ASSERT_TRUE(ParallelSortFieldsOnTape(ctx, 0, config).ok());
    EXPECT_EQ(TapeFields(ctx, 0), TapeFields(seed_ctx, 0)) << "m=" << m;
  }
}

TEST(ParallelSortTest, HandlesUnterminatedTrailingField) {
  SortConfig config;
  config.fanout = 2;
  config.threads = 2;
  config.run_length = 2;
  stmodel::StContext ctx(1);
  ctx.LoadInput("11#00#01");  // trailing field without separator
  ASSERT_TRUE(ParallelSortFieldsOnTape(ctx, 0, config).ok());
  EXPECT_EQ(TapeFields(ctx, 0),
            (std::vector<std::string>{"00", "01", "11"}));
}

TEST(ParallelSortTest, RejectsBadArguments) {
  stmodel::StContext ctx(1);
  ctx.LoadInput("1#");
  SortConfig config;
  config.fanout = 1;
  EXPECT_FALSE(ParallelSortFieldsOnTape(ctx, 0, config).ok());
  config.fanout = 2;
  EXPECT_FALSE(ParallelSortFieldsOnTape(ctx, 7, config).ok());
}

// ---------------------------------------------------------------------
// Backend independence
// ---------------------------------------------------------------------

TEST(ParallelSortTest, FileBackendMatchesMemBackend) {
  Rng rng(42);
  std::vector<std::string> input = RandomMultiset(150, rng);
  SortConfig config;
  config.fanout = 3;
  config.threads = 4;
  config.run_length = 8;

  extmem::StorageOptions mem_options;
  mem_options.backend = extmem::BackendKind::kMem;
  stmodel::StContext mem_ctx(1, mem_options);
  mem_ctx.LoadInput(JoinFields(input));
  ASSERT_TRUE(ParallelSortFieldsOnTape(mem_ctx, 0, config).ok());

  extmem::StorageOptions file_options;
  file_options.backend = extmem::BackendKind::kFile;
  file_options.block_size = 256;
  file_options.cache_blocks = 8;  // force out-of-core block traffic
  stmodel::StContext file_ctx(1, file_options);
  ASSERT_EQ(file_ctx.backend(), extmem::BackendKind::kFile);
  file_ctx.LoadInput(JoinFields(input));
  ASSERT_TRUE(ParallelSortFieldsOnTape(file_ctx, 0, config).ok());

  EXPECT_EQ(TapeFields(file_ctx, 0), TapeFields(mem_ctx, 0));
  const tape::ResourceReport mem_report = mem_ctx.Report();
  const tape::ResourceReport file_report = file_ctx.Report();
  EXPECT_EQ(file_report.scan_bound, mem_report.scan_bound);
  EXPECT_EQ(file_report.internal_space, mem_report.internal_space);
  EXPECT_EQ(file_report.external_space, mem_report.external_space);
  EXPECT_EQ(file_report.reversals_per_tape, mem_report.reversals_per_tape);
}

// ---------------------------------------------------------------------
// Prefetch counters
// ---------------------------------------------------------------------

TEST(ParallelSortTest, PublishesPrefetchCounters) {
  Rng rng(11);
  // Long runs (>> one reader chunk) so the double-buffered readers
  // actually fill their standby buffers during the merge.
  std::vector<std::string> input;
  for (std::size_t i = 0; i < 2000; ++i) {
    input.push_back(BitString::Random(12, rng).ToString());
  }
  obs::MetricsRegistry metrics;
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kMem;
  options.block_size = 1024;  // reader chunk = block_size * readahead
  options.metrics = &metrics;
  stmodel::StContext ctx(1, options);
  ctx.LoadInput(JoinFields(input));
  SortConfig config;
  config.fanout = 2;
  config.threads = 2;
  config.run_length = 1000;
  ParallelSortStats stats;
  ASSERT_TRUE(ParallelSortFieldsOnTape(ctx, 0, config, &stats).ok());
  EXPECT_GT(stats.io.prefetch_issued, 0u);
  EXPECT_LE(stats.io.prefetch_hits, stats.io.prefetch_issued);
  EXPECT_EQ(metrics.counter("extmem.prefetch_issued"),
            stats.io.prefetch_issued);
  EXPECT_EQ(metrics.counter("extmem.prefetch_hits"),
            stats.io.prefetch_hits);
}

// ---------------------------------------------------------------------
// The RST015 sort certificate
// ---------------------------------------------------------------------

TEST(SortCertificateTest, MeasuredCostsStayWithinCertificate) {
  Rng rng(5);
  for (const std::size_t m : {2u, 17u, 64u, 256u, 1024u}) {
    for (const std::size_t fanout : {2u, 4u, 16u}) {
      SCOPED_TRACE("m " + std::to_string(m) + " fanout " +
                   std::to_string(fanout));
      std::vector<std::string> input = RandomMultiset(m, rng);
      SortConfig config;
      config.fanout = fanout;
      config.threads = 4;
      config.run_length = 8;
      stmodel::StContext ctx(1);
      ctx.LoadInput(JoinFields(input));
      ParallelSortStats stats;
      ASSERT_TRUE(ParallelSortFieldsOnTape(ctx, 0, config, &stats).ok());
      const check::SortCertificate cert = check::CertifyKWaySort(
          stats.num_fields, stats.max_field_len, ctx.input_size(), fanout,
          config.run_length);
      EXPECT_EQ(cert.merge_passes, stats.merge_passes);
      const Status ok =
          check::CheckSortCostsAgainstCertificate(ctx.Report(), cert);
      EXPECT_TRUE(ok.ok()) << ok << " vs " << cert.ToString();
      // The scratch formula is charged exactly, so the measured scan
      // bound sits between the scratch bill and the certificate.
      EXPECT_GE(ctx.Report().scan_bound, stats.scratch_reversals);
    }
  }
}

TEST(SortCertificateTest, ViolationIsReportedAsRst015) {
  check::SortCertificate cert =
      check::CertifyKWaySort(64, 8, 1024, 4, 8);
  tape::ResourceReport report;
  report.scan_bound = cert.max_scan_bound + 1;
  const Status scans = check::CheckSortCostsAgainstCertificate(report, cert);
  ASSERT_FALSE(scans.ok());
  EXPECT_NE(scans.message().find(
                check::CodeName(check::Code::kCertificateViolated)),
            std::string::npos)
      << scans;
  report.scan_bound = 1;
  report.internal_space = cert.max_internal_bits + 1;
  const Status bits = check::CheckSortCostsAgainstCertificate(report, cert);
  ASSERT_FALSE(bits.ok());
  EXPECT_NE(bits.message().find(
                check::CodeName(check::Code::kCertificateViolated)),
            std::string::npos)
      << bits;
}

// ---------------------------------------------------------------------
// Spill-lane lifecycle (file backend)
// ---------------------------------------------------------------------

std::size_t FilesIn(const std::filesystem::path& dir) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++count;
  }
  return count;
}

TEST(ParallelSortTest, SpillLanesUnlinkedOnSuccessAndFailure) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("rstlab-sort-lanes-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  Rng rng(13);
  std::vector<std::string> input = RandomMultiset(120, rng);
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 256;
  options.dir = dir.string();
  {
    stmodel::StContext ctx(1, options);
    ASSERT_EQ(ctx.backend(), extmem::BackendKind::kFile);
    ctx.LoadInput(JoinFields(input));
    const std::size_t baseline = FilesIn(dir);  // the context's own tape

    SortConfig config;
    config.fanout = 4;
    config.threads = 2;
    config.run_length = 8;
    ASSERT_TRUE(ParallelSortFieldsOnTape(ctx, 0, config).ok());
    // Success path: every spill lane unlinked, only the tape remains.
    EXPECT_EQ(FilesIn(dir), baseline);

    config.inject_failure_before_merge = true;
    EXPECT_FALSE(ParallelSortFieldsOnTape(ctx, 0, config).ok());
    // Error path: a failed sort leaves no spill files behind either.
    EXPECT_EQ(FilesIn(dir), baseline);
  }
  // And the context's own tape file dies with the context.
  EXPECT_EQ(FilesIn(dir), 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Decider routing
// ---------------------------------------------------------------------

TEST(SortForDeciderTest, RoutesByProcessConfig) {
  const SortConfig saved = DefaultSortConfig();
  Rng rng(21);
  std::vector<std::string> input = RandomMultiset(60, rng);

  // Legacy path (fanout 0): identical to the serial seed sort.
  SortConfig legacy;
  legacy.fanout = 0;
  SetProcessSortConfig(legacy);
  stmodel::StContext legacy_ctx(kDeciderTapes);
  legacy_ctx.LoadInput(JoinFields(input));
  ASSERT_TRUE(SortInputToTape(legacy_ctx).ok());

  stmodel::StContext seed_ctx(kDeciderTapes);
  seed_ctx.LoadInput(JoinFields(input));
  {
    tape::Tape& in = seed_ctx.tape(0);
    stmodel::Rewind(in);
    while (!stmodel::AtEnd(in)) stmodel::CopyField(in, seed_ctx.tape(1));
  }
  ASSERT_TRUE(SortFieldsOnTapes(seed_ctx, 1, 3, 4).ok());
  EXPECT_EQ(TapeFields(legacy_ctx, 1), TapeFields(seed_ctx, 1));

  // Parallel path: same sorted output through the k-way sort.
  SortConfig parallel;
  parallel.fanout = 4;
  parallel.threads = 4;
  parallel.run_length = 8;
  SetProcessSortConfig(parallel);
  stmodel::StContext parallel_ctx(kDeciderTapes);
  parallel_ctx.LoadInput(JoinFields(input));
  SortStats stats;
  {
    tape::Tape& in = parallel_ctx.tape(0);
    stmodel::Rewind(in);
    while (!stmodel::AtEnd(in)) {
      stmodel::CopyField(in, parallel_ctx.tape(1));
    }
  }
  ASSERT_TRUE(SortForDecider(parallel_ctx, 1, 3, 4, &stats).ok());
  EXPECT_EQ(TapeFields(parallel_ctx, 1), TapeFields(seed_ctx, 1));
  EXPECT_EQ(stats.num_fields, input.size());

  SetProcessSortConfig(saved);
}

}  // namespace
}  // namespace rstlab::sorting
