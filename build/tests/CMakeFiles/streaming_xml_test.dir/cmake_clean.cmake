file(REMOVE_RECURSE
  "CMakeFiles/streaming_xml_test.dir/streaming_xml_test.cc.o"
  "CMakeFiles/streaming_xml_test.dir/streaming_xml_test.cc.o.d"
  "streaming_xml_test"
  "streaming_xml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
