# Empty compiler generated dependencies file for streaming_xml_test.
# This may be replaced when dependencies are built.
