# Empty compiler generated dependencies file for las_vegas_test.
# This may be replaced when dependencies are built.
