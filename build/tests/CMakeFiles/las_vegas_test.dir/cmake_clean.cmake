file(REMOVE_RECURSE
  "CMakeFiles/las_vegas_test.dir/las_vegas_test.cc.o"
  "CMakeFiles/las_vegas_test.dir/las_vegas_test.cc.o.d"
  "las_vegas_test"
  "las_vegas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/las_vegas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
