# Empty compiler generated dependencies file for nst_test.
# This may be replaced when dependencies are built.
