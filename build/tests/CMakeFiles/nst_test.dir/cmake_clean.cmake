file(REMOVE_RECURSE
  "CMakeFiles/nst_test.dir/nst_test.cc.o"
  "CMakeFiles/nst_test.dir/nst_test.cc.o.d"
  "nst_test"
  "nst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
