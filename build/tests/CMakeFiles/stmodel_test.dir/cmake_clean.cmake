file(REMOVE_RECURSE
  "CMakeFiles/stmodel_test.dir/stmodel_test.cc.o"
  "CMakeFiles/stmodel_test.dir/stmodel_test.cc.o.d"
  "stmodel_test"
  "stmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
