# Empty compiler generated dependencies file for stmodel_test.
# This may be replaced when dependencies are built.
