# Empty compiler generated dependencies file for disjoint_sets_test.
# This may be replaced when dependencies are built.
