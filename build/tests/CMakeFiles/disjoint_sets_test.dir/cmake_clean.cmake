file(REMOVE_RECURSE
  "CMakeFiles/disjoint_sets_test.dir/disjoint_sets_test.cc.o"
  "CMakeFiles/disjoint_sets_test.dir/disjoint_sets_test.cc.o.d"
  "disjoint_sets_test"
  "disjoint_sets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjoint_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
