# Empty dependencies file for query_xml_test.
# This may be replaced when dependencies are built.
