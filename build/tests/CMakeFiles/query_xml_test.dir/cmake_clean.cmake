file(REMOVE_RECURSE
  "CMakeFiles/query_xml_test.dir/query_xml_test.cc.o"
  "CMakeFiles/query_xml_test.dir/query_xml_test.cc.o.d"
  "query_xml_test"
  "query_xml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
