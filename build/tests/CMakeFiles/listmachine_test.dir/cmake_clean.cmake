file(REMOVE_RECURSE
  "CMakeFiles/listmachine_test.dir/listmachine_test.cc.o"
  "CMakeFiles/listmachine_test.dir/listmachine_test.cc.o.d"
  "listmachine_test"
  "listmachine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listmachine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
