# Empty dependencies file for listmachine_test.
# This may be replaced when dependencies are built.
