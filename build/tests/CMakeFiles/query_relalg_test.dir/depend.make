# Empty dependencies file for query_relalg_test.
# This may be replaced when dependencies are built.
