file(REMOVE_RECURSE
  "CMakeFiles/query_relalg_test.dir/query_relalg_test.cc.o"
  "CMakeFiles/query_relalg_test.dir/query_relalg_test.cc.o.d"
  "query_relalg_test"
  "query_relalg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_relalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
