# Empty dependencies file for rstlab.
# This may be replaced when dependencies are built.
