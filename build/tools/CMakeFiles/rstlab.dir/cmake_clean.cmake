file(REMOVE_RECURSE
  "CMakeFiles/rstlab.dir/rstlab_cli.cc.o"
  "CMakeFiles/rstlab.dir/rstlab_cli.cc.o.d"
  "rstlab"
  "rstlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
