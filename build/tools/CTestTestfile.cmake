# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_decide_yes "bash" "-c" "/root/repo/build/tools/rstlab generate equal 8 12 7 | /root/repo/build/tools/rstlab decide multiset-equality | grep -q '^yes'")
set_tests_properties(cli_decide_yes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_decide_no "bash" "-c" "/root/repo/build/tools/rstlab generate perturbed 8 12 7 | /root/repo/build/tools/rstlab decide multiset-equality | grep -q '^no'")
set_tests_properties(cli_decide_no PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_checksort "bash" "-c" "/root/repo/build/tools/rstlab generate sorted 8 12 7 | /root/repo/build/tools/rstlab decide check-sort | grep -q '^yes'")
set_tests_properties(cli_checksort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_disjoint "bash" "-c" "/root/repo/build/tools/rstlab generate disjoint 8 12 7 | /root/repo/build/tools/rstlab decide disjoint | grep -q '^yes'")
set_tests_properties(cli_disjoint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fingerprint_two_scans "bash" "-c" "/root/repo/build/tools/rstlab generate equal 8 12 7 | /root/repo/build/tools/rstlab fingerprint | grep -q 'accept.*r=2 '")
set_tests_properties(cli_fingerprint_two_scans PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sort "bash" "-c" "echo '10#01#11#00#' | /root/repo/build/tools/rstlab sort | head -1 | grep -qx '00#01#10#11#'")
set_tests_properties(cli_sort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "bash" "-c" "! /root/repo/build/tools/rstlab bogus")
set_tests_properties(cli_usage_error PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
