file(REMOVE_RECURSE
  "CMakeFiles/rstlab_query.dir/relalg.cc.o"
  "CMakeFiles/rstlab_query.dir/relalg.cc.o.d"
  "CMakeFiles/rstlab_query.dir/relation.cc.o"
  "CMakeFiles/rstlab_query.dir/relation.cc.o.d"
  "CMakeFiles/rstlab_query.dir/streaming_xml.cc.o"
  "CMakeFiles/rstlab_query.dir/streaming_xml.cc.o.d"
  "CMakeFiles/rstlab_query.dir/xml.cc.o"
  "CMakeFiles/rstlab_query.dir/xml.cc.o.d"
  "CMakeFiles/rstlab_query.dir/xml_reduction.cc.o"
  "CMakeFiles/rstlab_query.dir/xml_reduction.cc.o.d"
  "CMakeFiles/rstlab_query.dir/xpath.cc.o"
  "CMakeFiles/rstlab_query.dir/xpath.cc.o.d"
  "CMakeFiles/rstlab_query.dir/xquery.cc.o"
  "CMakeFiles/rstlab_query.dir/xquery.cc.o.d"
  "librstlab_query.a"
  "librstlab_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
