file(REMOVE_RECURSE
  "librstlab_query.a"
)
