# Empty dependencies file for rstlab_query.
# This may be replaced when dependencies are built.
