
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/relalg.cc" "src/query/CMakeFiles/rstlab_query.dir/relalg.cc.o" "gcc" "src/query/CMakeFiles/rstlab_query.dir/relalg.cc.o.d"
  "/root/repo/src/query/relation.cc" "src/query/CMakeFiles/rstlab_query.dir/relation.cc.o" "gcc" "src/query/CMakeFiles/rstlab_query.dir/relation.cc.o.d"
  "/root/repo/src/query/streaming_xml.cc" "src/query/CMakeFiles/rstlab_query.dir/streaming_xml.cc.o" "gcc" "src/query/CMakeFiles/rstlab_query.dir/streaming_xml.cc.o.d"
  "/root/repo/src/query/xml.cc" "src/query/CMakeFiles/rstlab_query.dir/xml.cc.o" "gcc" "src/query/CMakeFiles/rstlab_query.dir/xml.cc.o.d"
  "/root/repo/src/query/xml_reduction.cc" "src/query/CMakeFiles/rstlab_query.dir/xml_reduction.cc.o" "gcc" "src/query/CMakeFiles/rstlab_query.dir/xml_reduction.cc.o.d"
  "/root/repo/src/query/xpath.cc" "src/query/CMakeFiles/rstlab_query.dir/xpath.cc.o" "gcc" "src/query/CMakeFiles/rstlab_query.dir/xpath.cc.o.d"
  "/root/repo/src/query/xquery.cc" "src/query/CMakeFiles/rstlab_query.dir/xquery.cc.o" "gcc" "src/query/CMakeFiles/rstlab_query.dir/xquery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stmodel/CMakeFiles/rstlab_stmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sorting/CMakeFiles/rstlab_sorting.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/rstlab_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/rstlab_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/rstlab_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/permutation/CMakeFiles/rstlab_permutation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
