file(REMOVE_RECURSE
  "CMakeFiles/rstlab_sorting.dir/deciders.cc.o"
  "CMakeFiles/rstlab_sorting.dir/deciders.cc.o.d"
  "CMakeFiles/rstlab_sorting.dir/las_vegas.cc.o"
  "CMakeFiles/rstlab_sorting.dir/las_vegas.cc.o.d"
  "CMakeFiles/rstlab_sorting.dir/merge_sort.cc.o"
  "CMakeFiles/rstlab_sorting.dir/merge_sort.cc.o.d"
  "librstlab_sorting.a"
  "librstlab_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
