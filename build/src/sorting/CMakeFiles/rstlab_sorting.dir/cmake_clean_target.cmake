file(REMOVE_RECURSE
  "librstlab_sorting.a"
)
