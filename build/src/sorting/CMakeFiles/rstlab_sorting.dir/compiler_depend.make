# Empty compiler generated dependencies file for rstlab_sorting.
# This may be replaced when dependencies are built.
