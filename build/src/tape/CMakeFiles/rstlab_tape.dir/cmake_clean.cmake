file(REMOVE_RECURSE
  "CMakeFiles/rstlab_tape.dir/resource_meter.cc.o"
  "CMakeFiles/rstlab_tape.dir/resource_meter.cc.o.d"
  "CMakeFiles/rstlab_tape.dir/tape.cc.o"
  "CMakeFiles/rstlab_tape.dir/tape.cc.o.d"
  "librstlab_tape.a"
  "librstlab_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
