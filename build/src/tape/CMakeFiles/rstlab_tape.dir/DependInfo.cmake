
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tape/resource_meter.cc" "src/tape/CMakeFiles/rstlab_tape.dir/resource_meter.cc.o" "gcc" "src/tape/CMakeFiles/rstlab_tape.dir/resource_meter.cc.o.d"
  "/root/repo/src/tape/tape.cc" "src/tape/CMakeFiles/rstlab_tape.dir/tape.cc.o" "gcc" "src/tape/CMakeFiles/rstlab_tape.dir/tape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
