file(REMOVE_RECURSE
  "librstlab_tape.a"
)
