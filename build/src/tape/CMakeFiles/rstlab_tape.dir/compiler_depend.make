# Empty compiler generated dependencies file for rstlab_tape.
# This may be replaced when dependencies are built.
