file(REMOVE_RECURSE
  "librstlab_permutation.a"
)
