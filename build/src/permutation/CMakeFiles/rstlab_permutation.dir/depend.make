# Empty dependencies file for rstlab_permutation.
# This may be replaced when dependencies are built.
