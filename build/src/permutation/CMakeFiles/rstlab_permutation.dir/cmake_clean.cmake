file(REMOVE_RECURSE
  "CMakeFiles/rstlab_permutation.dir/phi.cc.o"
  "CMakeFiles/rstlab_permutation.dir/phi.cc.o.d"
  "CMakeFiles/rstlab_permutation.dir/sortedness.cc.o"
  "CMakeFiles/rstlab_permutation.dir/sortedness.cc.o.d"
  "librstlab_permutation.a"
  "librstlab_permutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_permutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
