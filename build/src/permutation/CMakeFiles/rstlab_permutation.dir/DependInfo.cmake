
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/permutation/phi.cc" "src/permutation/CMakeFiles/rstlab_permutation.dir/phi.cc.o" "gcc" "src/permutation/CMakeFiles/rstlab_permutation.dir/phi.cc.o.d"
  "/root/repo/src/permutation/sortedness.cc" "src/permutation/CMakeFiles/rstlab_permutation.dir/sortedness.cc.o" "gcc" "src/permutation/CMakeFiles/rstlab_permutation.dir/sortedness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
