# CMake generated Testfile for 
# Source directory: /root/repo/src/nst
# Build directory: /root/repo/build/src/nst
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
