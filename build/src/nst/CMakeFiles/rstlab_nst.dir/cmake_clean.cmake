file(REMOVE_RECURSE
  "CMakeFiles/rstlab_nst.dir/certificate.cc.o"
  "CMakeFiles/rstlab_nst.dir/certificate.cc.o.d"
  "CMakeFiles/rstlab_nst.dir/paper_verifier.cc.o"
  "CMakeFiles/rstlab_nst.dir/paper_verifier.cc.o.d"
  "librstlab_nst.a"
  "librstlab_nst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_nst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
