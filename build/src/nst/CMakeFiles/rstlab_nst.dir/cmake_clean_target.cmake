file(REMOVE_RECURSE
  "librstlab_nst.a"
)
