
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nst/certificate.cc" "src/nst/CMakeFiles/rstlab_nst.dir/certificate.cc.o" "gcc" "src/nst/CMakeFiles/rstlab_nst.dir/certificate.cc.o.d"
  "/root/repo/src/nst/paper_verifier.cc" "src/nst/CMakeFiles/rstlab_nst.dir/paper_verifier.cc.o" "gcc" "src/nst/CMakeFiles/rstlab_nst.dir/paper_verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stmodel/CMakeFiles/rstlab_stmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/rstlab_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/permutation/CMakeFiles/rstlab_permutation.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/rstlab_tape.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
