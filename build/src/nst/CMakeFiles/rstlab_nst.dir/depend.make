# Empty dependencies file for rstlab_nst.
# This may be replaced when dependencies are built.
