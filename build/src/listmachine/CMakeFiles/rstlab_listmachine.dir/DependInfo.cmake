
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/listmachine/analysis.cc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/analysis.cc.o" "gcc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/analysis.cc.o.d"
  "/root/repo/src/listmachine/list_machine.cc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/list_machine.cc.o" "gcc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/list_machine.cc.o.d"
  "/root/repo/src/listmachine/machines.cc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/machines.cc.o" "gcc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/machines.cc.o.d"
  "/root/repo/src/listmachine/simulation.cc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/simulation.cc.o" "gcc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/simulation.cc.o.d"
  "/root/repo/src/listmachine/skeleton.cc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/skeleton.cc.o" "gcc" "src/listmachine/CMakeFiles/rstlab_listmachine.dir/skeleton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rstlab_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/permutation/CMakeFiles/rstlab_permutation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
