file(REMOVE_RECURSE
  "CMakeFiles/rstlab_listmachine.dir/analysis.cc.o"
  "CMakeFiles/rstlab_listmachine.dir/analysis.cc.o.d"
  "CMakeFiles/rstlab_listmachine.dir/list_machine.cc.o"
  "CMakeFiles/rstlab_listmachine.dir/list_machine.cc.o.d"
  "CMakeFiles/rstlab_listmachine.dir/machines.cc.o"
  "CMakeFiles/rstlab_listmachine.dir/machines.cc.o.d"
  "CMakeFiles/rstlab_listmachine.dir/simulation.cc.o"
  "CMakeFiles/rstlab_listmachine.dir/simulation.cc.o.d"
  "CMakeFiles/rstlab_listmachine.dir/skeleton.cc.o"
  "CMakeFiles/rstlab_listmachine.dir/skeleton.cc.o.d"
  "librstlab_listmachine.a"
  "librstlab_listmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_listmachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
