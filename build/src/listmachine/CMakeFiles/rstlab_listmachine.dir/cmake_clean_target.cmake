file(REMOVE_RECURSE
  "librstlab_listmachine.a"
)
