# Empty dependencies file for rstlab_listmachine.
# This may be replaced when dependencies are built.
