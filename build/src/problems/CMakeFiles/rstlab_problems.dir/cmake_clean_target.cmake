file(REMOVE_RECURSE
  "librstlab_problems.a"
)
