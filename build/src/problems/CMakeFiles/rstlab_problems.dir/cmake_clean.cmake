file(REMOVE_RECURSE
  "CMakeFiles/rstlab_problems.dir/check_phi.cc.o"
  "CMakeFiles/rstlab_problems.dir/check_phi.cc.o.d"
  "CMakeFiles/rstlab_problems.dir/disjoint_sets.cc.o"
  "CMakeFiles/rstlab_problems.dir/disjoint_sets.cc.o.d"
  "CMakeFiles/rstlab_problems.dir/generators.cc.o"
  "CMakeFiles/rstlab_problems.dir/generators.cc.o.d"
  "CMakeFiles/rstlab_problems.dir/instance.cc.o"
  "CMakeFiles/rstlab_problems.dir/instance.cc.o.d"
  "CMakeFiles/rstlab_problems.dir/reference.cc.o"
  "CMakeFiles/rstlab_problems.dir/reference.cc.o.d"
  "CMakeFiles/rstlab_problems.dir/short_reduction.cc.o"
  "CMakeFiles/rstlab_problems.dir/short_reduction.cc.o.d"
  "librstlab_problems.a"
  "librstlab_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
