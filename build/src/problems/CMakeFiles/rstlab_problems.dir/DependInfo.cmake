
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/problems/check_phi.cc" "src/problems/CMakeFiles/rstlab_problems.dir/check_phi.cc.o" "gcc" "src/problems/CMakeFiles/rstlab_problems.dir/check_phi.cc.o.d"
  "/root/repo/src/problems/disjoint_sets.cc" "src/problems/CMakeFiles/rstlab_problems.dir/disjoint_sets.cc.o" "gcc" "src/problems/CMakeFiles/rstlab_problems.dir/disjoint_sets.cc.o.d"
  "/root/repo/src/problems/generators.cc" "src/problems/CMakeFiles/rstlab_problems.dir/generators.cc.o" "gcc" "src/problems/CMakeFiles/rstlab_problems.dir/generators.cc.o.d"
  "/root/repo/src/problems/instance.cc" "src/problems/CMakeFiles/rstlab_problems.dir/instance.cc.o" "gcc" "src/problems/CMakeFiles/rstlab_problems.dir/instance.cc.o.d"
  "/root/repo/src/problems/reference.cc" "src/problems/CMakeFiles/rstlab_problems.dir/reference.cc.o" "gcc" "src/problems/CMakeFiles/rstlab_problems.dir/reference.cc.o.d"
  "/root/repo/src/problems/short_reduction.cc" "src/problems/CMakeFiles/rstlab_problems.dir/short_reduction.cc.o" "gcc" "src/problems/CMakeFiles/rstlab_problems.dir/short_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/permutation/CMakeFiles/rstlab_permutation.dir/DependInfo.cmake"
  "/root/repo/build/src/stmodel/CMakeFiles/rstlab_stmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/rstlab_tape.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
