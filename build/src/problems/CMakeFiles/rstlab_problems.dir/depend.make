# Empty dependencies file for rstlab_problems.
# This may be replaced when dependencies are built.
