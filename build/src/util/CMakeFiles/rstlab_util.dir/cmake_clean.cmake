file(REMOVE_RECURSE
  "CMakeFiles/rstlab_util.dir/bitstring.cc.o"
  "CMakeFiles/rstlab_util.dir/bitstring.cc.o.d"
  "CMakeFiles/rstlab_util.dir/random.cc.o"
  "CMakeFiles/rstlab_util.dir/random.cc.o.d"
  "CMakeFiles/rstlab_util.dir/status.cc.o"
  "CMakeFiles/rstlab_util.dir/status.cc.o.d"
  "librstlab_util.a"
  "librstlab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
