# Empty compiler generated dependencies file for rstlab_util.
# This may be replaced when dependencies are built.
