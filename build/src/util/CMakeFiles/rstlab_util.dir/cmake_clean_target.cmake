file(REMOVE_RECURSE
  "librstlab_util.a"
)
