file(REMOVE_RECURSE
  "librstlab_core.a"
)
