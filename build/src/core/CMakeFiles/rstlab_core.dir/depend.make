# Empty dependencies file for rstlab_core.
# This may be replaced when dependencies are built.
