file(REMOVE_RECURSE
  "CMakeFiles/rstlab_core.dir/complexity.cc.o"
  "CMakeFiles/rstlab_core.dir/complexity.cc.o.d"
  "CMakeFiles/rstlab_core.dir/experiment.cc.o"
  "CMakeFiles/rstlab_core.dir/experiment.cc.o.d"
  "librstlab_core.a"
  "librstlab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
