# Empty dependencies file for rstlab_stmodel.
# This may be replaced when dependencies are built.
