file(REMOVE_RECURSE
  "librstlab_stmodel.a"
)
