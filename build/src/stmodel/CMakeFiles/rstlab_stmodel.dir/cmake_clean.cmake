file(REMOVE_RECURSE
  "CMakeFiles/rstlab_stmodel.dir/internal_arena.cc.o"
  "CMakeFiles/rstlab_stmodel.dir/internal_arena.cc.o.d"
  "CMakeFiles/rstlab_stmodel.dir/st_context.cc.o"
  "CMakeFiles/rstlab_stmodel.dir/st_context.cc.o.d"
  "CMakeFiles/rstlab_stmodel.dir/tape_io.cc.o"
  "CMakeFiles/rstlab_stmodel.dir/tape_io.cc.o.d"
  "librstlab_stmodel.a"
  "librstlab_stmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_stmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
