
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stmodel/internal_arena.cc" "src/stmodel/CMakeFiles/rstlab_stmodel.dir/internal_arena.cc.o" "gcc" "src/stmodel/CMakeFiles/rstlab_stmodel.dir/internal_arena.cc.o.d"
  "/root/repo/src/stmodel/st_context.cc" "src/stmodel/CMakeFiles/rstlab_stmodel.dir/st_context.cc.o" "gcc" "src/stmodel/CMakeFiles/rstlab_stmodel.dir/st_context.cc.o.d"
  "/root/repo/src/stmodel/tape_io.cc" "src/stmodel/CMakeFiles/rstlab_stmodel.dir/tape_io.cc.o" "gcc" "src/stmodel/CMakeFiles/rstlab_stmodel.dir/tape_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tape/CMakeFiles/rstlab_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
