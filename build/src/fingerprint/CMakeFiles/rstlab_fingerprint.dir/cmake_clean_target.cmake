file(REMOVE_RECURSE
  "librstlab_fingerprint.a"
)
