# Empty dependencies file for rstlab_fingerprint.
# This may be replaced when dependencies are built.
