file(REMOVE_RECURSE
  "CMakeFiles/rstlab_fingerprint.dir/fingerprint.cc.o"
  "CMakeFiles/rstlab_fingerprint.dir/fingerprint.cc.o.d"
  "CMakeFiles/rstlab_fingerprint.dir/prime.cc.o"
  "CMakeFiles/rstlab_fingerprint.dir/prime.cc.o.d"
  "librstlab_fingerprint.a"
  "librstlab_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
