# Empty dependencies file for rstlab_machine.
# This may be replaced when dependencies are built.
