file(REMOVE_RECURSE
  "librstlab_machine.a"
)
