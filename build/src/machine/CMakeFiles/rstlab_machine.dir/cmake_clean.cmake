file(REMOVE_RECURSE
  "CMakeFiles/rstlab_machine.dir/machine_builder.cc.o"
  "CMakeFiles/rstlab_machine.dir/machine_builder.cc.o.d"
  "CMakeFiles/rstlab_machine.dir/turing_machine.cc.o"
  "CMakeFiles/rstlab_machine.dir/turing_machine.cc.o.d"
  "librstlab_machine.a"
  "librstlab_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstlab_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
