
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/machine_builder.cc" "src/machine/CMakeFiles/rstlab_machine.dir/machine_builder.cc.o" "gcc" "src/machine/CMakeFiles/rstlab_machine.dir/machine_builder.cc.o.d"
  "/root/repo/src/machine/turing_machine.cc" "src/machine/CMakeFiles/rstlab_machine.dir/turing_machine.cc.o" "gcc" "src/machine/CMakeFiles/rstlab_machine.dir/turing_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
