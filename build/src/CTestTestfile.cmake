# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tape")
subdirs("stmodel")
subdirs("machine")
subdirs("permutation")
subdirs("problems")
subdirs("fingerprint")
subdirs("sorting")
subdirs("nst")
subdirs("listmachine")
subdirs("query")
subdirs("core")
