# Empty compiler generated dependencies file for bench_checksort.
# This may be replaced when dependencies are built.
