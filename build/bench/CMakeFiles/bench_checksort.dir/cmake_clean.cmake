file(REMOVE_RECURSE
  "CMakeFiles/bench_checksort.dir/bench_checksort.cc.o"
  "CMakeFiles/bench_checksort.dir/bench_checksort.cc.o.d"
  "bench_checksort"
  "bench_checksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
