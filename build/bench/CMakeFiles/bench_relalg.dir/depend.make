# Empty dependencies file for bench_relalg.
# This may be replaced when dependencies are built.
