file(REMOVE_RECURSE
  "CMakeFiles/bench_relalg.dir/bench_relalg.cc.o"
  "CMakeFiles/bench_relalg.dir/bench_relalg.cc.o.d"
  "bench_relalg"
  "bench_relalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
