# Empty dependencies file for bench_listmachine.
# This may be replaced when dependencies are built.
