file(REMOVE_RECURSE
  "CMakeFiles/bench_listmachine.dir/bench_listmachine.cc.o"
  "CMakeFiles/bench_listmachine.dir/bench_listmachine.cc.o.d"
  "bench_listmachine"
  "bench_listmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listmachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
