file(REMOVE_RECURSE
  "CMakeFiles/bench_xml_queries.dir/bench_xml_queries.cc.o"
  "CMakeFiles/bench_xml_queries.dir/bench_xml_queries.cc.o.d"
  "bench_xml_queries"
  "bench_xml_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xml_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
