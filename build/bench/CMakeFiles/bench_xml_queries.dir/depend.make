# Empty dependencies file for bench_xml_queries.
# This may be replaced when dependencies are built.
