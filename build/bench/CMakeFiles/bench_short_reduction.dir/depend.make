# Empty dependencies file for bench_short_reduction.
# This may be replaced when dependencies are built.
