file(REMOVE_RECURSE
  "CMakeFiles/bench_short_reduction.dir/bench_short_reduction.cc.o"
  "CMakeFiles/bench_short_reduction.dir/bench_short_reduction.cc.o.d"
  "bench_short_reduction"
  "bench_short_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_short_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
