file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_lemma.dir/bench_merge_lemma.cc.o"
  "CMakeFiles/bench_merge_lemma.dir/bench_merge_lemma.cc.o.d"
  "bench_merge_lemma"
  "bench_merge_lemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_lemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
