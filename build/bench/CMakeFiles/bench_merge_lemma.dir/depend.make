# Empty dependencies file for bench_merge_lemma.
# This may be replaced when dependencies are built.
