
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fooling.cc" "bench/CMakeFiles/bench_fooling.dir/bench_fooling.cc.o" "gcc" "bench/CMakeFiles/bench_fooling.dir/bench_fooling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rstlab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/rstlab_query.dir/DependInfo.cmake"
  "/root/repo/build/src/listmachine/CMakeFiles/rstlab_listmachine.dir/DependInfo.cmake"
  "/root/repo/build/src/nst/CMakeFiles/rstlab_nst.dir/DependInfo.cmake"
  "/root/repo/build/src/sorting/CMakeFiles/rstlab_sorting.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/rstlab_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/rstlab_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/permutation/CMakeFiles/rstlab_permutation.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rstlab_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stmodel/CMakeFiles/rstlab_stmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/rstlab_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rstlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
