file(REMOVE_RECURSE
  "CMakeFiles/bench_fooling.dir/bench_fooling.cc.o"
  "CMakeFiles/bench_fooling.dir/bench_fooling.cc.o.d"
  "bench_fooling"
  "bench_fooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
