# Empty dependencies file for bench_nst.
# This may be replaced when dependencies are built.
