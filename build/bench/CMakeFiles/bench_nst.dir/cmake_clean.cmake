file(REMOVE_RECURSE
  "CMakeFiles/bench_nst.dir/bench_nst.cc.o"
  "CMakeFiles/bench_nst.dir/bench_nst.cc.o.d"
  "bench_nst"
  "bench_nst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
