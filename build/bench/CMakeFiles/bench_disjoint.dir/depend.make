# Empty dependencies file for bench_disjoint.
# This may be replaced when dependencies are built.
