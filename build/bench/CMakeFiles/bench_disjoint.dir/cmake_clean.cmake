file(REMOVE_RECURSE
  "CMakeFiles/bench_disjoint.dir/bench_disjoint.cc.o"
  "CMakeFiles/bench_disjoint.dir/bench_disjoint.cc.o.d"
  "bench_disjoint"
  "bench_disjoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
