# Empty compiler generated dependencies file for bench_sortedness.
# This may be replaced when dependencies are built.
