file(REMOVE_RECURSE
  "CMakeFiles/bench_sortedness.dir/bench_sortedness.cc.o"
  "CMakeFiles/bench_sortedness.dir/bench_sortedness.cc.o.d"
  "bench_sortedness"
  "bench_sortedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sortedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
