# Empty dependencies file for check_phi_lab.
# This may be replaced when dependencies are built.
