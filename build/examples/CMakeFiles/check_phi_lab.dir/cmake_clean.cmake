file(REMOVE_RECURSE
  "CMakeFiles/check_phi_lab.dir/check_phi_lab.cpp.o"
  "CMakeFiles/check_phi_lab.dir/check_phi_lab.cpp.o.d"
  "check_phi_lab"
  "check_phi_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_phi_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
