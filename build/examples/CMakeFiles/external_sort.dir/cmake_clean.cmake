file(REMOVE_RECURSE
  "CMakeFiles/external_sort.dir/external_sort.cpp.o"
  "CMakeFiles/external_sort.dir/external_sort.cpp.o.d"
  "external_sort"
  "external_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
