# Empty compiler generated dependencies file for streaming_relalg.
# This may be replaced when dependencies are built.
