file(REMOVE_RECURSE
  "CMakeFiles/streaming_relalg.dir/streaming_relalg.cpp.o"
  "CMakeFiles/streaming_relalg.dir/streaming_relalg.cpp.o.d"
  "streaming_relalg"
  "streaming_relalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_relalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
