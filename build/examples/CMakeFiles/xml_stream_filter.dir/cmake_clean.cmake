file(REMOVE_RECURSE
  "CMakeFiles/xml_stream_filter.dir/xml_stream_filter.cpp.o"
  "CMakeFiles/xml_stream_filter.dir/xml_stream_filter.cpp.o.d"
  "xml_stream_filter"
  "xml_stream_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_stream_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
