# Empty dependencies file for xml_stream_filter.
# This may be replaced when dependencies are built.
