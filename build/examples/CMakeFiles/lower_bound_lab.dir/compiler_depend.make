# Empty compiler generated dependencies file for lower_bound_lab.
# This may be replaced when dependencies are built.
