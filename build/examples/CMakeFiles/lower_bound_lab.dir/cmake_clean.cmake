file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_lab.dir/lower_bound_lab.cpp.o"
  "CMakeFiles/lower_bound_lab.dir/lower_bound_lab.cpp.o.d"
  "lower_bound_lab"
  "lower_bound_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
