#!/usr/bin/env bash
# Per-subsystem line-coverage report over an instrumented build tree
# (gcc --coverage), plus the src/conform coverage gate.
#
# Usage: scripts/coverage_report.sh BUILD_DIR [OUTPUT_FILE]
#
# Requires gcovr. Prints one line per src/ subsystem and the overall
# total; writes the same table (plus per-file detail) to OUTPUT_FILE
# (default BUILD_DIR/coverage.txt). Exits 1 if any gated subsystem's
# line coverage is below 85%: src/conform (the conformance harness is
# itself test infrastructure, so untested oracle code is silent
# non-coverage of everything it was meant to check) and src/query (the
# streaming query engine ships behind the repo's heaviest differential
# battery; an uncovered operator is an untested certificate path).
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:?usage: coverage_report.sh BUILD_DIR [OUTPUT_FILE]}"
out_file="${2:-${build_dir}/coverage.txt}"
gate_subsystems=("src/conform" "src/query")
gate_percent=85

line_coverage() {
  # gcovr txt-summary line: "lines: 93.4% (557 out of 596)"
  gcovr --root . --object-directory "${build_dir}" \
        --filter "$1/" --txt-summary 2>/dev/null |
    sed -n 's/^lines: \([0-9.]*\)%.*/\1/p'
}

{
  echo "subsystem line-coverage (build: ${build_dir})"
  echo "--------------------------------------------"
  for dir in src/*/; do
    sub="${dir%/}"
    pct="$(line_coverage "${sub}")"
    printf '%-18s %6s%%\n' "${sub#src/}" "${pct:-n/a}"
  done
  total="$(line_coverage src)"
  echo "--------------------------------------------"
  printf '%-18s %6s%%\n' "total(src)" "${total:-n/a}"
} | tee "${out_file}"

# Per-file detail for the artifact, then the gate.
gcovr --root . --object-directory "${build_dir}" --filter 'src/' \
      >> "${out_file}" 2>/dev/null || true

for gate_subsystem in "${gate_subsystems[@]}"; do
  echo
  echo "gate: ${gate_subsystem} >= ${gate_percent}% lines"
  gcovr --root . --object-directory "${build_dir}" \
        --filter "${gate_subsystem}/" \
        --fail-under-line "${gate_percent}" --txt-summary
done
