#!/usr/bin/env bash
# Builds everything, runs the test suite and every experiment binary,
# capturing test_output.txt and bench_output.txt at the repo root.
#
# Thread count for the Monte-Carlo trial engine: pass --threads=N (or
# set RSTLAB_THREADS); defaults to all hardware threads. Tallies are
# bit-identical for any value, only wall clock changes.
set -euo pipefail
cd "$(dirname "$0")/.."

# Route --threads=N through the environment so binaries that predate
# the trial engine never see an unknown flag.
for arg in "$@"; do
  case "$arg" in
    --threads=*) export RSTLAB_THREADS="${arg#--threads=}" ;;
  esac
done

# Prefer Ninja when available, else fall back to CMake's default
# generator (what the tier-1 command uses).
if [ ! -f build/CMakeCache.txt ]; then
  if command -v ninja > /dev/null 2>&1; then
    cmake -B build -G Ninja
  else
    cmake -B build
  fi
else
  cmake -B build
fi
cmake --build build -j "$(nproc)"
ctest --test-dir build 2>&1 | tee test_output.txt

# Bench binaries merge their trial-engine timings into one JSON file.
export RSTLAB_BENCH_JSON="build/BENCH_trials.json"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

# Keep the perf-trajectory snapshot visible at the repo root.
if [ -f "$RSTLAB_BENCH_JSON" ]; then
  cp "$RSTLAB_BENCH_JSON" BENCH_trials.json
fi

# Surface the out-of-core comparison (E18b: mem vs file wall time, block
# I/O counters and readahead hit rate) at the end of the run, so the
# cost of running tapes from disk is visible without digging through
# bench_output.txt.
echo
echo "=== out-of-core summary (from bench_extmem) ==="
sed -n '/E18b:/,/^$/p' bench_output.txt
