#!/usr/bin/env python3
"""Validates a rstlab trace file (--trace=FILE output, JSON lines).

Checks, line by line:
  * every line parses as a JSON object;
  * the `ev` kind is one of the known event kinds;
  * the keys required for that kind are present with sane types;
  * the stream is bracketed by run_begin / run_end;
  * scan_end envelopes satisfy lo <= pos <= hi;
  * reversal directions are +1/-1.

Usage: scripts/check_trace.py TRACE.jsonl [--min-events N]
Exits 0 on a valid trace, 1 otherwise (first error printed).
"""

import argparse
import json
import sys

KNOWN_KINDS = {
    "run_begin",
    "run_end",
    "trial_begin",
    "trial_end",
    "scan_begin",
    "scan_end",
    "reversal",
    "arena_high_water",
}

# Keys every event row carries, with their JSON types.
BASE_KEYS = {
    "ev": str,
    "tape": int,
    "trial": int,
    "scan": int,
    "pos": int,
    "dir": int,
    "value": int,
}


def check_line(line_no: int, line: str) -> str | None:
    """Returns an error message for a bad line, or None when valid."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as err:
        return f"line {line_no}: not valid JSON ({err})"
    if not isinstance(event, dict):
        return f"line {line_no}: not a JSON object"
    for key, expected_type in BASE_KEYS.items():
        if key not in event:
            return f"line {line_no}: missing key {key!r}"
        if not isinstance(event[key], expected_type) or isinstance(
            event[key], bool
        ):
            return (
                f"line {line_no}: key {key!r} has type "
                f"{type(event[key]).__name__}, want {expected_type.__name__}"
            )
    kind = event["ev"]
    if kind not in KNOWN_KINDS:
        return f"line {line_no}: unknown event kind {kind!r}"
    if kind == "scan_end":
        if "lo" not in event or "hi" not in event:
            return f"line {line_no}: scan_end without lo/hi envelope"
        if not event["lo"] <= event["pos"] <= event["hi"]:
            return (
                f"line {line_no}: scan_end envelope violated: "
                f"lo={event['lo']} pos={event['pos']} hi={event['hi']}"
            )
    if kind in ("scan_begin", "scan_end", "reversal") and event["tape"] < 0:
        return f"line {line_no}: {kind} without a tape id"
    if event["dir"] not in (1, -1):
        return f"line {line_no}: dir must be +1/-1, got {event['dir']}"
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace file (JSON lines)")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail when the trace has fewer events than this",
    )
    args = parser.parse_args()

    kinds_seen: dict[str, int] = {}
    total = 0
    try:
        with open(args.trace, encoding="utf-8") as stream:
            for line_no, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                error = check_line(line_no, line)
                if error is not None:
                    print(f"{args.trace}: {error}", file=sys.stderr)
                    return 1
                kind = json.loads(line)["ev"]
                kinds_seen[kind] = kinds_seen.get(kind, 0) + 1
                total += 1
    except OSError as err:
        print(f"{args.trace}: {err}", file=sys.stderr)
        return 1

    if total < args.min_events:
        print(
            f"{args.trace}: only {total} events, wanted >= {args.min_events}",
            file=sys.stderr,
        )
        return 1
    if kinds_seen.get("run_begin", 0) == 0 or kinds_seen.get("run_end", 0) == 0:
        print(
            f"{args.trace}: stream is not bracketed by run_begin/run_end "
            f"(saw {kinds_seen})",
            file=sys.stderr,
        )
        return 1

    summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds_seen.items()))
    print(f"{args.trace}: OK — {total} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
