#include "tape/resource_meter.h"

#include <sstream>

namespace rstlab::tape {

std::string ResourceReport::ToString() const {
  std::ostringstream os;
  os << "r=" << scan_bound << " s=" << internal_space << " t="
     << num_external_tapes << " ext=" << external_space;
  return os.str();
}

ResourceReport MeasureTapes(const std::vector<const Tape*>& tapes,
                            std::size_t internal_space) {
  ResourceReport report;
  report.num_external_tapes = tapes.size();
  report.internal_space = internal_space;
  std::uint64_t total_reversals = 0;
  for (const Tape* t : tapes) {
    report.reversals_per_tape.push_back(t->reversals());
    total_reversals += t->reversals();
    report.external_space += t->cells_used();
  }
  report.scan_bound = 1 + total_reversals;
  return report;
}

bool Complies(const ResourceReport& report, const StBounds& bounds) {
  return report.scan_bound <= bounds.max_scans &&
         report.internal_space <= bounds.max_internal_space &&
         report.num_external_tapes <= bounds.max_external_tapes;
}

}  // namespace rstlab::tape
