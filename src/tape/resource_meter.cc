#include "tape/resource_meter.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace rstlab::tape {

std::string ResourceReport::ToString() const {
  std::ostringstream os;
  os << "r=" << scan_bound << " s=" << internal_space << " t="
     << num_external_tapes << " ext=" << external_space;
  return os.str();
}

ResourceReport MeasureTapes(const std::vector<const Tape*>& tapes,
                            std::size_t internal_space) {
  ResourceReport report;
  report.num_external_tapes = tapes.size();
  report.internal_space = internal_space;
  std::uint64_t total_reversals = 0;
  for (const Tape* t : tapes) {
    report.reversals_per_tape.push_back(t->reversals());
    total_reversals += t->reversals();
    report.external_space += t->cells_used();
  }
  report.scan_bound = 1 + total_reversals;
  return report;
}

bool Complies(const ResourceReport& report, const StBounds& bounds) {
  return report.scan_bound <= bounds.max_scans &&
         report.internal_space <= bounds.max_internal_space &&
         report.num_external_tapes <= bounds.max_external_tapes;
}

std::string BoundViolation::ToString() const {
  std::ostringstream os;
  os << quantity << " " << measured << " > " << bound;
  if (tape_id >= 0) os << " at tape " << tape_id << " pos " << position;
  os << " (event " << event_index << ")";
  return os.str();
}

std::optional<BoundViolation> FirstViolation(
    const std::vector<obs::TraceEvent>& events, const StBounds& bounds) {
  std::uint64_t reversals = 0;
  std::uint64_t internal_space = 0;
  std::set<std::int32_t> tapes_seen;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::TraceEvent& event = events[i];
    BoundViolation violation;
    violation.tape_id = event.tape_id;
    violation.position = event.position;
    violation.event_index = i;
    if (event.tape_id >= 0) {
      tapes_seen.insert(event.tape_id);
      if (tapes_seen.size() > bounds.max_external_tapes) {
        violation.quantity = "external_tapes";
        violation.measured = tapes_seen.size();
        violation.bound = bounds.max_external_tapes;
        return violation;
      }
    }
    switch (event.kind) {
      case obs::EventKind::kReversal:
        ++reversals;
        if (1 + reversals > bounds.max_scans) {
          violation.quantity = "scan_bound";
          violation.measured = 1 + reversals;
          violation.bound = bounds.max_scans;
          return violation;
        }
        break;
      case obs::EventKind::kArenaHighWater:
        internal_space = std::max(internal_space, event.value);
        if (internal_space > bounds.max_internal_space) {
          violation.quantity = "internal_space";
          violation.measured = internal_space;
          violation.bound = bounds.max_internal_space;
          return violation;
        }
        break;
      default:
        break;
    }
  }
  return std::nullopt;
}

}  // namespace rstlab::tape
