#ifndef RSTLAB_TAPE_TAPE_H_
#define RSTLAB_TAPE_TAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace rstlab::tape {

/// The blank symbol present on every unwritten cell (paper: the square
/// symbol in Sigma).
inline constexpr char kBlank = '_';

/// Head movement directions.
enum class Direction : int {
  kLeft = -1,
  kRight = +1,
};

/// One external-memory tape of an ST-machine (paper Section 2).
///
/// The tape is one-sided infinite (cells numbered from 0, growing on
/// demand), holds `char` symbols, and meters exactly the quantity the
/// paper's cost model charges for: the number of head-direction changes
/// `rev(rho, i)` (Definition 1). Sequential scans are free; each change of
/// direction increments `reversals()`. A random access is expressible as
/// `Seek`, which costs at most two direction changes — mirroring the
/// paper's observation that random access can be simulated by head
/// movement.
///
/// The head starts at cell 0 moving right. Reads and writes never move the
/// head; movement is explicit via MoveLeft/MoveRight/Seek.
///
/// Observability: `AttachTrace` installs an event sink. The traced tape
/// emits scan-segment begin/end events (with the segment's head-position
/// envelope) and one kReversal per direction change. Untraced tapes pay
/// a single null-pointer check per direction change and nothing per move.
class Tape {
 public:
  /// An empty tape (all blanks).
  Tape() = default;

  /// A tape whose cells 0..content.size()-1 hold `content`.
  explicit Tape(std::string content);

  /// Replaces the entire tape content and rewinds the head to cell 0
  /// moving right, resetting reversal accounting (and, when traced,
  /// opening scan segment 0).
  void Reset(std::string content);

  /// The symbol under the head.
  char Read() const;

  /// Overwrites the symbol under the head (the head does not move).
  void Write(char symbol);

  /// Moves the head one cell to the right, growing the tape with blanks
  /// as needed.
  void MoveRight();

  /// Moves the head one cell to the left. At cell 0 the head cannot move
  /// (the tape is one-sided) and the call is a no-op: Definition 1 counts
  /// direction changes of the head's actual trajectory, so a blocked
  /// move charges no reversal and leaves the recorded direction as-is.
  void MoveLeft();

  /// Moves the head to absolute cell `position`, metering the direction
  /// changes this incurs (at most 2). This is the model's "random access".
  void Seek(std::size_t position);

  /// Current head position.
  std::size_t head() const { return head_; }

  /// Current head direction (the direction of the most recent move;
  /// right initially).
  Direction direction() const { return direction_; }

  /// Number of head-direction changes so far: rev(rho, i) of Definition 1.
  std::uint64_t reversals() const { return reversals_; }

  /// Number of cells ever used (written or visited): space(rho, i).
  std::size_t cells_used() const { return cells_.size(); }

  /// The first `cells_used()` cells as a string (diagnostics and result
  /// extraction; not part of the machine model).
  const std::string& contents() const { return cells_; }

  /// True iff the symbol under the head is blank.
  bool AtBlank() const { return Read() == kBlank; }

  /// Installs `sink` (nullptr detaches) and tags this tape's events with
  /// `tape_id`. Resets segment bookkeeping and opens scan segment 0 at
  /// the current head position.
  void AttachTrace(obs::TraceSink* sink, std::int32_t tape_id);

  /// Emits the kScanEnd event for the currently open scan segment, so a
  /// consumer sees the final segment's envelope. Idempotent; a no-op
  /// when untraced. Call at the end of a traced run.
  void FlushTrace();

 private:
  void RecordDirection(Direction d);
  void EmitScanBegin();
  void EmitScanEnd();

  std::string cells_;
  std::size_t head_ = 0;
  Direction direction_ = Direction::kRight;
  std::uint64_t reversals_ = 0;

  obs::TraceSink* trace_ = nullptr;
  std::int32_t trace_tape_id_ = -1;
  std::uint64_t scan_index_ = 0;       // current segment number
  std::size_t segment_start_ = 0;      // head position the segment began at
  bool segment_open_ = false;          // an un-flushed segment exists
};

}  // namespace rstlab::tape

#endif  // RSTLAB_TAPE_TAPE_H_
