#ifndef RSTLAB_TAPE_TAPE_H_
#define RSTLAB_TAPE_TAPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "extmem/io_stats.h"
#include "extmem/storage.h"
#include "obs/trace.h"

namespace rstlab::tape {

/// The blank symbol present on every unwritten cell (paper: the square
/// symbol in Sigma). Aliases the storage layer's blank so both layers
/// agree on what a never-written cell reads as.
inline constexpr char kBlank = extmem::kBlankCell;

/// Head movement directions.
enum class Direction : int {
  kLeft = -1,
  kRight = +1,
};

/// One external-memory tape of an ST-machine (paper Section 2).
///
/// The tape is one-sided infinite (cells numbered from 0, growing on
/// demand), holds `char` symbols, and meters exactly the quantity the
/// paper's cost model charges for: the number of head-direction changes
/// `rev(rho, i)` (Definition 1). Sequential scans are free; each change of
/// direction increments `reversals()`. A random access is expressible as
/// `Seek`, which costs at most two direction changes — mirroring the
/// paper's observation that random access can be simulated by head
/// movement.
///
/// The head starts at cell 0 moving right. Reads and writes never move the
/// head; movement is explicit via MoveLeft/MoveRight/Seek.
///
/// Storage: where the cells live is delegated to an
/// `extmem::TapeStorage` backend — in RAM by default, or a
/// checksummed block file behind an LRU + readahead cache
/// (`extmem::FileStorage`), which lets experiments run at N larger
/// than RAM. The reversal and space accounting is backend-independent:
/// a run's measured (r, s, t) is bit-identical across backends. The
/// in-memory backend is accessed through a typed pointer with inline
/// cell accessors, so the common case pays no virtual dispatch per
/// cell; the head's scan direction is forwarded to the backend (once
/// per reversal) to steer the file backend's readahead.
///
/// Observability: `AttachTrace` installs an event sink. The traced tape
/// emits scan-segment begin/end events (with the segment's head-position
/// envelope) and one kReversal per direction change. Untraced tapes pay
/// a single null-pointer check per direction change and nothing per move.
class Tape {
 public:
  /// An empty tape (all blanks) on the in-memory backend.
  Tape() : Tape(std::string()) {}

  /// A tape whose cells 0..content.size()-1 hold `content`, in memory.
  explicit Tape(std::string content);

  /// A tape over an explicit storage backend (its existing content, if
  /// any, is the tape content). `storage` must not be null.
  explicit Tape(std::unique_ptr<extmem::TapeStorage> storage);

  Tape(Tape&& other) noexcept;
  Tape& operator=(Tape&& other) noexcept;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Replaces the entire tape content and rewinds the head to cell 0
  /// moving right, resetting reversal accounting (and, when traced,
  /// opening scan segment 0).
  void Reset(std::string content);

  /// The symbol under the head.
  char Read() const {
    if (mem_ != nullptr) return mem_->CellOrBlank(head_);
    return storage_->ReadCell(head_);
  }

  /// Overwrites the symbol under the head (the head does not move).
  void Write(char symbol) {
    if (mem_ != nullptr) {
      mem_->SetCell(head_, symbol);
      return;
    }
    storage_->WriteCell(head_, symbol);
  }

  /// Moves the head one cell to the right, growing the tape with blanks
  /// as needed (block-granular in the storage layer; the per-move cost
  /// is one comparison).
  void MoveRight() {
    RecordDirection(Direction::kRight);
    ++head_;
    if (mem_ != nullptr) {
      mem_->EnsureLength(head_ + 1);
      return;
    }
    storage_->Reserve(head_ + 1);
  }

  /// Moves the head one cell to the left. At cell 0 the head cannot move
  /// (the tape is one-sided) and the call is a no-op: Definition 1 counts
  /// direction changes of the head's actual trajectory, so a blocked
  /// move charges no reversal and leaves the recorded direction as-is.
  void MoveLeft() {
    if (head_ == 0) return;
    RecordDirection(Direction::kLeft);
    --head_;
  }

  /// Moves the head to absolute cell `position`, metering the direction
  /// changes this incurs (at most 2). This is the model's "random access".
  void Seek(std::size_t position);

  /// Reads the `count` cells starting at the head while moving the head
  /// `count` cells to the right — exactly equivalent to `count`
  /// Read()+MoveRight() pairs (same final head position, same tape
  /// growth, at most one metered direction change, cells past the
  /// content read blank) but one bulk storage call, which keeps the
  /// per-cell virtual dispatch off the sort's scan paths.
  std::string ReadForward(std::size_t count);

  /// Writes `data` rightwards from the head, leaving the head one past
  /// the last written cell — equivalent to data.size() Write()+
  /// MoveRight() pairs, as one bulk storage call.
  void WriteForward(std::string_view data);

  /// Current head position.
  std::size_t head() const { return head_; }

  /// Current head direction (the direction of the most recent move;
  /// right initially).
  Direction direction() const { return direction_; }

  /// Number of head-direction changes so far: rev(rho, i) of Definition 1.
  std::uint64_t reversals() const { return reversals_; }

  /// Number of cells ever used (written or visited): space(rho, i).
  std::size_t cells_used() const { return storage_->size(); }

  /// The first `cells_used()` cells as a string (diagnostics and result
  /// extraction; not part of the machine model).
  std::string contents() const {
    return storage_->ReadRange(0, storage_->size());
  }

  /// True iff the symbol under the head is blank.
  bool AtBlank() const { return Read() == kBlank; }

  /// The storage backend underneath (for I/O inspection and flushing).
  extmem::TapeStorage& storage() { return *storage_; }
  const extmem::TapeStorage& storage() const { return *storage_; }

  /// Block-level I/O counters of the backend (all zero in memory).
  extmem::IoStats io_stats() const { return storage_->io_stats(); }

  /// Installs `sink` (nullptr detaches) and tags this tape's events with
  /// `tape_id`. Resets segment bookkeeping and opens scan segment 0 at
  /// the current head position.
  void AttachTrace(obs::TraceSink* sink, std::int32_t tape_id);

  /// Emits the kScanEnd event for the currently open scan segment, so a
  /// consumer sees the final segment's envelope. Idempotent; a no-op
  /// when untraced. Call at the end of a traced run.
  void FlushTrace();

 private:
  /// Fast path of the per-move direction check; the reversal
  /// bookkeeping, trace emission and readahead hint live out of line.
  void RecordDirection(Direction d) {
    if (d != direction_) RecordDirectionSlow(d);
  }
  void RecordDirectionSlow(Direction d);
  void EmitScanBegin();
  void EmitScanEnd();

  std::unique_ptr<extmem::TapeStorage> storage_;
  extmem::MemStorage* mem_ = nullptr;  // typed alias when in-memory
  std::size_t head_ = 0;
  Direction direction_ = Direction::kRight;
  std::uint64_t reversals_ = 0;

  obs::TraceSink* trace_ = nullptr;
  std::int32_t trace_tape_id_ = -1;
  std::uint64_t scan_index_ = 0;       // current segment number
  std::size_t segment_start_ = 0;      // head position the segment began at
  bool segment_open_ = false;          // an un-flushed segment exists
};

}  // namespace rstlab::tape

#endif  // RSTLAB_TAPE_TAPE_H_
