#include "tape/tape.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rstlab::tape {

namespace {

extmem::MemStorage* AsMem(extmem::TapeStorage* storage) {
  return dynamic_cast<extmem::MemStorage*>(storage);
}

}  // namespace

Tape::Tape(std::string content)
    : storage_(std::make_unique<extmem::MemStorage>(std::move(content))) {
  mem_ = static_cast<extmem::MemStorage*>(storage_.get());
}

Tape::Tape(std::unique_ptr<extmem::TapeStorage> storage)
    : storage_(std::move(storage)) {
  assert(storage_ != nullptr);
  mem_ = AsMem(storage_.get());
}

Tape::Tape(Tape&& other) noexcept
    : storage_(std::move(other.storage_)),
      mem_(std::exchange(other.mem_, nullptr)),
      head_(other.head_),
      direction_(other.direction_),
      reversals_(other.reversals_),
      trace_(other.trace_),
      trace_tape_id_(other.trace_tape_id_),
      scan_index_(other.scan_index_),
      segment_start_(other.segment_start_),
      segment_open_(other.segment_open_) {}

Tape& Tape::operator=(Tape&& other) noexcept {
  if (this == &other) return *this;
  storage_ = std::move(other.storage_);
  mem_ = std::exchange(other.mem_, nullptr);
  head_ = other.head_;
  direction_ = other.direction_;
  reversals_ = other.reversals_;
  trace_ = other.trace_;
  trace_tape_id_ = other.trace_tape_id_;
  scan_index_ = other.scan_index_;
  segment_start_ = other.segment_start_;
  segment_open_ = other.segment_open_;
  return *this;
}

void Tape::Reset(std::string content) {
  storage_->Assign(std::move(content));
  head_ = 0;
  direction_ = Direction::kRight;
  reversals_ = 0;
  scan_index_ = 0;
  segment_start_ = 0;
  if (mem_ == nullptr) storage_->SetDirectionHint(+1);
  if (trace_ != nullptr) {
    segment_open_ = true;
    EmitScanBegin();
  }
}

void Tape::AttachTrace(obs::TraceSink* sink, std::int32_t tape_id) {
  trace_ = sink;
  trace_tape_id_ = tape_id;
  scan_index_ = 0;
  segment_start_ = head_;
  segment_open_ = trace_ != nullptr;
  if (trace_ != nullptr) EmitScanBegin();
}

void Tape::EmitScanBegin() {
  obs::TraceEvent event;
  event.kind = obs::EventKind::kScanBegin;
  event.tape_id = trace_tape_id_;
  event.scan = scan_index_;
  event.position = head_;
  event.direction = static_cast<int>(direction_);
  trace_->OnEvent(event);
}

void Tape::EmitScanEnd() {
  obs::TraceEvent event;
  event.kind = obs::EventKind::kScanEnd;
  event.tape_id = trace_tape_id_;
  event.scan = scan_index_;
  event.position = head_;
  event.lo = std::min(segment_start_, head_);
  event.hi = std::max(segment_start_, head_);
  event.direction = static_cast<int>(direction_);
  trace_->OnEvent(event);
}

void Tape::FlushTrace() {
  if (trace_ == nullptr || !segment_open_) return;
  EmitScanEnd();
  segment_open_ = false;
}

void Tape::RecordDirectionSlow(Direction d) {
  if (trace_ != nullptr) {
    if (segment_open_) EmitScanEnd();
    obs::TraceEvent event;
    event.kind = obs::EventKind::kReversal;
    event.tape_id = trace_tape_id_;
    event.scan = scan_index_;
    event.position = head_;
    event.direction = static_cast<int>(d);
    trace_->OnEvent(event);
  }
  ++reversals_;
  direction_ = d;
  // Steer the file backend's readahead; once per reversal, so the
  // hint is off the per-move path.
  if (mem_ == nullptr) storage_->SetDirectionHint(static_cast<int>(d));
  if (trace_ != nullptr) {
    ++scan_index_;
    segment_start_ = head_;
    segment_open_ = true;
    EmitScanBegin();
  }
}

void Tape::Seek(std::size_t position) {
  while (head_ < position) MoveRight();
  while (head_ > position) MoveLeft();
}

std::string Tape::ReadForward(std::size_t count) {
  if (count == 0) return std::string();
  RecordDirection(Direction::kRight);
  std::string out = storage_->ReadRange(head_, count);
  out.resize(count, kBlank);
  head_ += count;
  storage_->Reserve(head_ + 1);
  return out;
}

void Tape::WriteForward(std::string_view data) {
  if (data.empty()) return;
  RecordDirection(Direction::kRight);
  storage_->WriteRange(head_, data);
  head_ += data.size();
  storage_->Reserve(head_ + 1);
}

}  // namespace rstlab::tape
