#include "tape/tape.h"

#include <algorithm>

namespace rstlab::tape {

Tape::Tape(std::string content) : cells_(std::move(content)) {}

void Tape::Reset(std::string content) {
  cells_ = std::move(content);
  head_ = 0;
  direction_ = Direction::kRight;
  reversals_ = 0;
  scan_index_ = 0;
  segment_start_ = 0;
  if (trace_ != nullptr) {
    segment_open_ = true;
    EmitScanBegin();
  }
}

char Tape::Read() const {
  if (head_ >= cells_.size()) return kBlank;
  return cells_[head_];
}

void Tape::Write(char symbol) {
  if (head_ >= cells_.size()) cells_.resize(head_ + 1, kBlank);
  cells_[head_] = symbol;
}

void Tape::AttachTrace(obs::TraceSink* sink, std::int32_t tape_id) {
  trace_ = sink;
  trace_tape_id_ = tape_id;
  scan_index_ = 0;
  segment_start_ = head_;
  segment_open_ = trace_ != nullptr;
  if (trace_ != nullptr) EmitScanBegin();
}

void Tape::EmitScanBegin() {
  obs::TraceEvent event;
  event.kind = obs::EventKind::kScanBegin;
  event.tape_id = trace_tape_id_;
  event.scan = scan_index_;
  event.position = head_;
  event.direction = static_cast<int>(direction_);
  trace_->OnEvent(event);
}

void Tape::EmitScanEnd() {
  obs::TraceEvent event;
  event.kind = obs::EventKind::kScanEnd;
  event.tape_id = trace_tape_id_;
  event.scan = scan_index_;
  event.position = head_;
  event.lo = std::min(segment_start_, head_);
  event.hi = std::max(segment_start_, head_);
  event.direction = static_cast<int>(direction_);
  trace_->OnEvent(event);
}

void Tape::FlushTrace() {
  if (trace_ == nullptr || !segment_open_) return;
  EmitScanEnd();
  segment_open_ = false;
}

void Tape::RecordDirection(Direction d) {
  if (d != direction_) {
    if (trace_ != nullptr) {
      if (segment_open_) EmitScanEnd();
      obs::TraceEvent event;
      event.kind = obs::EventKind::kReversal;
      event.tape_id = trace_tape_id_;
      event.scan = scan_index_;
      event.position = head_;
      event.direction = static_cast<int>(d);
      trace_->OnEvent(event);
    }
    ++reversals_;
    direction_ = d;
    if (trace_ != nullptr) {
      ++scan_index_;
      segment_start_ = head_;
      segment_open_ = true;
      EmitScanBegin();
    }
  }
}

void Tape::MoveRight() {
  RecordDirection(Direction::kRight);
  ++head_;
  if (head_ >= cells_.size()) cells_.resize(head_ + 1, kBlank);
}

void Tape::MoveLeft() {
  // One-sided tape: at cell 0 the head cannot move, so the attempted
  // move must not flip the recorded direction or charge a reversal —
  // rev(rho, i) of Definition 1 counts direction changes of the actual
  // head trajectory, and a blocked move has none.
  if (head_ == 0) return;
  RecordDirection(Direction::kLeft);
  --head_;
}

void Tape::Seek(std::size_t position) {
  while (head_ < position) MoveRight();
  while (head_ > position) MoveLeft();
}

}  // namespace rstlab::tape
