#include "tape/tape.h"

#include <cassert>

namespace rstlab::tape {

Tape::Tape(std::string content) : cells_(std::move(content)) {}

void Tape::Reset(std::string content) {
  cells_ = std::move(content);
  head_ = 0;
  direction_ = Direction::kRight;
  reversals_ = 0;
}

char Tape::Read() const {
  if (head_ >= cells_.size()) return kBlank;
  return cells_[head_];
}

void Tape::Write(char symbol) {
  if (head_ >= cells_.size()) cells_.resize(head_ + 1, kBlank);
  cells_[head_] = symbol;
}

void Tape::RecordDirection(Direction d) {
  if (d != direction_) {
    ++reversals_;
    direction_ = d;
  }
}

void Tape::MoveRight() {
  RecordDirection(Direction::kRight);
  ++head_;
  if (head_ >= cells_.size()) cells_.resize(head_ + 1, kBlank);
}

void Tape::MoveLeft() {
  RecordDirection(Direction::kLeft);
  if (head_ > 0) --head_;
}

void Tape::Seek(std::size_t position) {
  while (head_ < position) MoveRight();
  while (head_ > position) MoveLeft();
}

}  // namespace rstlab::tape
