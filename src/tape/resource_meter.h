#ifndef RSTLAB_TAPE_RESOURCE_METER_H_
#define RSTLAB_TAPE_RESOURCE_METER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "tape/tape.h"

namespace rstlab::tape {

/// A snapshot of the costs an ST-machine run incurred, in the units of
/// Definition 1.
struct ResourceReport {
  /// 1 + sum over external tapes of rev(rho, i). The paper's r(N) bounds
  /// this quantity, i.e. the number of sequential scans.
  std::uint64_t scan_bound = 1;
  /// Per-tape head-direction change counts.
  std::vector<std::uint64_t> reversals_per_tape;
  /// High-water internal memory usage in cells (paper: sum of
  /// space(rho, i) over internal tapes). The paper's s(N) bounds this.
  std::size_t internal_space = 0;
  /// Total external cells used (bounded by Lemma 3, not by the class
  /// definition).
  std::size_t external_space = 0;
  /// Number of external tapes t.
  std::size_t num_external_tapes = 0;

  /// Renders a one-line summary, e.g. "r=5 s=34 t=2 ext=1024".
  std::string ToString() const;
};

/// Collects a ResourceReport from a set of tapes plus an internal-space
/// high-water mark.
ResourceReport MeasureTapes(const std::vector<const Tape*>& tapes,
                            std::size_t internal_space);

/// Declarative resource bounds (r(N), s(N), t) for compliance checks:
/// r and s are evaluated at the run's input size N.
struct StBounds {
  /// Maximum admissible scan bound r(N).
  std::uint64_t max_scans = 0;
  /// Maximum admissible internal space s(N) in cells.
  std::size_t max_internal_space = 0;
  /// Maximum number of external tapes t.
  std::size_t max_external_tapes = 0;
};

/// True iff `report` complies with `bounds` (Definition 2 membership for
/// one particular run).
bool Complies(const ResourceReport& report, const StBounds& bounds);

/// Where (not just whether) a run left its declared class: the first
/// trace event at which a bound was exceeded.
struct BoundViolation {
  /// Which bound broke: "scan_bound", "internal_space" or
  /// "external_tapes".
  std::string quantity;
  /// The measured value immediately after the offending event.
  std::uint64_t measured = 0;
  /// The bound it exceeded.
  std::uint64_t bound = 0;
  /// Tape the offending event belongs to (-1 when not tape-scoped).
  std::int32_t tape_id = -1;
  /// Head position at the offending event.
  std::uint64_t position = 0;
  /// Index of the offending event in the replayed stream.
  std::size_t event_index = 0;

  /// Renders e.g. "scan_bound 5 > 4 at tape 0 pos 128 (event 37)".
  std::string ToString() const;
};

/// The event-level variant of `Complies`: replays a captured trace
/// stream (e.g. a RingSink snapshot) against `bounds` and returns the
/// first event at which a bound was exceeded, or nullopt when the whole
/// stream complies. The replay accumulates exactly the Definition-1
/// quantities — scan_bound = 1 + total kReversal events, internal
/// space = max kArenaHighWater value, tape count = distinct tape ids
/// seen — so a compliant stream's totals match `MeasureTapes` on the
/// same run.
std::optional<BoundViolation> FirstViolation(
    const std::vector<obs::TraceEvent>& events, const StBounds& bounds);

}  // namespace rstlab::tape

#endif  // RSTLAB_TAPE_RESOURCE_METER_H_
