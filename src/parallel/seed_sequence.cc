#include "parallel/seed_sequence.h"

namespace rstlab::parallel {

std::uint64_t SeedSequence::SeedForTrial(std::uint64_t trial) const {
  // splitmix64 with the standard golden-ratio gamma, evaluated at
  // stream position trial + 1 in closed form.
  std::uint64_t z = experiment_seed_ + (trial + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace rstlab::parallel
