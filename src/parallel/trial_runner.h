#ifndef RSTLAB_PARALLEL_TRIAL_RUNNER_H_
#define RSTLAB_PARALLEL_TRIAL_RUNNER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "parallel/seed_sequence.h"
#include "parallel/thread_pool.h"

namespace rstlab::parallel {

/// Maps a trial range [0, trials) over a fixed thread pool in chunks and
/// reduces per-chunk tallies deterministically.
///
/// Reproducibility contract:
///  * chunk boundaries depend only on `trials` (never on the thread
///    count), so the grouping of partial reductions is fixed;
///  * chunk tallies are merged in ascending chunk order on the calling
///    thread after all workers finish;
///  * per-trial randomness, when needed, comes from a `SeedSequence`
///    indexed by the trial number.
/// Together these make every tally bit-identical for any `--threads`
/// value — including non-associative reductions such as floating-point
/// sums.
///
/// A `Tally` type must be default-constructible and provide
/// `void Merge(const Tally&)`.
class TrialRunner {
 public:
  /// A runner over `threads` workers (0 is clamped to 1). `chunks_hint`
  /// caps the number of chunks a range is split into; it only trades
  /// scheduling granularity for task overhead and never affects results.
  explicit TrialRunner(std::size_t threads, std::size_t chunks_hint = 128)
      : pool_(threads), chunks_hint_(chunks_hint == 0 ? 1 : chunks_hint) {}

  std::size_t threads() const { return pool_.thread_count(); }

  /// Installs `sink` (nullptr detaches). A traced runner emits one
  /// kTrialBegin/kTrialEnd pair per trial, stamped with the trial
  /// number. Events arrive from worker threads concurrently, so the
  /// sink must be thread-safe (every sink in src/obs is); their
  /// arrival order across trials is scheduling-dependent, but the
  /// per-trial stamps let a consumer re-group them deterministically.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Runs `body(trial, tally)` for every trial in [0, trials) and
  /// returns the merged tally. `body` must be callable concurrently
  /// from multiple threads (each invocation gets its chunk-local tally).
  /// Exceptions thrown by `body` propagate to the caller.
  template <typename Tally, typename Body>
  Tally Run(std::uint64_t trials, Body&& body) {
    const std::vector<ChunkBounds> chunks = PartitionTrials(trials);
    std::vector<Tally> partial(chunks.size());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      pool_.Submit([&, c] {
        Tally local;
        for (std::uint64_t t = chunks[c].begin; t < chunks[c].end; ++t) {
          if (trace_ != nullptr) {
            trace_->OnEvent(
                obs::MakeTrialEvent(obs::EventKind::kTrialBegin, t));
          }
          body(t, local);
          if (trace_ != nullptr) {
            trace_->OnEvent(
                obs::MakeTrialEvent(obs::EventKind::kTrialEnd, t));
          }
        }
        partial[c] = std::move(local);
      });
    }
    pool_.Wait();
    Tally merged;
    for (const Tally& tally : partial) merged.Merge(tally);
    return merged;
  }

  /// As Run, but additionally hands `body` a per-trial Rng derived from
  /// `seeds`: `body(trial, rng, tally)`.
  template <typename Tally, typename Body>
  Tally RunSeeded(std::uint64_t trials, const SeedSequence& seeds,
                  Body&& body) {
    return Run<Tally>(trials,
                      [&seeds, &body](std::uint64_t trial, Tally& tally) {
                        Rng rng = seeds.RngForTrial(trial);
                        body(trial, rng, tally);
                      });
  }

  /// Maps [0, trials) in fixed-width groups for batched (SIMD-lane)
  /// bodies: group g covers trials [g*lanes, min((g+1)*lanes, trials))
  /// and runs as ONE unit — `body(first_trial, count, rng, tally)` with
  /// an Rng derived from the group's first trial index. The group
  /// layout is a pure function of (trials, lanes), so the
  /// reproducibility contract above carries over verbatim: a batched
  /// tally is bit-identical at any thread count. It intentionally
  /// differs from RunSeeded's (one Rng per trial), because a batch
  /// draws all of its lanes' randomness from one stream; compare
  /// batched runs only with batched runs of the same lane width.
  template <typename Tally, typename Body>
  Tally RunSeededBatches(std::uint64_t trials, std::uint64_t lanes,
                         const SeedSequence& seeds, Body&& body) {
    const std::uint64_t width = lanes == 0 ? 1 : lanes;
    const std::uint64_t groups = (trials + width - 1) / width;
    return Run<Tally>(
        groups, [&seeds, &body, trials, width](std::uint64_t group,
                                               Tally& tally) {
          const std::uint64_t first = group * width;
          const std::uint64_t count = std::min(width, trials - first);
          Rng rng = seeds.RngForTrial(first);
          body(first, count, rng, tally);
        });
  }

 private:
  struct ChunkBounds {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  /// Splits [0, trials) into at most chunks_hint_ near-equal chunks; the
  /// layout is a pure function of `trials` and the hint.
  std::vector<ChunkBounds> PartitionTrials(std::uint64_t trials) const;

  ThreadPool pool_;
  std::size_t chunks_hint_;
  obs::TraceSink* trace_ = nullptr;
};

/// The thread count a bench binary should use, in precedence order:
/// `cli_threads` if > 0 (from --threads=N), else the RSTLAB_THREADS
/// environment variable, else std::thread::hardware_concurrency().
std::size_t ResolveThreadCount(std::size_t cli_threads = 0);

/// Extracts a `--threads=N` flag from argv (removing it, so downstream
/// flag parsers — e.g. google-benchmark — never see it) and resolves the
/// effective thread count via ResolveThreadCount.
std::size_t ParseThreadsFlag(int* argc, char** argv);

}  // namespace rstlab::parallel

#endif  // RSTLAB_PARALLEL_TRIAL_RUNNER_H_
