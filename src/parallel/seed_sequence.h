#ifndef RSTLAB_PARALLEL_SEED_SEQUENCE_H_
#define RSTLAB_PARALLEL_SEED_SEQUENCE_H_

#include <cstdint>

#include "util/random.h"

namespace rstlab::parallel {

/// Derives one independent, reproducible `Rng` per trial index from a
/// single experiment seed.
///
/// The derivation is the splitmix64 output function applied at a fixed
/// offset per trial: seed_t = mix(experiment_seed + (t + 1) * gamma),
/// i.e. the (t+1)-th output of the splitmix64 stream started at the
/// experiment seed — but computed in O(1) per trial, so any thread can
/// seed any trial without walking the stream. Consequences:
///
///  * trial t's randomness depends only on (experiment_seed, t), never
///    on which thread runs it or in what order — results are
///    bit-identical regardless of thread count or schedule;
///  * distinct trials get decorrelated full-period xoshiro256** streams
///    (each Rng is seeded through its own splitmix64 expansion).
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t experiment_seed)
      : experiment_seed_(experiment_seed) {}

  std::uint64_t experiment_seed() const { return experiment_seed_; }

  /// The 64-bit seed assigned to `trial`.
  std::uint64_t SeedForTrial(std::uint64_t trial) const;

  /// A fresh generator for `trial`, fully determined by
  /// (experiment_seed, trial).
  Rng RngForTrial(std::uint64_t trial) const {
    return Rng(SeedForTrial(trial));
  }

 private:
  std::uint64_t experiment_seed_;
};

}  // namespace rstlab::parallel

#endif  // RSTLAB_PARALLEL_SEED_SEQUENCE_H_
