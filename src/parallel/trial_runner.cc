#include "parallel/trial_runner.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace rstlab::parallel {

std::vector<TrialRunner::ChunkBounds> TrialRunner::PartitionTrials(
    std::uint64_t trials) const {
  std::vector<ChunkBounds> chunks;
  if (trials == 0) return chunks;
  const std::uint64_t count =
      std::min<std::uint64_t>(trials, chunks_hint_);
  chunks.reserve(static_cast<std::size_t>(count));
  // Near-equal split: the first (trials % count) chunks get one extra.
  const std::uint64_t base = trials / count;
  const std::uint64_t extra = trials % count;
  std::uint64_t begin = 0;
  for (std::uint64_t c = 0; c < count; ++c) {
    const std::uint64_t size = base + (c < extra ? 1 : 0);
    chunks.push_back({begin, begin + size});
    begin += size;
  }
  return chunks;
}

std::size_t ResolveThreadCount(std::size_t cli_threads) {
  if (cli_threads > 0) return cli_threads;
  if (const char* env = std::getenv("RSTLAB_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t ParseThreadsFlag(int* argc, char** argv) {
  std::size_t cli_threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(arg + 10, &end, 10);
      if (end != arg + 10 && *end == '\0' && parsed > 0) {
        cli_threads = static_cast<std::size_t>(parsed);
      }
      continue;  // strip the flag either way
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < *argc; ++i) argv[i] = nullptr;
  *argc = out;
  return ResolveThreadCount(cli_threads);
}

}  // namespace rstlab::parallel
