#ifndef RSTLAB_PARALLEL_BENCH_RECORDER_H_
#define RSTLAB_PARALLEL_BENCH_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace rstlab::parallel {

/// One trial-engine measurement: an experiment's Monte-Carlo loop timed
/// end to end, plus a tally checksum so runs at different thread counts
/// can be compared for bit-identical results straight from the JSON.
struct TrialBenchEntry {
  std::string bench;        // binary name, e.g. "bench_fingerprint"
  std::string experiment;   // loop label, e.g. "E1.m=1024"
  std::size_t threads = 0;  // thread count the loop ran with
  std::uint64_t trials = 0;
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;  // trials / wall_seconds
  std::uint64_t tally_checksum = 0;
  /// Pre-rendered `{"name":value,...}` snapshot of the binary's metrics
  /// registry at record time; empty (and omitted from the JSON row)
  /// unless the binary ran with `--metrics`.
  std::string metrics_json;
};

/// Accumulates TrialBenchEntry rows for one bench binary and writes them
/// to the shared `BENCH_trials.json` (path overridable via the
/// RSTLAB_BENCH_JSON environment variable).
///
/// The file is a JSON array with one object per line. Write() merges:
/// entries from *other* bench binaries already in the file are kept,
/// this binary's previous entries are replaced — so running the bench
/// suite in any order converges to one complete snapshot, and the perf
/// trajectory can be tracked by committing the file. The merge is
/// crash- and race-safe: the new file is assembled in a temp file next
/// to the target and atomically rename()d over it, so a reader (or a
/// concurrently-writing sibling binary) always sees a complete file.
class BenchRecorder {
 public:
  BenchRecorder(std::string bench_name, std::size_t threads);

  /// Records one timed Monte-Carlo loop. When a metrics registry is
  /// attached, the row also captures its snapshot at this moment
  /// (cumulative totals for the binary so far).
  void Record(const std::string& experiment, std::uint64_t trials,
              double wall_seconds, std::uint64_t tally_checksum);

  /// Attaches the `--metrics` registry whose snapshots Record() folds
  /// into subsequent rows (nullptr detaches; not owned).
  void set_metrics(const obs::MetricsRegistry* registry) {
    metrics_ = registry;
  }

  const std::vector<TrialBenchEntry>& entries() const { return entries_; }

  /// Merges this binary's entries into the JSON file and returns the
  /// path written, or a failure if the file cannot be written.
  Result<std::string> Write() const;

  /// The output path Write() will use.
  static std::string OutputPath();

 private:
  std::string bench_name_;
  std::size_t threads_;
  std::vector<TrialBenchEntry> entries_;
  const obs::MetricsRegistry* metrics_ = nullptr;
};

/// Formats one entry as a single-line JSON object.
std::string FormatTrialBenchEntry(const TrialBenchEntry& entry);

/// Order-sensitive 64-bit mix of a tally's integer fields, recorded as
/// `tally_checksum` so bit-identity across thread counts is visible in
/// the JSON (splitmix64-style finalizer per value).
std::uint64_t Checksum64(std::initializer_list<std::uint64_t> values);

}  // namespace rstlab::parallel

#endif  // RSTLAB_PARALLEL_BENCH_RECORDER_H_
