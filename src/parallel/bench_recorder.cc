#include "parallel/bench_recorder.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rstlab::parallel {

namespace {

/// JSON string escaping for the restricted strings we emit (bench and
/// experiment labels).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatJsonDouble(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

std::string FormatTrialBenchEntry(const TrialBenchEntry& entry) {
  std::ostringstream os;
  os << "{\"bench\":\"" << EscapeJson(entry.bench) << "\""
     << ",\"experiment\":\"" << EscapeJson(entry.experiment) << "\""
     << ",\"threads\":" << entry.threads
     << ",\"trials\":" << entry.trials
     << ",\"wall_seconds\":" << FormatJsonDouble(entry.wall_seconds)
     << ",\"trials_per_sec\":" << FormatJsonDouble(entry.trials_per_sec)
     << ",\"tally_checksum\":" << entry.tally_checksum;
  if (!entry.metrics_json.empty()) {
    os << ",\"metrics\":" << entry.metrics_json;
  }
  os << "}";
  return os.str();
}

BenchRecorder::BenchRecorder(std::string bench_name, std::size_t threads)
    : bench_name_(std::move(bench_name)), threads_(threads) {}

void BenchRecorder::Record(const std::string& experiment,
                           std::uint64_t trials, double wall_seconds,
                           std::uint64_t tally_checksum) {
  TrialBenchEntry entry;
  entry.bench = bench_name_;
  entry.experiment = experiment;
  entry.threads = threads_;
  entry.trials = trials;
  entry.wall_seconds = wall_seconds;
  entry.trials_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
  entry.tally_checksum = tally_checksum;
  if (metrics_ != nullptr) entry.metrics_json = metrics_->ToJsonObject();
  entries_.push_back(std::move(entry));
}

std::string BenchRecorder::OutputPath() {
  if (const char* env = std::getenv("RSTLAB_BENCH_JSON")) {
    if (*env != '\0') return env;
  }
  return "BENCH_trials.json";
}

Result<std::string> BenchRecorder::Write() const {
  const std::string path = OutputPath();
  // Keep lines from other bench binaries; replace our own. The file is
  // one JSON object per line inside a top-level array, which makes this
  // merge a line filter rather than a JSON parse.
  const std::string own_key = "\"bench\":\"" + EscapeJson(bench_name_) + "\"";
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line == "[" || line == "]") continue;
      if (line.find(own_key) != std::string::npos) continue;
      if (line.back() == ',') line.pop_back();
      if (line.find("\"bench\":") == std::string::npos) continue;
      kept.push_back(line);
    }
  }
  for (const TrialBenchEntry& entry : entries_) {
    kept.push_back(FormatTrialBenchEntry(entry));
  }
  // Assemble the new snapshot in a temp file in the same directory and
  // atomically rename() it over the target: a crash mid-write leaves
  // the previous snapshot intact, and two bench binaries racing each
  // produce a complete file (last rename wins) instead of interleaved
  // garbage corrupting the tracked perf trajectory.
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + tmp_path + " for writing");
    }
    out << "[\n";
    for (std::size_t i = 0; i < kept.size(); ++i) {
      out << kept[i] << (i + 1 < kept.size() ? "," : "") << "\n";
    }
    out << "]\n";
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp_path.c_str());
      return Status::Internal("short write to " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot rename " + tmp_path + " to " + path);
  }
  return path;
}

std::uint64_t Checksum64(std::initializer_list<std::uint64_t> values) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi digits; arbitrary
  for (std::uint64_t v : values) {
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

}  // namespace rstlab::parallel
