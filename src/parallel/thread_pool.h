#ifndef RSTLAB_PARALLEL_THREAD_POOL_H_
#define RSTLAB_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rstlab::parallel {

/// A fixed pool of worker threads draining a shared FIFO task queue.
///
/// Deliberately work-stealing-free: tasks are coarse (one Monte-Carlo
/// chunk each), so a single mutex-guarded queue is contention-free in
/// practice and keeps the execution model simple enough to reason about
/// determinism. The pool owns its threads for its whole lifetime; there
/// is no dynamic resizing.
///
/// Exceptions thrown by a task are captured (first one wins) and
/// rethrown from Wait(), so callers see worker failures on their own
/// thread instead of std::terminate.
class ThreadPool {
 public:
  /// Starts `threads` workers (at least 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding tasks, then joins all workers. Exceptions still
  /// pending (Wait() never called) are swallowed at this point.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (clearing it, so the pool
  /// remains usable afterwards).
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rstlab::parallel

#endif  // RSTLAB_PARALLEL_THREAD_POOL_H_
