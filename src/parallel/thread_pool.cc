#include "parallel/thread_pool.h"

#include <algorithm>
#include <utility>

namespace rstlab::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this] { return in_flight_ == 0; });
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    all_idle_.notify_all();
  }
}

}  // namespace rstlab::parallel
