#include "fingerprint/fingerprint.h"

#include <bit>
#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fingerprint/barrett.h"
#include "fingerprint/prime.h"
#include "fingerprint/prime_pool.h"
#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"

namespace rstlab::fingerprint {

namespace {

/// ceil(log2(v)) for v >= 1, at least 1.
std::uint64_t CeilLog2(std::uint64_t v) {
  if (v <= 2) return 1;
  return static_cast<std::uint64_t>(std::bit_width(v - 1));
}

}  // namespace

Result<std::uint64_t> ComputeFingerprintK(std::size_t m, std::size_t n) {
  const unsigned __int128 m128 = m == 0 ? 1 : m;
  const unsigned __int128 n128 = n == 0 ? 1 : n;
  const unsigned __int128 mn = m128 * m128 * m128 * n128;
  if (mn > (static_cast<unsigned __int128>(1) << 62)) {
    return Status::OutOfRange("m^3 * n too large for 64-bit fingerprints");
  }
  const unsigned __int128 k =
      mn * CeilLog2(static_cast<std::uint64_t>(mn));
  if (k > (static_cast<unsigned __int128>(1) << 62) / 6) {
    return Status::OutOfRange("k too large for 64-bit fingerprints");
  }
  // The algorithm needs k >= 2 so a prime <= k exists.
  return std::max<std::uint64_t>(2, static_cast<std::uint64_t>(k));
}

std::size_t MaxValueBits(const problems::Instance& instance) {
  std::size_t n = 0;
  for (const BitString& v : instance.first) n = std::max(n, v.size());
  for (const BitString& v : instance.second) n = std::max(n, v.size());
  return n;
}

namespace {

/// Number of x in {1..p2-1} for which the fingerprint accepts under
/// prime p1 — the inner loop of the exact enumeration, with the fixed
/// modulus p2 reduced via Barrett instead of 128-bit division.
std::uint64_t CountAcceptingX(const problems::Instance& instance,
                              std::uint64_t p1, const Barrett& bp2) {
  // Residues are independent of x; hoist them out of the x loop.
  std::vector<std::uint64_t> e_first;
  std::vector<std::uint64_t> e_second;
  e_first.reserve(instance.first.size());
  e_second.reserve(instance.second.size());
  for (const BitString& v : instance.first) {
    e_first.push_back(v.ModUint64(p1));
  }
  for (const BitString& v : instance.second) {
    e_second.push_back(v.ModUint64(p1));
  }
  const std::uint64_t p2 = bp2.modulus();
  std::uint64_t accepting = 0;
  for (std::uint64_t x = 1; x < p2; ++x) {
    std::uint64_t sum_first = 0;
    std::uint64_t sum_second = 0;
    for (std::uint64_t e : e_first) {
      sum_first += bp2.PowMod(x, e);
      if (sum_first >= p2) sum_first -= p2;
    }
    for (std::uint64_t e : e_second) {
      sum_second += bp2.PowMod(x, e);
      if (sum_second >= p2) sum_second -= p2;
    }
    accepting += sum_first == sum_second;
  }
  return accepting;
}

/// The Claim 1 event for one concrete prime: does some pair
/// v_i != v'_j collide mod p?
bool HasResidueCollision(const problems::Instance& instance,
                         std::uint64_t p) {
  // residue -> distinct second-list values with that residue
  std::unordered_map<std::uint64_t,
                     std::unordered_set<BitString, BitStringHash>>
      by_residue;
  for (const BitString& v : instance.second) {
    by_residue[v.ModUint64(p)].insert(v);
  }
  for (const BitString& v : instance.first) {
    auto it = by_residue.find(v.ModUint64(p));
    if (it == by_residue.end()) continue;
    for (const BitString& w : it->second) {
      if (w != v) return true;
    }
  }
  return false;
}

/// Shared setup of the exact enumeration: k, the Bertrand prime p2 and
/// the sieved pool of candidate p1 primes.
struct ExactEnumeration {
  std::uint64_t k = 0;
  std::uint64_t p2 = 0;
  std::vector<std::uint64_t> primes;
};

Result<ExactEnumeration> PrepareExactEnumeration(
    const problems::Instance& instance, std::uint64_t max_k) {
  Result<std::uint64_t> k_result =
      ComputeFingerprintK(instance.m(), MaxValueBits(instance));
  if (!k_result.ok()) return k_result.status();
  ExactEnumeration prep;
  prep.k = k_result.value();
  if (prep.k > max_k) {
    return Status::OutOfRange("k = " + std::to_string(prep.k) +
                              " too large for exact enumeration");
  }
  Result<std::uint64_t> p2_result = PrimeInBertrandInterval(prep.k);
  if (!p2_result.ok()) return p2_result.status();
  prep.p2 = p2_result.value();
  prep.primes = PrimePool(prep.k).primes();
  if (prep.primes.empty()) return Status::Internal("no primes <= k");
  return prep;
}

}  // namespace

Result<FingerprintParams> SampleFingerprintParams(std::size_t m,
                                                  std::size_t n,
                                                  Rng& rng) {
  FingerprintParams params;
  Result<std::uint64_t> k = ComputeFingerprintK(m, n);
  if (!k.ok()) return k.status();
  params.k = k.value();
  Result<std::uint64_t> p1 = RandomPrimeAtMost(params.k, rng);
  if (!p1.ok()) return p1.status();
  params.p1 = p1.value();
  Result<std::uint64_t> p2 = PrimeInBertrandInterval(params.k);
  if (!p2.ok()) return p2.status();
  params.p2 = p2.value();
  params.x = rng.UniformInRange(1, params.p2 - 1);
  return params;
}

bool AcceptsWithParams(const problems::Instance& instance,
                       const FingerprintParams& params) {
  // p2 is fixed for the whole accumulation; reduce it via Barrett.
  const Barrett bp2(params.p2);
  std::uint64_t sum_first = 0;
  std::uint64_t sum_second = 0;
  for (const BitString& v : instance.first) {
    const std::uint64_t e = v.ModUint64(params.p1);
    sum_first += bp2.PowMod(params.x, e);
    if (sum_first >= params.p2) sum_first -= params.p2;
  }
  for (const BitString& v : instance.second) {
    const std::uint64_t e = v.ModUint64(params.p1);
    sum_second += bp2.PowMod(params.x, e);
    if (sum_second >= params.p2) sum_second -= params.p2;
  }
  return sum_first == sum_second;
}

FingerprintOutcome TestMultisetEquality(const problems::Instance& instance,
                                        Rng& rng) {
  FingerprintOutcome outcome;
  Result<FingerprintParams> params =
      SampleFingerprintParams(instance.m(), MaxValueBits(instance), rng);
  // Parameter sampling only fails on astronomically large m*n (beyond
  // what fits in memory). Accepting on failure keeps the one-sided
  // guarantee intact: false accepts are the permitted error direction,
  // false rejects never are.
  if (!params.ok()) {
    outcome.accepted = true;
    return outcome;
  }
  outcome.params = params.value();
  outcome.accepted = AcceptsWithParams(instance, outcome.params);
  return outcome;
}

Result<FingerprintOutcome> TestMultisetEqualityOnTapes(
    stmodel::StContext& ctx, Rng& rng) {
  tape::Tape& in = ctx.tape(0);
  stmodel::InternalArena& arena = ctx.arena();
  const std::size_t N = std::max<std::size_t>(1, ctx.input_size());

  // ---- Scan 1: determine m and n (step 1). O(log N)-bit counters. ----
  const std::size_t ctr_bits = stmodel::BitsFor(N);
  stmodel::MeteredUint64 num_fields(arena, ctr_bits);
  stmodel::MeteredUint64 field_len(arena, ctr_bits);
  stmodel::MeteredUint64 max_len(arena, ctr_bits);

  // Each cell is read exactly ONCE into a register (2N + 1 reads for
  // the whole two-scan run, including the terminal blank probe): the
  // model charges a scan one visit per cell, so re-reading under a
  // stationary head would inflate the obs event counts and extmem
  // cache statistics relative to Definition 1.
  stmodel::Rewind(in);
  char cell = in.Read();
  while (cell != tape::kBlank) {
    if (cell == stmodel::kFieldSeparator) {
      max_len = std::max(max_len.get(), field_len.get());
      field_len = 0;
      num_fields = num_fields.get() + 1;
    } else if (cell == '0' || cell == '1') {
      field_len = field_len.get() + 1;
    } else {
      return Status::InvalidArgument("non-binary character in field");
    }
    in.MoveRight();
    cell = in.Read();
  }
  if (in.head() < ctx.input_size()) {
    return Status::InvalidArgument("blank cell inside input");
  }
  if (field_len.get() != 0) {
    return Status::InvalidArgument(
        "unterminated field: instance must end with '#'");
  }
  if (num_fields.get() == 0) {
    return Status::InvalidArgument("empty input tape");
  }
  if (num_fields.get() % 2 != 0) {
    return Status::InvalidArgument(
        "odd field count: instance must have 2m fields");
  }
  const std::size_t m = static_cast<std::size_t>(num_fields.get() / 2);
  const std::size_t n = static_cast<std::size_t>(max_len.get());

  // ---- Steps 2-4: sample p1, p2, x in internal memory. ----
  Result<FingerprintParams> params_result =
      SampleFingerprintParams(m, n, rng);
  if (!params_result.ok()) return params_result.status();
  const FingerprintParams params = params_result.value();
  // Account for the O(log N)-bit registers holding k, p1, p2, x and the
  // arithmetic scratch (Theorem 8(a): "with numbers of length O(log N)
  // we can carry out the necessary arithmetic").
  stmodel::MeteredUint64 reg_p1(arena, stmodel::BitsFor(params.p1),
                                params.p1);
  stmodel::MeteredUint64 reg_p2(arena, stmodel::BitsFor(params.p2),
                                params.p2);
  stmodel::MeteredUint64 reg_x(arena, stmodel::BitsFor(params.p2),
                               params.x);
  stmodel::MeteredUint64 residue(arena, stmodel::BitsFor(params.p1));
  stmodel::MeteredUint64 power(arena, stmodel::BitsFor(params.p1));
  stmodel::MeteredUint64 sum_first(arena, stmodel::BitsFor(params.p2));
  stmodel::MeteredUint64 sum_second(arena, stmodel::BitsFor(params.p2));
  stmodel::MeteredUint64 field_index(arena, ctr_bits);

  // ---- Scan 2: one BACKWARD pass (exactly one head reversal, so the
  // whole run uses the paper's two sequential scans). Reading a value
  // right-to-left, e_i = sum_j bit_j * 2^j mod p1 is accumulated with an
  // incrementally maintained power of two (step 5, reversed). ----
  residue = 0;
  power = 1 % reg_p1.get();
  field_index = 2 * m;  // counts down; fields are met in reverse order
  bool in_field = false;
  // Head is one past the last '#' after scan 1; walk left to cell 0.
  std::size_t remaining = in.head();
  auto finalize_field = [&]() {
    field_index = field_index.get() - 1;
    const std::uint64_t term =
        PowMod(reg_x.get(), residue.get(), reg_p2.get());
    if (field_index.get() < m) {
      sum_first = (sum_first.get() + term) % reg_p2.get();
    } else {
      sum_second = (sum_second.get() + term) % reg_p2.get();
    }
    residue = 0;
    power = 1 % reg_p1.get();
  };
  while (remaining > 0) {
    in.MoveLeft();
    --remaining;
    const char c = in.Read();
    if (c == stmodel::kFieldSeparator) {
      if (in_field) finalize_field();
      in_field = true;  // a '#' opens the field to its left
    } else {
      residue = (residue.get() +
                 (c == '1' ? power.get() : 0) % reg_p1.get()) %
                reg_p1.get();
      power = MulMod(power.get(), 2, reg_p1.get());
    }
  }
  if (in_field) finalize_field();
  if (field_index.get() != 0) {
    return Status::Internal("backward scan lost field alignment");
  }

  FingerprintOutcome outcome;
  outcome.params = params;
  outcome.accepted = sum_first.get() == sum_second.get();
  return outcome;
}

Result<double> ExactAcceptProbability(const problems::Instance& instance,
                                      std::uint64_t max_k) {
  Result<ExactEnumeration> prep = PrepareExactEnumeration(instance, max_k);
  if (!prep.ok()) return prep.status();
  const Barrett bp2(prep.value().p2);
  std::uint64_t accepting = 0;
  for (std::uint64_t p1 : prep.value().primes) {
    accepting += CountAcceptingX(instance, p1, bp2);
  }
  const std::uint64_t total =
      prep.value().primes.size() * (prep.value().p2 - 1);
  return static_cast<double>(accepting) / static_cast<double>(total);
}

Result<double> ExactAcceptProbability(const problems::Instance& instance,
                                      parallel::TrialRunner& runner,
                                      std::uint64_t max_k) {
  Result<ExactEnumeration> prep = PrepareExactEnumeration(instance, max_k);
  if (!prep.ok()) return prep.status();
  const ExactEnumeration& enumeration = prep.value();
  const Barrett bp2(enumeration.p2);
  struct AcceptTally {
    std::uint64_t accepting = 0;
    void Merge(const AcceptTally& other) { accepting += other.accepting; }
  };
  const AcceptTally tally = runner.Run<AcceptTally>(
      enumeration.primes.size(),
      [&](std::uint64_t prime_index, AcceptTally& local) {
        local.accepting += CountAcceptingX(
            instance, enumeration.primes[prime_index], bp2);
      });
  const std::uint64_t total =
      enumeration.primes.size() * (enumeration.p2 - 1);
  return static_cast<double>(tally.accepting) /
         static_cast<double>(total);
}

double EstimateClaim1CollisionRate(const problems::Instance& instance,
                                   std::size_t trials, Rng& rng) {
  Result<std::uint64_t> k_result =
      ComputeFingerprintK(instance.m(), MaxValueBits(instance));
  if (!k_result.ok() || trials == 0) return 0.0;
  const PrimePool pool(k_result.value());

  std::size_t collisions = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    Result<std::uint64_t> p = pool.Sample(rng);
    if (!p.ok()) continue;
    if (HasResidueCollision(instance, p.value())) ++collisions;
  }
  return static_cast<double>(collisions) / static_cast<double>(trials);
}

Claim1Estimate EstimateClaim1CollisionRate(
    const problems::Instance& instance, std::size_t trials,
    std::uint64_t seed, parallel::TrialRunner& runner) {
  Claim1Estimate estimate;
  Result<std::uint64_t> k_result =
      ComputeFingerprintK(instance.m(), MaxValueBits(instance));
  if (!k_result.ok() || trials == 0) return estimate;
  // Sieve once on the calling thread; workers only read.
  const PrimePool pool(k_result.value());
  const parallel::SeedSequence seeds(seed);
  struct CollisionTally {
    std::uint64_t trials = 0;
    std::uint64_t collisions = 0;
    void Merge(const CollisionTally& other) {
      trials += other.trials;
      collisions += other.collisions;
    }
  };
  const CollisionTally tally = runner.RunSeeded<CollisionTally>(
      trials, seeds,
      [&](std::uint64_t, Rng& rng, CollisionTally& local) {
        Result<std::uint64_t> p = pool.Sample(rng);
        if (!p.ok()) return;
        ++local.trials;
        if (HasResidueCollision(instance, p.value())) ++local.collisions;
      });
  // The rate denominator stays the requested trial count (failed prime
  // draws are impossible in the sieved regime and merely skipped
  // otherwise, matching the serial estimator).
  estimate.trials = trials;
  estimate.collisions = tally.collisions;
  return estimate;
}

}  // namespace rstlab::fingerprint
