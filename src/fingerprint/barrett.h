#ifndef RSTLAB_FINGERPRINT_BARRETT_H_
#define RSTLAB_FINGERPRINT_BARRETT_H_

#include <cstdint>

namespace rstlab::fingerprint {

/// Barrett reduction for a fixed modulus m with 2 <= m < 2^63.
///
/// The generic MulMod compiles to a 128-bit hardware division
/// (__umodti3) on every call; in the fingerprint hot loops the modulus
/// (p1 or p2) is fixed for a whole trial, so the division can be paid
/// once here — the per-step reduction is then four 64x64 multiplies and
/// at most two subtractions.
///
/// Precomputation: r = floor((2^128 - 1) / m), which equals
/// floor(2^128 / m) for every m that does not divide 2^128 (all odd m,
/// and every prime > 2 — the only moduli the fingerprint code uses).
/// For x < 2^128, q = floor(x * r / 2^128) then satisfies
/// floor(x / m) - 2 <= q <= floor(x / m), so x - q*m < 3m and two
/// conditional subtractions finish the reduction. The only m in range
/// that DO divide 2^128 are the powers of two; for those r is exactly
/// floor(2^128 / m) - 1, q underestimates floor(x / m) by at most one
/// more, and the subtraction loop in Reduce still terminates with
/// x - q*m < 3m — power-of-two moduli are off the spec of the error
/// analysis above but remain correct (see the boundary tests). The
/// paper's moduli satisfy 6k <= 2^62 (ComputeK enforces it),
/// comfortably within range.
struct Barrett {
  /// Precomputes the reciprocal of `modulus` (one 128-bit division).
  /// The precondition 2 <= modulus < 2^63 is enforced in every build
  /// mode: a violating modulus aborts the process rather than
  /// corrupting every later Reduce.
  explicit Barrett(std::uint64_t modulus);

  std::uint64_t modulus() const { return modulus_; }

  /// x mod modulus for any 128-bit x.
  std::uint64_t Reduce(unsigned __int128 x) const;

  /// (a * b) mod modulus; a, b arbitrary 64-bit.
  std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) const {
    return Reduce(static_cast<unsigned __int128>(a) * b);
  }

  /// (base ^ exponent) mod modulus by square-and-multiply.
  std::uint64_t PowMod(std::uint64_t base, std::uint64_t exponent) const;

 private:
  std::uint64_t modulus_;
  unsigned __int128 reciprocal_;  // floor((2^128 - 1) / modulus)
};

}  // namespace rstlab::fingerprint

#endif  // RSTLAB_FINGERPRINT_BARRETT_H_
