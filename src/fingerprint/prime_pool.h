#ifndef RSTLAB_FINGERPRINT_PRIME_POOL_H_
#define RSTLAB_FINGERPRINT_PRIME_POOL_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace rstlab::fingerprint {

/// The primes <= k for one parameter point, enumerated once by a sieve
/// of Eratosthenes so that repeated draws (Monte-Carlo trials) and full
/// enumerations (the exact-probability path) stop paying a Miller-Rabin
/// rejection loop per prime.
///
/// Sieving is O(k log log k) time and k bits of memory, so it is only
/// attempted up to `sieve_limit`; above that the pool transparently
/// falls back to the rejection sampler (Sample still works, primes() is
/// empty). The fingerprint benches all sit far below the default limit.
class PrimePool {
 public:
  /// A pool over the primes <= k. Requires k >= 2.
  explicit PrimePool(std::uint64_t k,
                     std::uint64_t sieve_limit = std::uint64_t{1} << 27);

  std::uint64_t k() const { return k_; }

  /// True when the primes were enumerated (k <= sieve_limit).
  bool sieved() const { return sieved_; }

  /// The enumerated primes in increasing order; empty when !sieved().
  const std::vector<std::uint64_t>& primes() const { return primes_; }

  /// pi(k) when sieved; 0 otherwise.
  std::uint64_t Count() const { return primes_.size(); }

  /// A prime chosen uniformly among the primes <= k. O(1) when sieved,
  /// expected O(log k) Miller-Rabin tests otherwise. Fails only in the
  /// unsieved fallback if sampling does not converge.
  Result<std::uint64_t> Sample(Rng& rng) const;

 private:
  std::uint64_t k_;
  bool sieved_ = false;
  std::vector<std::uint64_t> primes_;
};

}  // namespace rstlab::fingerprint

#endif  // RSTLAB_FINGERPRINT_PRIME_POOL_H_
