#include "fingerprint/batch.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "fingerprint/prime_pool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RSTLAB_BATCH_AVX2 1
#include <immintrin.h>
#endif

namespace rstlab::fingerprint {
namespace {

/// The 32-bit Shoup kernel's domain: every modulus must satisfy
/// m < 2^31 so that a*w, q*p < 2^62 and every intermediate fits a
/// (signed-comparable) 64-bit lane. Paper-sized parameters always
/// qualify (6k <= 2^62 caps p2 only for astronomically large m*n).
constexpr std::uint64_t kShoupDomain = std::uint64_t{1} << 31;

/// Lane-group width of the kernels; batches are padded up to it.
constexpr std::size_t kGroup = 4;

/// Parameters of the padding lanes: any tiny valid triple works — the
/// padded lanes' sums are computed (branchlessly, like all lanes) and
/// then simply never copied out.
constexpr std::uint64_t kPadP1 = 2;
constexpr std::uint64_t kPadP2 = 5;
constexpr std::uint64_t kPadX = 1;

/// Copies v's bits (MSB first) into a flat buffer once per value, so
/// the per-group kernels re-read them from L1 instead of re-calling
/// BitString::bit once per (bit, lane-group).
void ExtractBits(const BitString& v, std::vector<std::uint8_t>& bits) {
  bits.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    bits[i] = v.bit(i) ? 1 : 0;
  }
}

// -------------------------------------------------------------------
// Portable lane-group kernels (simd::U64x2 wrapper: NEON on aarch64,
// scalar pairs elsewhere).
//
// Shoup multiplication, 32-bit flavour: for w < p < 2^31 with
// precomputed w' = floor(w * 2^32 / p) and any a < 2^32,
//   q = floor(a * w' / 2^32),   t = a*w - q*p
// satisfies 0 <= t < 2p (q <= a*w/p and q > a*w/p - a/2^32 - 1), so
// one conditional subtraction yields the exact a*w mod p. Every
// product fits 64 bits: a*w' < 2^63, q < 2^31, q*p < 2^62, a*w < 2^62.
// -------------------------------------------------------------------

inline simd::U64x2 ShoupMul2(simd::U64x2 a, simd::U64x2 w, simd::U64x2 wsh,
                             simd::U64x2 p) {
  const simd::U64x2 q = simd::ShiftRight(simd::MulLo32(a, wsh), 32);
  const simd::U64x2 t =
      simd::Sub(simd::MulLo32(a, w), simd::MulLo32(q, p));
  return simd::CondSub(t, p);
}

/// One value against one 4-lane group: residue scan (e = v mod p1 by
/// Horner over the bits) followed by the table powmod
/// (acc = x^e mod p2 via x^(2^j) tables) and the sum update. `stride`
/// is the padded batch width separating table rows.
void EvalValueGroup4Wrapper(const std::uint8_t* bits, std::size_t nbits,
                            const std::uint64_t* p1, const std::uint64_t* p2,
                            const std::uint64_t* xpow,
                            const std::uint64_t* xshoup, std::size_t stride,
                            unsigned levels, std::uint64_t* sums) {
  using simd::U64x2;
  const U64x2 m0 = simd::Load2(p1);
  const U64x2 m1 = simd::Load2(p1 + 2);
  U64x2 r0 = simd::Dup(0);
  U64x2 r1 = simd::Dup(0);
  for (std::size_t i = 0; i < nbits; ++i) {
    const U64x2 b = simd::Dup(bits[i]);
    r0 = simd::CondSub(simd::Add(simd::ShiftLeftOne(r0), b), m0);
    r1 = simd::CondSub(simd::Add(simd::ShiftLeftOne(r1), b), m1);
  }
  const U64x2 q0 = simd::Load2(p2);
  const U64x2 q1 = simd::Load2(p2 + 2);
  const U64x2 one = simd::Dup(1);
  U64x2 a0 = one;
  U64x2 a1 = one;
  for (unsigned j = 0; j < levels; ++j) {
    const std::uint64_t* row_w = xpow + static_cast<std::size_t>(j) * stride;
    const std::uint64_t* row_s =
        xshoup + static_cast<std::size_t>(j) * stride;
    const U64x2 t0 = ShoupMul2(a0, simd::Load2(row_w), simd::Load2(row_s), q0);
    const U64x2 t1 =
        ShoupMul2(a1, simd::Load2(row_w + 2), simd::Load2(row_s + 2), q1);
    a0 = simd::Select01(simd::And(simd::ShiftRight(r0, j), one), t0, a0);
    a1 = simd::Select01(simd::And(simd::ShiftRight(r1, j), one), t1, a1);
  }
  simd::Store2(sums, simd::CondSub(simd::Add(simd::Load2(sums), a0), q0));
  simd::Store2(sums + 2,
               simd::CondSub(simd::Add(simd::Load2(sums + 2), a1), q1));
}

/// Residue-only flavour for BatchResidues: e[lane] = v mod p1[lane]
/// over one 4-lane group.
void ResidueGroup4Wrapper(const std::uint8_t* bits, std::size_t nbits,
                          const std::uint64_t* p1, std::uint64_t* out) {
  using simd::U64x2;
  const U64x2 m0 = simd::Load2(p1);
  const U64x2 m1 = simd::Load2(p1 + 2);
  U64x2 r0 = simd::Dup(0);
  U64x2 r1 = simd::Dup(0);
  for (std::size_t i = 0; i < nbits; ++i) {
    const U64x2 b = simd::Dup(bits[i]);
    r0 = simd::CondSub(simd::Add(simd::ShiftLeftOne(r0), b), m0);
    r1 = simd::CondSub(simd::Add(simd::ShiftLeftOne(r1), b), m1);
  }
  simd::Store2(out, r0);
  simd::Store2(out + 2, r1);
}

// -------------------------------------------------------------------
// AVX2 lane-group kernels (x86 only; selected at runtime via
// __builtin_cpu_supports so the binary never needs -mavx2 globally).
// Same exact arithmetic as the wrapper kernels, four u64 lanes per
// register. All values stay below 2^32, so the signed 64-bit compares
// (_mm256_cmpgt_epi64) are exact.
// -------------------------------------------------------------------

#if defined(RSTLAB_BATCH_AVX2)

__attribute__((target("avx2"))) inline __m256i Load4(
    const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

__attribute__((target("avx2"))) inline void Store4(std::uint64_t* p,
                                                   __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// v >= m ? v - m : v (values < 2^32 per lane).
__attribute__((target("avx2"))) inline __m256i CondSub4(__m256i v,
                                                        __m256i m) {
  const __m256i lt = _mm256_cmpgt_epi64(m, v);
  return _mm256_sub_epi64(v, _mm256_andnot_si256(lt, m));
}

__attribute__((target("avx2"))) inline __m256i ShoupMul4(__m256i a,
                                                         __m256i w,
                                                         __m256i wsh,
                                                         __m256i p) {
  const __m256i q = _mm256_srli_epi64(_mm256_mul_epu32(a, wsh), 32);
  const __m256i t =
      _mm256_sub_epi64(_mm256_mul_epu32(a, w), _mm256_mul_epu32(q, p));
  return CondSub4(t, p);
}

__attribute__((target("avx2"))) void EvalValueGroup4Avx2(
    const std::uint8_t* bits, std::size_t nbits, const std::uint64_t* p1,
    const std::uint64_t* p2, const std::uint64_t* xpow,
    const std::uint64_t* xshoup, std::size_t stride, unsigned levels,
    std::uint64_t* sums) {
  const __m256i m = Load4(p1);
  __m256i r = _mm256_setzero_si256();
  for (std::size_t i = 0; i < nbits; ++i) {
    const __m256i b = _mm256_set1_epi64x(bits[i]);
    r = CondSub4(_mm256_add_epi64(_mm256_slli_epi64(r, 1), b), m);
  }
  const __m256i p = Load4(p2);
  const __m256i one = _mm256_set1_epi64x(1);
  __m256i acc = one;
  for (unsigned j = 0; j < levels; ++j) {
    const std::uint64_t* row_w = xpow + static_cast<std::size_t>(j) * stride;
    const std::uint64_t* row_s =
        xshoup + static_cast<std::size_t>(j) * stride;
    const __m256i t = ShoupMul4(acc, Load4(row_w), Load4(row_s), p);
    const __m256i bit = _mm256_and_si256(
        _mm256_srl_epi64(r, _mm_cvtsi32_si128(static_cast<int>(j))), one);
    acc = _mm256_blendv_epi8(acc, t, _mm256_cmpeq_epi64(bit, one));
  }
  Store4(sums, CondSub4(_mm256_add_epi64(Load4(sums), acc), p));
}

/// Two 4-lane groups sharing one pass over the bits — the kLanes8
/// schedule, which reads the value stream once for all 8 lanes.
__attribute__((target("avx2"))) void EvalValueGroup8Avx2(
    const std::uint8_t* bits, std::size_t nbits, const std::uint64_t* p1,
    const std::uint64_t* p2, const std::uint64_t* xpow,
    const std::uint64_t* xshoup, std::size_t stride, unsigned levels,
    std::uint64_t* sums) {
  const __m256i m0 = Load4(p1);
  const __m256i m1 = Load4(p1 + 4);
  __m256i r0 = _mm256_setzero_si256();
  __m256i r1 = _mm256_setzero_si256();
  for (std::size_t i = 0; i < nbits; ++i) {
    const __m256i b = _mm256_set1_epi64x(bits[i]);
    r0 = CondSub4(_mm256_add_epi64(_mm256_slli_epi64(r0, 1), b), m0);
    r1 = CondSub4(_mm256_add_epi64(_mm256_slli_epi64(r1, 1), b), m1);
  }
  const __m256i p0 = Load4(p2);
  const __m256i p1v = Load4(p2 + 4);
  const __m256i one = _mm256_set1_epi64x(1);
  __m256i acc0 = one;
  __m256i acc1 = one;
  for (unsigned j = 0; j < levels; ++j) {
    const std::uint64_t* row_w = xpow + static_cast<std::size_t>(j) * stride;
    const std::uint64_t* row_s =
        xshoup + static_cast<std::size_t>(j) * stride;
    const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(j));
    const __m256i t0 = ShoupMul4(acc0, Load4(row_w), Load4(row_s), p0);
    const __m256i t1 =
        ShoupMul4(acc1, Load4(row_w + 4), Load4(row_s + 4), p1v);
    const __m256i bit0 =
        _mm256_and_si256(_mm256_srl_epi64(r0, shift), one);
    const __m256i bit1 =
        _mm256_and_si256(_mm256_srl_epi64(r1, shift), one);
    acc0 = _mm256_blendv_epi8(acc0, t0, _mm256_cmpeq_epi64(bit0, one));
    acc1 = _mm256_blendv_epi8(acc1, t1, _mm256_cmpeq_epi64(bit1, one));
  }
  Store4(sums, CondSub4(_mm256_add_epi64(Load4(sums), acc0), p0));
  Store4(sums + 4, CondSub4(_mm256_add_epi64(Load4(sums + 4), acc1), p1v));
}

#endif  // RSTLAB_BATCH_AVX2

}  // namespace

void FingerprintParamBatch::PushLane(const FingerprintParams& params) {
  k.push_back(params.k);
  p1.push_back(params.p1);
  p2.push_back(params.p2);
  x.push_back(params.x);
}

FingerprintParams FingerprintParamBatch::Lane(std::size_t i) const {
  FingerprintParams params;
  params.k = k[i];
  params.p1 = p1[i];
  params.p2 = p2[i];
  params.x = x[i];
  return params;
}

Result<FingerprintParamBatch> SampleFingerprintParamBatch(std::size_t m,
                                                          std::size_t n,
                                                          std::size_t lanes,
                                                          Rng& rng) {
  FingerprintParamBatch batch;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    Result<FingerprintParams> params = SampleFingerprintParams(m, n, rng);
    if (!params.ok()) return params.status();
    batch.PushLane(params.value());
  }
  return batch;
}

std::size_t BatchTally::accepted_count() const {
  std::size_t count = 0;
  for (const std::uint8_t a : lane_accepted) count += a;
  return count;
}

bool BatchTally::all_accepted() const {
  return accepted_count() == lane_accepted.size();
}

BatchFingerprintEngine::BatchFingerprintEngine(FingerprintParamBatch batch,
                                               simd::SimdLevel level)
    : batch_(std::move(batch)), level_(level) {
  const std::size_t lanes = batch_.lanes();
  barrett_p2_.reserve(lanes);
  narrow_ = true;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    barrett_p2_.emplace_back(batch_.p2[lane]);
    if (batch_.p1[lane] >= kShoupDomain || batch_.p2[lane] >= kShoupDomain) {
      narrow_ = false;
    }
  }
  one_pass_ = level_ != simd::SimdLevel::kScalar && lanes > 0;
  if (!one_pass_) return;

  padded_ = (lanes + kGroup - 1) / kGroup * kGroup;
  p1_.assign(padded_, kPadP1);
  p2_.assign(padded_, kPadP2);
  x_.assign(padded_, kPadX);
  std::copy(batch_.p1.begin(), batch_.p1.end(), p1_.begin());
  std::copy(batch_.p2.begin(), batch_.p2.end(), p2_.begin());
  std::copy(batch_.x.begin(), batch_.x.end(), x_.begin());
  if (!narrow_) return;  // one-pass wide path needs no tables

  // Tables: xpow[j][lane] = x^(2^j) mod p2 and its Shoup companion,
  // for every exponent bit the residues e < p1 can have. Moduli are
  // < 2^31, so squaring stays within u64 without Barrett.
  std::uint64_t max_e = 1;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    max_e = std::max(max_e, batch_.p1[lane] - 1);
  }
  table_levels_ = static_cast<unsigned>(std::bit_width(max_e));
  xpow_.resize(static_cast<std::size_t>(table_levels_) * padded_);
  xshoup_.resize(xpow_.size());
  for (std::size_t lane = 0; lane < padded_; ++lane) {
    const std::uint64_t p2v = p2_[lane];
    std::uint64_t w = x_[lane] % p2v;
    for (unsigned j = 0; j < table_levels_; ++j) {
      xpow_[static_cast<std::size_t>(j) * padded_ + lane] = w;
      xshoup_[static_cast<std::size_t>(j) * padded_ + lane] =
          (w << 32) / p2v;
      w = (w * w) % p2v;
    }
  }
#if defined(RSTLAB_BATCH_AVX2)
  use_avx2_ = __builtin_cpu_supports("avx2") != 0;
#endif
  vectorized_ = simd::VectorKernelsAvailable();
}

void BatchFingerprintEngine::EvaluateSideScalar(
    const std::vector<BitString>& values, std::uint64_t* sums) const {
  // The reference schedule: lane-major, one stream scan per lane —
  // exactly AcceptsWithParams repeated over the batch.
  for (std::size_t lane = 0; lane < batch_.lanes(); ++lane) {
    const std::uint64_t p1 = batch_.p1[lane];
    const std::uint64_t p2 = batch_.p2[lane];
    const std::uint64_t x = batch_.x[lane];
    const Barrett& bp2 = barrett_p2_[lane];
    std::uint64_t sum = 0;
    for (const BitString& v : values) {
      const std::uint64_t e = v.ModUint64(p1);
      sum += bp2.PowMod(x, e);
      if (sum >= p2) sum -= p2;
    }
    sums[lane] = sum;
  }
}

void BatchFingerprintEngine::EvaluateSideOnePass(
    const std::vector<BitString>& values, std::uint64_t* sums) const {
  std::vector<std::uint8_t> bits;
  if (!narrow_) {
    // Out-of-domain moduli: keep the one-pass schedule (all lanes'
    // residues advance during a single scan of each value's bits) but
    // run the arithmetic in exact scalar u64 / Barrett form.
    const std::size_t lanes = batch_.lanes();
    std::vector<std::uint64_t> residues(lanes);
    for (const BitString& v : values) {
      ExtractBits(v, bits);
      std::fill(residues.begin(), residues.end(), 0);
      for (const std::uint8_t b : bits) {
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          std::uint64_t r = (residues[lane] << 1) + b;
          if (r >= batch_.p1[lane]) r -= batch_.p1[lane];
          residues[lane] = r;
        }
      }
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        sums[lane] += barrett_p2_[lane].PowMod(batch_.x[lane],
                                               residues[lane]);
        if (sums[lane] >= batch_.p2[lane]) sums[lane] -= batch_.p2[lane];
      }
    }
    return;
  }
  const bool wide_groups =
      level_ == simd::SimdLevel::kLanes8 && padded_ >= 2 * kGroup;
  for (const BitString& v : values) {
    ExtractBits(v, bits);
    std::size_t base = 0;
#if defined(RSTLAB_BATCH_AVX2)
    if (use_avx2_) {
      if (wide_groups) {
        for (; padded_ - base >= 2 * kGroup; base += 2 * kGroup) {
          EvalValueGroup8Avx2(bits.data(), bits.size(), p1_.data() + base,
                              p2_.data() + base, xpow_.data() + base,
                              xshoup_.data() + base, padded_, table_levels_,
                              sums + base);
        }
      }
      for (; base < padded_; base += kGroup) {
        EvalValueGroup4Avx2(bits.data(), bits.size(), p1_.data() + base,
                            p2_.data() + base, xpow_.data() + base,
                            xshoup_.data() + base, padded_, table_levels_,
                            sums + base);
      }
      continue;
    }
#endif
    (void)wide_groups;
    for (; base < padded_; base += kGroup) {
      EvalValueGroup4Wrapper(bits.data(), bits.size(), p1_.data() + base,
                             p2_.data() + base, xpow_.data() + base,
                             xshoup_.data() + base, padded_, table_levels_,
                             sums + base);
    }
  }
}

BatchTally BatchFingerprintEngine::Evaluate(
    const problems::Instance& instance) const {
  const std::size_t lanes = batch_.lanes();
  BatchTally tally;
  tally.sum_first.assign(lanes, 0);
  tally.sum_second.assign(lanes, 0);
  tally.lane_accepted.assign(lanes, 0);
  if (lanes == 0) return tally;
  if (!one_pass_) {
    EvaluateSideScalar(instance.first, tally.sum_first.data());
    EvaluateSideScalar(instance.second, tally.sum_second.data());
  } else {
    std::vector<std::uint64_t> sums(padded_, 0);
    EvaluateSideOnePass(instance.first, sums.data());
    std::copy(sums.begin(), sums.begin() + lanes, tally.sum_first.begin());
    std::fill(sums.begin(), sums.end(), 0);
    EvaluateSideOnePass(instance.second, sums.data());
    std::copy(sums.begin(), sums.begin() + lanes, tally.sum_second.begin());
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    tally.lane_accepted[lane] =
        tally.sum_first[lane] == tally.sum_second[lane] ? 1 : 0;
  }
  return tally;
}

Result<AmplifiedOutcome> TestMultisetEqualityAmplified(
    const problems::Instance& instance, std::size_t lanes, Rng& rng,
    simd::SimdLevel level) {
  Result<FingerprintParamBatch> batch = SampleFingerprintParamBatch(
      instance.m(), MaxValueBits(instance), lanes, rng);
  if (!batch.ok()) return batch.status();
  const BatchFingerprintEngine engine(batch.value(), level);
  const BatchTally tally = engine.Evaluate(instance);
  AmplifiedOutcome outcome;
  outcome.accepted = tally.all_accepted();
  outcome.params = engine.params();
  outcome.lane_accepted = tally.lane_accepted;
  return outcome;
}

std::vector<std::uint64_t> BatchResidues(
    const problems::Instance& instance,
    const std::vector<std::uint64_t>& primes, simd::SimdLevel level) {
  const std::size_t lanes = primes.size();
  const std::size_t count = instance.first.size() + instance.second.size();
  std::vector<std::uint64_t> result(count * lanes, 0);
  if (lanes == 0) return result;
  const auto value_at = [&instance](std::size_t i) -> const BitString& {
    return i < instance.first.size()
               ? instance.first[i]
               : instance.second[i - instance.first.size()];
  };
  bool narrow = true;
  for (const std::uint64_t p : primes) {
    if (p >= kShoupDomain) narrow = false;
  }
  if (level == simd::SimdLevel::kScalar || !narrow) {
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        result[i * lanes + lane] = value_at(i).ModUint64(primes[lane]);
      }
    }
    return result;
  }
  const std::size_t padded = (lanes + kGroup - 1) / kGroup * kGroup;
  std::vector<std::uint64_t> p1(padded, kPadP1);
  std::copy(primes.begin(), primes.end(), p1.begin());
  std::vector<std::uint64_t> out(padded, 0);
  std::vector<std::uint8_t> bits;
  for (std::size_t i = 0; i < count; ++i) {
    ExtractBits(value_at(i), bits);
    for (std::size_t base = 0; base < padded; base += kGroup) {
      ResidueGroup4Wrapper(bits.data(), bits.size(), p1.data() + base,
                           out.data() + base);
    }
    std::copy(out.begin(), out.begin() + lanes,
              result.begin() + static_cast<std::ptrdiff_t>(i * lanes));
  }
  return result;
}

Claim1Estimate EstimateClaim1CollisionRateBatched(
    const problems::Instance& instance, std::size_t trials,
    std::uint64_t seed, parallel::TrialRunner& runner, std::size_t lanes,
    simd::SimdLevel level) {
  Claim1Estimate estimate;
  Result<std::uint64_t> k_result =
      ComputeFingerprintK(instance.m(), MaxValueBits(instance));
  if (!k_result.ok() || trials == 0) return estimate;
  const PrimePool pool(k_result.value());
  const parallel::SeedSequence seeds(seed);
  struct CollisionTally {
    std::uint64_t collisions = 0;
    void Merge(const CollisionTally& other) {
      collisions += other.collisions;
    }
  };
  const std::size_t m_first = instance.first.size();
  const CollisionTally tally = runner.RunSeededBatches<CollisionTally>(
      trials, lanes == 0 ? 1 : lanes, seeds,
      [&](std::uint64_t, std::uint64_t count, Rng& rng,
          CollisionTally& local) {
        std::vector<std::uint64_t> primes;
        primes.reserve(count);
        for (std::uint64_t c = 0; c < count; ++c) {
          Result<std::uint64_t> p = pool.Sample(rng);
          if (p.ok()) primes.push_back(p.value());
        }
        const std::vector<std::uint64_t> residues =
            BatchResidues(instance, primes, level);
        for (std::size_t lane = 0; lane < primes.size(); ++lane) {
          std::unordered_map<std::uint64_t, std::vector<std::size_t>>
              by_residue;
          for (std::size_t j = 0; j < instance.second.size(); ++j) {
            by_residue[residues[(m_first + j) * primes.size() + lane]]
                .push_back(j);
          }
          bool collided = false;
          for (std::size_t i = 0; i < m_first && !collided; ++i) {
            const auto it =
                by_residue.find(residues[i * primes.size() + lane]);
            if (it == by_residue.end()) continue;
            for (const std::size_t j : it->second) {
              if (instance.second[j] != instance.first[i]) {
                collided = true;
                break;
              }
            }
          }
          local.collisions += collided ? 1 : 0;
        }
      });
  estimate.trials = trials;
  estimate.collisions = tally.collisions;
  return estimate;
}

}  // namespace rstlab::fingerprint
