#ifndef RSTLAB_FINGERPRINT_BATCH_H_
#define RSTLAB_FINGERPRINT_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fingerprint/barrett.h"
#include "fingerprint/fingerprint.h"
#include "parallel/trial_runner.h"
#include "problems/instance.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/status.h"

/// Batched evaluation of the Theorem 8(a) fingerprint.
///
/// The scalar tester (`AcceptsWithParams`) evaluates one (p1, x) pair
/// per scan of the value stream, so k-fold error amplification costs k
/// scans. The engine here evaluates L parameter *lanes* against the
/// same stream in one pass: residue accumulators live in
/// structure-of-arrays form, the x^e mod p2 kernel runs over lane
/// groups (AVX2 4/8-wide on x86, the NEON-backed `simd::U64x2` wrapper
/// elsewhere, plain scalar loops as the universal fallback), and the
/// per-lane verdict is exactly the scalar verdict because every path
/// computes the exact values e = v mod p1 and x^e mod p2 — there is no
/// floating point and no approximate reduction anywhere, so tallies
/// are bit-identical across lane widths and thread counts by
/// construction. The `fingerprint-batch` conform suite enforces this.
namespace rstlab::fingerprint {

/// Structure-of-arrays batch of per-lane fingerprint parameters.
struct FingerprintParamBatch {
  std::vector<std::uint64_t> k;
  std::vector<std::uint64_t> p1;
  std::vector<std::uint64_t> p2;
  std::vector<std::uint64_t> x;

  std::size_t lanes() const { return p1.size(); }
  bool empty() const { return p1.empty(); }

  /// Appends one lane.
  void PushLane(const FingerprintParams& params);

  /// The lane at `i` as a scalar parameter struct.
  FingerprintParams Lane(std::size_t i) const;
};

/// Samples `lanes` independent parameter sets for m values of n bits.
/// k and p2 are deterministic functions of (m, n), so every lane shares
/// them; p1 and x are drawn independently per lane — the amplification
/// lanes are exactly `lanes` independent runs of steps 2-4.
Result<FingerprintParamBatch> SampleFingerprintParamBatch(std::size_t m,
                                                          std::size_t n,
                                                          std::size_t lanes,
                                                          Rng& rng);

/// Per-lane tallies of one batched evaluation. The sums are the exact
/// Sum_i x^{e_i} mod p2 accumulations of the scalar tester, exposed so
/// oracles can compare paths bit for bit rather than verdict for
/// verdict.
struct BatchTally {
  std::vector<std::uint64_t> sum_first;
  std::vector<std::uint64_t> sum_second;
  std::vector<std::uint8_t> lane_accepted;

  std::size_t accepted_count() const;
  bool all_accepted() const;
};

/// Evaluates a fixed parameter batch against instances.
///
/// Construction precomputes, per lane, the Barrett reciprocal of p2
/// and — when every lane fits the 32-bit Shoup kernel (p1, p2 < 2^31,
/// always true for paper-sized parameters) — the table of squared
/// powers x^(2^j) mod p2 with their Shoup companions, padded to the
/// lane-group width. `Evaluate` then makes ONE pass over the value
/// stream: each value's bits update every lane's residue accumulator,
/// and each finished residue multiplies every lane's sum via the
/// precomputed tables.
///
/// The level picks the schedule, never the result:
///   kScalar         lane-major reference loop (ModUint64 + Barrett
///                   PowMod per lane — literally AcceptsWithParams
///                   repeated), the baseline the roofline bench
///                   measures against;
///   kLanes4/kLanes8 value-major one-pass schedule over groups of 4/8
///                   lanes, executed by AVX2 kernels when the CPU has
///                   them, by the `simd::U64x2` wrapper otherwise, and
///                   by exact scalar loops when some lane's modulus
///                   exceeds the 32-bit kernel's domain.
class BatchFingerprintEngine {
 public:
  explicit BatchFingerprintEngine(
      FingerprintParamBatch batch,
      simd::SimdLevel level = simd::ProcessSimdLevel());

  const FingerprintParamBatch& params() const { return batch_; }
  simd::SimdLevel level() const { return level_; }
  std::size_t lanes() const { return batch_.lanes(); }

  /// True when lane groups actually execute on vector units (AVX2 or
  /// NEON); false for the scalar level, for hardware without vector
  /// kernels, and for out-of-domain moduli. Diagnostic only — the
  /// tallies do not depend on it.
  bool vectorized() const { return vectorized_; }

  /// One pass over `instance`'s two value lists; exact per-lane sums
  /// and verdicts.
  BatchTally Evaluate(const problems::Instance& instance) const;

 private:
  void EvaluateSideScalar(const std::vector<BitString>& values,
                          std::uint64_t* sums) const;
  void EvaluateSideOnePass(const std::vector<BitString>& values,
                           std::uint64_t* sums) const;

  FingerprintParamBatch batch_;
  simd::SimdLevel level_;
  bool one_pass_ = false;    // value-major schedule (kLanes4/kLanes8)
  bool narrow_ = false;      // all lanes fit the 32-bit Shoup kernel
  bool use_avx2_ = false;    // x86 AVX2 kernels selected at runtime
  bool vectorized_ = false;
  std::size_t padded_ = 0;   // lanes rounded up to the group width
  unsigned table_levels_ = 0;
  std::vector<std::uint64_t> p1_;     // padded SoA copies
  std::vector<std::uint64_t> p2_;
  std::vector<std::uint64_t> x_;
  std::vector<std::uint64_t> xpow_;   // [j * padded_ + lane] = x^(2^j) mod p2
  std::vector<std::uint64_t> xshoup_;  // floor(xpow << 32 / p2)
  std::vector<Barrett> barrett_p2_;   // one per real lane
};

/// Outcome of one k-fold amplified test.
struct AmplifiedOutcome {
  bool accepted = false;
  FingerprintParamBatch params;
  std::vector<std::uint8_t> lane_accepted;
};

/// The k-fold error-amplified multiset-equality tester: `lanes`
/// independent (p1, x) draws evaluated against the instance in one
/// stream pass, accepting iff every lane accepts. Equal multisets are
/// still always accepted (each lane is one-sided); unequal multisets
/// survive with probability at most (1/3 + O(1/m))^lanes. Fails only
/// when parameter sampling fails (astronomical m*n).
Result<AmplifiedOutcome> TestMultisetEqualityAmplified(
    const problems::Instance& instance, std::size_t lanes, Rng& rng,
    simd::SimdLevel level = simd::ProcessSimdLevel());

/// Residues of every value against every prime lane in one stream
/// pass: result[i * primes.size() + lane] = value_i mod primes[lane],
/// where value_i enumerates `instance.first` then `instance.second`.
/// Exact at every level (the level only picks the schedule).
std::vector<std::uint64_t> BatchResidues(
    const problems::Instance& instance,
    const std::vector<std::uint64_t>& primes,
    simd::SimdLevel level = simd::ProcessSimdLevel());

/// Batched Claim 1 estimator: trial group g (lane-width `lanes`) draws
/// its primes from the Rng of its first trial index, computes all
/// residues in one stream pass via `BatchResidues`, and tests each
/// prime lane for a collision. The tally is a pure function of
/// (instance, trials, seed, lanes) — identical at any thread count and
/// any SIMD level. Note the random schedule differs from the unbatched
/// estimator (one draw per trial Rng there, `lanes` draws per group
/// Rng here), so compare rates, not bits, across the two APIs.
Claim1Estimate EstimateClaim1CollisionRateBatched(
    const problems::Instance& instance, std::size_t trials,
    std::uint64_t seed, parallel::TrialRunner& runner, std::size_t lanes,
    simd::SimdLevel level = simd::ProcessSimdLevel());

}  // namespace rstlab::fingerprint

#endif  // RSTLAB_FINGERPRINT_BATCH_H_
