#ifndef RSTLAB_FINGERPRINT_FINGERPRINT_H_
#define RSTLAB_FINGERPRINT_FINGERPRINT_H_

#include <cstdint>

#include "parallel/trial_runner.h"
#include "problems/instance.h"
#include "stmodel/st_context.h"
#include "util/random.h"
#include "util/status.h"

namespace rstlab::fingerprint {

/// The random parameters of one fingerprinting trial (Theorem 8(a)).
struct FingerprintParams {
  std::uint64_t k = 0;   // k = m^3 * n * ceil(log2(m^3 * n))
  std::uint64_t p1 = 0;  // random prime <= k        (step 2)
  std::uint64_t p2 = 0;  // fixed prime in (3k, 6k]  (step 3)
  std::uint64_t x = 0;   // uniform in {1,...,p2-1}  (step 4)
};

/// The paper's k = m^3 * n * ceil(log2(m^3 * n)), clamped to >= 2 so a
/// prime <= k exists; fails when 6k would overflow the uint64
/// arithmetic (step 3 needs the Bertrand prime p2 <= 6k).
Result<std::uint64_t> ComputeFingerprintK(std::size_t m, std::size_t n);

/// The longest value length in the instance (the paper's n).
std::size_t MaxValueBits(const problems::Instance& instance);

/// Samples fingerprint parameters for m values of n bits. Fails if the
/// derived k overflows the uint64 arithmetic (m^3 * n * log must stay
/// below 2^63 / 6).
Result<FingerprintParams> SampleFingerprintParams(std::size_t m,
                                                  std::size_t n, Rng& rng);

/// Outcome of one fingerprinting run.
struct FingerprintOutcome {
  bool accepted = false;
  FingerprintParams params;
};

/// The randomized multiset-equality tester of Theorem 8(a), host-memory
/// version: computes e_i = v_i mod p1 and accepts iff
/// sum_i x^{e_i} == sum_i x^{e'_i} (mod p2).
///
/// (The paper's step (5) prints "mod p1" for the accumulation — a typo;
/// equation (1) and the correctness proof, which views the fingerprint as
/// a polynomial over F_{p2}, require p2. We implement equation (1).)
///
/// Guarantees: equal multisets are always accepted (no false negatives —
/// the co-RST one-sided-error regime); unequal multisets are accepted
/// with probability at most 1/3 + O(1/m) <= 1/2 for large m.
FingerprintOutcome TestMultisetEquality(const problems::Instance& instance,
                                        Rng& rng);

/// Deterministic core of the tester for a fixed parameter choice
/// (exposed so error-probability experiments can average over params).
bool AcceptsWithParams(const problems::Instance& instance,
                       const FingerprintParams& params);

/// The tape-level implementation: a (2, O(log N), 1)-bounded run on `ctx`
/// whose input tape holds an encoded instance. Performs one forward scan
/// to determine m and n, one reversal, and a second forward scan
/// accumulating the fingerprints; never writes to external memory. The
/// context's ResourceReport afterwards shows r = 2 and s = O(log N).
Result<FingerprintOutcome> TestMultisetEqualityOnTapes(
    stmodel::StContext& ctx, Rng& rng);

/// Empirical estimate of the Claim 1 collision event for one random
/// prime draw: given the two value lists, the fraction of `trials`
/// independent primes p <= k for which some pair v_i != v'_j collides
/// mod p. Claim 1 bounds the true probability by O(1/m).
double EstimateClaim1CollisionRate(const problems::Instance& instance,
                                   std::size_t trials, Rng& rng);

/// Integer tally of the Claim 1 Monte-Carlo estimate, kept exact so
/// runs at different thread counts can be compared bit for bit.
struct Claim1Estimate {
  std::uint64_t trials = 0;
  std::uint64_t collisions = 0;
  double rate() const {
    return trials == 0
               ? 0.0
               : static_cast<double>(collisions) / static_cast<double>(trials);
  }
};

/// Parallel Claim 1 estimator: trial t draws its prime from an Rng
/// derived from (seed, t) via parallel::SeedSequence, so the tally is a
/// pure function of (instance, trials, seed) — identical for any thread
/// count. The primes <= k are sieved once into a PrimePool shared
/// read-only across workers.
Claim1Estimate EstimateClaim1CollisionRate(
    const problems::Instance& instance, std::size_t trials,
    std::uint64_t seed, parallel::TrialRunner& runner);

/// The EXACT acceptance probability of the Theorem 8(a) algorithm on
/// `instance`, computed by full enumeration of the random choices: all
/// primes p1 <= k (uniform over primes) and all x in {1..p2-1}
/// (uniform), with p2 the algorithm's fixed Bertrand prime. On unequal
/// multisets this is the exact false-positive probability the paper
/// bounds by 1/3 + O(1/m); on equal multisets it is exactly 1.
///
/// Enumeration costs O(pi(k) * p2 * m) fingerprint evaluations, so this
/// is for tiny parameters (k up to a few thousand) — which is precisely
/// where the paper's constants are least comfortable and an exact
/// number is most interesting. Fails if k exceeds `max_k`.
Result<double> ExactAcceptProbability(const problems::Instance& instance,
                                      std::uint64_t max_k = 5000);

/// Parallel exact enumeration: the outer p1 prime axis (sieved once
/// into a PrimePool) is mapped over `runner`; each prime's inner x loop
/// runs with a Barrett-reduced fixed-p2 kernel. The result is exactly
/// the serial ExactAcceptProbability (the accept counts are integers,
/// so the deterministic chunk merge is trivially exact).
Result<double> ExactAcceptProbability(const problems::Instance& instance,
                                      parallel::TrialRunner& runner,
                                      std::uint64_t max_k = 5000);

}  // namespace rstlab::fingerprint

#endif  // RSTLAB_FINGERPRINT_FINGERPRINT_H_
