#ifndef RSTLAB_FINGERPRINT_PRIME_H_
#define RSTLAB_FINGERPRINT_PRIME_H_

#include <cstdint>

#include "util/random.h"
#include "util/status.h"

namespace rstlab::fingerprint {

/// (a * b) mod modulus without overflow (128-bit intermediate).
std::uint64_t MulMod(std::uint64_t a, std::uint64_t b,
                     std::uint64_t modulus);

/// (base ^ exponent) mod modulus by square-and-multiply.
std::uint64_t PowMod(std::uint64_t base, std::uint64_t exponent,
                     std::uint64_t modulus);

/// Deterministic primality test, exact for all 64-bit integers
/// (Miller-Rabin with the standard 12-base witness set).
bool IsPrime(std::uint64_t n);

/// A prime chosen uniformly at random among the primes <= k (paper
/// Theorem 8(a), step (2): sample candidates and test). Fails for k < 2.
Result<std::uint64_t> RandomPrimeAtMost(std::uint64_t k, Rng& rng);

/// The smallest prime p with 3k < p <= 6k, which exists by Bertrand's
/// postulate (Theorem 8(a), step (3)). Fails if 6k overflows.
Result<std::uint64_t> PrimeInBertrandInterval(std::uint64_t k);

/// Number of primes <= k by direct counting (O(k) time; test/diagnostic
/// use on small k only).
std::uint64_t CountPrimesUpTo(std::uint64_t k);

}  // namespace rstlab::fingerprint

#endif  // RSTLAB_FINGERPRINT_PRIME_H_
