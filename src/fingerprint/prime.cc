#include "fingerprint/prime.h"

#include <array>

namespace rstlab::fingerprint {

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b,
                     std::uint64_t modulus) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % modulus);
}

std::uint64_t PowMod(std::uint64_t base, std::uint64_t exponent,
                     std::uint64_t modulus) {
  if (modulus == 1) return 0;
  std::uint64_t result = 1;
  base %= modulus;
  while (exponent > 0) {
    if (exponent & 1) result = MulMod(result, base, modulus);
    base = MulMod(base, base, modulus);
    exponent >>= 1;
  }
  return result;
}

bool IsPrime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Miller-Rabin with a witness set that is exact for all n < 2^64.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = PowMod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Result<std::uint64_t> RandomPrimeAtMost(std::uint64_t k, Rng& rng) {
  if (k < 2) {
    return Status::InvalidArgument("no prime <= " + std::to_string(k));
  }
  // Expected O(ln k) attempts by the prime number theorem; the cap only
  // guards against adversarially tiny k.
  for (int attempt = 0; attempt < 64 * 64; ++attempt) {
    const std::uint64_t candidate = rng.UniformInRange(2, k);
    if (IsPrime(candidate)) return candidate;
  }
  return Status::Internal("prime sampling did not converge");
}

Result<std::uint64_t> PrimeInBertrandInterval(std::uint64_t k) {
  if (k == 0 || k > (~std::uint64_t{0}) / 6) {
    return Status::OutOfRange("6k overflows uint64");
  }
  for (std::uint64_t p = 3 * k + 1; p <= 6 * k; ++p) {
    if (IsPrime(p)) return p;
  }
  return Status::Internal("Bertrand interval contained no prime");
}

std::uint64_t CountPrimesUpTo(std::uint64_t k) {
  std::uint64_t count = 0;
  for (std::uint64_t p = 2; p <= k; ++p) {
    if (IsPrime(p)) ++count;
  }
  return count;
}

}  // namespace rstlab::fingerprint
