#include "fingerprint/prime_pool.h"

#include <cassert>

#include "fingerprint/prime.h"

namespace rstlab::fingerprint {

PrimePool::PrimePool(std::uint64_t k, std::uint64_t sieve_limit) : k_(k) {
  assert(k >= 2);
  if (k > sieve_limit) return;
  std::vector<bool> composite(static_cast<std::size_t>(k) + 1, false);
  for (std::uint64_t p = 2; p * p <= k; ++p) {
    if (composite[static_cast<std::size_t>(p)]) continue;
    for (std::uint64_t q = p * p; q <= k; q += p) {
      composite[static_cast<std::size_t>(q)] = true;
    }
  }
  for (std::uint64_t p = 2; p <= k; ++p) {
    if (!composite[static_cast<std::size_t>(p)]) primes_.push_back(p);
  }
  sieved_ = true;
}

Result<std::uint64_t> PrimePool::Sample(Rng& rng) const {
  if (sieved_) {
    // k >= 2 guarantees at least one prime.
    return primes_[static_cast<std::size_t>(
        rng.UniformBelow(primes_.size()))];
  }
  return RandomPrimeAtMost(k_, rng);
}

}  // namespace rstlab::fingerprint
