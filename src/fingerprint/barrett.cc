#include "fingerprint/barrett.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace rstlab::fingerprint {

namespace {

/// High 128 bits of the 256-bit product a * b, via four 64x64 -> 128
/// partial products.
unsigned __int128 MulHi128(unsigned __int128 a, unsigned __int128 b) {
  const std::uint64_t a_lo = static_cast<std::uint64_t>(a);
  const std::uint64_t a_hi = static_cast<std::uint64_t>(a >> 64);
  const std::uint64_t b_lo = static_cast<std::uint64_t>(b);
  const std::uint64_t b_hi = static_cast<std::uint64_t>(b >> 64);
  const unsigned __int128 lo_lo =
      static_cast<unsigned __int128>(a_lo) * b_lo;
  const unsigned __int128 hi_lo =
      static_cast<unsigned __int128>(a_hi) * b_lo;
  const unsigned __int128 lo_hi =
      static_cast<unsigned __int128>(a_lo) * b_hi;
  const unsigned __int128 hi_hi =
      static_cast<unsigned __int128>(a_hi) * b_hi;
  const unsigned __int128 mask = ~std::uint64_t{0};
  const unsigned __int128 carry =
      ((lo_lo >> 64) + (hi_lo & mask) + (lo_hi & mask)) >> 64;
  return hi_hi + (hi_lo >> 64) + (lo_hi >> 64) + carry;
}

}  // namespace

Barrett::Barrett(std::uint64_t modulus) : modulus_(modulus) {
  // Enforced in every build mode, not just under assert(): a modulus
  // outside [2, 2^63) silently corrupts every subsequent Reduce (the
  // q-error bound needs x - q*m to fit after at most a few subtractions),
  // and the construction is never on a hot path.
  if (modulus < 2 || modulus >= (std::uint64_t{1} << 63)) {
    std::fprintf(stderr,
                 "Barrett: modulus %" PRIu64 " outside [2, 2^63)\n",
                 modulus);
    std::abort();
  }
  reciprocal_ = ~static_cast<unsigned __int128>(0) / modulus;
}

std::uint64_t Barrett::Reduce(unsigned __int128 x) const {
  const unsigned __int128 q = MulHi128(x, reciprocal_);
  unsigned __int128 t = x - q * modulus_;
  while (t >= modulus_) t -= modulus_;
  return static_cast<std::uint64_t>(t);
}

std::uint64_t Barrett::PowMod(std::uint64_t base,
                              std::uint64_t exponent) const {
  std::uint64_t result = 1 % modulus_;
  base = base >= modulus_ ? base % modulus_ : base;
  while (exponent > 0) {
    if (exponent & 1) result = MulMod(result, base);
    base = MulMod(base, base);
    exponent >>= 1;
  }
  return result;
}

}  // namespace rstlab::fingerprint
