#ifndef RSTLAB_PERMUTATION_SORTEDNESS_H_
#define RSTLAB_PERMUTATION_SORTEDNESS_H_

#include <cstddef>
#include <vector>

namespace rstlab::permutation {

/// A permutation of {0, ..., m-1}: element i maps to perm[i]. (The paper
/// indexes from 1; we use 0-based indices throughout the code.)
using Permutation = std::vector<std::size_t>;

/// True iff `perm` is a permutation of {0, ..., perm.size()-1}.
bool IsPermutation(const Permutation& perm);

/// Length of the longest strictly increasing subsequence of `values`
/// (patience sorting, O(m log m)).
std::size_t LongestIncreasingSubsequence(
    const std::vector<std::size_t>& values);

/// sortedness(pi) of Definition 19: the length of the longest subsequence
/// of (pi(0), ..., pi(m-1)) sorted in ascending or descending order.
std::size_t Sortedness(const Permutation& perm);

/// The inverse permutation.
Permutation Inverse(const Permutation& perm);

/// The identity permutation on m elements.
Permutation Identity(std::size_t m);

}  // namespace rstlab::permutation

#endif  // RSTLAB_PERMUTATION_SORTEDNESS_H_
