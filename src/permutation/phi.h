#ifndef RSTLAB_PERMUTATION_PHI_H_
#define RSTLAB_PERMUTATION_PHI_H_

#include <cstddef>

#include "permutation/sortedness.h"
#include "util/random.h"

namespace rstlab::permutation {

/// The "hard" permutation phi_m of Remark 20: the numbers 0..m-1 sorted
/// lexicographically by their reversed binary representation, which for m
/// a power of two is exactly the bit-reversal permutation
/// phi(i) = reverse of i's log2(m)-bit representation.
/// Satisfies sortedness(phi_m) <= 2*sqrt(m) - 1.
/// Requires m to be a power of two.
Permutation BitReversalPermutation(std::size_t m);

/// Reverses the low `bits` bits of `value`.
std::size_t ReverseBits(std::size_t value, std::size_t bits);

/// A uniformly random permutation of {0, ..., m-1}. By Remark 20,
/// its sortedness is Omega(sqrt(m)) with high probability.
Permutation RandomPermutation(std::size_t m, Rng& rng);

}  // namespace rstlab::permutation

#endif  // RSTLAB_PERMUTATION_PHI_H_
