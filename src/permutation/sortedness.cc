#include "permutation/sortedness.h"

#include <algorithm>
#include <cassert>

namespace rstlab::permutation {

bool IsPermutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

std::size_t LongestIncreasingSubsequence(
    const std::vector<std::size_t>& values) {
  // tails[k] = smallest possible tail of an increasing subsequence of
  // length k+1.
  std::vector<std::size_t> tails;
  for (std::size_t v : values) {
    auto it = std::lower_bound(tails.begin(), tails.end(), v);
    if (it == tails.end()) {
      tails.push_back(v);
    } else {
      *it = v;
    }
  }
  return tails.size();
}

std::size_t Sortedness(const Permutation& perm) {
  assert(IsPermutation(perm));
  const std::size_t up = LongestIncreasingSubsequence(perm);
  std::vector<std::size_t> reversed_values(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    // Longest decreasing subsequence == LIS after value reflection.
    reversed_values[i] = perm.size() - 1 - perm[i];
  }
  const std::size_t down = LongestIncreasingSubsequence(reversed_values);
  return std::max(up, down);
}

Permutation Inverse(const Permutation& perm) {
  Permutation inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) inv[perm[i]] = i;
  return inv;
}

Permutation Identity(std::size_t m) {
  Permutation id(m);
  for (std::size_t i = 0; i < m; ++i) id[i] = i;
  return id;
}

}  // namespace rstlab::permutation
