#include "permutation/phi.h"

#include <bit>
#include <cassert>

namespace rstlab::permutation {

std::size_t ReverseBits(std::size_t value, std::size_t bits) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    out = (out << 1) | ((value >> i) & 1);
  }
  return out;
}

Permutation BitReversalPermutation(std::size_t m) {
  assert(m > 0 && std::has_single_bit(m));
  const std::size_t bits =
      static_cast<std::size_t>(std::bit_width(m) - 1);
  Permutation phi(m);
  for (std::size_t i = 0; i < m; ++i) phi[i] = ReverseBits(i, bits);
  return phi;
}

Permutation RandomPermutation(std::size_t m, Rng& rng) {
  Permutation perm = Identity(m);
  rng.Shuffle(perm);
  return perm;
}

}  // namespace rstlab::permutation
