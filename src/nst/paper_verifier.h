#ifndef RSTLAB_NST_PAPER_VERIFIER_H_
#define RSTLAB_NST_PAPER_VERIFIER_H_

#include <cstddef>

#include "nst/certificate.h"
#include "problems/instance.h"
#include "stmodel/st_context.h"
#include "tape/resource_meter.h"
#include "util/status.h"

namespace rstlab::nst {

/// Outcome of one run of the paper's Theorem 8(b) verifier.
struct NstRunResult {
  /// True iff the run accepted (i.e. the guess was consistent and all
  /// per-copy checks passed).
  bool accepted = false;
  /// Number of tape copies of the guess string u that were written.
  std::size_t copies_written = 0;
  /// Length of one copy |u|.
  std::size_t copy_length = 0;
};

/// The tape-level machine of Theorem 8(b), run on one nondeterministic
/// guess.
///
/// The machine writes l copies of the guessed string
/// u = pi_1#...#pi_m#v_1#...#v_m#v'_1#...#v'_m# onto two working tapes in
/// one forward pass, performing one O(log N)-internal-bit check per copy
/// (one bit position of one value pair per copy; injectivity of pi in the
/// last m copies; for CHECK-SORT, lexicographic order of adjacent v'
/// pairs carried across copies in two persistent internal bits — adjacent
/// comparisons suffice for sortedness, a slight economy over the paper's
/// all-pairs copies which leaves the resource profile unchanged).
/// A final backward scan verifies that all copies are equal and that the
/// last copy's value payload equals the input.
///
/// Resource profile: a constant number of scans (the paper's tighter
/// 2-tape layout achieves exactly 3; ours measures a constant <= 5 on a
/// 3-tape layout), internal memory O(log N) bits, and external space
/// O(l * |u|) = O(N^2 m) — which is why this faithful construction is
/// exercised at toy scale while `VerifyCertificate` serves large-scale
/// experiments.
///
/// `ctx` needs >= 3 tapes with the encoded instance loaded on tape 0.
Result<NstRunResult> RunPaperVerifier(problems::Problem problem,
                                      const problems::Instance& instance,
                                      const Certificate& certificate,
                                      stmodel::StContext& ctx);

}  // namespace rstlab::nst

#endif  // RSTLAB_NST_PAPER_VERIFIER_H_
