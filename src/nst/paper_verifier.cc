#include "nst/paper_verifier.h"

#include <algorithm>
#include <optional>
#include <string>

#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"
#include "tape/tape.h"

namespace rstlab::nst {

namespace {

/// Appends `value` as a `width`-character binary field to `out`.
void AppendBinaryField(std::size_t value, std::size_t width,
                       std::string& out) {
  for (std::size_t b = 0; b < width; ++b) {
    out.push_back(((value >> (width - 1 - b)) & 1) ? '1' : '0');
  }
  out.push_back(stmodel::kFieldSeparator);
}

/// Builds the guess string u for the given problem and certificate.
std::string BuildGuessString(problems::Problem problem,
                             const problems::Instance& instance,
                             const Certificate& certificate,
                             std::size_t index_width) {
  std::string u;
  const std::size_t m = instance.m();
  if (problem == problems::Problem::kSetEquality) {
    for (std::size_t i = 0; i < m; ++i) {
      AppendBinaryField(certificate.alpha.size() == m ? certificate.alpha[i]
                                                      : 0,
                        index_width, u);
    }
    for (std::size_t i = 0; i < m; ++i) {
      AppendBinaryField(certificate.beta.size() == m ? certificate.beta[i]
                                                     : 0,
                        index_width, u);
    }
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      AppendBinaryField(certificate.pi.size() == m ? certificate.pi[i] : 0,
                        index_width, u);
    }
  }
  u += instance.Encode();
  return u;
}

/// Bit `b` of `v`, or nullopt when the value is shorter.
std::optional<bool> BitOrAbsent(const BitString& v, std::size_t b) {
  if (b >= v.size()) return std::nullopt;
  return v.bit(b);
}

}  // namespace

Result<NstRunResult> RunPaperVerifier(problems::Problem problem,
                                      const problems::Instance& instance,
                                      const Certificate& certificate,
                                      stmodel::StContext& ctx) {
  if (ctx.num_tapes() < 3) {
    return Status::InvalidArgument("verifier needs 3 external tapes");
  }
  const std::size_t m = instance.m();
  stmodel::InternalArena& arena = ctx.arena();
  tape::Tape& input = ctx.tape(0);
  tape::Tape& work1 = ctx.tape(1);
  tape::Tape& work2 = ctx.tape(2);

  NstRunResult result;
  if (m == 0) {
    result.accepted = true;
    return result;
  }

  // Malformed guesses yield a rejecting run (the nondeterministic machine
  // simply has no accepting continuation for them).
  const bool shape_ok =
      problem == problems::Problem::kSetEquality
          ? certificate.alpha.size() == m && certificate.beta.size() == m &&
                std::all_of(certificate.alpha.begin(),
                            certificate.alpha.end(),
                            [m](std::size_t v) { return v < m; }) &&
                std::all_of(certificate.beta.begin(), certificate.beta.end(),
                            [m](std::size_t v) { return v < m; })
          : certificate.pi.size() == m &&
                std::all_of(certificate.pi.begin(), certificate.pi.end(),
                            [m](std::size_t v) { return v < m; });
  if (!shape_ok) {
    result.accepted = false;
    return result;
  }

  // ---- Forward scan of the input: determine m and n_max. ----
  const std::size_t ctr_bits =
      stmodel::BitsFor(std::max<std::size_t>(1, ctx.input_size()));
  stmodel::MeteredUint64 fields(arena, ctr_bits);
  stmodel::MeteredUint64 n_max_reg(arena, ctr_bits);
  stmodel::Rewind(input);
  while (!stmodel::AtEnd(input)) {
    n_max_reg = std::max<std::uint64_t>(n_max_reg.get(),
                                        stmodel::SkipField(input));
    fields = fields.get() + 1;
  }
  if (fields.get() != 2 * m) {
    return Status::InvalidArgument("tape content disagrees with instance");
  }
  const std::size_t n_max = static_cast<std::size_t>(n_max_reg.get());

  // ---- Plan the copies. ----
  const std::size_t index_width = stmodel::BitsFor(m - 1);
  const std::string u =
      BuildGuessString(problem, instance, certificate, index_width);
  std::size_t num_copies = 0;
  switch (problem) {
    case problems::Problem::kMultisetEquality:
      num_copies = n_max * m + m;
      break;
    case problems::Problem::kCheckSort:
      num_copies = n_max * m + n_max * (m - 1) + m;
      break;
    case problems::Problem::kSetEquality:
      num_copies = 2 * n_max * m;
      break;
  }
  result.copy_length = u.size();

  // ---- Per-copy internal registers, all O(log N) bits. ----
  stmodel::MeteredUint64 copy_idx(arena, stmodel::BitsFor(num_copies + 1));
  stmodel::MeteredUint64 field_idx(arena, ctr_bits);
  stmodel::MeteredUint64 bit_idx(arena, ctr_bits);
  stmodel::MeteredUint64 target_idx(arena, stmodel::BitsFor(m));
  // Two transient bits for the per-copy bit comparisons.
  stmodel::MeteredUint64 captured_bits(arena, 2);
  (void)captured_bits;
  // Persistent lexicographic state for the CHECK-SORT adjacent-pair
  // sweep: bit 0 = comparison decided, bit 1 = pair in order.
  stmodel::MeteredUint64 sort_state(arena, 2);

  bool ok = true;
  auto write_copy = [&]() {
    for (char c : u) {
      work1.Write(c);
      work1.MoveRight();
      work2.Write(c);
      work2.MoveRight();
    }
    ++result.copies_written;
  };

  // One check per copy, mirroring the construction in the proof of
  // Theorem 8(b); the checked bits are tracked through metered registers
  // so the measured internal space stays O(log N).
  for (copy_idx = 0; ok && copy_idx.get() < num_copies;
       copy_idx = copy_idx.get() + 1) {
    const std::size_t c = static_cast<std::size_t>(copy_idx.get());
    write_copy();

    if (problem == problems::Problem::kSetEquality) {
      const bool alpha_phase = c < n_max * m;
      const std::size_t base = alpha_phase ? c : c - n_max * m;
      field_idx = base / n_max;
      bit_idx = base % n_max;
      const std::size_t f = static_cast<std::size_t>(field_idx.get());
      const std::size_t b = static_cast<std::size_t>(bit_idx.get());
      if (alpha_phase) {
        target_idx = certificate.alpha[f];
        ok = BitOrAbsent(instance.first[f], b) ==
             BitOrAbsent(instance.second[static_cast<std::size_t>(
                             target_idx.get())],
                         b);
      } else {
        target_idx = certificate.beta[f];
        ok = BitOrAbsent(instance.second[f], b) ==
             BitOrAbsent(
                 instance.first[static_cast<std::size_t>(target_idx.get())],
                 b);
      }
      continue;
    }

    // Multiset equality / checksort.
    if (c < n_max * m) {
      // Bit check: v_f and v'_{pi(f)} agree on bit b (or both lack it).
      field_idx = c / n_max;
      bit_idx = c % n_max;
      const std::size_t f = static_cast<std::size_t>(field_idx.get());
      const std::size_t b = static_cast<std::size_t>(bit_idx.get());
      target_idx = certificate.pi[f];
      ok = BitOrAbsent(instance.first[f], b) ==
           BitOrAbsent(
               instance.second[static_cast<std::size_t>(target_idx.get())],
               b);
      continue;
    }
    if (problem == problems::Problem::kCheckSort &&
        c < n_max * m + n_max * (m - 1)) {
      // Adjacent-pair order sweep: pair i, bit b, bits ascending per
      // pair; two persistent state bits carried between copies.
      const std::size_t base = c - n_max * m;
      field_idx = base / n_max;
      bit_idx = base % n_max;
      const std::size_t i = static_cast<std::size_t>(field_idx.get());
      const std::size_t b = static_cast<std::size_t>(bit_idx.get());
      if (b == 0) sort_state = 0;  // fresh pair
      const bool decided = (sort_state.get() & 1) != 0;
      if (!decided) {
        const std::optional<bool> x = BitOrAbsent(instance.second[i], b);
        const std::optional<bool> y =
            BitOrAbsent(instance.second[i + 1], b);
        if (!x.has_value() && y.has_value()) {
          sort_state = 1 | 2;  // proper prefix: in order, decided
        } else if (x.has_value() && !y.has_value()) {
          ok = false;  // longer than its successor prefix: out of order
        } else if (x.has_value() && y.has_value() && *x != *y) {
          sort_state = *x < *y ? (1 | 2) : 1;
          ok = (sort_state.get() & 2) != 0;
        }
        // Equal bits (or both absent): stay undecided, which at the end
        // of the sweep means the values are equal — in order.
      }
      continue;
    }
    // Injectivity copies: copy for line i checks pi(i) != pi(j), j > i.
    {
      const std::size_t offset =
          problem == problems::Problem::kCheckSort
              ? n_max * m + n_max * (m - 1)
              : n_max * m;
      const std::size_t i = c - offset;
      target_idx = certificate.pi[i];
      for (std::size_t j = i + 1; j < m && ok; ++j) {
        field_idx = certificate.pi[j];
        ok = target_idx.get() != field_idx.get();
      }
    }
  }

  // ---- Backward scan: copies all equal, last copy matches the input.
  // All heads move left only, so this phase costs one reversal per tape.
  if (ok && result.copies_written > 0) {
    const std::size_t L = u.size();
    const std::size_t total = result.copies_written * L;
    const std::size_t payload = instance.N();
    // (a) Input (backward) against the payload suffix of the last copy
    // on work tape 2.
    input.Seek(payload == 0 ? 0 : payload - 1);
    for (std::size_t k = 0; ok && k < payload; ++k) {
      work2.Seek(total - 1 - k);
      input.Seek(payload - 1 - k);
      ok = input.Read() == work2.Read();
    }
    // (b) Chain: copy c on work tape 1 against copy c-1 on work tape 2.
    if (ok && result.copies_written > 1) {
      for (std::size_t k = 0; ok && k < total - L; ++k) {
        work1.Seek(total - 1 - k);
        work2.Seek(total - L - 1 - k);
        ok = work1.Read() == work2.Read();
      }
    }
  }

  result.accepted = ok;
  return result;
}

}  // namespace rstlab::nst
