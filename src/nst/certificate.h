#ifndef RSTLAB_NST_CERTIFICATE_H_
#define RSTLAB_NST_CERTIFICATE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "permutation/sortedness.h"
#include "problems/instance.h"

namespace rstlab::nst {

/// The nondeterministic guess of the Theorem 8(b) machines.
///
/// For MULTISET-EQUALITY and CHECK-SORT the guess is a permutation pi
/// with v_i = v'_{pi(i)}; for SET-EQUALITY it is a pair of (not
/// necessarily injective) maps alpha, beta with v_i = v'_{alpha(i)} and
/// v'_j = v_{beta(j)}.
struct Certificate {
  /// Permutation guess (multiset equality / checksort); element i maps
  /// to pi[i] (0-based).
  permutation::Permutation pi;
  /// Map guesses (set equality).
  std::vector<std::size_t> alpha;
  std::vector<std::size_t> beta;
};

/// Host-level (oracle) verification of a certificate: does the guess
/// witness that `instance` is a "yes" instance of `problem`?
///
/// * kMultisetEquality: pi is a permutation and v_i = v'_{pi(i)} for all
///   i.
/// * kCheckSort: additionally v'_1 <= v'_2 <= ... <= v'_m.
/// * kSetEquality: alpha and beta are total maps into range and
///   v_i = v'_{alpha(i)}, v'_j = v_{beta(j)} for all i, j.
bool VerifyCertificate(problems::Problem problem,
                       const problems::Instance& instance,
                       const Certificate& certificate);

/// The canonical honest certificate for a "yes" instance, if one exists
/// (completeness direction of Theorem 8(b)): a matching permutation /
/// map pair computed by sorting in host memory.
std::optional<Certificate> FindHonestCertificate(
    problems::Problem problem, const problems::Instance& instance);

/// Exhaustive soundness check: true iff *some* certificate verifies.
/// Enumerates all m! permutations (or all m^m maps twice for set
/// equality); only feasible for tiny m (<= 6 or so). Theorem 8(b)
/// soundness predicts this agrees exactly with the reference decider.
bool ExistsAcceptingCertificate(problems::Problem problem,
                                const problems::Instance& instance);

}  // namespace rstlab::nst

#endif  // RSTLAB_NST_CERTIFICATE_H_
