#include "nst/certificate.h"

#include <algorithm>
#include <numeric>

#include "problems/reference.h"

namespace rstlab::nst {

namespace {

bool InRange(const std::vector<std::size_t>& map, std::size_t m) {
  if (map.size() != m) return false;
  return std::all_of(map.begin(), map.end(),
                     [m](std::size_t v) { return v < m; });
}

bool MatchesPermutation(const problems::Instance& instance,
                        const permutation::Permutation& pi) {
  if (!permutation::IsPermutation(pi) || pi.size() != instance.m()) {
    return false;
  }
  for (std::size_t i = 0; i < instance.m(); ++i) {
    if (instance.first[i] != instance.second[pi[i]]) return false;
  }
  return true;
}

}  // namespace

bool VerifyCertificate(problems::Problem problem,
                       const problems::Instance& instance,
                       const Certificate& certificate) {
  const std::size_t m = instance.m();
  switch (problem) {
    case problems::Problem::kMultisetEquality:
      return MatchesPermutation(instance, certificate.pi);
    case problems::Problem::kCheckSort:
      return MatchesPermutation(instance, certificate.pi) &&
             std::is_sorted(instance.second.begin(),
                            instance.second.end());
    case problems::Problem::kSetEquality: {
      if (!InRange(certificate.alpha, m) || !InRange(certificate.beta, m)) {
        return false;
      }
      for (std::size_t i = 0; i < m; ++i) {
        if (instance.first[i] != instance.second[certificate.alpha[i]]) {
          return false;
        }
        if (instance.second[i] != instance.first[certificate.beta[i]]) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::optional<Certificate> FindHonestCertificate(
    problems::Problem problem, const problems::Instance& instance) {
  const std::size_t m = instance.m();
  Certificate cert;
  switch (problem) {
    case problems::Problem::kCheckSort:
      if (!std::is_sorted(instance.second.begin(),
                          instance.second.end())) {
        return std::nullopt;
      }
      [[fallthrough]];
    case problems::Problem::kMultisetEquality: {
      // Greedy matching of equal values: index the second list by value,
      // assign each v_i the next unused equal v'_j.
      std::vector<std::size_t> order(m);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return instance.second[a] < instance.second[b];
                });
      cert.pi.assign(m, 0);
      std::vector<bool> used(m, false);
      for (std::size_t i = 0; i < m; ++i) {
        // Binary search the sorted view for v_i, then take the first
        // unused match.
        auto lo = std::lower_bound(
            order.begin(), order.end(), instance.first[i],
            [&](std::size_t idx, const BitString& v) {
              return instance.second[idx] < v;
            });
        bool found = false;
        for (auto it = lo; it != order.end(); ++it) {
          if (!(instance.second[*it] == instance.first[i])) break;
          if (!used[*it]) {
            used[*it] = true;
            cert.pi[i] = *it;
            found = true;
            break;
          }
        }
        if (!found) return std::nullopt;
      }
      return cert;
    }
    case problems::Problem::kSetEquality: {
      cert.alpha.assign(m, 0);
      cert.beta.assign(m, 0);
      for (std::size_t i = 0; i < m; ++i) {
        bool found = false;
        for (std::size_t j = 0; j < m; ++j) {
          if (instance.first[i] == instance.second[j]) {
            cert.alpha[i] = j;
            found = true;
            break;
          }
        }
        if (!found) return std::nullopt;
      }
      for (std::size_t j = 0; j < m; ++j) {
        bool found = false;
        for (std::size_t i = 0; i < m; ++i) {
          if (instance.second[j] == instance.first[i]) {
            cert.beta[j] = i;
            found = true;
            break;
          }
        }
        if (!found) return std::nullopt;
      }
      return cert;
    }
  }
  return std::nullopt;
}

bool ExistsAcceptingCertificate(problems::Problem problem,
                                const problems::Instance& instance) {
  const std::size_t m = instance.m();
  switch (problem) {
    case problems::Problem::kMultisetEquality:
    case problems::Problem::kCheckSort: {
      permutation::Permutation pi = permutation::Identity(m);
      do {
        Certificate cert;
        cert.pi = pi;
        if (VerifyCertificate(problem, instance, cert)) return true;
      } while (std::next_permutation(pi.begin(), pi.end()));
      return false;
    }
    case problems::Problem::kSetEquality: {
      // Enumerate all m^m maps for alpha and beta independently: alpha
      // exists iff every v_i occurs in the second list; enumerating
      // independently is sound because the two constraint families do
      // not interact.
      auto exists_map = [m](auto matches) {
        // For each position, some target must match.
        for (std::size_t i = 0; i < m; ++i) {
          bool any = false;
          for (std::size_t j = 0; j < m; ++j) {
            if (matches(i, j)) {
              any = true;
              break;
            }
          }
          if (!any) return false;
        }
        return true;
      };
      const bool alpha_ok =
          exists_map([&](std::size_t i, std::size_t j) {
            return instance.first[i] == instance.second[j];
          });
      const bool beta_ok = exists_map([&](std::size_t j, std::size_t i) {
        return instance.second[j] == instance.first[i];
      });
      return alpha_ok && beta_ok;
    }
  }
  return false;
}

}  // namespace rstlab::nst
