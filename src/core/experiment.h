#ifndef RSTLAB_CORE_EXPERIMENT_H_
#define RSTLAB_CORE_EXPERIMENT_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rstlab::core {

/// A simple fixed-width experiment table: header once, one row per
/// parameter point; prints aligned to a stream. Experiment binaries use
/// it to print the "rows the paper reports" next to measured values.
class Table {
 public:
  /// A table with the given title and column headers.
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a row (stringified by the caller; must match the column
  /// count).
  void AddRow(std::vector<std::string> cells);

  /// Renders the table.
  void Print(std::ostream& os) const;

  /// Renders as RFC-4180-style CSV (header row first; fields containing
  /// commas or quotes are quoted) for downstream plotting.
  std::string ToCsv() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant fraction digits.
std::string FormatDouble(double value, int digits = 3);

/// Least-squares fit y = slope * log2(x) + intercept over the points,
/// for checking Theta(log N) scan counts.
struct LogFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Fits `ys` against log2 of `xs`. Requires at least two points.
LogFit FitLog2(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace rstlab::core

#endif  // RSTLAB_CORE_EXPERIMENT_H_
