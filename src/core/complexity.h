#ifndef RSTLAB_CORE_COMPLEXITY_H_
#define RSTLAB_CORE_COMPLEXITY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "tape/resource_meter.h"

namespace rstlab::core {

/// The machine mode of a complexity class (Definitions 2 and 4).
enum class MachineMode {
  kDeterministic,   // ST(...)
  kRandomized,      // RST(...): no false positives, false negatives <= 1/2
  kCoRandomized,    // co-RST(...): no false negatives, false pos <= 1/2
  kNondeterministic,  // NST(...)
  kLasVegas,        // LasVegas-RST(...): output or "I don't know"
};

/// A resource class ST/RST/NST/... (r(N), s(N), t) with r and s given as
/// evaluable functions of the input size; used to check measured
/// ResourceReports against claimed class memberships.
struct ResourceClass {
  MachineMode mode = MachineMode::kDeterministic;
  std::string name;
  std::function<std::uint64_t(std::size_t)> r_of_n;
  std::function<std::size_t(std::size_t)> s_of_n;
  std::size_t t = 1;

  /// The concrete bounds at input size N.
  tape::StBounds BoundsAt(std::size_t n) const;

  /// True iff `report` (from a run on input size N) complies.
  bool Admits(const tape::ResourceReport& report, std::size_t n) const;
};

/// r(N) = c (constant scans).
std::function<std::uint64_t(std::size_t)> ConstScans(std::uint64_t c);
/// r(N) = ceil(c * log2 N).
std::function<std::uint64_t(std::size_t)> LogScans(double c);
/// s(N) = c bits.
std::function<std::size_t(std::size_t)> ConstSpace(std::size_t c);
/// s(N) = ceil(c * log2 N) bits.
std::function<std::size_t(std::size_t)> LogSpace(double c);
/// s(N) = ceil(c * N^{1/4} / log2 N) bits — the Theorem 6 regime.
std::function<std::size_t(std::size_t)> FourthRootOverLogSpace(double c);

/// Named classes from the paper, with explicit constants supplied by the
/// caller (asymptotic statements are checked as fits in the benches).
ResourceClass StClass(std::string name,
                      std::function<std::uint64_t(std::size_t)> r,
                      std::function<std::size_t(std::size_t)> s,
                      std::size_t t);
ResourceClass RstClass(std::string name,
                       std::function<std::uint64_t(std::size_t)> r,
                       std::function<std::size_t(std::size_t)> s,
                       std::size_t t);
ResourceClass CoRstClass(std::string name,
                         std::function<std::uint64_t(std::size_t)> r,
                         std::function<std::size_t(std::size_t)> s,
                         std::size_t t);
ResourceClass NstClass(std::string name,
                       std::function<std::uint64_t(std::size_t)> r,
                       std::function<std::size_t(std::size_t)> s,
                       std::size_t t);

}  // namespace rstlab::core

#endif  // RSTLAB_CORE_COMPLEXITY_H_
