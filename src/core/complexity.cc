#include "core/complexity.h"

#include <cmath>

namespace rstlab::core {

tape::StBounds ResourceClass::BoundsAt(std::size_t n) const {
  tape::StBounds bounds;
  bounds.max_scans = r_of_n(n);
  bounds.max_internal_space = s_of_n(n);
  bounds.max_external_tapes = t;
  return bounds;
}

bool ResourceClass::Admits(const tape::ResourceReport& report,
                           std::size_t n) const {
  return tape::Complies(report, BoundsAt(n));
}

std::function<std::uint64_t(std::size_t)> ConstScans(std::uint64_t c) {
  return [c](std::size_t) { return c; };
}

std::function<std::uint64_t(std::size_t)> LogScans(double c) {
  return [c](std::size_t n) {
    const double l = std::log2(static_cast<double>(std::max<std::size_t>(
        2, n)));
    return static_cast<std::uint64_t>(std::ceil(c * l));
  };
}

std::function<std::size_t(std::size_t)> ConstSpace(std::size_t c) {
  return [c](std::size_t) { return c; };
}

std::function<std::size_t(std::size_t)> LogSpace(double c) {
  return [c](std::size_t n) {
    const double l = std::log2(static_cast<double>(std::max<std::size_t>(
        2, n)));
    return static_cast<std::size_t>(std::ceil(c * l));
  };
}

std::function<std::size_t(std::size_t)> FourthRootOverLogSpace(double c) {
  return [c](std::size_t n) {
    const double nn = static_cast<double>(std::max<std::size_t>(2, n));
    return static_cast<std::size_t>(
        std::ceil(c * std::pow(nn, 0.25) / std::log2(nn)));
  };
}

namespace {

ResourceClass MakeClass(MachineMode mode, std::string name,
                        std::function<std::uint64_t(std::size_t)> r,
                        std::function<std::size_t(std::size_t)> s,
                        std::size_t t) {
  ResourceClass cls;
  cls.mode = mode;
  cls.name = std::move(name);
  cls.r_of_n = std::move(r);
  cls.s_of_n = std::move(s);
  cls.t = t;
  return cls;
}

}  // namespace

ResourceClass StClass(std::string name,
                      std::function<std::uint64_t(std::size_t)> r,
                      std::function<std::size_t(std::size_t)> s,
                      std::size_t t) {
  return MakeClass(MachineMode::kDeterministic, std::move(name),
                   std::move(r), std::move(s), t);
}

ResourceClass RstClass(std::string name,
                       std::function<std::uint64_t(std::size_t)> r,
                       std::function<std::size_t(std::size_t)> s,
                       std::size_t t) {
  return MakeClass(MachineMode::kRandomized, std::move(name), std::move(r),
                   std::move(s), t);
}

ResourceClass CoRstClass(std::string name,
                         std::function<std::uint64_t(std::size_t)> r,
                         std::function<std::size_t(std::size_t)> s,
                         std::size_t t) {
  return MakeClass(MachineMode::kCoRandomized, std::move(name),
                   std::move(r), std::move(s), t);
}

ResourceClass NstClass(std::string name,
                       std::function<std::uint64_t(std::size_t)> r,
                       std::function<std::size_t(std::size_t)> s,
                       std::size_t t) {
  return MakeClass(MachineMode::kNondeterministic, std::move(name),
                   std::move(r), std::move(s), t);
}

}  // namespace rstlab::core
