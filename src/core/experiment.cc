#include "core/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rstlab::core {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit_row(columns_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

LogFit FitLog2(const std::vector<double>& xs,
               const std::vector<double>& ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  const std::size_t n = xs.size();
  double sum_l = 0, sum_y = 0, sum_ll = 0, sum_ly = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double l = std::log2(xs[i]);
    sum_l += l;
    sum_y += ys[i];
    sum_ll += l * l;
    sum_ly += l * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sum_ll - sum_l * sum_l;
  LogFit fit;
  if (std::abs(denom) < 1e-12) return fit;
  fit.slope = (dn * sum_ly - sum_l * sum_y) / denom;
  fit.intercept = (sum_y - fit.slope * sum_l) / dn;
  double ss_res = 0, ss_tot = 0;
  const double mean_y = sum_y / dn;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = fit.slope * std::log2(xs[i]) + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace rstlab::core
