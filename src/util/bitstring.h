#ifndef RSTLAB_UTIL_BITSTRING_H_
#define RSTLAB_UTIL_BITSTRING_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace rstlab {

/// A fixed-length string over {0,1}, most-significant bit first.
///
/// The paper's input items v_i, v'_i are 0-1 strings of a common length n,
/// ordered lexicographically (which, for equal lengths, coincides with the
/// numeric order when a string is read as the binary representation of an
/// integer in {0, ..., 2^n - 1}). Bits are packed 64 per word; bit index 0
/// is the leftmost (most significant) bit.
class BitString {
 public:
  /// The empty bit string.
  BitString() = default;

  /// An all-zero string of `length` bits.
  explicit BitString(std::size_t length);

  /// Parses a string of '0'/'1' characters. Any other character is
  /// undefined behaviour (checked by assert in debug builds).
  static BitString FromString(const std::string& bits);

  /// The length-`length` binary representation of `value`
  /// (most-significant bit first). Requires `value < 2^length` when
  /// `length < 64`.
  static BitString FromUint64(std::uint64_t value, std::size_t length);

  /// A uniformly random string of `length` bits.
  static BitString Random(std::size_t length, Rng& rng);

  /// Number of bits.
  std::size_t size() const { return size_; }
  /// True iff the string has no bits.
  bool empty() const { return size_ == 0; }

  /// The bit at position `i` (0 = leftmost / most significant).
  bool bit(std::size_t i) const;
  /// Sets the bit at position `i`.
  void set_bit(std::size_t i, bool value);

  /// Appends one bit at the right (least-significant) end.
  void PushBack(bool value);

  /// Renders as a string of '0'/'1' characters.
  std::string ToString() const;

  /// The numeric value; requires size() <= 64.
  std::uint64_t ToUint64() const;

  /// The value of the leftmost `count` bits as an integer; requires
  /// `count <= min(size(), 64)`. Used to locate a value's interval
  /// I_j in the CHECK-phi instance construction (Lemma 22).
  std::uint64_t TopBits(std::size_t count) const;

  /// The value of this string modulo `modulus`, computed by one
  /// sequential left-to-right scan of the bits keeping only an
  /// O(log modulus)-bit residue — exactly the internal-memory-friendly
  /// evaluation used in Theorem 8(a), step (5).
  std::uint64_t ModUint64(std::uint64_t modulus) const;

  /// Lexicographic (== numeric, for equal lengths) three-way comparison.
  /// Shorter strings that are prefixes of longer ones compare less.
  std::strong_ordering operator<=>(const BitString& other) const;
  bool operator==(const BitString& other) const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hash functor so BitString can key unordered containers.
struct BitStringHash {
  std::size_t operator()(const BitString& s) const;
};

}  // namespace rstlab

#endif  // RSTLAB_UTIL_BITSTRING_H_
