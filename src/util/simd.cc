#include "util/simd.h"

#include <cstdlib>
#include <cstring>

namespace rstlab::simd {
namespace {

/// Sentinel meaning "no process-wide override installed".
constexpr int kUnsetLevel = -1;

int& ProcessLevelSlot() {
  static int slot = kUnsetLevel;
  return slot;
}

}  // namespace

std::size_t SimdLanes(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return 1;
    case SimdLevel::kLanes4:
      return 4;
    case SimdLevel::kLanes8:
      return 8;
  }
  return 1;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kLanes4:
      return "lanes4";
    case SimdLevel::kLanes8:
      return "lanes8";
  }
  return "scalar";
}

SimdLevel DetectSimdLevel() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kLanes8;
  }
  return SimdLevel::kScalar;
#elif defined(__aarch64__)
  // NEON is part of the aarch64 baseline: two 2x64 vectors per group.
  return SimdLevel::kLanes4;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ParseSimdLevelName(const std::string& name) {
  if (name == "off" || name == "scalar" || name == "0" || name == "1") {
    return SimdLevel::kScalar;
  }
  if (name == "4" || name == "lanes4") {
    return SimdLevel::kLanes4;
  }
  if (name == "8" || name == "lanes8") {
    return SimdLevel::kLanes8;
  }
  return DetectSimdLevel();
}

SimdLevel ResolveSimdLevel() {
  const char* env = std::getenv("RSTLAB_SIMD");
  if (env == nullptr || *env == '\0') {
    return DetectSimdLevel();
  }
  return ParseSimdLevelName(env);
}

SimdLevel ProcessSimdLevel() {
  const int slot = ProcessLevelSlot();
  if (slot == kUnsetLevel) {
    return ResolveSimdLevel();
  }
  return static_cast<SimdLevel>(slot);
}

void SetProcessSimdLevel(SimdLevel level) {
  ProcessLevelSlot() = static_cast<int>(level);
}

bool VectorKernelsAvailable() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#elif defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

SimdLevel ParseSimdFlag(int* argc, char** argv) {
  std::string requested;
  bool saw_flag = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--simd=", 7) == 0) {
      requested = arg + 7;
      saw_flag = true;
      continue;  // strip the flag so downstream parsers never see it
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < *argc; ++i) {
    argv[i] = nullptr;
  }
  *argc = out;

  const SimdLevel level =
      saw_flag ? ParseSimdLevelName(requested) : ResolveSimdLevel();
  SetProcessSimdLevel(level);
  return level;
}

}  // namespace rstlab::simd
