#include "util/bitstring.h"

#include <algorithm>
#include <cassert>

namespace rstlab {
namespace {

// Bit i of the string lives in word i/64 at mask 1 << (63 - i%64), i.e.
// strings pack big-endian within each word. With unused trailing bits kept
// at zero, whole-word unsigned comparison yields lexicographic order.
constexpr std::uint64_t MaskFor(std::size_t i) {
  return std::uint64_t{1} << (63 - (i % 64));
}

}  // namespace

BitString::BitString(std::size_t length)
    : size_(length), words_((length + 63) / 64, 0) {}

BitString BitString::FromString(const std::string& bits) {
  BitString out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    assert(bits[i] == '0' || bits[i] == '1');
    out.set_bit(i, bits[i] == '1');
  }
  return out;
}

BitString BitString::FromUint64(std::uint64_t value, std::size_t length) {
  assert(length >= 64 || value < (std::uint64_t{1} << length));
  BitString out(length);
  for (std::size_t i = 0; i < length && i < 64; ++i) {
    // Bit `length - 1 - i` of `value` is string position i from the right.
    out.set_bit(length - 1 - i, (value >> i) & 1);
  }
  return out;
}

BitString BitString::Random(std::size_t length, Rng& rng) {
  BitString out(length);
  for (auto& word : out.words_) word = rng.Next64();
  // Clear unused trailing bits so comparisons stay well-defined.
  const std::size_t tail = length % 64;
  if (tail != 0 && !out.words_.empty()) {
    out.words_.back() &= ~std::uint64_t{0} << (64 - tail);
  }
  return out;
}

bool BitString::bit(std::size_t i) const {
  assert(i < size_);
  return (words_[i / 64] & MaskFor(i)) != 0;
}

void BitString::set_bit(std::size_t i, bool value) {
  assert(i < size_);
  if (value) {
    words_[i / 64] |= MaskFor(i);
  } else {
    words_[i / 64] &= ~MaskFor(i);
  }
}

void BitString::PushBack(bool value) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  set_bit(size_ - 1, value);
}

std::string BitString::ToString() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (bit(i)) out[i] = '1';
  }
  return out;
}

std::uint64_t BitString::ToUint64() const {
  assert(size_ <= 64);
  if (size_ == 0) return 0;
  return words_[0] >> (64 - size_);
}

std::uint64_t BitString::TopBits(std::size_t count) const {
  assert(count <= size_ && count <= 64);
  if (count == 0) return 0;
  return words_[0] >> (64 - count);
}

std::uint64_t BitString::ModUint64(std::uint64_t modulus) const {
  assert(modulus > 0);
  // Horner evaluation: residue <- (2*residue + bit) mod p, one pass.
  unsigned __int128 residue = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    residue = (residue * 2 + (bit(i) ? 1 : 0)) % modulus;
  }
  return static_cast<std::uint64_t>(residue);
}

std::strong_ordering BitString::operator<=>(const BitString& other) const {
  const std::size_t common_words =
      std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common_words; ++w) {
    if (words_[w] != other.words_[w]) {
      return words_[w] < other.words_[w] ? std::strong_ordering::less
                                         : std::strong_ordering::greater;
    }
  }
  return size_ <=> other.size_;
}

bool BitString::operator==(const BitString& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::size_t BitStringHash::operator()(const BitString& s) const {
  // FNV-1a over the string's bits plus its length.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(s.size());
  for (std::size_t i = 0; i < s.size(); i += 64) {
    const std::size_t chunk = std::min<std::size_t>(64, s.size() - i);
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < chunk; ++j) {
      word = (word << 1) | (s.bit(i + j) ? 1 : 0);
    }
    mix(word);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace rstlab
