#include "util/random.h"

#include <cassert>

namespace rstlab {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next64() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = Next64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::UniformInRange(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return Next64();
  return lo + UniformBelow(span + 1);
}

double Rng::UniformDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace rstlab
