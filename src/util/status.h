#ifndef RSTLAB_UTIL_STATUS_H_
#define RSTLAB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace rstlab {

/// Error category for a failed operation.
///
/// The library does not throw exceptions across its public boundary;
/// fallible operations return a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,  // an (r, s, t) bound was violated
  kFailedPrecondition,
  kNotFound,
  kInternal,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail but produces no value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for an OK status.
  static Status OK() { return Status(); }
  /// Factory for an invalid-argument failure.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Factory for an out-of-range failure.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Factory for a resource-bound violation, e.g. exceeding r(N) reversals.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Factory for a failed-precondition failure.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Factory for a not-found failure.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Factory for an internal invariant violation.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The diagnostic message (empty for OK).
  const std::string& message() const { return message_; }
  /// Renders "Code: message" for logging.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Outcome of an operation that produces a `T` on success.
///
/// Accessing `value()` on a failed result aborts in debug builds; callers
/// must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicitly constructs a successful result. NOLINT(runtime/explicit)
  Result(T value) : value_(std::move(value)) {}
  /// Implicitly constructs a failed result. NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for success");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The failure status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value; requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// Moves the contained value out; requires `ok()`.
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  /// The contained value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rstlab

/// Propagates a failed Status out of the enclosing function.
#define RSTLAB_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::rstlab::Status _rstlab_st = (expr);     \
    if (!_rstlab_st.ok()) return _rstlab_st;  \
  } while (false)

#endif  // RSTLAB_UTIL_STATUS_H_
