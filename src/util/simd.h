#ifndef RSTLAB_UTIL_SIMD_H_
#define RSTLAB_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

/// Runtime SIMD lane-width selection for the batched kernels.
///
/// The batched fingerprint engine evaluates the same value stream
/// against several (p1, x) lanes at once. How many lanes ride in one
/// group — and whether a group is executed with vector instructions or
/// a plain loop — is decided here, once, at process scope, so every
/// subsystem (benches, CLI, conform suites, tests) agrees on the
/// active level.
///
/// Resolution order, strongest first:
///   1. `--simd=<level>` CLI flag (stripped by `ParseSimdFlag`);
///   2. `RSTLAB_SIMD` environment variable;
///   3. hardware detection (`DetectSimdLevel`).
/// Accepted spellings for a level: `off` / `scalar` for kScalar, `4`
/// for kLanes4, `8` for kLanes8, `auto` (or empty) for detection.
/// Unknown spellings fall back to detection rather than aborting so a
/// stale env var can never brick a bench run.
///
/// IMPORTANT: the level only picks a *schedule*. Every kernel in
/// `fingerprint::BatchFingerprintEngine` computes the exact value
/// `x^e mod p2` no matter which level executes it, so tallies are
/// bit-identical across levels by construction; the conform suite
/// `fingerprint-batch` enforces this.
namespace rstlab::simd {

/// Lane-group widths the batched kernels are specialised for.
enum class SimdLevel : std::uint8_t {
  /// One lane at a time through the reference Barrett kernels.
  kScalar = 0,
  /// Groups of 4 u64 lanes (one AVX2 vector / two NEON vectors).
  kLanes4 = 1,
  /// Groups of 8 u64 lanes (two AVX2 vectors, unrolled).
  kLanes8 = 2,
};

/// Number of lanes in one group at `level`: 1, 4 or 8.
std::size_t SimdLanes(SimdLevel level);

/// Stable short name: "scalar", "lanes4", "lanes8".
const char* SimdLevelName(SimdLevel level);

/// Best level the *hardware* supports: kLanes8 when the CPU reports
/// AVX2, kLanes4 on aarch64 (NEON is baseline there), else kScalar.
SimdLevel DetectSimdLevel();

/// Parses one level spelling (see file comment). Unknown spellings and
/// "auto" return `DetectSimdLevel()`.
SimdLevel ParseSimdLevelName(const std::string& name);

/// Level requested by the `RSTLAB_SIMD` environment variable, or
/// `DetectSimdLevel()` when unset / set to `auto`.
SimdLevel ResolveSimdLevel();

/// The process-wide level: the last `SetProcessSimdLevel` value, or
/// `ResolveSimdLevel()` if none was installed.
SimdLevel ProcessSimdLevel();

/// Installs `level` as the process-wide level (CLI flag plumbing).
void SetProcessSimdLevel(SimdLevel level);

/// True when this binary carries compiled vector kernels for the
/// current architecture AND the running CPU can execute them. When
/// false, kLanes4/kLanes8 still work — the lane groups are executed by
/// the portable scalar loop, preserving the batch schedule (and the
/// tallies) exactly.
bool VectorKernelsAvailable();

/// Strips every `--simd=<level>` flag from argv (mirrors
/// `parallel::ParseThreadsFlag`), installs the resolved level via
/// `SetProcessSimdLevel`, and returns it. With no flag present the
/// env / detection order above decides.
SimdLevel ParseSimdFlag(int* argc, char** argv);

// ---------------------------------------------------------------------
// Portable two-lane u64 vector wrapper.
//
// The smallest unit the batched kernels are written against: two u64
// lanes, lowered to one NEON register on aarch64 and to a plain pair of
// scalars elsewhere (x86 keeps a separate AVX2 path with 4-lane
// registers behind a runtime CPU check; these wrappers are its
// always-available fallback). Every operation is exact u64 arithmetic,
// so a kernel produces the same bits whichever lowering runs it.
// ---------------------------------------------------------------------

#if defined(__aarch64__)
#define RSTLAB_SIMD_NEON 1
#endif

}  // namespace rstlab::simd

#if defined(RSTLAB_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace rstlab::simd {

/// Two unsigned 64-bit lanes.
struct U64x2 {
#if defined(RSTLAB_SIMD_NEON)
  uint64x2_t v;
#else
  std::uint64_t v[2];
#endif
};

#if defined(RSTLAB_SIMD_NEON)

inline U64x2 Dup(std::uint64_t x) { return {vdupq_n_u64(x)}; }
inline U64x2 Load2(const std::uint64_t* p) { return {vld1q_u64(p)}; }
inline void Store2(std::uint64_t* p, U64x2 a) { vst1q_u64(p, a.v); }
inline std::uint64_t Lane0(U64x2 a) { return vgetq_lane_u64(a.v, 0); }
inline std::uint64_t Lane1(U64x2 a) { return vgetq_lane_u64(a.v, 1); }
inline U64x2 Add(U64x2 a, U64x2 b) { return {vaddq_u64(a.v, b.v)}; }
inline U64x2 Sub(U64x2 a, U64x2 b) { return {vsubq_u64(a.v, b.v)}; }
inline U64x2 And(U64x2 a, U64x2 b) { return {vandq_u64(a.v, b.v)}; }
inline U64x2 ShiftLeftOne(U64x2 a) { return {vshlq_n_u64(a.v, 1)}; }
/// a >> n for a runtime shift amount 0 <= n < 64.
inline U64x2 ShiftRight(U64x2 a, unsigned n) {
  return {vshlq_u64(a.v, vdupq_n_s64(-static_cast<std::int64_t>(n)))};
}
/// low32(a) * low32(b) per lane, full 64-bit product.
inline U64x2 MulLo32(U64x2 a, U64x2 b) {
  return {vmull_u32(vmovn_u64(a.v), vmovn_u64(b.v))};
}
/// a >= m ? a - m : a, per lane.
inline U64x2 CondSub(U64x2 a, U64x2 m) {
  const uint64x2_t ge = vcgeq_u64(a.v, m.v);
  return {vsubq_u64(a.v, vandq_u64(m.v, ge))};
}
/// Per-lane select by a 0/1 condition: c ? t : f.
inline U64x2 Select01(U64x2 c, U64x2 t, U64x2 f) {
  const uint64x2_t mask = vsubq_u64(vdupq_n_u64(0), c.v);
  return {vbslq_u64(mask, t.v, f.v)};
}

#else  // scalar lowering

inline U64x2 Dup(std::uint64_t x) { return {{x, x}}; }
inline U64x2 Load2(const std::uint64_t* p) { return {{p[0], p[1]}}; }
inline void Store2(std::uint64_t* p, U64x2 a) {
  p[0] = a.v[0];
  p[1] = a.v[1];
}
inline std::uint64_t Lane0(U64x2 a) { return a.v[0]; }
inline std::uint64_t Lane1(U64x2 a) { return a.v[1]; }
inline U64x2 Add(U64x2 a, U64x2 b) { return {{a.v[0] + b.v[0], a.v[1] + b.v[1]}}; }
inline U64x2 Sub(U64x2 a, U64x2 b) { return {{a.v[0] - b.v[0], a.v[1] - b.v[1]}}; }
inline U64x2 And(U64x2 a, U64x2 b) { return {{a.v[0] & b.v[0], a.v[1] & b.v[1]}}; }
inline U64x2 ShiftLeftOne(U64x2 a) { return {{a.v[0] << 1, a.v[1] << 1}}; }
inline U64x2 ShiftRight(U64x2 a, unsigned n) {
  return {{a.v[0] >> n, a.v[1] >> n}};
}
inline U64x2 MulLo32(U64x2 a, U64x2 b) {
  constexpr std::uint64_t kLow32 = 0xffffffffULL;
  return {{(a.v[0] & kLow32) * (b.v[0] & kLow32),
           (a.v[1] & kLow32) * (b.v[1] & kLow32)}};
}
inline U64x2 CondSub(U64x2 a, U64x2 m) {
  return {{a.v[0] >= m.v[0] ? a.v[0] - m.v[0] : a.v[0],
           a.v[1] >= m.v[1] ? a.v[1] - m.v[1] : a.v[1]}};
}
inline U64x2 Select01(U64x2 c, U64x2 t, U64x2 f) {
  return {{c.v[0] != 0 ? t.v[0] : f.v[0], c.v[1] != 0 ? t.v[1] : f.v[1]}};
}

#endif  // RSTLAB_SIMD_NEON

}  // namespace rstlab::simd

#endif  // RSTLAB_UTIL_SIMD_H_
