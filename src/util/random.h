#ifndef RSTLAB_UTIL_RANDOM_H_
#define RSTLAB_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace rstlab {

/// Deterministic pseudo-random generator (xoshiro256**, seeded via
/// SplitMix64).
///
/// All randomness in the library flows through `Rng` so experiments and
/// tests are reproducible from a single seed. Satisfies the C++
/// UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next 64 uniform random bits.
  std::uint64_t operator()() { return Next64(); }

  /// Next 64 uniform random bits.
  std::uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t UniformBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::uint64_t UniformInRange(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Fair coin flip.
  bool Bernoulli(double p);

  /// A fresh generator seeded from this generator's stream; use to give
  /// parallel components independent deterministic streams.
  Rng Fork();

  /// Fisher-Yates shuffle of `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformBelow(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace rstlab

#endif  // RSTLAB_UTIL_RANDOM_H_
