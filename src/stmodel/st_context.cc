#include "stmodel/st_context.h"

#include <cassert>
#include <cstdio>
#include <utility>

namespace rstlab::stmodel {

StContext::StContext(std::size_t num_external_tapes)
    : StContext(num_external_tapes, extmem::DefaultStorageOptions()) {}

StContext::StContext(std::size_t num_external_tapes,
                     const extmem::StorageOptions& options)
    : backend_(options.backend), options_(options) {
  assert(num_external_tapes >= 1);
  tapes_.reserve(num_external_tapes);
  for (std::size_t i = 0; i < num_external_tapes; ++i) {
    Result<std::unique_ptr<extmem::TapeStorage>> storage =
        extmem::CreateStorage(options);
    if (!storage.ok()) {
      // Surface the failure but keep the machine runnable: a context is
      // not a fallible operation in the programming model. Experiments
      // that require the file backend assert on IoStatsTotal() instead
      // of trusting this silently.
      std::fprintf(stderr,
                   "rstlab: %s; tape %zu falls back to the mem backend\n",
                   storage.status().ToString().c_str(), i);
      backend_ = extmem::BackendKind::kMem;
      tapes_.emplace_back();
      continue;
    }
    tapes_.emplace_back(std::move(storage).value());
  }
}

tape::Tape& StContext::tape(std::size_t i) {
  assert(i < tapes_.size());
  return tapes_[i];
}

const tape::Tape& StContext::tape(std::size_t i) const {
  assert(i < tapes_.size());
  return tapes_[i];
}

void StContext::LoadInput(std::string content) {
  input_size_ = content.size();
  if (trace_ != nullptr) {
    trace_->OnEvent(obs::MakeRunEvent(obs::EventKind::kRunBegin,
                                      input_size_));
  }
  tapes_[0].Reset(std::move(content));
  for (std::size_t i = 1; i < tapes_.size(); ++i) tapes_[i].Reset("");
  arena_.Reset();
  scratch_reversals_ = 0;
  scratch_cells_ = 0;
  scratch_io_ = extmem::IoStats{};
}

void StContext::ChargeScratch(std::uint64_t reversals, std::size_t cells) {
  scratch_reversals_ += reversals;
  scratch_cells_ += cells;
}

void StContext::ChargeScratchIo(const extmem::IoStats& io) {
  scratch_io_ += io;
}

void StContext::AttachTrace(obs::TraceSink* sink) {
  trace_ = sink;
  if (trace_ != nullptr) {
    trace_->OnEvent(obs::MakeRunEvent(obs::EventKind::kRunBegin,
                                      input_size_));
  }
  for (std::size_t i = 0; i < tapes_.size(); ++i) {
    tapes_[i].AttachTrace(sink, static_cast<std::int32_t>(i));
  }
  arena_.AttachTrace(sink);
}

void StContext::FlushTrace() {
  for (auto& t : tapes_) t.FlushTrace();
  if (trace_ != nullptr) {
    trace_->OnEvent(obs::MakeRunEvent(obs::EventKind::kRunEnd,
                                      input_size_));
  }
}

extmem::IoStats StContext::IoStatsTotal() const {
  extmem::IoStats total;
  for (const auto& t : tapes_) total += t.io_stats();
  total += scratch_io_;
  return total;
}

tape::ResourceReport StContext::Report() const {
  std::vector<const tape::Tape*> ptrs;
  ptrs.reserve(tapes_.size());
  for (const auto& t : tapes_) ptrs.push_back(&t);
  tape::ResourceReport report =
      tape::MeasureTapes(ptrs, arena_.high_water_bits());
  report.scan_bound += scratch_reversals_;
  report.external_space += scratch_cells_;
  return report;
}

}  // namespace rstlab::stmodel
