#include "stmodel/st_context.h"

#include <cassert>

namespace rstlab::stmodel {

StContext::StContext(std::size_t num_external_tapes)
    : tapes_(num_external_tapes) {
  assert(num_external_tapes >= 1);
}

tape::Tape& StContext::tape(std::size_t i) {
  assert(i < tapes_.size());
  return tapes_[i];
}

const tape::Tape& StContext::tape(std::size_t i) const {
  assert(i < tapes_.size());
  return tapes_[i];
}

void StContext::LoadInput(std::string content) {
  input_size_ = content.size();
  if (trace_ != nullptr) {
    trace_->OnEvent(obs::MakeRunEvent(obs::EventKind::kRunBegin,
                                      input_size_));
  }
  tapes_[0].Reset(std::move(content));
  for (std::size_t i = 1; i < tapes_.size(); ++i) tapes_[i].Reset("");
  arena_.Reset();
}

void StContext::AttachTrace(obs::TraceSink* sink) {
  trace_ = sink;
  if (trace_ != nullptr) {
    trace_->OnEvent(obs::MakeRunEvent(obs::EventKind::kRunBegin,
                                      input_size_));
  }
  for (std::size_t i = 0; i < tapes_.size(); ++i) {
    tapes_[i].AttachTrace(sink, static_cast<std::int32_t>(i));
  }
  arena_.AttachTrace(sink);
}

void StContext::FlushTrace() {
  for (auto& t : tapes_) t.FlushTrace();
  if (trace_ != nullptr) {
    trace_->OnEvent(obs::MakeRunEvent(obs::EventKind::kRunEnd,
                                      input_size_));
  }
}

tape::ResourceReport StContext::Report() const {
  std::vector<const tape::Tape*> ptrs;
  ptrs.reserve(tapes_.size());
  for (const auto& t : tapes_) ptrs.push_back(&t);
  return tape::MeasureTapes(ptrs, arena_.high_water_bits());
}

}  // namespace rstlab::stmodel
