#ifndef RSTLAB_STMODEL_TAPE_IO_H_
#define RSTLAB_STMODEL_TAPE_IO_H_

#include <cstddef>
#include <optional>
#include <string>

#include "stmodel/internal_arena.h"
#include "tape/tape.h"

namespace rstlab::stmodel {

/// The field separator of the paper's input encoding
/// v1#v2#...#vm#v'1#...#v'm#.
inline constexpr char kFieldSeparator = '#';

/// Writes `text` onto `t` moving right, leaving the head one past the last
/// written cell.
void WriteString(tape::Tape& t, const std::string& text);

/// Moves the head back to cell 0 (costs at most one direction change).
void Rewind(tape::Tape& t);

/// True iff the head is on a blank cell (end of used content when
/// scanning right).
bool AtEnd(const tape::Tape& t);

/// Skips the current '#'-terminated field, leaving the head on the cell
/// after the separator. Returns the number of payload characters skipped.
/// Requires the head to be at a field start.
std::size_t SkipField(tape::Tape& t);

/// Reads the current '#'-terminated field into a host string, leaving the
/// head after the separator. The caller is responsible for metering the
/// internal memory this buffering uses (8 bits per character).
std::string ReadField(tape::Tape& t);

/// Copies the current '#'-terminated field (separator included) from `src`
/// to `dst`, both heads moving right only.
void CopyField(tape::Tape& src, tape::Tape& dst);

/// Three-way lexicographic comparison of the current fields of `a` and
/// `b`, consuming both fields (heads end after the separators). A proper
/// prefix compares less. Only forward head movement is used, so the
/// comparison itself incurs no reversals.
int CompareFields(tape::Tape& a, tape::Tape& b);

/// Counts the '#'-terminated fields from the current head position to the
/// end of tape content, leaving the head at the first blank. One forward
/// scan.
std::size_t CountFields(tape::Tape& t);

/// Forward cursor over `count` '#'-terminated fields starting at the
/// tape's current head position, buffering one field at a time in
/// internal memory (metered against `arena` at 8 bits per character of
/// the longest field seen). The shared walk underneath every
/// sorted-merge decision procedure: sequence comparison, duplicate
/// collapsing, merge anti-joins.
class SortedFieldCursor {
 public:
  /// Positions the cursor on the first field (if any).
  SortedFieldCursor(tape::Tape& t, std::size_t count,
                    InternalArena& arena);

  /// The buffered field, or nullopt when exhausted.
  const std::optional<std::string>& value() const { return value_; }
  bool exhausted() const { return !value_.has_value(); }

  /// Moves to the next field (or exhaustion).
  void Advance();

  /// Moves to the next field whose content differs from the current
  /// one — the duplicate-collapsing walk over sorted fields.
  void AdvanceDistinct();

 private:
  void Load();

  tape::Tape& tape_;
  std::size_t remaining_;
  InternalArena::Allocation buffer_bits_;
  std::size_t longest_ = 0;
  std::optional<std::string> value_;
};

}  // namespace rstlab::stmodel

#endif  // RSTLAB_STMODEL_TAPE_IO_H_
