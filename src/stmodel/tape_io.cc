#include "stmodel/tape_io.h"

#include <algorithm>

namespace rstlab::stmodel {

void WriteString(tape::Tape& t, const std::string& text) {
  for (char c : text) {
    t.Write(c);
    t.MoveRight();
  }
}

void Rewind(tape::Tape& t) { t.Seek(0); }

bool AtEnd(const tape::Tape& t) { return t.Read() == tape::kBlank; }

std::size_t SkipField(tape::Tape& t) {
  std::size_t skipped = 0;
  while (t.Read() != kFieldSeparator && t.Read() != tape::kBlank) {
    ++skipped;
    t.MoveRight();
  }
  if (t.Read() == kFieldSeparator) t.MoveRight();
  return skipped;
}

std::string ReadField(tape::Tape& t) {
  std::string out;
  while (t.Read() != kFieldSeparator && t.Read() != tape::kBlank) {
    out.push_back(t.Read());
    t.MoveRight();
  }
  if (t.Read() == kFieldSeparator) t.MoveRight();
  return out;
}

void CopyField(tape::Tape& src, tape::Tape& dst) {
  while (src.Read() != kFieldSeparator && src.Read() != tape::kBlank) {
    dst.Write(src.Read());
    dst.MoveRight();
    src.MoveRight();
  }
  if (src.Read() == kFieldSeparator) {
    dst.Write(kFieldSeparator);
    dst.MoveRight();
    src.MoveRight();
  }
}

int CompareFields(tape::Tape& a, tape::Tape& b) {
  int verdict = 0;
  bool decided = false;
  while (true) {
    const char ca = a.Read();
    const char cb = b.Read();
    const bool ea = (ca == kFieldSeparator || ca == tape::kBlank);
    const bool eb = (cb == kFieldSeparator || cb == tape::kBlank);
    if (ea && eb) break;
    if (!decided) {
      if (ea != eb) {
        verdict = ea ? -1 : 1;  // proper prefix compares less
        decided = true;
      } else if (ca != cb) {
        verdict = ca < cb ? -1 : 1;
        decided = true;
      }
    }
    if (!ea) a.MoveRight();
    if (!eb) b.MoveRight();
  }
  if (a.Read() == kFieldSeparator) a.MoveRight();
  if (b.Read() == kFieldSeparator) b.MoveRight();
  return verdict;
}

std::size_t CountFields(tape::Tape& t) {
  std::size_t fields = 0;
  while (!AtEnd(t)) {
    SkipField(t);
    ++fields;
  }
  return fields;
}

SortedFieldCursor::SortedFieldCursor(tape::Tape& t, std::size_t count,
                                     InternalArena& arena)
    : tape_(t), remaining_(count), buffer_bits_(arena.Allocate(0)) {
  Load();
}

void SortedFieldCursor::Load() {
  if (remaining_ == 0) {
    value_.reset();
    return;
  }
  --remaining_;
  value_ = ReadField(tape_);
  longest_ = std::max(longest_, value_->size());
  buffer_bits_.Resize(8 * longest_);
}

void SortedFieldCursor::Advance() { Load(); }

void SortedFieldCursor::AdvanceDistinct() {
  if (!value_.has_value()) return;
  const std::string previous = *value_;
  do {
    Load();
  } while (value_.has_value() && *value_ == previous);
}

}  // namespace rstlab::stmodel
