#include "stmodel/internal_arena.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace rstlab::stmodel {

InternalArena::Allocation::Allocation(Allocation&& other) noexcept
    : arena_(std::exchange(other.arena_, nullptr)),
      bits_(std::exchange(other.bits_, 0)) {}

InternalArena::Allocation& InternalArena::Allocation::operator=(
    Allocation&& other) noexcept {
  if (this != &other) {
    Release();
    arena_ = std::exchange(other.arena_, nullptr);
    bits_ = std::exchange(other.bits_, 0);
  }
  return *this;
}

InternalArena::Allocation::~Allocation() { Release(); }

void InternalArena::Allocation::Resize(std::size_t bits) {
  if (arena_ == nullptr) return;
  if (bits > bits_) {
    arena_->Add(bits - bits_);
  } else {
    arena_->Remove(bits_ - bits);
  }
  bits_ = bits;
}

void InternalArena::Allocation::Release() {
  if (arena_ != nullptr) {
    arena_->Remove(bits_);
    arena_ = nullptr;
    bits_ = 0;
  }
}

InternalArena::Allocation InternalArena::Allocate(std::size_t bits) {
  Add(bits);
  return Allocation(this, bits);
}

void InternalArena::Add(std::size_t bits) {
  current_bits_ += bits;
  if (current_bits_ > high_water_bits_) {
    high_water_bits_ = current_bits_;
    if (trace_ != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kArenaHighWater;
      event.value = high_water_bits_;
      trace_->OnEvent(event);
    }
  }
}

void InternalArena::Remove(std::size_t bits) {
  assert(bits <= current_bits_);
  current_bits_ -= bits;
}

void InternalArena::Reset() {
  current_bits_ = 0;
  high_water_bits_ = 0;
}

std::size_t BitsFor(std::uint64_t value) {
  return value == 0 ? 1 : static_cast<std::size_t>(std::bit_width(value));
}

MeteredUint64::MeteredUint64(InternalArena& arena, std::size_t width_bits,
                             std::uint64_t initial_value)
    : allocation_(arena.Allocate(width_bits)), width_bits_(width_bits) {
  set(initial_value);
}

void MeteredUint64::set(std::uint64_t v) {
  assert(width_bits_ >= 64 || v < (std::uint64_t{1} << width_bits_));
  value_ = v;
}

}  // namespace rstlab::stmodel
