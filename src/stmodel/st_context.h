#ifndef RSTLAB_STMODEL_ST_CONTEXT_H_
#define RSTLAB_STMODEL_ST_CONTEXT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "extmem/io_stats.h"
#include "extmem/storage.h"
#include "obs/trace.h"
#include "stmodel/internal_arena.h"
#include "tape/resource_meter.h"
#include "tape/tape.h"

namespace rstlab::stmodel {

/// Execution context for an algorithm in the ST model (Section 2):
/// `t` external tapes (tape 0 is the input tape) plus metered internal
/// memory. Algorithms read and write only through the tapes and declare
/// internal state via `arena()`; afterwards `Report()` yields the run's
/// measured (r, s, t) costs for compliance checking against a class such
/// as ST(O(log N), O(1), 2).
///
/// Storage backend: every tape of the context is created from one
/// `extmem::StorageOptions` — in-RAM cells, or file-backed block
/// storage so runs are not bounded by machine memory. The plain
/// constructor uses `extmem::DefaultStorageOptions()`, i.e. the
/// `RSTLAB_TAPE_BACKEND` / `RSTLAB_CACHE_BLOCKS` environment, which is
/// how CI pushes the whole suite through the file backend. Measured
/// (r, s, t) is backend-independent; only `IoStatsTotal()` and wall
/// time differ.
class StContext {
 public:
  /// A context with `num_external_tapes` empty tapes on the
  /// process-default storage backend.
  explicit StContext(std::size_t num_external_tapes);

  /// A context whose tapes use the given storage backend. If a backing
  /// file cannot be created the context falls back to the in-memory
  /// backend with a warning on stderr (the library does not throw);
  /// `backend()` reports what was actually built.
  StContext(std::size_t num_external_tapes,
            const extmem::StorageOptions& options);

  StContext(const StContext&) = delete;
  StContext& operator=(const StContext&) = delete;

  /// Number of external tapes t.
  std::size_t num_tapes() const { return tapes_.size(); }

  /// External tape `i` (0 = input tape).
  tape::Tape& tape(std::size_t i);
  const tape::Tape& tape(std::size_t i) const;

  /// The internal-memory accounting arena.
  InternalArena& arena() { return arena_; }

  /// Installs `content` on the input tape (tape 0) and records the input
  /// size N = content.size(). Resets all accounting.
  void LoadInput(std::string content);

  /// Input size N of the current run.
  std::size_t input_size() const { return input_size_; }

  /// The run's measured costs so far.
  tape::ResourceReport Report() const;

  /// The backend the tapes actually run on.
  extmem::BackendKind backend() const { return backend_; }

  /// The options this context's tapes were created from — the recipe an
  /// algorithm uses to create matching scratch storage (the parallel
  /// sort's spill lanes live on the same backend as the tapes).
  const extmem::StorageOptions& storage_options() const { return options_; }

  /// Bills scratch-device usage that does not live on the context's own
  /// tapes: `reversals` extra head-direction changes and `cells` extra
  /// external cells, folded into `Report()` (scan_bound and
  /// external_space respectively). The parallel sort charges the
  /// canonical temp-tape machine's bill here — a deterministic formula,
  /// so the measured (r, s) stays backend- and thread-count-independent.
  /// Reset by `LoadInput`.
  void ChargeScratch(std::uint64_t reversals, std::size_t cells);

  /// Folds scratch-device block I/O into `IoStatsTotal()` (observability
  /// only; not part of the model's (r, s, t)).
  void ChargeScratchIo(const extmem::IoStats& io);

  /// Scratch reversals charged so far (diagnostics).
  std::uint64_t scratch_reversals() const { return scratch_reversals_; }

  /// Sum of the tapes' block-level I/O counters (all zero on the
  /// in-memory backend).
  extmem::IoStats IoStatsTotal() const;

  /// Installs `sink` (nullptr detaches) on every tape (tape i's events
  /// carry tape_id = i) and on the arena, and emits a kRunBegin event.
  /// Subsequent LoadInput calls emit a fresh kRunBegin with the new N.
  void AttachTrace(obs::TraceSink* sink);

  /// Closes every tape's open scan segment (emitting its kScanEnd) and
  /// emits kRunEnd. Call at the end of a traced run, before rendering
  /// or replaying the event stream.
  void FlushTrace();

 private:
  std::vector<tape::Tape> tapes_;
  InternalArena arena_;
  std::size_t input_size_ = 0;
  extmem::BackendKind backend_ = extmem::BackendKind::kMem;
  extmem::StorageOptions options_;
  std::uint64_t scratch_reversals_ = 0;
  std::size_t scratch_cells_ = 0;
  extmem::IoStats scratch_io_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace rstlab::stmodel

#endif  // RSTLAB_STMODEL_ST_CONTEXT_H_
