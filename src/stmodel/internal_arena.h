#ifndef RSTLAB_STMODEL_INTERNAL_ARENA_H_
#define RSTLAB_STMODEL_INTERNAL_ARENA_H_

#include <cstddef>
#include <cstdint>

#include "obs/trace.h"

namespace rstlab::stmodel {

/// Metered internal memory of an ST-machine (the tapes t+1..t+u of
/// Definition 1, whose total space is bounded by s(N)).
///
/// Algorithms written against the ST model declare every piece of internal
/// state they keep by allocating it here, in bits. The arena tracks the
/// current total and the high-water mark; the high-water mark is the
/// run's measured s-value. Allocations are RAII: releasing an Allocation
/// returns its bits.
///
/// The arena does not hand out storage — algorithms keep their state in
/// ordinary C++ variables — it is purely an accounting device, which keeps
/// the model costs separated from the host representation.
class InternalArena {
 public:
  InternalArena() = default;
  InternalArena(const InternalArena&) = delete;
  InternalArena& operator=(const InternalArena&) = delete;

  /// An RAII lease of `bits` bits of internal memory.
  class Allocation {
   public:
    Allocation() = default;
    Allocation(Allocation&& other) noexcept;
    Allocation& operator=(Allocation&& other) noexcept;
    Allocation(const Allocation&) = delete;
    Allocation& operator=(const Allocation&) = delete;
    ~Allocation();

    /// Number of bits this allocation holds.
    std::size_t bits() const { return bits_; }

    /// Grows (or shrinks) the allocation to `bits` bits, e.g. when a
    /// buffer's worst-case width becomes known mid-run.
    void Resize(std::size_t bits);

    /// Returns the bits to the arena early.
    void Release();

   private:
    friend class InternalArena;
    Allocation(InternalArena* arena, std::size_t bits)
        : arena_(arena), bits_(bits) {}

    InternalArena* arena_ = nullptr;
    std::size_t bits_ = 0;
  };

  /// Leases `bits` bits of internal memory.
  Allocation Allocate(std::size_t bits);

  /// Bits currently leased.
  std::size_t current_bits() const { return current_bits_; }

  /// Maximum of current_bits() over the run so far: the measured s-value.
  std::size_t high_water_bits() const { return high_water_bits_; }

  /// Resets the accounting (start of a fresh run).
  void Reset();

  /// Installs `sink` (nullptr detaches). The traced arena emits one
  /// kArenaHighWater event per high-water transition — each time
  /// current_bits() exceeds the previous maximum.
  void AttachTrace(obs::TraceSink* sink) { trace_ = sink; }

 private:
  void Add(std::size_t bits);
  void Remove(std::size_t bits);

  std::size_t current_bits_ = 0;
  std::size_t high_water_bits_ = 0;
  obs::TraceSink* trace_ = nullptr;
};

/// Number of bits needed to store a value in {0, ..., value}; at least 1.
std::size_t BitsFor(std::uint64_t value);

/// A uint64 register whose declared width is leased from an arena.
///
/// Use for the O(log N)-bit counters and residues of the paper's
/// algorithms: the register's width must be declared up front as the
/// worst case the algorithm is entitled to (e.g. BitsFor(N)).
class MeteredUint64 {
 public:
  /// Leases `width_bits` from `arena` for the lifetime of the register.
  MeteredUint64(InternalArena& arena, std::size_t width_bits,
                std::uint64_t initial_value = 0);

  /// Current value.
  std::uint64_t get() const { return value_; }
  /// Assigns `v`; asserts that it fits the declared width.
  void set(std::uint64_t v);

  MeteredUint64& operator=(std::uint64_t v) {
    set(v);
    return *this;
  }
  operator std::uint64_t() const { return value_; }  // NOLINT

 private:
  InternalArena::Allocation allocation_;
  std::size_t width_bits_;
  std::uint64_t value_ = 0;
};

}  // namespace rstlab::stmodel

#endif  // RSTLAB_STMODEL_INTERNAL_ARENA_H_
