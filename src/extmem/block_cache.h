#ifndef RSTLAB_EXTMEM_BLOCK_CACHE_H_
#define RSTLAB_EXTMEM_BLOCK_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "extmem/block_file.h"
#include "extmem/io_stats.h"
#include "util/status.h"

namespace rstlab::extmem {

/// Bounded write-back cache of tape-file blocks: the internal-memory
/// buffer pool between a `FileStorage` and its `BlockFile`.
///
/// Replacement is LRU with one pinned block — the block most recently
/// acquired (the one under the tape head) is never evicted, so a
/// memoized payload pointer in the storage layer stays valid between
/// acquires. Dirty blocks are written back (with a fresh checksum) on
/// eviction and on `FlushDirty`.
///
/// Readahead: tape heads move one cell at a time, so block access is
/// sequential by construction; the cache prefetches up to
/// `readahead_blocks` on-disk blocks ahead of each acquired block in
/// the hinted scan direction (`SetDirectionHint`, fed from the tape's
/// head direction). Prefetched blocks count into
/// `IoStats::readahead_blocks`, and their first subsequent access into
/// `IoStats::readahead_hits` — the ratio is the readahead hit rate the
/// E18 experiment reports (≈ 1.0 on pure scans).
///
/// The device is validated at Open/Create time; an I/O failure during
/// cache traffic afterwards is an OS-level fault and aborts with the
/// failing status rather than serving unchecked data.
class BlockCache {
 public:
  /// A cache over `file` holding at most `capacity_blocks` resident
  /// blocks (clamped to ≥ 2: the pinned block plus one victim slot).
  BlockCache(BlockFile& file, std::size_t capacity_blocks,
             std::size_t readahead_blocks);

  /// Releases every resident block (dropping dirty state; callers flush
  /// first) and returns them to the process residency gauge.
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the resident payload of block `index` (block_size bytes),
  /// loading and prefetching as needed. The returned block is pinned
  /// until the next Acquire. With `for_write`, the block is marked
  /// dirty and written back before being dropped.
  char* Acquire(std::size_t index, bool for_write);

  /// Sets the prefetch direction: +1 when the head scans right, -1
  /// when it scans left.
  void SetDirectionHint(int direction) {
    direction_ = direction < 0 ? -1 : 1;
  }

  /// Writes every dirty resident block back to the device.
  Status FlushDirty();

  /// Discards every resident block, dirty ones included (used when the
  /// whole tape content is replaced).
  void Drop();

  const IoStats& stats() const { return stats_; }
  std::size_t resident_blocks() const { return entries_.size(); }
  std::size_t capacity_blocks() const { return capacity_; }

 private:
  struct Entry {
    std::size_t index = 0;
    std::vector<char> data;
    bool dirty = false;
    bool from_readahead = false;  // loaded by prefetch...
    bool touched = false;         // ...and not yet accessed
  };
  using LruList = std::list<Entry>;  // front = most recently used

  /// Loads block `index` into the cache (evicting as needed) and
  /// returns its entry. `from_readahead` tags speculative loads.
  LruList::iterator Load(std::size_t index, bool from_readahead);
  void EvictIfFull();
  void Prefetch(std::size_t from_index);

  BlockFile& file_;
  std::size_t capacity_;
  std::size_t readahead_;
  int direction_ = 1;
  std::size_t pinned_ = static_cast<std::size_t>(-1);
  LruList entries_;
  std::unordered_map<std::size_t, LruList::iterator> by_index_;
  IoStats stats_;
};

}  // namespace rstlab::extmem

#endif  // RSTLAB_EXTMEM_BLOCK_CACHE_H_
