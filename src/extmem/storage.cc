#include "extmem/storage.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <unistd.h>

#include "extmem/file_storage.h"

namespace rstlab::extmem {

void TapeStorage::WriteRange(std::size_t pos, std::string_view data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    WriteCell(pos + i, data[i]);
  }
}

void MemStorage::Grow(std::size_t cells) {
  length_ = cells;
  if (cells > cells_.size()) {
    // Geometric buffer growth keeps the amortized append cost at O(1)
    // and the blank-fill off the per-move path; the logical length
    // stays exact for space accounting.
    cells_.resize(std::max(cells, cells_.size() + cells_.size() / 2),
                  kBlankCell);
  }
}

void MemStorage::Assign(std::string content) {
  cells_ = std::move(content);
  length_ = cells_.size();
}

std::string MemStorage::ReadRange(std::size_t pos, std::size_t count) {
  if (pos >= length_) return std::string();
  return cells_.substr(pos, std::min(count, length_ - pos));
}

void MemStorage::WriteRange(std::size_t pos, std::string_view data) {
  if (data.empty()) return;
  EnsureLength(pos + data.size());
  std::memcpy(cells_.data() + pos, data.data(), data.size());
}

const char* BackendName(BackendKind kind) {
  return kind == BackendKind::kFile ? "file" : "mem";
}

namespace {

std::string DefaultTapeDir() {
  std::error_code ec;
  std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  if (ec) tmp = ".";
  return (tmp / "rstlab-tapes").string();
}

/// Uniquely named backing file under `dir` (per process and per tape).
std::string NextTapePath(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  return dir + "/tape-" + std::to_string(static_cast<long>(::getpid())) +
         "-" + std::to_string(counter.fetch_add(1)) + ".rstape";
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || parsed == 0) {
    std::fprintf(stderr, "rstlab extmem: ignoring %s=%s (want a positive integer)\n",
                 name, value);
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

Result<std::unique_ptr<TapeStorage>> CreateStorage(
    const StorageOptions& options) {
  if (options.backend == BackendKind::kMem) {
    return std::unique_ptr<TapeStorage>(std::make_unique<MemStorage>());
  }
  const std::string dir = options.dir.empty() ? DefaultTapeDir() : options.dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::NotFound("extmem: cannot create tape directory " + dir +
                            ": " + ec.message());
  }
  FileStorage::FileOptions file_options;
  file_options.block_size = options.block_size;
  file_options.cache_blocks = options.cache_blocks;
  file_options.readahead_blocks = options.readahead_blocks;
  file_options.delete_on_close = true;
  file_options.metrics = options.metrics;
  Result<std::unique_ptr<FileStorage>> storage =
      FileStorage::Create(NextTapePath(dir), file_options);
  if (!storage.ok()) return storage.status();
  return std::unique_ptr<TapeStorage>(std::move(storage).value());
}

namespace {

StorageOptions* ProcessOptionsSlot() {
  static StorageOptions slot;
  return &slot;
}

bool g_process_options_set = false;

}  // namespace

void SetProcessStorageOptions(const StorageOptions& options) {
  *ProcessOptionsSlot() = options;
  g_process_options_set = true;
}

StorageOptions DefaultStorageOptions() {
  if (g_process_options_set) return *ProcessOptionsSlot();
  StorageOptions options;
  if (const char* backend = std::getenv("RSTLAB_TAPE_BACKEND")) {
    if (std::strcmp(backend, "file") == 0) {
      options.backend = BackendKind::kFile;
    } else if (std::strcmp(backend, "mem") != 0 && *backend != '\0') {
      std::fprintf(stderr,
                   "rstlab extmem: ignoring RSTLAB_TAPE_BACKEND=%s "
                   "(want mem or file)\n",
                   backend);
    }
  }
  options.block_size = EnvSize("RSTLAB_BLOCK_SIZE", options.block_size);
  options.cache_blocks = EnvSize("RSTLAB_CACHE_BLOCKS", options.cache_blocks);
  options.readahead_blocks =
      EnvSize("RSTLAB_READAHEAD_BLOCKS", options.readahead_blocks);
  if (const char* dir = std::getenv("RSTLAB_TAPE_DIR")) {
    if (*dir != '\0') options.dir = dir;
  }
  return options;
}

StorageOptions ParseBackendFlags(int* argc, char** argv) {
  StorageOptions options = DefaultStorageOptions();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tape-backend=", 15) == 0) {
      const char* value = arg + 15;
      if (std::strcmp(value, "file") == 0) {
        options.backend = BackendKind::kFile;
      } else if (std::strcmp(value, "mem") == 0) {
        options.backend = BackendKind::kMem;
      } else {
        std::fprintf(stderr,
                     "rstlab extmem: ignoring --tape-backend=%s "
                     "(want mem or file)\n",
                     value);
      }
      continue;
    }
    if (std::strncmp(arg, "--cache-blocks=", 15) == 0) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(arg + 15, &end, 10);
      if (end == arg + 15 || parsed == 0) {
        std::fprintf(stderr, "rstlab extmem: ignoring %s\n", arg);
      } else {
        options.cache_blocks = static_cast<std::size_t>(parsed);
      }
      continue;
    }
    if (std::strncmp(arg, "--readahead-blocks=", 19) == 0) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(arg + 19, &end, 10);
      if (end == arg + 19 || parsed == 0) {
        std::fprintf(stderr, "rstlab extmem: ignoring %s\n", arg);
      } else {
        options.readahead_blocks = static_cast<std::size_t>(parsed);
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < *argc; ++i) argv[i] = nullptr;
  *argc = out;
  return options;
}

}  // namespace rstlab::extmem
