#include "extmem/block_file.h"

#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

#include "extmem/storage.h"

namespace rstlab::extmem {

namespace {

void PutU32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t GetU32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

std::string PathError(const std::string& path, const char* what) {
  std::string message = "extmem: ";
  message += what;
  message += " (";
  message += path;
  message += "): ";
  message += std::strerror(errno);
  return message;
}

}  // namespace

std::uint64_t Fnv1a64(const char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void EncodeTapeFileHeader(const TapeFileHeader& header, char* out) {
  std::memset(out, 0, kTapeFileHeaderSize);
  std::memcpy(out, kTapeFileMagic, sizeof(kTapeFileMagic));
  PutU32(out + 8, kTapeFileVersion);
  PutU32(out + 12, header.block_size);
  PutU64(out + 16, header.length);
  PutU64(out + 24, header.num_blocks);
  PutU64(out + 56, Fnv1a64(out, 56));
}

Result<TapeFileHeader> DecodeTapeFileHeader(const char* data) {
  if (std::memcmp(data, kTapeFileMagic, sizeof(kTapeFileMagic)) != 0) {
    return Status::InvalidArgument("extmem: bad magic (not a tape file)");
  }
  if (GetU32(data + 8) != kTapeFileVersion) {
    return Status::InvalidArgument("extmem: unsupported tape file version");
  }
  if (GetU64(data + 56) != Fnv1a64(data, 56)) {
    return Status::Internal("extmem: header checksum mismatch");
  }
  TapeFileHeader header;
  header.block_size = GetU32(data + 12);
  header.length = GetU64(data + 16);
  header.num_blocks = GetU64(data + 24);
  if (header.block_size == 0) {
    return Status::Internal("extmem: corrupt header (zero block size)");
  }
  if (header.length > header.num_blocks *
                          static_cast<std::uint64_t>(header.block_size)) {
    return Status::Internal(
        "extmem: corrupt header (length exceeds block extent)");
  }
  return header;
}

BlockFile::~BlockFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<BlockFile>> BlockFile::Create(std::string path,
                                                     std::size_t block_size) {
  if (block_size == 0 || block_size > (1u << 30)) {
    return Status::InvalidArgument("extmem: bad block size");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::NotFound(PathError(path, "cannot create tape file"));
  }
  auto result = std::unique_ptr<BlockFile>(
      new BlockFile(std::move(path), file, block_size, 0, 0));
  RSTLAB_RETURN_IF_ERROR(result->WriteHeader(0));
  return result;
}

Result<std::unique_ptr<BlockFile>> BlockFile::Open(std::string path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return Status::NotFound(PathError(path, "cannot open tape file"));
  }
  auto owner = std::unique_ptr<BlockFile>(
      new BlockFile(std::move(path), file, 1, 0, 0));

  char raw[kTapeFileHeaderSize];
  if (std::fread(raw, 1, kTapeFileHeaderSize, file) != kTapeFileHeaderSize) {
    return Status::Internal("extmem: truncated file (short header)");
  }
  Result<TapeFileHeader> header = DecodeTapeFileHeader(raw);
  if (!header.ok()) return header.status();
  const std::size_t block_size = header.value().block_size;
  const std::size_t num_blocks =
      static_cast<std::size_t>(header.value().num_blocks);
  const std::size_t record = block_size + 8;

  // The file must hold exactly the records the header announces: a
  // write killed mid-flush leaves a short tail, which must surface as
  // corruption instead of being served as data.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::Internal(PathError(owner->path_, "seek failed"));
  }
  const long end = std::ftell(file);
  const long expected = static_cast<long>(kTapeFileHeaderSize) +
                        static_cast<long>(num_blocks * record);
  if (end < expected) {
    return Status::Internal("extmem: truncated file (block records cut short)");
  }
  if (end > expected) {
    return Status::Internal("extmem: trailing bytes after last block record");
  }

  owner->block_size_ = block_size;
  owner->num_blocks_ = num_blocks;
  owner->header_length_ = header.value().length;

  // Validate every record checksum up front, so post-Open reads of a
  // validated file cannot silently return garbage.
  std::vector<char> payload(block_size);
  for (std::size_t i = 0; i < num_blocks; ++i) {
    RSTLAB_RETURN_IF_ERROR(owner->ReadBlock(i, payload.data()));
  }
  return owner;
}

long BlockFile::RecordOffset(std::size_t index) const {
  return static_cast<long>(kTapeFileHeaderSize) +
         static_cast<long>(index * (block_size_ + 8));
}

Status BlockFile::ReadBlock(std::size_t index, char* out) {
  if (index >= num_blocks_) {
    std::memset(out, kBlankCell, block_size_);
    return Status::OK();
  }
  if (std::fseek(file_, RecordOffset(index), SEEK_SET) != 0) {
    return Status::Internal(PathError(path_, "seek failed"));
  }
  char trailer[8];
  if (std::fread(out, 1, block_size_, file_) != block_size_ ||
      std::fread(trailer, 1, 8, file_) != 8) {
    return Status::Internal("extmem: truncated file (block records cut short)");
  }
  if (GetU64(trailer) != Fnv1a64(out, block_size_)) {
    return Status::Internal("extmem: checksum mismatch (block " +
                            std::to_string(index) + ")");
  }
  return Status::OK();
}

Status BlockFile::WriteBlock(std::size_t index, const char* data) {
  // Fill any gap with blank records so the extent check of Open stays
  // exact (never-written *trailing* blocks alone stay absent).
  if (index > num_blocks_) {
    std::vector<char> blanks(block_size_, kBlankCell);
    for (std::size_t i = num_blocks_; i < index; ++i) {
      RSTLAB_RETURN_IF_ERROR(WriteBlock(i, blanks.data()));
    }
  }
  if (std::fseek(file_, RecordOffset(index), SEEK_SET) != 0) {
    return Status::Internal(PathError(path_, "seek failed"));
  }
  char trailer[8];
  PutU64(trailer, Fnv1a64(data, block_size_));
  if (std::fwrite(data, 1, block_size_, file_) != block_size_ ||
      std::fwrite(trailer, 1, 8, file_) != 8) {
    return Status::Internal(PathError(path_, "write failed"));
  }
  if (index >= num_blocks_) num_blocks_ = index + 1;
  return Status::OK();
}

Status BlockFile::WriteHeader(std::uint64_t length) {
  TapeFileHeader header;
  header.block_size = static_cast<std::uint32_t>(block_size_);
  header.length = length;
  header.num_blocks = num_blocks_;
  char raw[kTapeFileHeaderSize];
  EncodeTapeFileHeader(header, raw);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::Internal(PathError(path_, "seek failed"));
  }
  if (std::fwrite(raw, 1, kTapeFileHeaderSize, file_) !=
      kTapeFileHeaderSize) {
    return Status::Internal(PathError(path_, "header write failed"));
  }
  header_length_ = length;
  return Status::OK();
}

Status BlockFile::Sync(std::uint64_t length) {
  RSTLAB_RETURN_IF_ERROR(WriteHeader(length));
  if (std::fflush(file_) != 0) {
    return Status::Internal(PathError(path_, "flush failed"));
  }
  return Status::OK();
}

Status BlockFile::Truncate() {
  std::FILE* reopened = std::freopen(path_.c_str(), "wb+", file_);
  if (reopened == nullptr) {
    file_ = nullptr;
    return Status::Internal(PathError(path_, "truncate failed"));
  }
  file_ = reopened;
  num_blocks_ = 0;
  return WriteHeader(0);
}

}  // namespace rstlab::extmem
