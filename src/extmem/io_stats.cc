#include "extmem/io_stats.h"

#include <cstdio>

namespace rstlab::extmem {

void IoStats::PublishTo(obs::MetricsRegistry& registry) const {
  registry.Add("extmem.block_reads", block_reads);
  registry.Add("extmem.block_writes", block_writes);
  registry.Add("extmem.cache_hits", cache_hits);
  registry.Add("extmem.cache_misses", cache_misses);
  registry.Add("extmem.readahead_blocks", readahead_blocks);
  registry.Add("extmem.readahead_hits", readahead_hits);
  registry.Add("extmem.evictions", evictions);
  registry.Add("extmem.prefetch_issued", prefetch_issued);
  registry.Add("extmem.prefetch_hits", prefetch_hits);
}

std::string IoStats::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "reads=%llu writes=%llu hit%%=%.1f ra%%=%.1f evict=%llu",
                static_cast<unsigned long long>(block_reads),
                static_cast<unsigned long long>(block_writes),
                100.0 * HitRate(), 100.0 * ReadaheadHitRate(),
                static_cast<unsigned long long>(evictions));
  return buffer;
}

}  // namespace rstlab::extmem
