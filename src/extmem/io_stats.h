#ifndef RSTLAB_EXTMEM_IO_STATS_H_
#define RSTLAB_EXTMEM_IO_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace rstlab::extmem {

/// Block-level I/O counters of one storage backend (all zero for the
/// in-memory backend). These are the observable cost of running
/// out-of-core: the paper's model charges for head reversals, the
/// machine underneath charges for block transfers — both are reported
/// side by side in the E18 table and the `--metrics` output.
struct IoStats {
  /// Physical block loads from the backing file (demand + readahead).
  std::uint64_t block_reads = 0;
  /// Physical block write-backs (eviction of dirty blocks and Flush).
  std::uint64_t block_writes = 0;
  /// Block lookups served from the cache.
  std::uint64_t cache_hits = 0;
  /// Block lookups that required a load.
  std::uint64_t cache_misses = 0;
  /// Blocks loaded speculatively by the sequential readahead.
  std::uint64_t readahead_blocks = 0;
  /// Prefetched blocks that were subsequently accessed (first touch).
  std::uint64_t readahead_hits = 0;
  /// Cache entries evicted to make room.
  std::uint64_t evictions = 0;
  /// Double-buffered range prefetches issued above the block layer (the
  /// sort's run readers fill their standby buffer while the active one
  /// drains; one count per standby fill).
  std::uint64_t prefetch_issued = 0;
  /// Standby buffers that were ready when the active buffer drained —
  /// reads the merge never stalled on.
  std::uint64_t prefetch_hits = 0;

  IoStats& operator+=(const IoStats& other) {
    block_reads += other.block_reads;
    block_writes += other.block_writes;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    readahead_blocks += other.readahead_blocks;
    readahead_hits += other.readahead_hits;
    evictions += other.evictions;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    return *this;
  }

  /// Counter-wise difference against an `earlier` snapshot of the same
  /// monotone counters — the I/O incurred between the two snapshots.
  IoStats DeltaSince(const IoStats& earlier) const {
    IoStats delta;
    delta.block_reads = block_reads - earlier.block_reads;
    delta.block_writes = block_writes - earlier.block_writes;
    delta.cache_hits = cache_hits - earlier.cache_hits;
    delta.cache_misses = cache_misses - earlier.cache_misses;
    delta.readahead_blocks = readahead_blocks - earlier.readahead_blocks;
    delta.readahead_hits = readahead_hits - earlier.readahead_hits;
    delta.evictions = evictions - earlier.evictions;
    delta.prefetch_issued = prefetch_issued - earlier.prefetch_issued;
    delta.prefetch_hits = prefetch_hits - earlier.prefetch_hits;
    return delta;
  }

  /// Fraction of block lookups served from the cache (1.0 when no
  /// lookups happened).
  double HitRate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 1.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  /// Fraction of prefetched blocks that were subsequently used (1.0
  /// when nothing was prefetched). On a pure sequential scan this
  /// approaches 1: every block after the first is brought in ahead of
  /// the head.
  double ReadaheadHitRate() const {
    return readahead_blocks == 0
               ? 1.0
               : static_cast<double>(readahead_hits) /
                     static_cast<double>(readahead_blocks);
  }

  /// Adds every counter to `registry` under `extmem.<counter>` names,
  /// so `--metrics` runs fold block I/O into `BENCH_trials.json` rows.
  void PublishTo(obs::MetricsRegistry& registry) const;

  /// Renders e.g. "reads=12 writes=4 hit%=98.4 ra%=100.0".
  std::string ToString() const;
};

}  // namespace rstlab::extmem

#endif  // RSTLAB_EXTMEM_IO_STATS_H_
