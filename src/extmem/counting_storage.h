#ifndef RSTLAB_EXTMEM_COUNTING_STORAGE_H_
#define RSTLAB_EXTMEM_COUNTING_STORAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "extmem/storage.h"

namespace rstlab::extmem {

/// TapeStorage decorator counting every cell access — the
/// instrumentation behind the "reads each cell exactly once per scan"
/// regression pins (the PR 7 tape-tester audit and the streaming-XML
/// audit of this PR). Deliberately NOT a MemStorage subclass: Tape only
/// takes its zero-virtual-call fast path for MemStorage, so wrapping
/// keeps every Read on the virtual path where it can be counted.
class CountingStorage final : public TapeStorage {
 public:
  explicit CountingStorage(std::string content)
      : inner_(std::move(content)) {}

  char ReadCell(std::size_t index) override {
    ++reads;
    return inner_.ReadCell(index);
  }
  void WriteCell(std::size_t index, char symbol) override {
    ++writes;
    inner_.WriteCell(index, symbol);
  }
  std::size_t size() const override { return inner_.size(); }
  void Reserve(std::size_t cells) override { inner_.Reserve(cells); }
  void Assign(std::string content) override {
    inner_.Assign(std::move(content));
  }
  std::string ReadRange(std::size_t pos, std::size_t count) override {
    return inner_.ReadRange(pos, count);
  }
  void WriteRange(std::size_t pos, std::string_view data) override {
    inner_.WriteRange(pos, data);
  }
  const char* backend_name() const override { return "counting"; }

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

 private:
  MemStorage inner_;
};

}  // namespace rstlab::extmem

#endif  // RSTLAB_EXTMEM_COUNTING_STORAGE_H_
