#ifndef RSTLAB_EXTMEM_STORAGE_H_
#define RSTLAB_EXTMEM_STORAGE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "extmem/io_stats.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace rstlab::extmem {

/// The blank symbol every never-written cell reads as. `tape::kBlank`
/// aliases this constant, so the storage layer and the machine model
/// agree without the storage layer depending on the tape library.
inline constexpr char kBlankCell = '_';

/// Where a tape's cells live (paper Section 2: the external-memory
/// device under one tape of the ST-machine).
///
/// A storage holds a logical sequence of `size()` cells; indices at or
/// beyond `size()` read as `kBlankCell`. Growth is explicit via
/// `Reserve`, which only extends the logical length — backends defer
/// physical allocation to block granularity, which is the fix for the
/// old per-move `resize(head_+1)` append path.
///
/// Implementations do not throw across this boundary; fallible
/// construction returns `Status` from the backend factories, and
/// runtime device errors on an already-validated file are fatal
/// (reported and aborted) rather than silently served as data.
class TapeStorage {
 public:
  virtual ~TapeStorage() = default;

  /// The symbol at `index` (`kBlankCell` at or beyond `size()`).
  virtual char ReadCell(std::size_t index) = 0;

  /// Overwrites the symbol at `index`, growing the logical length to
  /// at least `index + 1`.
  virtual void WriteCell(std::size_t index, char symbol) = 0;

  /// Number of cells used (written or reserved).
  virtual std::size_t size() const = 0;

  /// Grows the logical length to at least `cells` (new cells blank).
  virtual void Reserve(std::size_t cells) = 0;

  /// Replaces the whole content with `content` (length becomes
  /// `content.size()`, previous cells discarded).
  virtual void Assign(std::string content) = 0;

  /// The `count` cells starting at `pos`, clamped to `size()`.
  virtual std::string ReadRange(std::size_t pos, std::size_t count) = 0;

  /// Overwrites the `data.size()` cells starting at `pos`, growing the
  /// logical length to at least `pos + data.size()`. The bulk dual of
  /// `ReadRange`: backends override it to move whole blocks at a time
  /// (the default loops over WriteCell), which is what keeps the sort's
  /// run writers off the per-cell virtual path.
  virtual void WriteRange(std::size_t pos, std::string_view data);

  /// Hints the head's current scan direction (+1 right, -1 left) so a
  /// caching backend can prefetch ahead of the head. No-op by default.
  virtual void SetDirectionHint(int direction) { (void)direction; }

  /// Forces dirty state down to the backing device (no-op in memory).
  virtual Status Flush() { return Status::OK(); }

  /// Block-level I/O counters (all zero for memory backends).
  virtual IoStats io_stats() const { return IoStats{}; }

  /// Short backend name, e.g. "mem" or "file".
  virtual const char* backend_name() const = 0;
};

/// The in-RAM backend: today's `std::vector`-of-cells behavior behind
/// the storage interface. The buffer grows geometrically and is kept
/// blank-filled past the logical length, so the per-append cost is one
/// comparison on the hot path (`EnsureLength`) instead of a
/// `resize(head+1)` per head move.
///
/// The cell accessors are non-virtual and inline; `tape::Tape` keeps a
/// typed pointer to its MemStorage and calls these directly, keeping
/// virtual dispatch off the per-cell fast path.
class MemStorage final : public TapeStorage {
 public:
  MemStorage() = default;
  explicit MemStorage(std::string content)
      : cells_(std::move(content)), length_(cells_.size()) {}

  /// The symbol at `i`, blank at or beyond the logical length.
  char CellOrBlank(std::size_t i) const {
    return i < length_ ? cells_[i] : kBlankCell;
  }

  /// Overwrites cell `i`, growing the logical length as needed.
  void SetCell(std::size_t i, char symbol) {
    if (i >= length_) Grow(i + 1);
    cells_[i] = symbol;
  }

  /// Grows the logical length to at least `cells`; one comparison when
  /// already long enough (the per-move fast path).
  void EnsureLength(std::size_t cells) {
    if (cells > length_) Grow(cells);
  }

  char ReadCell(std::size_t index) override { return CellOrBlank(index); }
  void WriteCell(std::size_t index, char symbol) override {
    SetCell(index, symbol);
  }
  std::size_t size() const override { return length_; }
  void Reserve(std::size_t cells) override { EnsureLength(cells); }
  void Assign(std::string content) override;
  std::string ReadRange(std::size_t pos, std::size_t count) override;
  void WriteRange(std::size_t pos, std::string_view data) override;
  const char* backend_name() const override { return "mem"; }

 private:
  void Grow(std::size_t cells);

  std::string cells_;        // physical buffer, blank-filled past length_
  std::size_t length_ = 0;   // logical cells used
};

/// Which backend a storage factory should build.
enum class BackendKind {
  kMem,   // in-RAM cells (the default)
  kFile,  // checksummed block file behind a BlockCache
};

/// Short name for `kind` ("mem" / "file").
const char* BackendName(BackendKind kind);

/// Configuration for creating tape storages — the knob set behind
/// `--tape-backend` / `--cache-blocks` and their environment fallbacks.
struct StorageOptions {
  BackendKind backend = BackendKind::kMem;
  /// Cells per block of the file backend (rounded up to a power of 2).
  std::size_t block_size = 4096;
  /// Cache capacity in blocks (per tape). The cache *budget* in cells
  /// is block_size * cache_blocks; experiments run out-of-core when a
  /// tape's content exceeds it.
  std::size_t cache_blocks = 64;
  /// Blocks prefetched ahead of the head on sequential scans. The knob
  /// behind `--readahead-blocks` / `RSTLAB_READAHEAD_BLOCKS`.
  std::size_t readahead_blocks = 4;
  /// Directory for backing files ("" = system temp dir + "rstlab-tapes").
  std::string dir;
  /// When set, each file storage publishes its IoStats here (as
  /// `extmem.*` counters) on destruction, folding block I/O into the
  /// `--metrics` output and `BENCH_trials.json`.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Builds a storage for `options` — a MemStorage, or a FileStorage on a
/// fresh uniquely-named temp file (deleted when the storage dies).
/// Fails (Status, no exception) when the backing file cannot be created.
Result<std::unique_ptr<TapeStorage>> CreateStorage(
    const StorageOptions& options);

/// Process-default options: the override installed by
/// `SetProcessStorageOptions` if any, else `RSTLAB_TAPE_BACKEND`
/// (mem|file), `RSTLAB_CACHE_BLOCKS`, `RSTLAB_BLOCK_SIZE`,
/// `RSTLAB_READAHEAD_BLOCKS` and `RSTLAB_TAPE_DIR` read from the
/// environment. `stmodel::StContext`'s
/// plain constructor uses this, which is how CI forces the whole test
/// suite through the file backend without touching each test.
StorageOptions DefaultStorageOptions();

/// Installs `options` as the process default handed out by
/// `DefaultStorageOptions()` — how a binary's `--tape-backend` /
/// `--cache-blocks` flags reach every context it creates afterwards.
/// Any `options.metrics` registry must outlive the contexts.
void SetProcessStorageOptions(const StorageOptions& options);

/// Extracts `--tape-backend={mem,file}`, `--cache-blocks=K` and
/// `--readahead-blocks=K` from
/// argv (removing them, like `obs::ParseObsFlags`), starting from
/// `DefaultStorageOptions()` so flags override environment overrides
/// defaults. Unrecognized values keep the default and warn on stderr.
StorageOptions ParseBackendFlags(int* argc, char** argv);

}  // namespace rstlab::extmem

#endif  // RSTLAB_EXTMEM_STORAGE_H_
