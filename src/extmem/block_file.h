#ifndef RSTLAB_EXTMEM_BLOCK_FILE_H_
#define RSTLAB_EXTMEM_BLOCK_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/status.h"

namespace rstlab::extmem {

/// FNV-1a 64-bit hash of `data` — the per-block and header checksum of
/// the tape file format. Not cryptographic; it detects the torn and
/// bit-rotted writes the crash-safety tests simulate.
std::uint64_t Fnv1a64(const char* data, std::size_t size);

/// On-disk layout of a tape file (all integers little-endian):
///
///   header (64 bytes):
///     [0..8)   magic "RSTLEXT1"
///     [8..12)  format version (= 1)
///     [12..16) block size in cells
///     [16..24) logical tape length in cells
///     [24..32) number of block records present
///     [32..56) reserved (zero)
///     [56..64) FNV-1a of bytes [0..56)
///   block record i at offset 64 + i * (block_size + 8):
///     [0..block_size)  cell payload
///     [.. + 8)         FNV-1a of the payload
///
/// Blocks never written are absent from the file and read as blank;
/// `num_blocks` counts the records physically present, which `Open`
/// cross-checks against the file size (a torn final record is a
/// "truncated file" error, a flipped payload byte a "checksum
/// mismatch", a foreign file a "bad magic").
inline constexpr char kTapeFileMagic[8] = {'R', 'S', 'T', 'L',
                                           'E', 'X', 'T', '1'};
inline constexpr std::uint32_t kTapeFileVersion = 1;
inline constexpr std::size_t kTapeFileHeaderSize = 64;

/// Decoded header fields.
struct TapeFileHeader {
  std::uint32_t block_size = 0;
  std::uint64_t length = 0;
  std::uint64_t num_blocks = 0;
};

/// Serializes `header` into `out[kTapeFileHeaderSize]`.
void EncodeTapeFileHeader(const TapeFileHeader& header, char* out);

/// Parses and validates `data[kTapeFileHeaderSize]`: checks magic,
/// version and the header checksum, returning named errors.
Result<TapeFileHeader> DecodeTapeFileHeader(const char* data);

/// A validated, checksummed block file: the raw device under the
/// FileStorage cache. One block record per `block_size` cells.
///
/// `Create` starts an empty file (truncating any previous content);
/// `Open` validates an existing one — header, exact file size, and
/// every block checksum — so that after a successful Open, block reads
/// cannot serve corrupted data. Both return Status instead of throwing.
class BlockFile {
 public:
  ~BlockFile();
  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  /// Creates (or truncates) `path` as an empty tape file.
  static Result<std::unique_ptr<BlockFile>> Create(std::string path,
                                                   std::size_t block_size);

  /// Opens and fully validates an existing tape file. Rejects bad
  /// magic/version, size mismatches (truncated or trailing bytes) and
  /// per-block checksum mismatches with a named error.
  static Result<std::unique_ptr<BlockFile>> Open(std::string path);

  /// Reads block `index` into `out` (`block_size()` bytes); blocks at
  /// or beyond `num_blocks()` come back all-blank. Verifies the
  /// record's checksum again at read time.
  Status ReadBlock(std::size_t index, char* out);

  /// Writes block `index` (payload + fresh checksum), extending the
  /// file with blank records if `index >= num_blocks()`.
  Status WriteBlock(std::size_t index, const char* data);

  /// Rewrites the header with `length` and flushes libc buffers to the
  /// OS. Call after write-backs to make the file reopenable.
  Status Sync(std::uint64_t length);

  /// Discards all blocks and resets the logical length to zero.
  Status Truncate();

  std::size_t block_size() const { return block_size_; }
  std::size_t num_blocks() const { return num_blocks_; }
  /// Logical tape length recorded in the header at Open/Sync time.
  std::uint64_t header_length() const { return header_length_; }
  const std::string& path() const { return path_; }

 private:
  BlockFile(std::string path, std::FILE* file, std::size_t block_size,
            std::size_t num_blocks, std::uint64_t header_length)
      : path_(std::move(path)),
        file_(file),
        block_size_(block_size),
        num_blocks_(num_blocks),
        header_length_(header_length) {}

  long RecordOffset(std::size_t index) const;
  Status WriteHeader(std::uint64_t length);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t block_size_ = 0;
  std::size_t num_blocks_ = 0;
  std::uint64_t header_length_ = 0;
};

}  // namespace rstlab::extmem

#endif  // RSTLAB_EXTMEM_BLOCK_FILE_H_
