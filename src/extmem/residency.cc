#include "extmem/residency.h"

#include <atomic>

namespace rstlab::extmem {

namespace {
std::atomic<std::int64_t> g_resident_blocks{0};
std::atomic<std::int64_t> g_live_file_storages{0};

std::uint64_t NonNegative(std::int64_t v) {
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}
}  // namespace

std::uint64_t ResidentCacheBlocks() {
  return NonNegative(g_resident_blocks.load(std::memory_order_relaxed));
}

std::uint64_t LiveFileStorages() {
  return NonNegative(g_live_file_storages.load(std::memory_order_relaxed));
}

namespace internal {

void AddResidentBlocks(std::int64_t delta) {
  g_resident_blocks.fetch_add(delta, std::memory_order_relaxed);
}

void AddLiveFileStorages(std::int64_t delta) {
  g_live_file_storages.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace rstlab::extmem
