#include "extmem/block_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "extmem/residency.h"

namespace rstlab::extmem {

namespace {

/// Post-validation device faults (disk full, file yanked) must not be
/// served as data; they are fatal, matching the no-exceptions contract.
void DieOnIoError(const Status& status) {
  if (status.ok()) return;
  std::fprintf(stderr, "rstlab extmem: fatal device error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace

BlockCache::BlockCache(BlockFile& file, std::size_t capacity_blocks,
                       std::size_t readahead_blocks)
    : file_(file),
      capacity_(std::max<std::size_t>(2, capacity_blocks)),
      // The window must fit beside the pinned block and one victim
      // slot, or prefetch would evict its own freshly-loaded blocks.
      readahead_(std::min(readahead_blocks, capacity_ - 2)) {}

BlockCache::~BlockCache() {
  internal::AddResidentBlocks(
      -static_cast<std::int64_t>(entries_.size()));
}

char* BlockCache::Acquire(std::size_t index, bool for_write) {
  auto found = by_index_.find(index);
  LruList::iterator entry;
  if (found != by_index_.end()) {
    ++stats_.cache_hits;
    entry = found->second;
    if (entry->from_readahead && !entry->touched) ++stats_.readahead_hits;
    entry->touched = true;
    entries_.splice(entries_.begin(), entries_, entry);
  } else {
    ++stats_.cache_misses;
    entry = Load(index, /*from_readahead=*/false);
  }
  entry->dirty = entry->dirty || for_write;
  pinned_ = index;
  Prefetch(index);
  // Prefetch can evict, but never the pinned block just acquired.
  return entry->data.data();
}

BlockCache::LruList::iterator BlockCache::Load(std::size_t index,
                                               bool from_readahead) {
  EvictIfFull();
  internal::AddResidentBlocks(1);
  entries_.emplace_front();
  LruList::iterator entry = entries_.begin();
  entry->index = index;
  entry->data.resize(file_.block_size());
  entry->from_readahead = from_readahead;
  entry->touched = !from_readahead;
  DieOnIoError(file_.ReadBlock(index, entry->data.data()));
  // Blocks past the written extent are synthesized blank without
  // touching the device; only real record reads count as I/O.
  if (index < file_.num_blocks()) ++stats_.block_reads;
  if (from_readahead) ++stats_.readahead_blocks;
  by_index_.emplace(index, entry);
  return entry;
}

void BlockCache::EvictIfFull() {
  if (entries_.size() < capacity_) return;
  // Walk from the LRU end, skipping the pinned block.
  for (auto it = std::prev(entries_.end());; --it) {
    if (it->index != pinned_) {
      if (it->dirty) {
        DieOnIoError(file_.WriteBlock(it->index, it->data.data()));
        ++stats_.block_writes;
      }
      ++stats_.evictions;
      by_index_.erase(it->index);
      entries_.erase(it);
      internal::AddResidentBlocks(-1);
      return;
    }
    if (it == entries_.begin()) return;  // everything pinned (capacity 1)
  }
}

void BlockCache::Prefetch(std::size_t from_index) {
  if (readahead_ == 0) return;
  for (std::size_t step = 1; step <= readahead_; ++step) {
    std::size_t target;
    if (direction_ > 0) {
      target = from_index + step;
      // Nothing on disk past the last written block; those cells read
      // blank without I/O.
      if (target >= file_.num_blocks()) break;
    } else {
      if (step > from_index) break;
      target = from_index - step;
    }
    if (by_index_.find(target) != by_index_.end()) continue;
    // Loading may evict the LRU block (typically the one the head just
    // left); the window is clamped so it never evicts itself.
    Load(target, /*from_readahead=*/true);
  }
}

Status BlockCache::FlushDirty() {
  for (Entry& entry : entries_) {
    if (!entry.dirty) continue;
    RSTLAB_RETURN_IF_ERROR(file_.WriteBlock(entry.index, entry.data.data()));
    ++stats_.block_writes;
    entry.dirty = false;
  }
  return Status::OK();
}

void BlockCache::Drop() {
  internal::AddResidentBlocks(
      -static_cast<std::int64_t>(entries_.size()));
  entries_.clear();
  by_index_.clear();
  pinned_ = static_cast<std::size_t>(-1);
}

}  // namespace rstlab::extmem
