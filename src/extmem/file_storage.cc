#include "extmem/file_storage.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "extmem/residency.h"

namespace rstlab::extmem {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t Log2(std::size_t pow2) {
  std::size_t shift = 0;
  while ((static_cast<std::size_t>(1) << shift) < pow2) ++shift;
  return shift;
}

}  // namespace

FileStorage::FileStorage(std::unique_ptr<BlockFile> file,
                         const FileOptions& options)
    : file_(std::move(file)),
      cache_(*file_, options.cache_blocks, options.readahead_blocks),
      block_shift_(Log2(file_->block_size())),
      cell_mask_(file_->block_size() - 1),
      length_(static_cast<std::size_t>(file_->header_length())),
      delete_on_close_(options.delete_on_close),
      metrics_(options.metrics) {
  internal::AddLiveFileStorages(1);
}

Result<std::unique_ptr<FileStorage>> FileStorage::Create(
    std::string path, const FileOptions& options) {
  const std::size_t block_size =
      RoundUpPow2(std::max<std::size_t>(16, options.block_size));
  Result<std::unique_ptr<BlockFile>> file =
      BlockFile::Create(std::move(path), block_size);
  if (!file.ok()) return file.status();
  return std::unique_ptr<FileStorage>(
      new FileStorage(std::move(file).value(), options));
}

Result<std::unique_ptr<FileStorage>> FileStorage::Open(
    std::string path, const FileOptions& options) {
  Result<std::unique_ptr<BlockFile>> file = BlockFile::Open(std::move(path));
  if (!file.ok()) return file.status();
  if ((file.value()->block_size() & (file.value()->block_size() - 1)) != 0) {
    return Status::Internal(
        "extmem: corrupt header (block size not a power of two)");
  }
  return std::unique_ptr<FileStorage>(
      new FileStorage(std::move(file).value(), options));
}

FileStorage::~FileStorage() {
  if (!delete_on_close_) {
    Status status = Flush();
    if (!status.ok()) {
      std::fprintf(stderr, "rstlab extmem: flush on close failed: %s\n",
                   status.ToString().c_str());
    }
  }
  if (metrics_ != nullptr) io_stats().PublishTo(*metrics_);
  const std::string path = file_->path();
  file_.reset();  // closes the stream before unlinking
  if (delete_on_close_) std::remove(path.c_str());
  internal::AddLiveFileStorages(-1);
}

void FileStorage::Assign(std::string content) {
  ForgetCurrent();
  cache_.Drop();
  Status status = file_->Truncate();
  if (!status.ok()) {
    std::fprintf(stderr, "rstlab extmem: fatal device error: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  length_ = content.size();
  // Bulk-load the content block by block, straight past the cache: the
  // whole tape is about to be scanned from cell 0, so caching the tail
  // here would only evict the blocks the head needs first.
  const std::size_t block_size = file_->block_size();
  std::vector<char> block(block_size);
  for (std::size_t pos = 0; pos < content.size(); pos += block_size) {
    const std::size_t chunk = std::min(block_size, content.size() - pos);
    std::copy_n(content.data() + pos, chunk, block.begin());
    std::fill(block.begin() + static_cast<std::ptrdiff_t>(chunk),
              block.end(), kBlankCell);
    status = file_->WriteBlock(pos >> block_shift_, block.data());
    if (!status.ok()) {
      std::fprintf(stderr, "rstlab extmem: fatal device error: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    ++direct_.block_writes;
  }
}

std::string FileStorage::ReadRange(std::size_t pos, std::size_t count) {
  if (pos >= length_) return std::string();
  count = std::min(count, length_ - pos);
  std::string out;
  out.reserve(count);
  while (out.size() < count) {
    const std::size_t index = pos + out.size();
    const char* block = BlockFor(index, /*for_write=*/false);
    const std::size_t offset = index & cell_mask_;
    const std::size_t chunk =
        std::min(count - out.size(), file_->block_size() - offset);
    out.append(block + offset, chunk);
  }
  return out;
}

void FileStorage::WriteRange(std::size_t pos, std::string_view data) {
  if (data.empty()) return;
  if (pos + data.size() > length_) length_ = pos + data.size();
  std::size_t written = 0;
  while (written < data.size()) {
    const std::size_t index = pos + written;
    char* block = BlockFor(index, /*for_write=*/true);
    const std::size_t offset = index & cell_mask_;
    const std::size_t chunk =
        std::min(data.size() - written, file_->block_size() - offset);
    std::copy_n(data.data() + written, chunk, block + offset);
    written += chunk;
  }
}

Status FileStorage::Flush() {
  ForgetCurrent();
  RSTLAB_RETURN_IF_ERROR(cache_.FlushDirty());
  return file_->Sync(length_);
}

IoStats FileStorage::io_stats() const {
  IoStats total = cache_.stats();
  total += direct_;
  return total;
}

}  // namespace rstlab::extmem
