#ifndef RSTLAB_EXTMEM_FILE_STORAGE_H_
#define RSTLAB_EXTMEM_FILE_STORAGE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "extmem/block_cache.h"
#include "extmem/block_file.h"
#include "extmem/io_stats.h"
#include "extmem/storage.h"

namespace rstlab::extmem {

/// The out-of-core backend: tape cells live in a checksummed block
/// file (see block_file.h for the format) behind a `BlockCache`, so a
/// tape's RAM footprint is `cache_blocks * block_size` cells no matter
/// how long the tape grows — the "external" device of the paper's
/// model made literal.
///
/// Per-cell access memoizes the current block's payload pointer (valid
/// because the cache pins the last-acquired block), so the per-cell
/// cost between block boundaries is a shift, a compare and an indexed
/// load — block-cache traffic happens once per block crossed, which on
/// the paper's scan-shaped access patterns is once per `block_size`
/// head moves.
///
/// `Create`/`Open` return Status (never throw): `Open` validates the
/// header and every block checksum, rejecting truncated files, bad
/// magic and checksum mismatches by name before any cell is served.
class FileStorage final : public TapeStorage {
 public:
  /// Backend knobs (block/cache geometry and lifecycle).
  struct FileOptions {
    /// Cells per block; rounded up to a power of two.
    std::size_t block_size = 4096;
    /// Cache capacity in blocks (≥ 2).
    std::size_t cache_blocks = 64;
    /// Prefetch depth in blocks.
    std::size_t readahead_blocks = 4;
    /// Unlink the backing file on destruction (temp-tape mode). Set to
    /// false for tapes that must persist and be `Open`ed again.
    bool delete_on_close = true;
    /// When set, the final IoStats are published here (as `extmem.*`
    /// counters) on destruction.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Creates (or truncates) the tape file at `path`, initially empty.
  static Result<std::unique_ptr<FileStorage>> Create(
      std::string path, const FileOptions& options);

  /// Opens an existing tape file, fully validated; the stored logical
  /// length is restored.
  static Result<std::unique_ptr<FileStorage>> Open(
      std::string path, const FileOptions& options);

  /// Flushes (when persistent), publishes metrics, closes and — in
  /// temp-tape mode — unlinks the backing file.
  ~FileStorage() override;

  char ReadCell(std::size_t index) override {
    if (index >= length_) return kBlankCell;
    return BlockFor(index, /*for_write=*/false)[index & cell_mask_];
  }

  void WriteCell(std::size_t index, char symbol) override {
    if (index >= length_) length_ = index + 1;
    BlockFor(index, /*for_write=*/true)[index & cell_mask_] = symbol;
  }

  std::size_t size() const override { return length_; }

  void Reserve(std::size_t cells) override {
    // Growth is block-deferred: only the logical length moves; blocks
    // materialize when written (absent blocks read blank).
    if (cells > length_) length_ = cells;
  }

  void Assign(std::string content) override;
  std::string ReadRange(std::size_t pos, std::size_t count) override;
  void WriteRange(std::size_t pos, std::string_view data) override;
  void SetDirectionHint(int direction) override {
    cache_.SetDirectionHint(direction);
  }
  Status Flush() override;
  IoStats io_stats() const override;
  const char* backend_name() const override { return "file"; }

  const std::string& path() const { return file_->path(); }
  std::size_t block_size() const { return file_->block_size(); }
  const BlockCache& cache() const { return cache_; }

 private:
  FileStorage(std::unique_ptr<BlockFile> file, const FileOptions& options);

  /// Payload of the block containing `index`, memoized across calls.
  char* BlockFor(std::size_t index, bool for_write) {
    const std::size_t block = index >> block_shift_;
    if (block != current_block_ || (for_write && !current_writable_)) {
      current_ = cache_.Acquire(block, for_write);
      current_block_ = block;
      current_writable_ = for_write;
    }
    return current_;
  }

  void ForgetCurrent() {
    current_ = nullptr;
    current_block_ = static_cast<std::size_t>(-1);
    current_writable_ = false;
  }

  std::unique_ptr<BlockFile> file_;
  BlockCache cache_;
  std::size_t block_shift_;   // log2(block size)
  std::size_t cell_mask_;     // block size - 1
  std::size_t length_ = 0;    // logical cells used
  bool delete_on_close_;
  obs::MetricsRegistry* metrics_;
  IoStats direct_;            // bulk I/O done around the cache (Assign)

  char* current_ = nullptr;   // memoized payload of current_block_
  std::size_t current_block_ = static_cast<std::size_t>(-1);
  bool current_writable_ = false;
};

}  // namespace rstlab::extmem

#endif  // RSTLAB_EXTMEM_FILE_STORAGE_H_
