#ifndef RSTLAB_EXTMEM_RESIDENCY_H_
#define RSTLAB_EXTMEM_RESIDENCY_H_

#include <cstdint>

namespace rstlab::extmem {

/// Process-wide residency accounting: how many cache blocks are
/// resident (including each cache's pinned block) across every live
/// `BlockCache`, and how many file-backed storages exist at all.
///
/// These are hygiene gauges, not part of the model's (r, s, t): the
/// operator-lifecycle tests assert both return to their baseline after
/// every engine teardown — on success and on injected mid-stream
/// failure alike — so a leaked spill lane or an undestroyed cache can
/// never ride a passing test. Thread-safe (relaxed atomics; exact
/// values are only meaningful at quiescence).
std::uint64_t ResidentCacheBlocks();
std::uint64_t LiveFileStorages();

namespace internal {
/// Maintained by BlockCache (blocks) and FileStorage (storages).
void AddResidentBlocks(std::int64_t delta);
void AddLiveFileStorages(std::int64_t delta);
}  // namespace internal

}  // namespace rstlab::extmem

#endif  // RSTLAB_EXTMEM_RESIDENCY_H_
