#ifndef RSTLAB_SORTING_DECIDERS_H_
#define RSTLAB_SORTING_DECIDERS_H_

#include "problems/instance.h"
#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::sorting {

/// Deterministic sort-and-scan deciders for the three problems — the
/// upper-bound half of Corollary 7: membership in
/// ST(O(log N), O(buffer), O(1)).
///
/// Tape layout: the encoded instance must be loaded on tape 0 of a
/// context with at least 5 tapes; tapes 1 and 2 receive the two halves,
/// tapes 3 and 4 are merge-sort working storage.
///
/// The measured resource profile on a run of input size N with field
/// length n is r(N) = Theta(log N) scans and s(N) = O(n + log N) internal
/// bits (see merge_sort.h for why the record buffer replaces Chen-Yap's
/// O(1)-space comparison). For the SHORT problem variants n = O(log N),
/// so the profile is the paper's ST(O(log N), O(log N), O(1)).

/// Number of external tapes the deciders require.
inline constexpr std::size_t kDeciderTapes = 5;

/// Decides `problem` on the instance loaded on tape 0 of `ctx`.
Result<bool> DecideOnTapes(problems::Problem problem,
                           stmodel::StContext& ctx);

/// The sorting *function* problem (Corollary 10): sorts the input fields
/// of tape 0 and leaves the result on tape 1 (ascending lexicographic).
/// Tape requirements as above.
Status SortInputToTape(stmodel::StContext& ctx);

/// Deterministic decider for the DISJOINT-SETS problem of the paper's
/// Section 9 (see problems/disjoint_sets.h): sorts both halves and
/// looks for a common value in one merge scan. Same tape layout and
/// resource profile as the Corollary 7 deciders —
/// ST(O(log N), O(n + log N), 5). No matching randomized 2-scan
/// algorithm is known; the paper leaves both a lower and a better upper
/// bound open.
Result<bool> DecideDisjointOnTapes(stmodel::StContext& ctx);

}  // namespace rstlab::sorting

#endif  // RSTLAB_SORTING_DECIDERS_H_
