#include "sorting/sort_config.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rstlab::sorting {

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) {
    std::fprintf(stderr,
                 "rstlab sorting: ignoring %s=%s (want a non-negative "
                 "integer)\n",
                 name, value);
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

SortConfig* ProcessConfigSlot() {
  static SortConfig slot;
  return &slot;
}

bool g_process_config_set = false;

/// Parses the value of `--name=` flags; returns fallback (with a
/// warning) on garbage.
std::size_t FlagSize(const char* arg, const char* value,
                     std::size_t fallback) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) {
    std::fprintf(stderr, "rstlab sorting: ignoring %s\n", arg);
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

bool UsesParallelPath(const SortConfig& config) {
  return config.fanout >= 2;
}

void SetProcessSortConfig(const SortConfig& config) {
  *ProcessConfigSlot() = config;
  g_process_config_set = true;
}

SortConfig DefaultSortConfig() {
  if (g_process_config_set) return *ProcessConfigSlot();
  SortConfig config;
  config.threads =
      std::max<std::size_t>(1, EnvSize("RSTLAB_SORT_THREADS", config.threads));
  config.fanout = EnvSize("RSTLAB_MERGE_FANOUT", config.fanout);
  if (config.fanout == 1) {
    std::fprintf(stderr,
                 "rstlab sorting: RSTLAB_MERGE_FANOUT=1 is not a merge; "
                 "keeping the serial path\n");
    config.fanout = 0;
  }
  config.run_length = std::max<std::size_t>(
      1, EnvSize("RSTLAB_RUN_LENGTH", config.run_length));
  return config;
}

SortConfig ParseSortFlags(int* argc, char** argv) {
  SortConfig config = DefaultSortConfig();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sort-threads=", 15) == 0) {
      config.threads =
          std::max<std::size_t>(1, FlagSize(arg, arg + 15, config.threads));
      continue;
    }
    if (std::strncmp(arg, "--merge-fanout=", 15) == 0) {
      const std::size_t fanout = FlagSize(arg, arg + 15, config.fanout);
      if (fanout == 1) {
        std::fprintf(stderr, "rstlab sorting: ignoring %s (want 0 or >= 2)\n",
                     arg);
      } else {
        config.fanout = fanout;
      }
      continue;
    }
    if (std::strncmp(arg, "--run-length=", 13) == 0) {
      config.run_length =
          std::max<std::size_t>(1, FlagSize(arg, arg + 13, config.run_length));
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < *argc; ++i) argv[i] = nullptr;
  *argc = out;
  return config;
}

}  // namespace rstlab::sorting
