#include "sorting/las_vegas.h"

#include <algorithm>
#include <memory>

#include "fingerprint/fingerprint.h"
#include "problems/instance.h"
#include "sorting/deciders.h"
#include "sorting/merge_sort.h"
#include "stmodel/tape_io.h"

namespace rstlab::sorting {

LasVegasOutcome CertifiedSort(const std::vector<std::string>& fields,
                              const SortSubroutine& subroutine,
                              Rng& rng) {
  LasVegasOutcome outcome;
  std::vector<std::string> claimed = subroutine(fields);

  // Deterministic part of the certificate: the claim is sorted and has
  // the right cardinality.
  if (claimed.size() != fields.size() ||
      !std::is_sorted(claimed.begin(), claimed.end())) {
    return outcome;  // "I don't know"
  }

  // Randomized part: multiset equality of input and claim via the
  // Theorem 8(a) fingerprint. Equal multisets always pass; a corrupted
  // claim slips through with probability <= 1/2.
  problems::Instance instance;
  for (const std::string& f : fields) {
    instance.first.push_back(BitString::FromString(f));
  }
  for (const std::string& f : claimed) {
    instance.second.push_back(BitString::FromString(f));
  }
  if (!fingerprint::TestMultisetEquality(instance, rng).accepted) {
    return outcome;  // caught: "I don't know"
  }
  outcome.sorted = std::move(claimed);
  return outcome;
}

Result<bool> CheckSortViaSorting(stmodel::StContext& ctx) {
  if (ctx.num_tapes() < kDeciderTapes) {
    return Status::InvalidArgument("reduction needs 5 external tapes");
  }
  // Split the halves; sort the first; one parallel comparison scan —
  // the Corollary 10 reduction CHECK-SORT <= sorting.
  tape::Tape& in = ctx.tape(0);
  stmodel::Rewind(in);
  const std::size_t total = stmodel::CountFields(in);
  if (total % 2 != 0) {
    return Status::InvalidArgument("instance must have 2m fields");
  }
  const std::size_t m = total / 2;
  if (m == 0) return true;
  stmodel::Rewind(in);
  for (std::size_t i = 0; i < m; ++i) {
    stmodel::CopyField(in, ctx.tape(1));
  }
  for (std::size_t i = 0; i < m; ++i) {
    stmodel::CopyField(in, ctx.tape(2));
  }
  RSTLAB_RETURN_IF_ERROR(SortFieldsOnTapes(ctx, 1, 3, 4));
  ctx.tape(1).Seek(0);
  ctx.tape(2).Seek(0);
  for (std::size_t i = 0; i < m; ++i) {
    if (stmodel::CompareFields(ctx.tape(1), ctx.tape(2)) != 0) {
      return false;
    }
  }
  return true;
}

SortSubroutine FaultySorter(double fault_rate, std::uint64_t seed) {
  // The subroutine owns its RNG so repeated calls draw fresh faults.
  auto rng = std::make_shared<Rng>(seed);
  return [fault_rate, rng](const std::vector<std::string>& fields) {
    std::vector<std::string> out = fields;
    std::sort(out.begin(), out.end());
    if (out.size() >= 2 && rng->Bernoulli(fault_rate)) {
      // Corrupt a value (not just the order, so the sortedness check
      // alone cannot catch it).
      std::string& victim =
          out[static_cast<std::size_t>(rng->UniformBelow(out.size()))];
      if (!victim.empty()) {
        const std::size_t pos =
            static_cast<std::size_t>(rng->UniformBelow(victim.size()));
        victim[pos] = victim[pos] == '0' ? '1' : '0';
        std::sort(out.begin(), out.end());  // keep the claim sorted
      }
    }
    return out;
  };
}

}  // namespace rstlab::sorting
