#include "sorting/merge_sort.h"

#include <algorithm>
#include <string>
#include <vector>

#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"
#include "tape/tape.h"

namespace rstlab::sorting {

namespace {

/// Buffered single-field reader over a bounded number of fields. The
/// host-side `buffer` string mirrors an internal-memory record buffer
/// whose bits are metered by the caller.
class RunReader {
 public:
  RunReader(tape::Tape& t, std::size_t total_fields)
      : tape_(t), remaining_(total_fields) {}

  /// True iff a field is buffered and available.
  bool has_value() const { return loaded_; }
  /// The buffered field.
  const std::string& value() const { return buffer_; }

  /// Loads the next field into the buffer if any remain in the current
  /// allowance. `allowance` counts fields still permitted in the current
  /// run; decremented on load.
  void LoadNext(std::size_t& allowance) {
    loaded_ = false;
    if (allowance == 0 || remaining_ == 0) return;
    buffer_ = stmodel::ReadField(tape_);
    loaded_ = true;
    --allowance;
    --remaining_;
  }

  /// Fields left on the tape overall.
  std::size_t remaining() const { return remaining_; }

 private:
  tape::Tape& tape_;
  std::size_t remaining_;
  std::string buffer_;
  bool loaded_ = false;
};

void WriteField(tape::Tape& t, const std::string& payload) {
  stmodel::WriteString(t, payload);
  t.Write(stmodel::kFieldSeparator);
  t.MoveRight();
}

/// Sum of the sort tapes' I/O counters, snapshotted before and after
/// the sort so `SortStats::io` is the sort's own spill bill.
extmem::IoStats TapesIoStats(stmodel::StContext& ctx,
                             const std::vector<std::size_t>& tapes) {
  extmem::IoStats total;
  for (std::size_t t : tapes) total += ctx.tape(t).io_stats();
  return total;
}

}  // namespace

Status SortFieldsOnTapes(stmodel::StContext& ctx, std::size_t src,
                         std::size_t aux1, std::size_t aux2,
                         SortStats* stats) {
  if (src >= ctx.num_tapes() || aux1 >= ctx.num_tapes() ||
      aux2 >= ctx.num_tapes() || src == aux1 || src == aux2 ||
      aux1 == aux2) {
    return Status::InvalidArgument("sort needs three distinct tapes");
  }
  tape::Tape& source = ctx.tape(src);
  tape::Tape& a = ctx.tape(aux1);
  tape::Tape& b = ctx.tape(aux2);
  stmodel::InternalArena& arena = ctx.arena();
  const extmem::IoStats io_before = TapesIoStats(ctx, {src, aux1, aux2});

  // Pass 0: count fields and the maximum field length (sizes the two
  // record buffers).
  stmodel::Rewind(source);
  std::size_t num_fields = 0;
  std::size_t max_len = 0;
  while (!stmodel::AtEnd(source)) {
    max_len = std::max(max_len, stmodel::SkipField(source));
    ++num_fields;
  }
  if (stats != nullptr) {
    stats->num_fields = num_fields;
    stats->passes = 0;
  }
  if (num_fields <= 1) return Status::OK();

  // Internal memory: two record buffers (1 bit per 0/1 character) plus
  // O(log N) counters, all metered.
  auto buffer_bits = arena.Allocate(2 * max_len);
  const std::size_t ctr_bits =
      stmodel::BitsFor(std::max<std::size_t>(1, ctx.input_size()));
  stmodel::MeteredUint64 counters(arena, 4 * ctr_bits);
  (void)counters;

  for (std::size_t run_len = 1; run_len < num_fields; run_len *= 2) {
    if (stats != nullptr) ++stats->passes;

    // Distribute runs of `run_len` fields alternately onto a and b.
    stmodel::Rewind(source);
    a.Seek(0);
    b.Seek(0);
    std::size_t fields_to_a = 0;
    std::size_t fields_to_b = 0;
    std::size_t field_index = 0;
    while (field_index < num_fields) {
      const bool to_a = (field_index / run_len) % 2 == 0;
      stmodel::CopyField(source, to_a ? a : b);
      ++(to_a ? fields_to_a : fields_to_b);
      ++field_index;
    }

    // Merge pairs of runs back onto source.
    a.Seek(0);
    b.Seek(0);
    source.Seek(0);
    RunReader reader_a(a, fields_to_a);
    RunReader reader_b(b, fields_to_b);
    while (reader_a.remaining() > 0 || reader_b.remaining() > 0 ||
           reader_a.has_value() || reader_b.has_value()) {
      std::size_t allowance_a = run_len;
      std::size_t allowance_b = run_len;
      reader_a.LoadNext(allowance_a);
      reader_b.LoadNext(allowance_b);
      while (reader_a.has_value() || reader_b.has_value()) {
        const bool take_a =
            reader_a.has_value() &&
            (!reader_b.has_value() ||
             reader_a.value() <= reader_b.value());
        if (take_a) {
          WriteField(source, reader_a.value());
          reader_a.LoadNext(allowance_a);
        } else {
          WriteField(source, reader_b.value());
          reader_b.LoadNext(allowance_b);
        }
      }
    }
  }

  buffer_bits.Release();
  if (stats != nullptr) {
    stats->io = TapesIoStats(ctx, {src, aux1, aux2}).DeltaSince(io_before);
  }
  return Status::OK();
}

Status SortFieldsOnTapesKWay(stmodel::StContext& ctx, std::size_t src,
                             const std::vector<std::size_t>& aux,
                             SortStats* stats) {
  const std::size_t k = aux.size();
  if (k < 2 || src >= ctx.num_tapes()) {
    return Status::InvalidArgument("k-way sort needs >= 2 aux tapes");
  }
  for (std::size_t a : aux) {
    if (a >= ctx.num_tapes() || a == src) {
      return Status::InvalidArgument("bad aux tape index");
    }
  }
  tape::Tape& source = ctx.tape(src);
  stmodel::InternalArena& arena = ctx.arena();
  std::vector<std::size_t> all_tapes = aux;
  all_tapes.push_back(src);
  const extmem::IoStats io_before = TapesIoStats(ctx, all_tapes);

  stmodel::Rewind(source);
  std::size_t num_fields = 0;
  std::size_t max_len = 0;
  while (!stmodel::AtEnd(source)) {
    max_len = std::max(max_len, stmodel::SkipField(source));
    ++num_fields;
  }
  if (stats != nullptr) {
    stats->num_fields = num_fields;
    stats->passes = 0;
  }
  if (num_fields <= 1) return Status::OK();

  // k record buffers plus counters, metered.
  auto buffer_bits = arena.Allocate(k * max_len);
  const std::size_t ctr_bits =
      stmodel::BitsFor(std::max<std::size_t>(1, ctx.input_size()));
  stmodel::MeteredUint64 counters(arena, (k + 3) * ctr_bits);
  (void)counters;

  for (std::size_t run_len = 1; run_len < num_fields; run_len *= k) {
    if (stats != nullptr) ++stats->passes;

    // Distribute runs of `run_len` fields round-robin over the k tapes.
    stmodel::Rewind(source);
    std::vector<std::size_t> fields_to(k, 0);
    for (std::size_t t : aux) ctx.tape(t).Seek(0);
    for (std::size_t field_index = 0; field_index < num_fields;
         ++field_index) {
      const std::size_t target = (field_index / run_len) % k;
      stmodel::CopyField(source, ctx.tape(aux[target]));
      ++fields_to[target];
    }

    // k-way merge of aligned runs back onto the source.
    source.Seek(0);
    std::vector<RunReader> readers;
    readers.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      ctx.tape(aux[i]).Seek(0);
      readers.emplace_back(ctx.tape(aux[i]), fields_to[i]);
    }
    auto any_left = [&readers]() {
      for (const RunReader& r : readers) {
        if (r.remaining() > 0 || r.has_value()) return true;
      }
      return false;
    };
    while (any_left()) {
      std::vector<std::size_t> allowances(k, run_len);
      for (std::size_t i = 0; i < k; ++i) {
        readers[i].LoadNext(allowances[i]);
      }
      while (true) {
        int best = -1;
        for (std::size_t i = 0; i < k; ++i) {
          if (!readers[i].has_value()) continue;
          if (best < 0 ||
              readers[i].value() <
                  readers[static_cast<std::size_t>(best)].value()) {
            best = static_cast<int>(i);
          }
        }
        if (best < 0) break;
        const std::size_t b = static_cast<std::size_t>(best);
        WriteField(source, readers[b].value());
        readers[b].LoadNext(allowances[b]);
      }
    }
  }

  buffer_bits.Release();
  if (stats != nullptr) {
    stats->io = TapesIoStats(ctx, all_tapes).DeltaSince(io_before);
  }
  return Status::OK();
}

}  // namespace rstlab::sorting
