#include "sorting/loser_tree.h"

#include <cassert>

namespace rstlab::sorting {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

LoserTree::LoserTree(std::size_t ways)
    : ways_(RoundUpPow2(ways == 0 ? 1 : ways)) {
  // Padding to a power of two keeps the leaf->node mapping a shift;
  // padding slots stay exhausted forever and lose every match.
  values_.assign(ways_, nullptr);
  losers_.assign(ways_, 0);
}

void LoserTree::SetInitial(std::size_t slot, const std::string* value) {
  assert(slot < ways_);
  values_[slot] = value;
}

bool LoserTree::Beats(std::size_t a, std::size_t b) const {
  const std::string* va = values_[a];
  const std::string* vb = values_[b];
  if (va == nullptr) return false;  // exhausted loses to everything
  if (vb == nullptr) return true;
  const int cmp = va->compare(*vb);
  return cmp < 0 || (cmp == 0 && a < b);
}

void LoserTree::Build() {
  // Bottom-up tournament: leaf i lives at implicit node ways_ + i;
  // internal node n stores the loser of its subtree's final, and the
  // winner bubbles to the parent.
  std::vector<std::size_t> winners(2 * ways_);
  for (std::size_t i = 0; i < ways_; ++i) winners[ways_ + i] = i;
  for (std::size_t node = ways_ - 1; node >= 1; --node) {
    const std::size_t a = winners[2 * node];
    const std::size_t b = winners[2 * node + 1];
    const bool a_wins = Beats(a, b);
    winners[node] = a_wins ? a : b;
    losers_[node] = a_wins ? b : a;
  }
  winner_ = ways_ == 1 ? 0 : winners[1];
  winner_value_ = values_[winner_];
}

void LoserTree::Replace(std::size_t slot, const std::string* value) {
  assert(slot < ways_);
  values_[slot] = value;
  std::size_t current = slot;
  for (std::size_t node = (ways_ + slot) / 2; node >= 1; node /= 2) {
    if (Beats(losers_[node], current)) {
      const std::size_t beaten = current;
      current = losers_[node];
      losers_[node] = beaten;
    }
  }
  winner_ = current;
  winner_value_ = values_[winner_];
}

}  // namespace rstlab::sorting
