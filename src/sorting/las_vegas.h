#ifndef RSTLAB_SORTING_LAS_VEGAS_H_
#define RSTLAB_SORTING_LAS_VEGAS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "stmodel/st_context.h"
#include "util/random.h"
#include "util/status.h"

namespace rstlab::sorting {

/// LasVegas-RST semantics (Definition 4(b)): a machine computing a
/// function either outputs the correct value or answers "I don't know",
/// the latter with probability at most 1/2.

/// The outcome of one Las Vegas sorting run.
struct LasVegasOutcome {
  /// Sorted fields when the run committed to an answer; nullopt = the
  /// machine said "I don't know".
  std::optional<std::vector<std::string>> sorted;
};

/// A (possibly faulty) sorting subroutine: maps fields to a claimed
/// sorted arrangement. Used to exercise the verification layer.
using SortSubroutine = std::function<std::vector<std::string>(
    const std::vector<std::string>& fields)>;

/// A certified Las Vegas sorter: runs `subroutine`, then *verifies* the
/// claimed output with the randomized checksort test — output sorted
/// (deterministic adjacent scan) and multiset-equal to the input
/// (Theorem 8(a) fingerprint, no false negatives). A correct subroutine
/// therefore always yields an answer; a faulty one is caught with
/// probability >= 1/2 per the fingerprint guarantee (measured much
/// higher), in which case the sorter answers "I don't know" instead of
/// returning garbage — exactly the LasVegas-RST contract.
///
/// This is the algorithmic content of Corollary 10 read forward: sorting
/// >= checksort, so a sorting box plus the cheap randomized checker
/// yields a certified sorter; read backward (as the paper does), the
/// checksort lower bound transfers to sorting.
LasVegasOutcome CertifiedSort(const std::vector<std::string>& fields,
                              const SortSubroutine& subroutine, Rng& rng);

/// The Corollary 10 reduction on tapes: solves CHECK-SORT for the
/// instance on tape 0 of `ctx` given any tape-level sorter, by sorting
/// the first half (SortInputToTape machinery) and comparing with the
/// second in one parallel scan. Equivalent to
/// DecideOnTapes(kCheckSort, ...) but stated as a reduction so the
/// lower-bound direction is visible in code.
Result<bool> CheckSortViaSorting(stmodel::StContext& ctx);

/// A deliberately faulty subroutine for tests/experiments: sorts
/// correctly, then corrupts the output with probability `fault_rate`
/// (swapping two elements or mutating a value).
SortSubroutine FaultySorter(double fault_rate, std::uint64_t seed);

}  // namespace rstlab::sorting

#endif  // RSTLAB_SORTING_LAS_VEGAS_H_
