#include "sorting/deciders.h"

#include <optional>
#include <string>

#include "sorting/merge_sort.h"
#include "sorting/parallel_sort.h"
#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"
#include "tape/tape.h"

namespace rstlab::sorting {

namespace {

/// Splits the 2m input fields of tape 0 onto tapes 1 (first half) and 2
/// (second half). Returns m. Two forward scans of the input.
Result<std::size_t> SplitHalves(stmodel::StContext& ctx) {
  tape::Tape& in = ctx.tape(0);
  stmodel::Rewind(in);
  const std::size_t total = stmodel::CountFields(in);
  if (total % 2 != 0) {
    return Status::InvalidArgument("instance must have 2m fields");
  }
  const std::size_t m = total / 2;
  stmodel::Rewind(in);
  for (std::size_t i = 0; i < m; ++i) stmodel::CopyField(in, ctx.tape(1));
  for (std::size_t i = 0; i < m; ++i) stmodel::CopyField(in, ctx.tape(2));
  return m;
}

/// Field-sequence equality of tapes `x` and `y` holding `m` fields each:
/// one parallel forward scan, no internal buffering.
bool SequencesEqual(stmodel::StContext& ctx, std::size_t x, std::size_t y,
                    std::size_t m) {
  tape::Tape& a = ctx.tape(x);
  tape::Tape& b = ctx.tape(y);
  a.Seek(0);
  b.Seek(0);
  for (std::size_t i = 0; i < m; ++i) {
    if (stmodel::CompareFields(a, b) != 0) return false;
  }
  return true;
}

/// Set-wise equality of two *sorted* field sequences: walks both tapes,
/// collapsing duplicates (one metered record buffer per tape).
bool SortedSetsEqual(stmodel::StContext& ctx, std::size_t x,
                     std::size_t y, std::size_t m) {
  ctx.tape(x).Seek(0);
  ctx.tape(y).Seek(0);
  stmodel::SortedFieldCursor a(ctx.tape(x), m, ctx.arena());
  stmodel::SortedFieldCursor b(ctx.tape(y), m, ctx.arena());
  while (!a.exhausted() && !b.exhausted()) {
    if (*a.value() != *b.value()) return false;
    a.AdvanceDistinct();
    b.AdvanceDistinct();
  }
  return a.exhausted() == b.exhausted();
}

}  // namespace

Result<bool> DecideOnTapes(problems::Problem problem,
                           stmodel::StContext& ctx) {
  if (ctx.num_tapes() < kDeciderTapes) {
    return Status::InvalidArgument("decider needs 5 external tapes");
  }
  Result<std::size_t> m_result = SplitHalves(ctx);
  if (!m_result.ok()) return m_result.status();
  const std::size_t m = m_result.value();
  if (m == 0) return true;

  switch (problem) {
    case problems::Problem::kCheckSort: {
      // Sort the first list; the instance is a "yes" iff the sorted
      // first list equals the second list verbatim. SortForDecider
      // routes to the parallel k-way sort when the process sort config
      // selects it, else to the serial seed sort.
      RSTLAB_RETURN_IF_ERROR(SortForDecider(ctx, 1, 3, 4));
      return SequencesEqual(ctx, 1, 2, m);
    }
    case problems::Problem::kMultisetEquality: {
      RSTLAB_RETURN_IF_ERROR(SortForDecider(ctx, 1, 3, 4));
      RSTLAB_RETURN_IF_ERROR(SortForDecider(ctx, 2, 3, 4));
      return SequencesEqual(ctx, 1, 2, m);
    }
    case problems::Problem::kSetEquality: {
      RSTLAB_RETURN_IF_ERROR(SortForDecider(ctx, 1, 3, 4));
      RSTLAB_RETURN_IF_ERROR(SortForDecider(ctx, 2, 3, 4));
      return SortedSetsEqual(ctx, 1, 2, m);
    }
  }
  return Status::Internal("unknown problem");
}

Result<bool> DecideDisjointOnTapes(stmodel::StContext& ctx) {
  if (ctx.num_tapes() < kDeciderTapes) {
    return Status::InvalidArgument("decider needs 5 external tapes");
  }
  Result<std::size_t> m_result = SplitHalves(ctx);
  if (!m_result.ok()) return m_result.status();
  const std::size_t m = m_result.value();
  if (m == 0) return true;
  RSTLAB_RETURN_IF_ERROR(SortForDecider(ctx, 1, 3, 4));
  RSTLAB_RETURN_IF_ERROR(SortForDecider(ctx, 2, 3, 4));

  // Merge scan over the sorted halves: disjoint iff no value coincides.
  ctx.tape(1).Seek(0);
  ctx.tape(2).Seek(0);
  stmodel::SortedFieldCursor a(ctx.tape(1), m, ctx.arena());
  stmodel::SortedFieldCursor b(ctx.tape(2), m, ctx.arena());
  while (!a.exhausted() && !b.exhausted()) {
    if (*a.value() == *b.value()) return false;  // common element found
    if (*a.value() < *b.value()) {
      a.Advance();
    } else {
      b.Advance();
    }
  }
  return true;
}

Status SortInputToTape(stmodel::StContext& ctx) {
  if (ctx.num_tapes() < kDeciderTapes) {
    return Status::InvalidArgument("sorter needs 5 external tapes");
  }
  tape::Tape& in = ctx.tape(0);
  stmodel::Rewind(in);
  while (!stmodel::AtEnd(in)) stmodel::CopyField(in, ctx.tape(1));
  return SortForDecider(ctx, 1, 3, 4);
}

}  // namespace rstlab::sorting
