#ifndef RSTLAB_SORTING_SORT_CONFIG_H_
#define RSTLAB_SORTING_SORT_CONFIG_H_

#include <cstddef>

namespace rstlab::sorting {

/// Configuration of the parallel k-way external merge sort — the knob
/// set behind `--sort-threads` / `--merge-fanout` and their environment
/// fallbacks (`RSTLAB_SORT_THREADS`, `RSTLAB_MERGE_FANOUT`,
/// `RSTLAB_RUN_LENGTH`).
///
/// Everything that shapes the *algorithm* (fanout, run_length,
/// merge_width) is thread-count-independent, so the sorted output, the
/// run/slice structure and the measured (r, s) bill are bit-identical
/// at every thread count; `threads` only decides how many workers chew
/// on the deterministic task list.
struct SortConfig {
  /// Worker threads for run formation and merging (1 = everything runs
  /// inline on the calling thread).
  std::size_t threads = 1;
  /// Merge fanout k (runs merged per group). 0 keeps the serial
  /// binary-cascade seed path (`SortFieldsOnTapes`); >= 2 selects the
  /// parallel k-way sort.
  std::size_t fanout = 0;
  /// Fields per formation run. Constant with respect to N, which is
  /// what keeps the internal-memory bill at O(1) in N (Corollary 7
  /// shape); the pass count is then ceil(log_fanout(m / run_length)).
  std::size_t run_length = 1024;
  /// Number of slices the merge work is split into by binary-search
  /// splitting once fewer than this many groups remain. Constant and
  /// thread-count-independent so the slice structure is deterministic.
  std::size_t merge_width = 8;
  /// Test hook: fail (Status) after run formation, before merging —
  /// exercises the temp-tape cleanup-on-error path. Never set by flag
  /// or environment parsing.
  bool inject_failure_before_merge = false;
};

/// True iff `config` selects the parallel k-way path (fanout >= 2).
bool UsesParallelPath(const SortConfig& config);

/// Process-default config: the override installed by
/// `SetProcessSortConfig` if any, else RSTLAB_SORT_THREADS /
/// RSTLAB_MERGE_FANOUT / RSTLAB_RUN_LENGTH read from the environment,
/// else the serial seed path. `sorting::SortForDecider` consults this,
/// which is how CI pushes the whole decider suite through the parallel
/// sort without touching each test.
SortConfig DefaultSortConfig();

/// Installs `config` as the process default handed out by
/// `DefaultSortConfig()`.
void SetProcessSortConfig(const SortConfig& config);

/// Extracts `--sort-threads=T`, `--merge-fanout=K` and `--run-length=L`
/// from argv (removing them, like `extmem::ParseBackendFlags`),
/// starting from `DefaultSortConfig()` so flags override environment
/// overrides defaults. Unrecognized values keep the default and warn on
/// stderr.
SortConfig ParseSortFlags(int* argc, char** argv);

}  // namespace rstlab::sorting

#endif  // RSTLAB_SORTING_SORT_CONFIG_H_
