#ifndef RSTLAB_SORTING_PARALLEL_SORT_H_
#define RSTLAB_SORTING_PARALLEL_SORT_H_

#include <cstddef>
#include <cstdint>

#include "extmem/io_stats.h"
#include "sorting/merge_sort.h"
#include "sorting/sort_config.h"
#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::sorting {

/// Statistics of one parallel k-way external sort.
struct ParallelSortStats {
  /// Number of '#'-terminated fields sorted.
  std::size_t num_fields = 0;
  /// Longest field payload seen.
  std::size_t max_field_len = 0;
  /// Formation runs R = ceil(m / run_length).
  std::size_t num_runs = 0;
  /// k-way merge passes P = ceil(log_fanout(R)).
  std::size_t merge_passes = 0;
  /// The canonical scratch-tape reversal bill charged to the context
  /// (4 * fanout * P + 2; see DESIGN.md).
  std::uint64_t scratch_reversals = 0;
  /// The scratch external-space bill (two lane generations in flight).
  std::size_t scratch_cells = 0;
  /// Block I/O of the source tape plus every spill lane, delta over the
  /// sort; includes the reader-level prefetch_issued/prefetch_hits
  /// counters of the double-buffered run readers.
  extmem::IoStats io;
};

/// Sorts the '#'-terminated fields of tape `src` in ascending
/// lexicographic order by parallel k-way external merge sort
/// (`config.fanout` >= 2 required):
///
///   1. run formation — the input is cut into runs of
///      `config.run_length` fields, sorted in internal memory by the
///      worker pool and written to spill lanes (raw `extmem` storages
///      on the context's own backend);
///   2. repeated k-way merge passes — groups of `fanout` runs are
///      merged through a tournament (loser) tree, one task per group,
///      and once fewer than `merge_width` groups remain each group is
///      additionally split into slices by binary-search splitting so
///      every worker stays busy down to the final pass;
///   3. a final sequential scan concatenates the surviving run back
///      onto `src`.
///
/// The sorted output, the run/slice structure and the measured (r, s)
/// are bit-identical at every `config.threads` and on both storage
/// backends: the context's tapes are only ever driven by the calling
/// thread, worker tasks touch nothing but their own spill-lane ranges,
/// and the scratch bill is the canonical serial 2k-tape machine's
/// (charged via `StContext::ChargeScratch`, a closed formula in m,
/// fanout and run_length — see DESIGN.md "Spill billing"). The profile
/// stays the Corollary 7 shape: O(log N) scans, internal memory
/// independent of N for constant-length fields.
///
/// On return the sorted fields are on `src`. Every spill lane is
/// destroyed (and, on the file backend, unlinked) on success and
/// failure paths alike.
Status ParallelSortFieldsOnTape(stmodel::StContext& ctx, std::size_t src,
                                const SortConfig& config,
                                ParallelSortStats* stats = nullptr);

/// The config-dispatched sort the decision procedures use: routes to
/// `ParallelSortFieldsOnTape` when `DefaultSortConfig()` selects the
/// parallel path (fanout >= 2), else to the serial seed
/// `SortFieldsOnTapes(ctx, src, aux1, aux2)`. `stats->passes` counts
/// formation plus merge passes on the parallel path.
Status SortForDecider(stmodel::StContext& ctx, std::size_t src,
                      std::size_t aux1, std::size_t aux2,
                      SortStats* stats = nullptr);

}  // namespace rstlab::sorting

#endif  // RSTLAB_SORTING_PARALLEL_SORT_H_
