#ifndef RSTLAB_SORTING_LOSER_TREE_H_
#define RSTLAB_SORTING_LOSER_TREE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rstlab::sorting {

/// Tournament (loser) tree over k sorted sources — the classic k-way
/// merge selector. Each source exposes its current front field via a
/// stable `const std::string*` owned by the caller (nullptr =
/// exhausted); popping the overall minimum and replaying the new front
/// costs O(log k) comparisons, versus the O(k) linear scan of the seed
/// `SortFieldsOnTapesKWay` (the E-series microbench quantifies the
/// difference across fanouts).
///
/// Ties break on the lower slot index, so the merge is stable with
/// respect to the deterministic run numbering — one of the invariants
/// behind bit-identical output at every thread count.
class LoserTree {
 public:
  /// A tree over `ways` slots, all initially exhausted.
  explicit LoserTree(std::size_t ways);

  /// Number of slots.
  std::size_t ways() const { return ways_; }

  /// Sets slot `slot`'s front field (nullptr = exhausted). Use before
  /// `Build`; after that, use `Replace`.
  void SetInitial(std::size_t slot, const std::string* value);

  /// Plays the initial tournament. Call once, after every slot's front
  /// is set.
  void Build();

  /// True iff every slot is exhausted.
  bool empty() const { return winner_value_ == nullptr; }

  /// Slot index holding the overall minimum. Requires !empty().
  std::size_t top() const { return winner_; }

  /// The minimum field itself. Requires !empty().
  const std::string& top_value() const { return *winner_value_; }

  /// Installs the new front of slot `slot` (nullptr = exhausted) and
  /// replays its leaf-to-root path: O(log k) comparisons.
  void Replace(std::size_t slot, const std::string* value);

 private:
  /// True iff slot `a`'s front beats (sorts before) slot `b`'s.
  bool Beats(std::size_t a, std::size_t b) const;

  std::size_t ways_;
  std::vector<const std::string*> values_;  // front of each slot
  std::vector<std::size_t> losers_;         // internal nodes: loser slot
  std::size_t winner_ = 0;
  const std::string* winner_value_ = nullptr;
};

}  // namespace rstlab::sorting

#endif  // RSTLAB_SORTING_LOSER_TREE_H_
