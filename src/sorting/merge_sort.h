#ifndef RSTLAB_SORTING_MERGE_SORT_H_
#define RSTLAB_SORTING_MERGE_SORT_H_

#include <cstddef>
#include <vector>

#include "extmem/io_stats.h"
#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::sorting {

/// Statistics of one external merge sort.
struct SortStats {
  /// Number of distribute+merge passes (= ceil(log2(#fields))).
  std::size_t passes = 0;
  /// Number of '#'-terminated fields sorted.
  std::size_t num_fields = 0;
  /// Block-level I/O the sort's tapes incurred (delta over the sort;
  /// all zero on the in-memory backend). With a file backend the sort
  /// genuinely spills to disk, and this is the spill bill: roughly
  /// (passes + 1) sequential sweeps over the data in blocks.
  extmem::IoStats io;
};

/// Sorts the '#'-terminated fields of tape `src` in ascending
/// lexicographic order using tapes `aux1` and `aux2` as working storage,
/// by balanced two-way external merge sort.
///
/// Resource profile (the Corollary 7 upper-bound side): O(log N) head
/// reversals — a constant number per pass, ceil(log2 m) passes — and
/// internal memory of O(max field length + log N) bits (two record
/// comparison buffers plus counters).
///
/// The paper's O(1)-internal-space bound cites the Chen-Yap construction
/// [7, Lemma 7], whose head-recycling comparison is considerably more
/// intricate; this implementation is the "standard merge sort" the paper
/// itself invokes for the SHORT problem variants, where fields have
/// O(log N) bits and the measured internal space is O(log N). The
/// quantity the lower-bound experiments test — Theta(log N) scans — is
/// identical for both constructions.
///
/// On return the sorted fields are on `src` and `stats` (if non-null)
/// holds pass counts. Fails if tape indices are invalid or coincide.
Status SortFieldsOnTapes(stmodel::StContext& ctx, std::size_t src,
                         std::size_t aux1, std::size_t aux2,
                         SortStats* stats = nullptr);

/// k-way generalization: sorts tape `src` using the tapes in `aux`
/// (k = aux.size() >= 2) as working storage, with ceil(log_k m) passes —
/// the tape-count/scan-count trade-off inherent in the ST model (more
/// external devices, fewer sequential scans; the ablation bench A4
/// sweeps k). Internal memory grows to k record buffers.
Status SortFieldsOnTapesKWay(stmodel::StContext& ctx, std::size_t src,
                             const std::vector<std::size_t>& aux,
                             SortStats* stats = nullptr);

}  // namespace rstlab::sorting

#endif  // RSTLAB_SORTING_MERGE_SORT_H_
