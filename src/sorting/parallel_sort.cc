#include "sorting/parallel_sort.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "extmem/storage.h"
#include "parallel/thread_pool.h"
#include "sorting/loser_tree.h"
#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"
#include "tape/tape.h"

namespace rstlab::sorting {

namespace {

constexpr char kSep = stmodel::kFieldSeparator;

/// One field-start sample per `kIndexGranularity` fields of a run, so
/// splitter probes binary-search the samples and then scan at most this
/// many fields.
constexpr std::size_t kIndexGranularity = 256;

/// Cells moved per bulk storage call: one readahead window of the
/// configured block geometry, clamped so the mem backend still batches
/// and a huge readahead setting cannot balloon the per-reader buffers.
std::size_t ChunkCells(const extmem::StorageOptions& options) {
  const std::size_t cells =
      options.block_size * std::max<std::size_t>(1, options.readahead_blocks);
  return std::clamp<std::size_t>(cells, 4096, std::size_t{1} << 20);
}

/// Reader-level double-buffer counters, shared by every reader of a
/// sort (workers increment concurrently).
struct PrefetchCounters {
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> hits{0};
};

/// One spill lane: a raw append-only `extmem` storage shared by the
/// run writers and readers. Lanes are never wrapped in a `tape::Tape`,
/// so nothing here can touch the metered reversal accounting — the
/// model bill for the scratch device is charged separately as a closed
/// formula (see "Spill billing" in DESIGN.md). The mutex makes the
/// storage safe under concurrent tasks (the file backend's cache
/// mutates even on reads); bulk chunk I/O keeps it uncontended.
class SpillLane {
 public:
  static Result<std::unique_ptr<SpillLane>> Create(
      const extmem::StorageOptions& options) {
    Result<std::unique_ptr<extmem::TapeStorage>> storage =
        extmem::CreateStorage(options);
    if (!storage.ok()) return storage.status();
    return std::unique_ptr<SpillLane>(
        new SpillLane(std::move(storage).value()));
  }

  /// Appends `data`, returning the offset it begins at.
  std::size_t Append(std::string_view data) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t offset = append_pos_;
    storage_->WriteRange(offset, data);
    append_pos_ += data.size();
    return offset;
  }

  /// Reads `count` cells starting at `pos` into `*out`.
  void ReadInto(std::size_t pos, std::size_t count, std::string* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    *out = storage_->ReadRange(pos, count);
  }

  /// Discards the content (between merge passes, once every run on this
  /// lane has been consumed) so the footprint stays at two generations.
  void Truncate() {
    std::lock_guard<std::mutex> lock(mutex_);
    storage_->Assign(std::string());
    append_pos_ = 0;
  }

  extmem::IoStats io_stats() {
    std::lock_guard<std::mutex> lock(mutex_);
    return storage_->io_stats();
  }

 private:
  explicit SpillLane(std::unique_ptr<extmem::TapeStorage> storage)
      : storage_(std::move(storage)) {}

  std::mutex mutex_;
  std::unique_ptr<extmem::TapeStorage> storage_;
  std::size_t append_pos_ = 0;
};

/// A contiguous piece of one run on one lane. Segments always hold
/// whole fields (writers flush at field boundaries), which is what
/// lets slice points be plain (segment, cell) pairs.
struct Segment {
  SpillLane* lane = nullptr;
  std::size_t offset = 0;
  std::size_t cells = 0;
  std::size_t fields = 0;
};

/// A sampled field start: field number `field_rank` begins `cell`
/// cells into segment `segment`.
struct IndexEntry {
  std::size_t field_rank = 0;
  std::size_t segment = 0;
  std::size_t cell = 0;
};

/// One sorted run: an ordered segment list plus the sparse field-start
/// index used by binary-search splitting. Physical placement (which
/// lane, which offset) is timing-dependent; everything derived from a
/// run — its field sequence, its slice boundaries — is not.
struct Run {
  std::vector<Segment> segments;
  std::vector<IndexEntry> index;
  std::size_t fields = 0;
  std::size_t cells = 0;
};

/// A position inside a run, always at a field start; `segment ==
/// segments.size()` (cell 0) is the end.
struct SlicePoint {
  std::size_t segment = 0;
  std::size_t cell = 0;

  bool operator==(const SlicePoint& other) const {
    return segment == other.segment && cell == other.cell;
  }
};

SlicePoint RunEnd(const Run& run) { return SlicePoint{run.segments.size(), 0}; }

/// Accumulates sorted fields into chunk-sized buffers, appending each
/// full buffer to the lane as one segment and sampling every
/// `stride`-th field start into the run's index.
class RunWriter {
 public:
  RunWriter(SpillLane* lane, std::size_t chunk_cells, std::size_t stride)
      : lane_(lane), chunk_cells_(chunk_cells),
        stride_(std::max<std::size_t>(1, stride)) {
    buffer_.reserve(chunk_cells_);
  }

  void Append(std::string_view payload) {
    if (run_.fields % stride_ == 0) {
      run_.index.push_back(
          IndexEntry{run_.fields, run_.segments.size(), buffer_.size()});
    }
    buffer_.append(payload);
    buffer_.push_back(kSep);
    ++run_.fields;
    ++buffer_fields_;
    if (buffer_.size() >= chunk_cells_) Flush();
  }

  Run Finish() {
    Flush();
    return std::move(run_);
  }

 private:
  void Flush() {
    if (buffer_.empty()) return;
    const std::size_t offset = lane_->Append(buffer_);
    run_.segments.push_back(
        Segment{lane_, offset, buffer_.size(), buffer_fields_});
    run_.cells += buffer_.size();
    buffer_.clear();
    buffer_fields_ = 0;
  }

  SpillLane* lane_;
  std::size_t chunk_cells_;
  std::size_t stride_;
  std::string buffer_;
  std::size_t buffer_fields_ = 0;
  Run run_;
};

/// Streams the fields of one run slice [begin, end) through a
/// double-buffered pair of chunk buffers: while the active buffer is
/// being parsed, the standby buffer already holds the next chunk, so
/// the handoff costs a swap instead of a storage round-trip, the lane
/// mutex is taken once per chunk, and the block cache underneath sees
/// deep sequential reads for its direction-hinted readahead to run
/// ahead of. `counters` (optional) observes the standby fills.
class RunReader {
 public:
  RunReader(const Run& run, SlicePoint begin, SlicePoint end,
            std::size_t chunk_cells, PrefetchCounters* counters)
      : run_(run), frontier_(begin), end_(end), chunk_cells_(chunk_cells),
        counters_(counters) {
    FillStandby();
  }

  /// Loads the next field into `field()`; false when the slice is
  /// exhausted.
  bool Advance() {
    field_.clear();
    while (true) {
      if (parse_pos_ < active_.size()) {
        const char* base = active_.data() + parse_pos_;
        const std::size_t span = active_.size() - parse_pos_;
        const char* sep = static_cast<const char*>(
            std::memchr(base, kSep, span));
        if (sep != nullptr) {
          field_.append(base, static_cast<std::size_t>(sep - base));
          parse_pos_ += static_cast<std::size_t>(sep - base) + 1;
          return true;
        }
        field_.append(base, span);
        parse_pos_ = active_.size();
      }
      if (!RefillActive()) {
        assert(field_.empty() && "segment ended mid-field");
        return false;
      }
    }
  }

  /// The field loaded by the last successful Advance(). The reference
  /// is stable across Advance() calls (contents change), which is what
  /// the loser tree's slot pointers rely on.
  const std::string& field() const { return field_; }

 private:
  /// Reads the next chunk of the slice into `*out`; false at the end.
  bool LoadChunk(std::string* out) {
    while (frontier_.segment < run_.segments.size() &&
           !(frontier_ == end_) &&
           frontier_.cell >= run_.segments[frontier_.segment].cells) {
      ++frontier_.segment;
      frontier_.cell = 0;
    }
    if (frontier_ == end_ || frontier_.segment >= run_.segments.size()) {
      return false;
    }
    const Segment& segment = run_.segments[frontier_.segment];
    const std::size_t limit =
        frontier_.segment == end_.segment ? end_.cell : segment.cells;
    const std::size_t take =
        std::min(chunk_cells_, limit - frontier_.cell);
    if (take == 0) return false;
    segment.lane->ReadInto(segment.offset + frontier_.cell, take, out);
    assert(out->size() == take);
    frontier_.cell += take;
    return true;
  }

  void FillStandby() {
    if (LoadChunk(&standby_)) {
      standby_ready_ = true;
      if (counters_ != nullptr) {
        counters_->issued.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  bool RefillActive() {
    const bool was_ready = standby_ready_;
    if (!standby_ready_) FillStandby();
    if (!standby_ready_) return false;
    active_.swap(standby_);
    standby_.clear();
    standby_ready_ = false;
    parse_pos_ = 0;
    if (was_ready && counters_ != nullptr) {
      counters_->hits.fetch_add(1, std::memory_order_relaxed);
    }
    FillStandby();
    return true;
  }

  const Run& run_;
  SlicePoint frontier_;  // next unread cell
  SlicePoint end_;
  std::size_t chunk_cells_;
  PrefetchCounters* counters_;
  std::string active_;
  std::string standby_;
  bool standby_ready_ = false;
  std::size_t parse_pos_ = 0;
  std::string field_;
};

/// The field at `rank` (0-based) of `run`: binary search the sparse
/// index, then scan forward at most kIndexGranularity fields.
std::string FieldAtRank(const Run& run, std::size_t rank,
                        std::size_t chunk_cells) {
  assert(rank < run.fields);
  auto it = std::upper_bound(
      run.index.begin(), run.index.end(), rank,
      [](std::size_t r, const IndexEntry& e) { return r < e.field_rank; });
  assert(it != run.index.begin());
  const IndexEntry& entry = *(it - 1);
  RunReader reader(run, SlicePoint{entry.segment, entry.cell}, RunEnd(run),
                   chunk_cells, nullptr);
  for (std::size_t i = entry.field_rank; i < rank; ++i) {
    const bool ok = reader.Advance();
    assert(ok);
    (void)ok;
  }
  const bool ok = reader.Advance();
  assert(ok);
  (void)ok;
  return reader.field();
}

/// The field beginning at index entry `j` of `run`.
std::string FieldAtEntry(const Run& run, std::size_t j,
                         std::size_t chunk_cells) {
  const IndexEntry& entry = run.index[j];
  RunReader reader(run, SlicePoint{entry.segment, entry.cell}, RunEnd(run),
                   chunk_cells, nullptr);
  const bool ok = reader.Advance();
  assert(ok);
  (void)ok;
  return reader.field();
}

/// Scans fields of `run` from `start` (a field start) for the first
/// field >= value, returning its position (or the run end).
SlicePoint ScanLowerBound(const Run& run, SlicePoint start,
                          const std::string& value,
                          std::size_t chunk_cells) {
  std::size_t seg = start.segment;
  std::size_t first_cell = start.cell;
  std::string partial;
  std::string chunk;
  for (; seg < run.segments.size(); ++seg, first_cell = 0) {
    const Segment& segment = run.segments[seg];
    std::size_t field_start = first_cell;
    std::size_t scan = first_cell;
    while (scan < segment.cells) {
      const std::size_t take =
          std::min(chunk_cells, segment.cells - scan);
      segment.lane->ReadInto(segment.offset + scan, take, &chunk);
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (chunk[i] == kSep) {
          if (partial.compare(value) >= 0) {
            return SlicePoint{seg, field_start};
          }
          partial.clear();
          field_start = scan + i + 1;
        } else {
          partial.push_back(chunk[i]);
        }
      }
      scan += chunk.size();
    }
    assert(partial.empty() && "segment ended mid-field");
  }
  return RunEnd(run);
}

/// First field of `run` that is >= `value`: binary search the index
/// samples, then a bounded linear scan between two samples.
SlicePoint LowerBoundPoint(const Run& run, const std::string& value,
                           std::size_t chunk_cells) {
  if (run.fields == 0) return RunEnd(run);
  // First index entry whose sampled field is >= value.
  std::size_t lo = 0;
  std::size_t hi = run.index.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (FieldAtEntry(run, mid, chunk_cells).compare(value) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // The boundary lies between sample lo-1 and sample lo; scan from the
  // last sample known to be < value (or the run start).
  const SlicePoint start =
      lo == 0 ? SlicePoint{0, 0}
              : SlicePoint{run.index[lo - 1].segment, run.index[lo - 1].cell};
  return ScanLowerBound(run, start, value, chunk_cells);
}

/// Concatenates slice sub-runs into the group's output run, rebasing
/// segment numbers and index ranks.
Run ConcatRuns(std::vector<Run> parts) {
  Run out;
  for (Run& part : parts) {
    const std::size_t segment_base = out.segments.size();
    const std::size_t rank_base = out.fields;
    for (const IndexEntry& e : part.index) {
      out.index.push_back(
          IndexEntry{e.field_rank + rank_base, e.segment + segment_base,
                     e.cell});
    }
    for (const Segment& s : part.segments) out.segments.push_back(s);
    out.fields += part.fields;
    out.cells += part.cells;
  }
  return out;
}

/// An unsorted run's worth of input fields, staged in one contiguous
/// buffer (payload offsets, separators included in `cells`).
struct RunBuffer {
  std::string cells;
  std::vector<std::pair<std::size_t, std::size_t>> fields;  // (offset, len)
};

std::string_view FieldView(const RunBuffer& buffer,
                           const std::pair<std::size_t, std::size_t>& f) {
  return std::string_view(buffer.cells).substr(f.first, f.second);
}

/// Formation task: sort one run buffer in internal memory and spill it.
void SortRunTask(RunBuffer& buffer, SpillLane* lane, std::size_t chunk_cells,
                 Run* out) {
  std::sort(buffer.fields.begin(), buffer.fields.end(),
            [&buffer](const std::pair<std::size_t, std::size_t>& a,
                      const std::pair<std::size_t, std::size_t>& b) {
              return FieldView(buffer, a) < FieldView(buffer, b);
            });
  const std::size_t stride =
      std::max<std::size_t>(1, buffer.fields.size() / kIndexGranularity);
  RunWriter writer(lane, chunk_cells, stride);
  for (const auto& f : buffer.fields) writer.Append(FieldView(buffer, f));
  *out = writer.Finish();
}

/// One merge task: `runs[i]` restricted to [begins[i], ends[i]),
/// tournament-merged onto `lane`.
struct SliceTask {
  std::vector<const Run*> runs;
  std::vector<SlicePoint> begins;
  std::vector<SlicePoint> ends;
  SpillLane* lane = nullptr;
  std::size_t stride = 1;
  Run* out = nullptr;
};

void MergeSliceTask(const SliceTask& task, std::size_t chunk_cells,
                    PrefetchCounters* counters) {
  const std::size_t k = task.runs.size();
  std::vector<std::unique_ptr<RunReader>> readers;
  readers.reserve(k);
  LoserTree tree(k);
  for (std::size_t i = 0; i < k; ++i) {
    readers.push_back(std::make_unique<RunReader>(
        *task.runs[i], task.begins[i], task.ends[i], chunk_cells, counters));
    tree.SetInitial(i, readers[i]->Advance() ? &readers[i]->field() : nullptr);
  }
  tree.Build();
  RunWriter writer(task.lane, chunk_cells, task.stride);
  while (!tree.empty()) {
    const std::size_t slot = tree.top();
    writer.Append(readers[slot]->field());
    tree.Replace(slot,
                 readers[slot]->Advance() ? &readers[slot]->field() : nullptr);
  }
  *task.out = writer.Finish();
}

/// Runs tasks inline (threads == 1) or on a worker pool, converting
/// worker exceptions into Status at the wait points.
class TaskRunner {
 public:
  explicit TaskRunner(std::size_t threads) {
    if (threads > 1) pool_ = std::make_unique<parallel::ThreadPool>(threads);
  }

  void Submit(std::function<void()> task) {
    if (pool_ != nullptr) {
      pool_->Submit(std::move(task));
      return;
    }
    if (!inline_error_.ok()) return;
    inline_error_ = Guarded(task);
  }

  Status Wait() {
    if (pool_ == nullptr) {
      Status status = inline_error_;
      inline_error_ = Status::OK();
      return status;
    }
    return Guarded([this]() { pool_->Wait(); });
  }

 private:
  static Status Guarded(const std::function<void()>& f) {
    try {
      f();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("parallel sort worker: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("parallel sort worker: unknown error");
    }
    return Status::OK();
  }

  std::unique_ptr<parallel::ThreadPool> pool_;
  Status inline_error_;
};

}  // namespace

Status ParallelSortFieldsOnTape(stmodel::StContext& ctx, std::size_t src,
                                const SortConfig& config,
                                ParallelSortStats* stats) {
  if (src >= ctx.num_tapes()) {
    return Status::InvalidArgument("parallel sort: bad source tape index");
  }
  if (config.fanout < 2) {
    return Status::InvalidArgument("parallel sort needs fanout >= 2");
  }
  const std::size_t fanout = config.fanout;
  const std::size_t run_length = std::max<std::size_t>(1, config.run_length);
  const std::size_t merge_width = std::max<std::size_t>(1, config.merge_width);
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  const std::size_t chunk = ChunkCells(ctx.storage_options());

  tape::Tape& source = ctx.tape(src);
  const extmem::IoStats source_io_before = source.io_stats();
  if (stats != nullptr) *stats = ParallelSortStats{};

  // Pass 0: count fields, the longest payload, and the content cells
  // (one forward scan in bulk chunks).
  source.Seek(0);
  std::size_t num_fields = 0;
  std::size_t max_len = 0;
  std::size_t content_cells = 0;
  {
    const std::size_t content = source.cells_used();
    std::size_t read_cells = 0;
    std::size_t current_len = 0;
    bool stop = false;
    while (!stop && read_cells < content) {
      const std::string data =
          source.ReadForward(std::min(chunk, content - read_cells));
      read_cells += data.size();
      for (const char c : data) {
        if (c == tape::kBlank) {
          stop = true;
          break;
        }
        ++content_cells;
        if (c == kSep) {
          ++num_fields;
          max_len = std::max(max_len, current_len);
          current_len = 0;
        } else {
          ++current_len;
        }
      }
    }
    if (current_len > 0) {
      // Unterminated trailing field: sorted output rewrites it with a
      // separator, so bill the extra cell now.
      ++num_fields;
      max_len = std::max(max_len, current_len);
      ++content_cells;
    }
  }
  if (stats != nullptr) {
    stats->num_fields = num_fields;
    stats->max_field_len = max_len;
  }
  if (num_fields <= 1) return Status::OK();

  const std::size_t num_runs = (num_fields + run_length - 1) / run_length;
  std::size_t merge_passes = 0;
  for (std::size_t r = num_runs; r > 1; r = (r + fanout - 1) / fanout) {
    ++merge_passes;
  }
  if (stats != nullptr) {
    stats->num_runs = num_runs;
    stats->merge_passes = merge_passes;
  }

  // Spill lanes: two generations (ping/pong across passes), a few
  // lanes each so concurrent writers do not serialize on one mutex.
  // Lane count is physical layout only — nothing measured depends on it.
  const std::size_t lane_count = std::min<std::size_t>(
      8, std::max<std::size_t>(1, threads));
  std::vector<std::unique_ptr<SpillLane>> lanes_ping;
  std::vector<std::unique_ptr<SpillLane>> lanes_pong;
  for (std::size_t i = 0; i < lane_count; ++i) {
    Result<std::unique_ptr<SpillLane>> lane =
        SpillLane::Create(ctx.storage_options());
    if (!lane.ok()) return lane.status();
    lanes_ping.push_back(std::move(lane).value());
    if (merge_passes >= 1) {
      lane = SpillLane::Create(ctx.storage_options());
      if (!lane.ok()) return lane.status();
      lanes_pong.push_back(std::move(lane).value());
    }
  }

  stmodel::InternalArena& arena = ctx.arena();
  const std::size_t ctr_bits =
      stmodel::BitsFor(std::max<std::size_t>(1, ctx.input_size()));
  // Internal-memory bill, same convention as the seed sort (1 bit per
  // 0/1 character of a buffered record, counters at BitsFor(N)): the
  // formation run buffer, then the merge's fanout record buffers plus
  // the loser tree's slot registers. All formula-shaped, hence
  // identical at every thread count and on every backend.
  stmodel::MeteredUint64 counters(arena, (fanout + 3) * ctr_bits);
  (void)counters;

  PrefetchCounters prefetch;
  TaskRunner runner(threads);

  // Phase 1: run formation. The calling thread streams the source tape
  // forward in bulk chunks, staging run_length fields per buffer;
  // workers sort each buffer in internal memory and spill it as one
  // sorted run. Buffers in flight are bounded for memory, not billed
  // as s (host buffer-pool memory, like the block cache — the model
  // machine's formation buffer is billed above).
  std::vector<Run> runs(num_runs);
  {
    auto formation_bits =
        arena.Allocate(run_length * std::max<std::size_t>(1, max_len));
    source.Seek(0);
    const std::size_t batch = threads > 1 ? 2 * threads : 1;
    std::vector<std::unique_ptr<RunBuffer>> in_flight;
    std::unique_ptr<RunBuffer> buffer = std::make_unique<RunBuffer>();
    std::size_t run_id = 0;
    Status worker_status = Status::OK();

    auto dispatch = [&](std::unique_ptr<RunBuffer> full) -> Status {
      if (in_flight.size() >= batch) {
        RSTLAB_RETURN_IF_ERROR(runner.Wait());
        in_flight.clear();
      }
      RunBuffer* raw = full.get();
      in_flight.push_back(std::move(full));
      if (run_id >= num_runs) {
        return Status::Internal("parallel sort: run count drifted");
      }
      Run* out = &runs[run_id];
      SpillLane* lane = lanes_ping[run_id % lanes_ping.size()].get();
      ++run_id;
      runner.Submit(
          [raw, lane, chunk, out]() { SortRunTask(*raw, lane, chunk, out); });
      return Status::OK();
    };

    const std::size_t content = source.cells_used();
    std::size_t read_cells = 0;
    std::string carry;
    bool stop = false;
    while (!stop && read_cells < content && worker_status.ok()) {
      std::string data =
          source.ReadForward(std::min(chunk, content - read_cells));
      read_cells += data.size();
      const std::size_t blank =
          data.find(tape::kBlank);
      if (blank != std::string::npos) {
        data.resize(blank);
        stop = true;
      }
      carry += data;
      std::size_t pos = 0;
      std::size_t sep;
      while ((sep = carry.find(kSep, pos)) != std::string::npos) {
        const std::size_t offset = buffer->cells.size();
        const std::size_t len = sep - pos;
        buffer->cells.append(carry, pos, len + 1);  // payload + separator
        buffer->fields.emplace_back(offset, len);
        pos = sep + 1;
        if (buffer->fields.size() == run_length) {
          worker_status = dispatch(std::move(buffer));
          if (!worker_status.ok()) break;
          buffer = std::make_unique<RunBuffer>();
        }
      }
      carry.erase(0, pos);
    }
    if (worker_status.ok() && !carry.empty()) {
      // Unterminated trailing field (defensive; inputs end in '#').
      const std::size_t offset = buffer->cells.size();
      buffer->cells.append(carry);
      buffer->cells.push_back(kSep);
      buffer->fields.emplace_back(offset, carry.size());
    }
    if (worker_status.ok() && !buffer->fields.empty()) {
      worker_status = dispatch(std::move(buffer));
    }
    if (worker_status.ok()) worker_status = runner.Wait();
    if (!worker_status.ok()) return worker_status;
    if (run_id != num_runs) {
      return Status::Internal("parallel sort: run count drifted");
    }
    formation_bits.Release();
  }

  if (config.inject_failure_before_merge) {
    return Status::Internal("parallel sort: injected failure before merge");
  }

  // Phase 2: k-way merge passes through the loser tree. Groups of
  // `fanout` runs merge independently; once fewer than `merge_width`
  // groups remain, each group is split into value-disjoint slices by
  // binary-search splitting so the task list stays as wide as the
  // worker pool. Group and slice structure depend only on (m, fanout,
  // run_length, merge_width) — never on the thread count.
  std::vector<Run> current = std::move(runs);
  {
    auto merge_bits = arena.Allocate(
        fanout * std::max<std::size_t>(1, max_len) + 2 * fanout * ctr_bits);
    std::size_t epoch = 0;
    while (current.size() > 1) {
      ++epoch;
      std::vector<std::unique_ptr<SpillLane>>& out_lanes =
          epoch % 2 == 1 ? lanes_pong : lanes_ping;
      // The generation written two passes ago has been fully consumed;
      // reclaim its space before writing this pass onto the same lanes.
      for (auto& lane : out_lanes) lane->Truncate();

      const std::size_t live = current.size();
      const std::size_t groups = (live + fanout - 1) / fanout;
      const std::size_t slice_count =
          groups >= merge_width ? 1 : (merge_width + groups - 1) / groups;

      std::vector<Run> slice_out(groups * slice_count);
      std::vector<SliceTask> tasks;
      tasks.reserve(groups * slice_count);
      for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t base = g * fanout;
        const std::size_t count = std::min(fanout, live - base);
        std::size_t group_fields = 0;
        for (std::size_t i = 0; i < count; ++i) {
          group_fields += current[base + i].fields;
        }
        const std::size_t stride =
            std::max<std::size_t>(1, group_fields / kIndexGranularity);

        // Per-run slice boundaries: splitters are fields of the
        // group's largest run at evenly spaced ranks; each run is cut
        // at the first field >= each splitter, so equal slices across
        // runs cover value-disjoint intervals and their merged outputs
        // concatenate, in slice order, to the sorted group.
        std::vector<std::vector<SlicePoint>> bounds(count);
        for (std::size_t i = 0; i < count; ++i) {
          bounds[i].assign(slice_count + 1, SlicePoint{0, 0});
          bounds[i][slice_count] = RunEnd(current[base + i]);
        }
        if (slice_count > 1) {
          std::size_t pivot = 0;
          for (std::size_t i = 1; i < count; ++i) {
            if (current[base + i].fields > current[base + pivot].fields) {
              pivot = i;
            }
          }
          const Run& pivot_run = current[base + pivot];
          for (std::size_t q = 1; q < slice_count; ++q) {
            const std::size_t rank = q * pivot_run.fields / slice_count;
            const std::string splitter = FieldAtRank(pivot_run, rank, chunk);
            for (std::size_t i = 0; i < count; ++i) {
              bounds[i][q] =
                  LowerBoundPoint(current[base + i], splitter, chunk);
            }
          }
        }

        for (std::size_t q = 0; q < slice_count; ++q) {
          SliceTask task;
          task.runs.reserve(count);
          task.begins.reserve(count);
          task.ends.reserve(count);
          for (std::size_t i = 0; i < count; ++i) {
            task.runs.push_back(&current[base + i]);
            task.begins.push_back(bounds[i][q]);
            task.ends.push_back(bounds[i][q + 1]);
          }
          const std::size_t task_id = g * slice_count + q;
          task.lane = out_lanes[task_id % out_lanes.size()].get();
          task.stride = stride;
          task.out = &slice_out[task_id];
          tasks.push_back(std::move(task));
        }
      }

      for (const SliceTask& task : tasks) {
        runner.Submit(
            [&task, chunk, &prefetch]() {
              MergeSliceTask(task, chunk, &prefetch);
            });
      }
      RSTLAB_RETURN_IF_ERROR(runner.Wait());

      std::vector<Run> next;
      next.reserve(groups);
      for (std::size_t g = 0; g < groups; ++g) {
        std::vector<Run> parts(
            std::make_move_iterator(slice_out.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        g * slice_count)),
            std::make_move_iterator(slice_out.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        (g + 1) * slice_count)));
        next.push_back(ConcatRuns(std::move(parts)));
      }
      current = std::move(next);
    }
    merge_bits.Release();
  }

  // Phase 3: one metered sequential scan concatenates the surviving
  // run back onto the source tape.
  assert(current.size() == 1);
  source.Seek(0);
  {
    std::string data;
    for (const Segment& segment : current[0].segments) {
      std::size_t done = 0;
      while (done < segment.cells) {
        segment.lane->ReadInto(segment.offset + done,
                               std::min(chunk, segment.cells - done), &data);
        if (data.empty()) {
          return Status::Internal("parallel sort: truncated spill lane");
        }
        source.WriteForward(data);
        done += data.size();
      }
    }
  }

  // Spill billing: the canonical serial 2k-tape machine's bill, a
  // closed formula (DESIGN.md "Spill billing"): each of the P merge
  // passes rewinds and scans k in-tapes and k out-tapes (2 reversals
  // each), plus the final rewind-and-read of the result; space is the
  // two generations in flight.
  const std::uint64_t scratch_reversals =
      4 * static_cast<std::uint64_t>(fanout) * merge_passes + 2;
  const std::size_t scratch_cells =
      (merge_passes >= 1 ? 2 : 1) * content_cells;
  ctx.ChargeScratch(scratch_reversals, scratch_cells);

  extmem::IoStats lane_io;
  for (auto& lane : lanes_ping) lane_io += lane->io_stats();
  for (auto& lane : lanes_pong) lane_io += lane->io_stats();
  lane_io.prefetch_issued +=
      prefetch.issued.load(std::memory_order_relaxed);
  lane_io.prefetch_hits += prefetch.hits.load(std::memory_order_relaxed);
  ctx.ChargeScratchIo(lane_io);
  if (ctx.storage_options().metrics != nullptr) {
    // Lane block I/O publishes itself on lane destruction; the
    // reader-level prefetch counters live here.
    ctx.storage_options().metrics->Add("extmem.prefetch_issued",
                                       lane_io.prefetch_issued);
    ctx.storage_options().metrics->Add("extmem.prefetch_hits",
                                       lane_io.prefetch_hits);
  }
  if (stats != nullptr) {
    stats->scratch_reversals = scratch_reversals;
    stats->scratch_cells = scratch_cells;
    stats->io = source.io_stats().DeltaSince(source_io_before);
    stats->io += lane_io;
  }
  return Status::OK();
}

Status SortForDecider(stmodel::StContext& ctx, std::size_t src,
                      std::size_t aux1, std::size_t aux2, SortStats* stats) {
  const SortConfig config = DefaultSortConfig();
  if (!UsesParallelPath(config)) {
    return SortFieldsOnTapes(ctx, src, aux1, aux2, stats);
  }
  ParallelSortStats parallel_stats;
  RSTLAB_RETURN_IF_ERROR(
      ParallelSortFieldsOnTape(ctx, src, config, &parallel_stats));
  if (stats != nullptr) {
    stats->num_fields = parallel_stats.num_fields;
    stats->passes = parallel_stats.num_fields <= 1
                        ? 0
                        : parallel_stats.merge_passes + 1;
    stats->io = parallel_stats.io;
  }
  return Status::OK();
}

}  // namespace rstlab::sorting
