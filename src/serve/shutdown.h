#ifndef RSTLAB_SERVE_SHUTDOWN_H_
#define RSTLAB_SERVE_SHUTDOWN_H_

#include <atomic>

namespace rstlab::serve {

/// Graceful SIGINT/SIGTERM shutdown shared by `rstlab serve` and the
/// long-running bench binaries.
///
/// Construction installs handlers for both signals; destruction
/// restores the previous dispositions. The handler does the only two
/// things that are async-signal-safe here: it sets an atomic flag and
/// writes one byte to a self-pipe. Long-running loops either poll
/// `requested()` between units of work, or block on `wait_fd()` in
/// poll()/select() so a signal wakes them immediately.
///
/// The contract both consumers implement on `requested()`:
///  * `rstlab serve` stops accepting connections, drains in-flight
///    trials through FairScheduler::Drain(), then exits 0;
///  * bench binaries stop issuing new requests, drain, flush their
///    BenchRecorder atomically (temp + rename, as always), then exit 0.
///
/// Only one guard may be live at a time (the handler needs process
/// state); constructing a second while one is live is a programming
/// error and aborts in debug builds.
class ShutdownGuard {
 public:
  ShutdownGuard();
  ~ShutdownGuard();

  ShutdownGuard(const ShutdownGuard&) = delete;
  ShutdownGuard& operator=(const ShutdownGuard&) = delete;

  /// True once SIGINT/SIGTERM arrived or RequestShutdown() was called.
  bool requested() const {
    return flag_.load(std::memory_order_acquire);
  }

  /// A pollable fd that becomes readable on shutdown (the self-pipe's
  /// read end). Do not read from it; poll it.
  int wait_fd() const { return pipe_fds_[0]; }

  /// Programmatic trigger with identical semantics to a signal (used by
  /// tests and by the server's own stop path).
  void RequestShutdown();

 private:
  static void Handler(int signal_number);

  static std::atomic<bool> flag_;
  static std::atomic<int> wake_fd_;

  int pipe_fds_[2] = {-1, -1};
  void* previous_int_;   // struct sigaction, stored opaquely
  void* previous_term_;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_SHUTDOWN_H_
