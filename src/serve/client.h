#ifndef RSTLAB_SERVE_CLIENT_H_
#define RSTLAB_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rstlab::serve {

/// One decoded HTTP response: chunked bodies arrive fully reassembled,
/// so NDJSON streams can be split on newlines regardless of how the
/// server chunked them.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased
  std::string body;

  /// The body split into non-empty NDJSON lines.
  std::vector<std::string> Lines() const;
};

/// A minimal blocking HTTP/1.1 client for 127.0.0.1 — the test,
/// conformance and load-generator counterpart of HttpServer. Reuses one
/// keep-alive connection across requests; not thread-safe (benches open
/// one client per worker).
class HttpClient {
 public:
  HttpClient() = default;

  /// Closes the connection if open.
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Connects to 127.0.0.1:`port`.
  Status Connect(std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and blocks for the full (possibly chunked)
  /// response. `body` may be empty for GET. Reconnects once if the
  /// server closed the kept-alive connection.
  Result<ClientResponse> Request(const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "");

  /// Writes raw bytes on the open connection — for protocol-level tests
  /// (truncated requests, pipelining) that bypass Request().
  Status SendRaw(const std::string& bytes);

  /// Reads one full response after SendRaw().
  Result<ClientResponse> ReadResponse();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string buffer_;  // bytes received beyond the last response
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_CLIENT_H_
