#ifndef RSTLAB_SERVE_TRACE_BRIDGE_H_
#define RSTLAB_SERVE_TRACE_BRIDGE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

#include "obs/trace.h"

namespace rstlab::serve {

/// A writer of NDJSON frames — one complete line per call, newline
/// included by the bridge. The server backs this with a chunked HTTP
/// response body; tests back it with a string buffer.
using NdjsonWriter = std::function<void(std::string_view line)>;

/// The TraceSink -> NDJSON bridge: per-trial progress events from the
/// obs trace layer become `{"event":"trial_begin","trial":T}` /
/// `{"event":"trial_end","trial":T}` frames on the response stream, so
/// a client watching a long experiment sees trial-granular progress
/// with the same event vocabulary every other obs consumer uses.
///
/// Only the trial markers are forwarded; tape-level events (reversals,
/// scan segments) would dwarf the result payload at millions of moves
/// per trial. Thread-safe, as every TraceSink must be: frames are
/// serialized under a mutex so concurrent trials never interleave
/// bytes mid-line.
class NdjsonTraceSink : public obs::TraceSink {
 public:
  explicit NdjsonTraceSink(NdjsonWriter writer);

  void OnEvent(const obs::TraceEvent& event) override;

  /// Number of frames written so far.
  std::uint64_t frames() const;

 private:
  NdjsonWriter writer_;
  mutable std::mutex mutex_;
  std::uint64_t frames_ = 0;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_TRACE_BRIDGE_H_
