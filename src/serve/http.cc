#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace rstlab::serve {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

HttpParseResult Fail(Status error, int http_status) {
  HttpParseResult result;
  result.progress = ParseProgress::kError;
  result.error = std::move(error);
  result.http_status = http_status;
  return result;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  if (response.chunked) {
    out += "Transfer-Encoding: chunked\r\n\r\n";
  } else {
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n\r\n";
    out += response.body;
  }
  return out;
}

std::string EncodeChunk(std::string_view payload) {
  if (payload.empty()) return {};  // an empty chunk would terminate
  char size_line[32];
  auto [end, ec] = std::to_chars(size_line, size_line + sizeof(size_line),
                                 payload.size(), 16);
  (void)ec;
  std::string out(size_line, end);
  out += "\r\n";
  out += payload;
  out += "\r\n";
  return out;
}

std::string FinalChunk() { return "0\r\n\r\n"; }

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 413;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kFailedPrecondition: return 503;
    default: return 500;
  }
}

HttpParseResult ParseHttpRequest(std::string_view buffer,
                                 const HttpLimits& limits) {
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // Even without the terminator we can reject a head that already
    // overflows the limit — waiting for more bytes cannot fix it.
    if (buffer.size() > limits.max_head_bytes) {
      return Fail(Status::InvalidArgument(
                      "request head exceeds " +
                      std::to_string(limits.max_head_bytes) + " bytes"),
                  431);
    }
    return HttpParseResult{};  // kNeedMore
  }
  if (head_end + 4 > limits.max_head_bytes) {
    return Fail(Status::InvalidArgument(
                    "request head exceeds " +
                    std::to_string(limits.max_head_bytes) + " bytes"),
                431);
  }

  const std::string_view head = buffer.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // Request line: METHOD SP TARGET SP VERSION, single spaces.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size() ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(Status::InvalidArgument("malformed HTTP request line"),
                400);
  }
  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Fail(Status::InvalidArgument("unsupported HTTP version \"" +
                                        request.version + "\""),
                400);
  }

  // Headers.
  std::size_t content_length = 0;
  bool have_content_length = false;
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(pos, next - pos);
    pos = next + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(Status::InvalidArgument("malformed header line"), 400);
    }
    const std::string_view raw_name = line.substr(0, colon);
    if (raw_name.find(' ') != std::string_view::npos ||
        raw_name.find('\t') != std::string_view::npos) {
      return Fail(Status::InvalidArgument("whitespace in header name"),
                  400);
    }
    std::string name = ToLower(raw_name);
    const std::string_view value = Trim(line.substr(colon + 1));
    if (name == "content-length") {
      std::size_t parsed = 0;
      const auto [end, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc{} || end != value.data() + value.size() ||
          value.empty()) {
        return Fail(Status::InvalidArgument("bad Content-Length \"" +
                                            std::string(value) + "\""),
                    400);
      }
      if (have_content_length && parsed != content_length) {
        return Fail(
            Status::InvalidArgument("conflicting Content-Length headers"),
            400);
      }
      content_length = parsed;
      have_content_length = true;
    }
    if (name == "transfer-encoding") {
      return Fail(Status::InvalidArgument(
                      "Transfer-Encoding not accepted on requests"),
                  501);
    }
    request.headers.emplace_back(std::move(name), std::string(value));
  }

  if (have_content_length && content_length > limits.max_body_bytes) {
    return Fail(Status::OutOfRange(
                    "declared body of " + std::to_string(content_length) +
                    " bytes exceeds limit of " +
                    std::to_string(limits.max_body_bytes)),
                413);
  }

  const std::size_t body_begin = head_end + 4;
  if (buffer.size() - body_begin < content_length) {
    return HttpParseResult{};  // kNeedMore: truncated body so far
  }
  request.body = std::string(buffer.substr(body_begin, content_length));

  HttpParseResult result;
  result.progress = ParseProgress::kDone;
  result.request = std::move(request);
  result.consumed = body_begin + content_length;
  return result;
}

}  // namespace rstlab::serve
