#ifndef RSTLAB_SERVE_JSON_H_
#define RSTLAB_SERVE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rstlab::serve {

/// A parsed JSON value — the minimal recursive model the experiment
/// protocol needs (RFC 8259 syntax; numbers are kept as both double
/// and, when exactly representable, uint64). The library deliberately
/// has no external dependencies, so the service carries its own ~200
/// line parser rather than growing one per caller.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  /// The number as uint64; only meaningful when `is_uint()`.
  std::uint64_t uint_value() const { return uint_; }
  bool is_uint() const { return kind_ == Kind::kNumber && has_uint_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }

  /// Member `key` of an object, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;

  /// Object member names in document order (empty for non-objects).
  const std::vector<std::string>& object_keys() const { return keys_; }

  /// Parses one JSON document (complete, no trailing garbage). Every
  /// failure is a named InvalidArgument with the byte offset.
  static Result<JsonValue> Parse(std::string_view text);

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::uint64_t uint_ = 0;
  bool has_uint_ = false;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::string> keys_;
  std::vector<JsonValue> values_;  // parallel to keys_
};

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// A tiny order-preserving JSON object writer for response bodies and
/// NDJSON event lines.
class JsonWriter {
 public:
  JsonWriter& Field(std::string_view key, std::string_view value);
  JsonWriter& Field(std::string_view key, const char* value);
  JsonWriter& Field(std::string_view key, std::uint64_t value);
  JsonWriter& Field(std::string_view key, int value);
  JsonWriter& Field(std::string_view key, bool value);
  JsonWriter& FieldDouble(std::string_view key, double value);
  /// Emits `key` with `raw` verbatim (pre-rendered JSON).
  JsonWriter& FieldRaw(std::string_view key, std::string_view raw);

  /// Renders `{...}`.
  std::string Build() const;

 private:
  std::string body_;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_JSON_H_
