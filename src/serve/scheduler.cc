#include "serve/scheduler.h"

namespace rstlab::serve {

FairScheduler::FairScheduler(const Options& options)
    : pool_(options.threads),
      max_inflight_(options.max_inflight == 0 ? 1 : options.max_inflight) {}

FairScheduler::~FairScheduler() { Drain(); }

Status FairScheduler::Submit(const std::string& tenant,
                             std::function<void()> job) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    return Status::FailedPrecondition("scheduler is draining");
  }
  if (queued_ + running_ >= max_inflight_) {
    ++stats_.rejected;
    return Status::ResourceExhausted(
        "admission bound reached: " + std::to_string(queued_ + running_) +
        " in flight >= max_inflight " + std::to_string(max_inflight_));
  }
  // Find the tenant's queue in the ring, or append a fresh one just
  // behind the cursor (so a new tenant waits at most one full rotation).
  auto it = ring_.begin();
  for (; it != ring_.end(); ++it) {
    if (it->tenant == tenant) break;
  }
  if (it == ring_.end()) {
    it = ring_.insert(cursor_ == ring_.end() ? ring_.begin() : cursor_,
                      TenantQueue{tenant, {}});
    if (cursor_ == ring_.end()) cursor_ = it;
  }
  it->jobs.push_back(std::move(job));
  ++queued_;
  ++stats_.admitted;
  if (running_ < pool_.thread_count()) DispatchLocked();
  return Status::OK();
}

void FairScheduler::DispatchLocked() {
  if (queued_ == 0 || cursor_ == ring_.end()) return;
  // Advance the cursor to a tenant with work (ring entries are removed
  // when empty, so the first probe normally hits).
  while (cursor_->jobs.empty()) {
    auto dead = cursor_;
    ++cursor_;
    ring_.erase(dead);
    if (cursor_ == ring_.end()) cursor_ = ring_.begin();
    if (ring_.empty()) {
      cursor_ = ring_.end();
      return;
    }
  }
  std::function<void()> job = std::move(cursor_->jobs.front());
  cursor_->jobs.pop_front();
  --queued_;
  ++running_;
  // Rotate: the next dispatch serves the next tenant.
  if (cursor_->jobs.empty()) {
    auto dead = cursor_;
    ++cursor_;
    ring_.erase(dead);
  } else {
    ++cursor_;
  }
  if (cursor_ == ring_.end() && !ring_.empty()) cursor_ = ring_.begin();
  if (ring_.empty()) cursor_ = ring_.end();

  pool_.Submit([this, job = std::move(job)]() mutable {
    // A throwing job must not leak its running slot: without the catch
    // the pool's worker swallows the exception before the accounting
    // below runs, `running_` never decrements, and Drain() deadlocks
    // while the admission bound ratchets shut.
    try {
      job();
    } catch (...) {
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    ++stats_.completed;
    if (running_ < pool_.thread_count()) DispatchLocked();
    if (queued_ == 0 && running_ == 0) drained_.notify_all();
  });
}

void FairScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  drained_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

FairScheduler::Stats FairScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.inflight = queued_ + running_;
  return out;
}

}  // namespace rstlab::serve
