#include "serve/shutdown.h"

#include <cassert>
#include <csignal>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace rstlab::serve {

std::atomic<bool> ShutdownGuard::flag_{false};
std::atomic<int> ShutdownGuard::wake_fd_{-1};

void ShutdownGuard::Handler(int /*signal_number*/) {
  flag_.store(true, std::memory_order_release);
  const int fd = wake_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe just means a wake-up is already pending.
    [[maybe_unused]] ssize_t ignored = ::write(fd, &byte, 1);
  }
}

ShutdownGuard::ShutdownGuard() {
  assert(wake_fd_.load() < 0 && "one ShutdownGuard at a time");
  flag_.store(false, std::memory_order_release);
  if (::pipe(pipe_fds_) != 0) {
    pipe_fds_[0] = pipe_fds_[1] = -1;
  } else {
    ::fcntl(pipe_fds_[0], F_SETFL, O_NONBLOCK);
    ::fcntl(pipe_fds_[1], F_SETFL, O_NONBLOCK);
  }
  wake_fd_.store(pipe_fds_[1], std::memory_order_release);

  struct sigaction action {};
  action.sa_handler = &Handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept() must wake

  auto* prev_int = new struct sigaction;
  auto* prev_term = new struct sigaction;
  ::sigaction(SIGINT, &action, prev_int);
  ::sigaction(SIGTERM, &action, prev_term);
  previous_int_ = prev_int;
  previous_term_ = prev_term;
}

ShutdownGuard::~ShutdownGuard() {
  ::sigaction(SIGINT, static_cast<struct sigaction*>(previous_int_),
              nullptr);
  ::sigaction(SIGTERM, static_cast<struct sigaction*>(previous_term_),
              nullptr);
  delete static_cast<struct sigaction*>(previous_int_);
  delete static_cast<struct sigaction*>(previous_term_);
  wake_fd_.store(-1, std::memory_order_release);
  if (pipe_fds_[0] >= 0) ::close(pipe_fds_[0]);
  if (pipe_fds_[1] >= 0) ::close(pipe_fds_[1]);
  flag_.store(false, std::memory_order_release);
}

void ShutdownGuard::RequestShutdown() { Handler(0); }

}  // namespace rstlab::serve
